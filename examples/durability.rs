//! Durability example: ingest into a durable hierarchy, crash it, and
//! watch recovery reassemble the exact acknowledged state.
//!
//! The walk-through:
//!
//! 1. create a durable matrix (checkpointed level files + write-ahead log
//!    in one directory),
//! 2. stream updates into it and record a flat in-memory oracle alongside,
//! 3. "crash" — the matrix is leaked with `std::mem::forget`, so the
//!    orderly `Drop` WAL sync never runs, exactly like a process kill,
//! 4. reopen the directory, print the [`RecoveryReport`], and
//! 5. verify the recovered contents against the oracle, entry for entry.
//!
//! With the `failpoints` feature the crash is harsher: an injected error
//! tears a write mid-checkpoint first.  Run with
//! `cargo run --release --example durability` (add
//! `--features failpoints` for the torn variant).

use hyperstream::prelude::*;
use std::collections::BTreeMap;

const DIM: u64 = 1 << 32;

fn main() {
    let dir = std::env::temp_dir().join(format!("hyperstream-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("durable store: {}", dir.display());

    // 1. A small cut schedule so cascades (and therefore checkpoints)
    //    happen visibly often even in a short example.
    let config = HierConfig::from_cuts(vec![1 << 8, 1 << 12]).unwrap();
    let mut m = HierMatrix::<u64>::new_durable(
        DIM,
        DIM,
        config,
        DurableConfig::new(&dir).fsync(FsyncPolicy::EveryBatch),
    )
    .unwrap();

    // 2. Ingest a deterministic edge stream, mirroring it into an oracle.
    let mut oracle: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut acked = 0u64;
    for i in 0..25_000u64 {
        let (r, c, w) = ((i * 2_654_435_761) % DIM, (i * 40_503) % 4096, 1 + i % 7);
        m.update(r, c, w).unwrap();
        *oracle.entry((r, c)).or_insert(0) += w;
        acked += 1;
    }
    println!(
        "acknowledged {acked} updates ({} distinct entries)",
        oracle.len()
    );

    // With failpoints compiled in, make the crash nastier: the next
    // checkpoint dies mid-rename, leaving a half-finished generation for
    // recovery to sweep.
    #[cfg(feature = "failpoints")]
    {
        hyperstream::hier::failpoint::arm(
            "persist-mid-rename",
            1,
            hyperstream::hier::failpoint::FailAction::Error,
        );
        match m.flush() {
            Err(e) => println!("injected checkpoint failure: {e}"),
            Ok(()) => println!("(failpoint did not fire — nothing was dirty)"),
        }
        hyperstream::hier::failpoint::disarm_all();
    }

    // 3. Crash.  `forget` skips Drop, so the WAL tail is whatever the OS
    //    already has — with `EveryBatch` that is every acknowledged update.
    std::mem::forget(m);
    println!("crashed (process-kill simulation: Drop never ran)\n");

    // 4. Reopen and report.
    let r = HierMatrix::<u64>::open(&dir).unwrap();
    let report = r.recovery_report().expect("reopen always reports").clone();
    println!("recovery: {report}");

    // 5. Verify against the oracle.
    let (rows, cols, vals) = r.materialize_ref().extract_tuples();
    let mut recovered: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for i in 0..rows.len() {
        *recovered.entry((rows[i], cols[i])).or_insert(0) += vals[i];
    }
    assert_eq!(
        recovered, oracle,
        "recovered store must equal the acknowledged oracle exactly"
    );
    println!(
        "verified: {} recovered entries match the flat oracle exactly",
        recovered.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
