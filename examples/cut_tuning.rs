//! Cut-tuning example: how to choose the hierarchy parameters for a given
//! workload, combining the analytic cost model with a quick empirical check.
//!
//! Run with `cargo run --release --example cut_tuning`.

use hyperstream::hier::{recommend_cuts, sweep_cut_schedules};
use hyperstream::prelude::*;
use std::time::Instant;

fn main() {
    let hierarchy = MemoryHierarchy::xeon_node();
    let expected_nnz = 10_000_000u64;

    // 1. Analytic recommendation from the memory-hierarchy model.
    let recommended = recommend_cuts(&hierarchy, expected_nnz, 8);
    println!(
        "recommended cut schedule for ~{expected_nnz} stored entries: {:?}",
        recommended.cuts()
    );

    // 2. Cost-model sweep over a family of schedules.
    println!("\ncost-model sweep (top 5 of the candidate family):");
    let sweep = sweep_cut_schedules(
        &hierarchy,
        expected_nnz,
        &[2, 3, 4, 5],
        &[1 << 12, 1 << 15, 1 << 18],
        8,
    );
    println!(
        "{:>28} {:>18} {:>16}",
        "cuts", "predicted upd/s", "speedup vs flat"
    );
    for rec in sweep.iter().take(5) {
        println!(
            "{:>28} {:>18.3e} {:>16.1}",
            format!("{:?}", rec.cuts),
            rec.predicted_updates_per_sec,
            rec.predicted_speedup_vs_flat
        );
    }

    // 3. Empirical check of the top candidate against the paper default and
    //    the flat baseline on a real stream.
    let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
    let batches: Vec<Vec<Edge>> = (0..10).map(|_| gen.batch(50_000)).collect();
    let candidates = [
        ("flat (no hierarchy)", HierConfig::effectively_flat()),
        ("paper default", HierConfig::paper_default()),
        (
            "cost-model best",
            HierConfig::from_cuts(sweep[0].cuts.clone()).unwrap(),
        ),
    ];
    println!("\nempirical check (500k power-law updates each):");
    println!(
        "{:>22} {:>16} {:>14}",
        "schedule", "measured upd/s", "cascades"
    );
    for (name, cfg) in candidates {
        let mut m = HierMatrix::<u64>::new(1 << 32, 1 << 32, cfg).unwrap();
        let start = Instant::now();
        for batch in &batches {
            let rows: Vec<u64> = batch.iter().map(|e| e.src).collect();
            let cols: Vec<u64> = batch.iter().map(|e| e.dst).collect();
            let vals: Vec<u64> = batch.iter().map(|e| e.weight).collect();
            m.update_batch(&rows, &cols, &vals).unwrap();
        }
        let rate = m.stats().updates as f64 / start.elapsed().as_secs_f64();
        println!(
            "{:>22} {:>16.3e} {:>14}",
            name,
            rate,
            m.stats().total_cascades()
        );
    }
}
