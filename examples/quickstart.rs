//! Quickstart: build a hierarchical hypersparse traffic matrix, stream
//! updates into it, and query it — the end-to-end workflow of the paper's
//! §II in a few dozen lines.
//!
//! Run with `cargo run --release --example quickstart`.

use hyperstream::prelude::*;

fn main() {
    // 1. A 2^32 x 2^32 IPv4 traffic matrix with a 4-level hierarchy.
    //    Memory is O(entries), never O(2^32).
    let cuts = HierConfig::geometric(4, 1 << 14, 8).expect("valid cut schedule");
    let mut traffic =
        HierMatrix::<u64>::new(1u64 << 32, 1u64 << 32, cuts).expect("valid dimensions");

    // 2. Stream 500,000 synthetic flow updates into it.
    let mut gen = IpTrafficGenerator::new(IpTrafficConfig::default());
    let start = std::time::Instant::now();
    for flow in gen.by_ref().take(500_000) {
        traffic
            .update(flow.src, flow.dst, flow.weight)
            .expect("addresses are within the IPv4 index space");
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = traffic.stats();
    println!(
        "streamed {} updates in {:.2}s  ({:.3e} updates/s)",
        stats.updates,
        secs,
        stats.updates as f64 / secs
    );
    println!(
        "cascades per level: {:?}   entries per level: {:?}",
        stats.cascades,
        traffic.entries_per_level()
    );
    println!(
        "fraction of updates absorbed in fast memory (level 0): {:.3}",
        stats.fast_update_fraction()
    );

    // 3. Query: materialise A = Σ A_i and compute network statistics.
    let snapshot = traffic.materialize();
    println!("materialised matrix: {} stored entries", snapshot.nvals());

    let per_source = reduce_rows(&snapshot, PlusMonoid);
    let top = per_source.top_k(5);
    println!("top 5 sources by packet count:");
    for (addr, packets) in top {
        println!("  {:>12} -> {} packets", format!("{addr:#010x}"), packets);
    }

    // 4. Streaming continues transparently after a query.
    for flow in gen.take(1000) {
        traffic.update(flow.src, flow.dst, flow.weight).unwrap();
    }
    println!("total updates after resuming: {}", traffic.stats().updates);
}
