//! Network-traffic analysis: the application that motivates the paper.
//!
//! Builds an origin–destination traffic matrix from a synthetic packet
//! stream with embedded "supernode" servers and botnet-like scanners, then
//! runs the analyses the paper's introduction lists: temporal fluctuation of
//! supernodes, background models (degree distributions), detection of
//! heavy scanners, and PageRank re-ranked live between ingest windows — all
//! expressed as GraphBLAS operations on the hierarchical matrix.
//!
//! Run with `cargo run --release --example network_traffic`.

use hyperstream::graphblas::algo::degree::{degree_distribution, row_degree};
use hyperstream::graphblas::algo::pagerank;
use hyperstream::graphblas::ops::select::{select, SelectOp};
use hyperstream::prelude::*;

fn main() {
    let dim = IpVersion::V4.dim();
    let mut traffic = HierMatrix::<u64>::with_default_config(dim, dim).expect("valid dims");

    // A traffic mix with pronounced supernodes.
    let cfg = IpTrafficConfig {
        supernodes: 16,
        supernode_fraction: 0.4,
        active_hosts: 1 << 18,
        ..IpTrafficConfig::default()
    };
    let mut gen = IpTrafficGenerator::new(cfg);
    let supernode_addrs: Vec<u64> = gen.supernode_addresses().to_vec();

    // Observe traffic in 5 time windows and track supernode volume per window.
    println!("== streaming 5 windows of 200,000 flow updates each ==");
    let mut supernode_volume_per_window = Vec::new();
    for window in 0..5 {
        for flow in gen.by_ref().take(200_000) {
            traffic.update(flow.src, flow.dst, flow.weight).unwrap();
        }
        let snapshot = traffic.materialize();
        let per_dest = reduce_cols(&snapshot, PlusMonoid);
        let volume: u64 = supernode_addrs
            .iter()
            .filter_map(|&a| per_dest.get(a))
            .sum();
        supernode_volume_per_window.push(volume);
        println!(
            "window {window}: matrix nnz = {}, cumulative supernode packets = {volume}",
            snapshot.nvals()
        );
    }
    assert!(
        supernode_volume_per_window.windows(2).all(|w| w[0] <= w[1]),
        "cumulative supernode volume must be non-decreasing"
    );

    // Background model: out-degree distribution and its power-law exponent,
    // computed straight off the hierarchy's merged level cursors — no
    // materialised snapshot, streaming could continue concurrently.
    let dist = degree_distribution(&mut traffic);
    println!("\n== background model ==");
    println!(
        "distinct sources: {},  max out-degree: {}",
        dist.total_vertices(),
        dist.max_degree()
    );
    if let Some(alpha) = dist.powerlaw_exponent() {
        println!("fitted power-law exponent of the out-degree distribution: {alpha:.2}");
    }

    // Scanner detection: sources touching many distinct destinations but with
    // low per-destination volume -> high out-degree, low max entry.  Also
    // materialisation-free via the MatrixReader cursor layer.
    let degrees = row_degree(&mut traffic);
    let scanners = degrees.top_k(5);
    println!("\n== top fan-out sources (scanner candidates) ==");
    for (addr, fanout) in &scanners {
        println!(
            "  {:>12} contacts {} distinct destinations",
            format!("{addr:#010x}"),
            fanout
        );
    }

    // Victim detection is the transpose question: destinations contacted by
    // many distinct sources -> high IN-degree.  Served O(k) from the
    // lazily-maintained column degree index — the same report that used to
    // need a whole-matrix sweep or an explicitly transposed copy.
    let victims = traffic.read_in_top_k(16);
    println!("== top fan-in destinations (victim / supernode candidates) ==");
    for (addr, fanin) in victims.iter().take(5) {
        println!(
            "  {:>12} contacted by {} distinct sources",
            format!("{addr:#010x}"),
            fanin
        );
    }
    let supernode_hits = victims
        .iter()
        .filter(|&&(addr, _)| supernode_addrs.contains(&addr))
        .count();
    println!("  ({supernode_hits}/16 of the top fan-in destinations are embedded supernodes)");
    assert!(
        supernode_hits >= 8,
        "the fan-in ranking should recover most embedded supernodes"
    );

    // PageRank under ingest: ranking keeps pace with the stream.  After each
    // window the reader-native kernel walks the hierarchy's level cursors
    // directly — no snapshot is materialised — and streaming resumes
    // immediately afterwards.
    println!("\n== pagerank under ingest ==");
    let mut top_ranked: Vec<(u64, f64)> = Vec::new();
    for window in 0..3 {
        for flow in gen.by_ref().take(100_000) {
            traffic.update(flow.src, flow.dst, flow.weight).unwrap();
        }
        let ranks = pagerank(&mut traffic, 0.85, 20, 1e-9);
        top_ranked = ranks.top_k(16);
        let (top_addr, top_score) = top_ranked[0];
        println!(
            "window {window}: {} vertices ranked, top address {:#010x} (score {top_score:.6})",
            ranks.nvals(),
            top_addr
        );
    }
    // The streamed ranking must agree with a flat-oracle rerun: materialise
    // the whole matrix once and rank it again from scratch.
    let mut flat_oracle = traffic.materialize();
    let oracle_top = pagerank(&mut flat_oracle, 0.85, 20, 1e-9).top_k(16);
    assert_eq!(
        top_ranked.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
        oracle_top.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
        "streamed pagerank must rank the same top-16 addresses as the flat oracle"
    );
    for (&(_, streamed), &(_, oracle)) in top_ranked.iter().zip(&oracle_top) {
        assert!(
            (streamed - oracle).abs() < 1e-9,
            "streamed and oracle pagerank scores must agree"
        );
    }
    println!("  top-16 ranking agrees with a flat-oracle rerun of pagerank");

    // Heavy-flow extraction: flows with at least 16 packets (a whole-matrix
    // transform, so this one still materialises a snapshot).
    let snapshot = traffic.materialize();
    let heavy = select(&snapshot, SelectOp::ValueGe(16));
    println!("\nflows with >= 16 packets: {}", heavy.nvals());

    // D4M view: the same analysis is available through string-keyed
    // associative arrays during feature discovery.
    let mut assoc = Assoc::new();
    for flow in gen.take(5_000) {
        assoc.accum(
            &format!("{}.{}", flow.src >> 16, flow.src & 0xffff),
            &format!("{}.{}", flow.dst >> 16, flow.dst & 0xffff),
            flow.weight as f64,
        );
    }
    println!(
        "\nD4M associative-array view of a 5,000-flow sample: {} rows x {} cols, {} entries",
        assoc.nrows(),
        assoc.ncols(),
        assoc.nnz()
    );
}
