//! Distributed-scaling example: a laptop-scale version of the paper's §III
//! experiment.
//!
//! Runs independent hierarchical-matrix instances on every local core (the
//! paper's process-per-instance model), measures the aggregate update rate
//! and parallel efficiency, and then extrapolates to the 1,100-node MIT
//! SuperCloud topology, printing both the measured and the modelled numbers.
//!
//! Run with `cargo run --release --example distributed_scaling`.

use hyperstream::cluster::scaling::efficiencies;
use hyperstream::prelude::*;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let updates_per_instance = 200_000u64;

    // Instance counts 1, 2, 4, ... up to the core count.
    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= cores {
        counts.push(counts.last().unwrap() * 2);
    }

    println!("== weak scaling on the local machine ({cores} cores) ==");
    println!(
        "{:>10} {:>16} {:>18} {:>12}",
        "instances", "updates", "aggregate upd/s", "efficiency"
    );
    let points = measure_scaling(
        SystemKind::HierGraphBlas,
        &counts,
        updates_per_instance,
        1u64 << 32,
    );
    let effs = efficiencies(&points);
    for (p, e) in points.iter().zip(&effs) {
        println!(
            "{:>10} {:>16} {:>18.3e} {:>12.2}",
            p.instances,
            p.updates,
            p.aggregate_rate(),
            e
        );
    }

    // Extrapolate to the SuperCloud topology.
    let cluster = ClusterSpec::supercloud_full();
    let model = ExtrapolationModel::from_scaling(&points, cluster);
    println!("\n== extrapolation to the MIT SuperCloud topology (modelled) ==");
    println!(
        "per-instance rate (measured): {:.3e} upd/s; node efficiency (measured): {:.2}",
        model.per_instance_rate, model.node_efficiency
    );
    println!(
        "{:>10} {:>12} {:>18}",
        "servers", "instances", "updates/s (model)"
    );
    for servers in [1u64, 4, 16, 64, 256, 1100] {
        println!(
            "{:>10} {:>12} {:>18.3e}",
            servers,
            model.instances_at(servers),
            model.rate_at(servers)
        );
    }
    println!(
        "\npaper headline at 1,100 servers: 7.5e10 updates/s; this model: {:.3e} updates/s",
        model.rate_at(1100)
    );
    println!(
        "(absolute numbers depend on this machine; the paper's shape — near-linear \
              scaling of independent instances — is what the model preserves)"
    );
}
