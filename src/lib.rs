//! # hyperstream
//!
//! Hierarchical hypersparse GraphBLAS matrices for streaming graph and
//! network-traffic analysis — a from-scratch Rust reproduction of
//! *"75,000,000,000 Streaming Inserts/Second Using Hierarchical Hypersparse
//! GraphBLAS Matrices"* (Kepner et al., 2020).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`graphblas`] — hypersparse GraphBLAS substrate (formats, monoids,
//!   semirings, kernels, graph algorithms);
//! * [`hier`] — the hierarchical hypersparse matrix (the paper's
//!   contribution) plus cut tuning and memory-trace instrumentation;
//! * [`d4m`] — D4M-style associative arrays and hierarchical associative
//!   arrays (string-keyed baselines);
//! * [`baselines`] — in-memory analogues of the database systems of Fig. 2
//!   and the published reference rates;
//! * [`workload`] — power-law / Kronecker / IP-traffic stream generators;
//! * [`memsim`] — memory-hierarchy cost model and cache simulator;
//! * [`cluster`] — single-node measurement, weak-scaling executor and
//!   SuperCloud-scale extrapolation (the Fig. 2 harness).
//!
//! ## Quickstart
//!
//! ```
//! use hyperstream::prelude::*;
//!
//! // A 2^32 x 2^32 hierarchical traffic matrix with the default cuts.
//! let mut traffic = HierMatrix::<u64>::with_default_config(1 << 32, 1 << 32).unwrap();
//!
//! // Stream some synthetic flows into it.
//! let mut gen = IpTrafficGenerator::new(IpTrafficConfig::default());
//! for flow in gen.by_ref().take(10_000) {
//!     traffic.update(flow.src, flow.dst, flow.weight).unwrap();
//! }
//! assert_eq!(traffic.stats().updates, 10_000);
//!
//! // Query: materialise and compute per-source packet counts.
//! let snapshot = traffic.materialize();
//! let per_source = reduce_rows(&snapshot, PlusMonoid);
//! assert!(per_source.nvals() > 0);
//! ```

#![forbid(unsafe_code)]

pub use hyperstream_baselines as baselines;
pub use hyperstream_cluster as cluster;
pub use hyperstream_d4m as d4m;
pub use hyperstream_graphblas as graphblas;
pub use hyperstream_hier as hier;
pub use hyperstream_memsim as memsim;
pub use hyperstream_workload as workload;

/// One-stop import of the most commonly used items across the workspace.
pub mod prelude {
    pub use hyperstream_graphblas::prelude::*;

    pub use hyperstream_hier::{
        DurableConfig, EngineHealth, FsyncPolicy, HierConfig, HierMatrix, HierStats, InstancePool,
        PartitionBuffers, RecoveryReport, ShardPartitioner, ShardRecovery, ShardedConfig,
        ShardedHierMatrix, ShardedSnapshot, WindowedHierMatrix,
    };

    pub use hyperstream_d4m::{Assoc, HierAssoc, HierAssocConfig};

    pub use hyperstream_baselines::{
        ArrayStore, DocStore, InsertRecord, RowStore, StreamingStore, TabletStore,
    };

    pub use hyperstream_workload::{
        edges_to_tuples, partition_batch, shard_streams, Edge, IpTrafficConfig, IpTrafficGenerator,
        IpVersion, KroneckerConfig, KroneckerGenerator, PowerLawConfig, PowerLawGenerator,
        StreamConfig, StreamPartitioner, Zipf,
    };

    pub use hyperstream_memsim::{
        AccessTracker, CacheConfig, CacheSim, CostModel, MemoryHierarchy,
    };

    pub use hyperstream_cluster::{
        build_fig2, drive_mixed, drive_sink, make_sink, make_system, measure_mixed,
        measure_scaling, measure_system, ClusterSpec, ExtrapolationModel, Fig2Options, MixedRate,
        NodeSpec, SystemKind,
    };
}
