//! E7 — GraphBLAS kernel micro-benchmarks: build-from-tuples, ewise_add
//! (the cascade primitive), mxm and reduce on hypersparse operands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add;
use hyperstream_graphblas::ops::monoid::PlusMonoid;
use hyperstream_graphblas::ops::mxm::mxm;
use hyperstream_graphblas::ops::reduce::reduce_rows;
use hyperstream_graphblas::ops::semiring::PlusTimes;
use hyperstream_graphblas::Matrix;
use hyperstream_workload::{PowerLawConfig, PowerLawGenerator};

const DIM: u64 = 1 << 32;

fn random_matrix(nnz: usize, seed: u64) -> Matrix<u64> {
    let mut gen = PowerLawGenerator::new(PowerLawConfig {
        seed,
        ..PowerLawConfig::paper()
    });
    let edges = gen.batch(nnz);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    Matrix::from_tuples(DIM, DIM, &rows, &cols, &vals, Plus).unwrap()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_tuples");
    for &nnz in &[10_000usize, 100_000] {
        let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
        let edges = gen.batch(nnz);
        let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
        let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
        let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
        group.throughput(Throughput::Elements(nnz as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| {
                Matrix::from_tuples(DIM, DIM, &rows, &cols, &vals, Plus)
                    .unwrap()
                    .nvals()
            })
        });
    }
    group.finish();
}

fn bench_ewise_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("ewise_add");
    group.sample_size(20);
    for &(small, large) in &[(10_000usize, 100_000usize), (100_000, 1_000_000)] {
        let a = random_matrix(small, 1);
        let b = random_matrix(large, 2);
        group.throughput(Throughput::Elements((small + large) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{small}_into_{large}")),
            &(small, large),
            |bench, _| bench.iter(|| ewise_add(&a, &b, Plus).nvals()),
        );
    }
    group.finish();
}

/// The streaming bulk-insert path: one batch through `accum_tuples` (one
/// validation pass + bulk pending extend + one settle check) versus the
/// per-element `accum_element` loop it replaced.  The settle (`wait`) is
/// included so the scratch-reusing sort/merge is measured too.
fn bench_accum_tuples(c: &mut Criterion) {
    let mut group = c.benchmark_group("accum_tuples");
    let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
    const NNZ: usize = 100_000;
    let edges = gen.batch(NNZ);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    group.throughput(Throughput::Elements(NNZ as u64));
    group.bench_function("bulk_batch_100k", |b| {
        b.iter(|| {
            let mut m = Matrix::<u64>::new(DIM, DIM);
            m.accum_tuples(&rows, &cols, &vals).unwrap();
            m.wait();
            m.nvals_settled()
        })
    });
    group.bench_function("per_element_100k", |b| {
        b.iter(|| {
            let mut m = Matrix::<u64>::new(DIM, DIM);
            for i in 0..NNZ {
                m.accum_element(rows[i], cols[i], vals[i]).unwrap();
            }
            m.wait();
            m.nvals_settled()
        })
    });
    group.finish();
}

fn bench_mxm_and_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxm_reduce");
    group.sample_size(10);
    let a = random_matrix(20_000, 7);
    group.bench_function("mxm_20k_squared", |b| {
        b.iter(|| mxm(&a, &a, PlusTimes).nvals())
    });
    let big = random_matrix(200_000, 8);
    group.bench_function("reduce_rows_200k", |b| {
        b.iter(|| reduce_rows(&big, PlusMonoid).nvals())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_ewise_add,
    bench_accum_tuples,
    bench_mxm_and_reduce
);
criterion_main!(benches);
