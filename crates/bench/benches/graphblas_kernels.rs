//! E7 — GraphBLAS kernel micro-benchmarks: build-from-tuples, ewise_add
//! (the cascade primitive), mxm and reduce on hypersparse operands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperstream_graphblas::cursor::{merge_levels, merged_nnz, merged_row_into, merged_top_k};
use hyperstream_graphblas::formats::coo::Coo;
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add;
use hyperstream_graphblas::ops::monoid::PlusMonoid;
use hyperstream_graphblas::ops::mxm::mxm;
use hyperstream_graphblas::ops::reduce::reduce_rows;
use hyperstream_graphblas::ops::semiring::PlusTimes;
use hyperstream_graphblas::Matrix;
use hyperstream_graphblas::MergeScratch;
use hyperstream_workload::{PowerLawConfig, PowerLawGenerator};

const DIM: u64 = 1 << 32;

fn random_matrix(nnz: usize, seed: u64) -> Matrix<u64> {
    let mut gen = PowerLawGenerator::new(PowerLawConfig {
        seed,
        ..PowerLawConfig::paper()
    });
    let edges = gen.batch(nnz);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    Matrix::from_tuples(DIM, DIM, &rows, &cols, &vals, Plus).unwrap()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_tuples");
    for &nnz in &[10_000usize, 100_000] {
        let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
        let edges = gen.batch(nnz);
        let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
        let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
        let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
        group.throughput(Throughput::Elements(nnz as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| {
                Matrix::from_tuples(DIM, DIM, &rows, &cols, &vals, Plus)
                    .unwrap()
                    .nvals()
            })
        });
    }
    group.finish();
}

fn bench_ewise_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("ewise_add");
    group.sample_size(20);
    for &(small, large) in &[(10_000usize, 100_000usize), (100_000, 1_000_000)] {
        let a = random_matrix(small, 1);
        let b = random_matrix(large, 2);
        group.throughput(Throughput::Elements((small + large) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{small}_into_{large}")),
            &(small, large),
            |bench, _| bench.iter(|| ewise_add(&a, &b, Plus).nvals()),
        );
    }
    group.finish();
}

/// The streaming bulk-insert path: one batch through `accum_tuples` (one
/// validation pass + bulk pending extend + one settle check) versus the
/// per-element `accum_element` loop it replaced.  The settle (`wait`) is
/// included so the scratch-reusing sort/merge is measured too.
fn bench_accum_tuples(c: &mut Criterion) {
    let mut group = c.benchmark_group("accum_tuples");
    let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
    const NNZ: usize = 100_000;
    let edges = gen.batch(NNZ);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    group.throughput(Throughput::Elements(NNZ as u64));
    group.bench_function("bulk_batch_100k", |b| {
        b.iter(|| {
            let mut m = Matrix::<u64>::new(DIM, DIM);
            m.accum_tuples(&rows, &cols, &vals).unwrap();
            m.wait();
            m.nvals_settled()
        })
    });
    group.bench_function("per_element_100k", |b| {
        b.iter(|| {
            let mut m = Matrix::<u64>::new(DIM, DIM);
            for i in 0..NNZ {
                m.accum_element(rows[i], cols[i], vals[i]).unwrap();
            }
            m.wait();
            m.nvals_settled()
        })
    });
    group.finish();
}

/// Input shapes for the settle-sort micro-benchmark.  `sorted` and
/// `reverse` are the best/worst cases for a comparison sort; `random`
/// scatters uniformly over a 2^20 id pool; `power_law` is the paper's
/// skewed traffic shape (duplicate-heavy).
fn sort_input(pattern: &str, n: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    match pattern {
        "sorted" => {
            // Ascending except the first tuple moved to the end, so the
            // is-sorted fast path does not short-circuit the sort itself.
            let mut rows: Vec<u64> = (1..n as u64 + 1).map(|i| i / 1000).collect();
            let mut cols: Vec<u64> = (1..n as u64 + 1).map(|i| i % 1000).collect();
            rows.rotate_left(1);
            cols.rotate_left(1);
            let vals = vec![1u64; n];
            (rows, cols, vals)
        }
        "reverse" => {
            let rows: Vec<u64> = (0..n as u64).rev().map(|i| i / 1000).collect();
            let cols: Vec<u64> = (0..n as u64).rev().map(|i| i % 1000).collect();
            (rows, cols, vec![1u64; n])
        }
        "random" => {
            let rows: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44)
                .collect();
            let cols: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0xBF58_476D_1CE4_E5B9) >> 44)
                .collect();
            (rows, cols, vec![1u64; n])
        }
        "power_law" => {
            let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
            let edges = gen.batch(n);
            (
                edges.iter().map(|e| e.src).collect(),
                edges.iter().map(|e| e.dst).collect(),
                edges.iter().map(|e| e.weight).collect(),
            )
        }
        other => panic!("unknown input pattern {other}"),
    }
}

/// The settle kernel head-to-head: packed-key LSD radix sort versus the
/// permutation comparison sort it replaced, across input sizes and shapes.
/// Both variants clone the same unsorted COO per iteration (identical
/// overhead) and sort through a persistent `MergeScratch`, exactly like the
/// streaming settle path.
fn bench_sort_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_dedup");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        for pattern in ["sorted", "reverse", "random", "power_law"] {
            let (rows, cols, vals) = sort_input(pattern, n);
            let mut base = Coo::<u64>::new(DIM, DIM);
            base.extend_from_slices(&rows, &cols, &vals).unwrap();
            assert!(
                !base.is_sorted_dedup(),
                "{pattern}/{n} must exercise the sort"
            );
            group.throughput(Throughput::Elements(n as u64));
            let mut scratch = MergeScratch::new();
            group.bench_with_input(
                BenchmarkId::new(format!("radix_{pattern}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut coo = base.clone();
                        coo.sort_dedup_with(Plus, &mut scratch);
                        coo.len()
                    })
                },
            );
            let mut scratch = MergeScratch::new();
            group.bench_with_input(
                BenchmarkId::new(format!("comparison_{pattern}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut coo = base.clone();
                        coo.sort_dedup_comparison_with(Plus, &mut scratch);
                        coo.len()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The read-path kernel head-to-head: one k-way cursor pass over a
/// hierarchy-shaped level set versus the pairwise `merge` chain it
/// replaced, plus the materialisation-free queries (nnz, top-k, row
/// extract) against their materialise-then-answer equivalents.
fn bench_merged_cursor(c: &mut Criterion) {
    let mut group = c.benchmark_group("merged_cursor");
    group.sample_size(20);
    // Geometric level sizes shaped like a settled 4-level hierarchy.
    let sizes = [1usize << 10, 1 << 13, 1 << 16, 1 << 19];
    let levels: Vec<Dcsr<u64>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &nnz)| {
            let mut gen = PowerLawGenerator::new(PowerLawConfig {
                seed: 11 + i as u64,
                ..PowerLawConfig::paper()
            });
            let edges = gen.batch(nnz);
            let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
            let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
            let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
            Dcsr::from_tuples(DIM, DIM, &rows, &cols, &vals, Plus).unwrap()
        })
        .collect();
    let refs: Vec<&Dcsr<u64>> = levels.iter().collect();
    let total: u64 = levels.iter().map(|d| d.nvals() as u64).sum();

    group.throughput(Throughput::Elements(total));
    group.bench_function("merge_levels_scratch_4", |b| {
        b.iter(|| merge_levels(DIM, DIM, &refs, Plus).unwrap().nvals())
    });
    group.bench_function("merge_fresh_alloc_4", |b| {
        b.iter(|| {
            let mut acc = Dcsr::<u64>::new(DIM, DIM);
            for d in &refs {
                acc = acc.merge(d, Plus).unwrap();
            }
            acc.nvals()
        })
    });
    group.bench_function("merged_nnz_cursor", |b| b.iter(|| merged_nnz(&refs)));
    group.bench_function("merged_top_k_8", |b| b.iter(|| merged_top_k(&refs, 8)));
    let probe_rows: Vec<u64> = levels[3].row_ids().iter().step_by(64).copied().collect();
    group.throughput(Throughput::Elements(probe_rows.len() as u64));
    group.bench_function("merged_row_queries", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut n = 0usize;
            for &r in &probe_rows {
                merged_row_into(&refs, r, Plus, &mut out);
                n += out.len();
            }
            n
        })
    });
    group.finish();
}

/// Batched point/row reads versus their single-query loops: `read_rows`
/// and `read_get_many` pay the settle check and cursor setup once per
/// batch instead of once per key, which is the win the sharded engine
/// turns into one push-down round per owning shard.
fn bench_batched_reads(c: &mut Criterion) {
    use hyperstream_graphblas::MatrixReader;
    use hyperstream_hier::{HierConfig, HierMatrix};

    let mut group = c.benchmark_group("batched_reads");
    group.sample_size(20);
    let mut gen = PowerLawGenerator::new(PowerLawConfig {
        seed: 21,
        ..PowerLawConfig::paper()
    });
    let edges = gen.batch(200_000);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    let mut m = HierMatrix::<u64>::new(DIM, DIM, HierConfig::paper_default()).unwrap();
    m.update_batch(&rows, &cols, &vals).unwrap();
    let probe_rows: Vec<u64> = rows.iter().step_by(781).copied().collect();
    let keys: Vec<(u64, u64)> = edges.iter().step_by(781).map(|e| (e.src, e.dst)).collect();

    group.throughput(Throughput::Elements(probe_rows.len() as u64));
    group.bench_function("hier_read_rows_batched", |b| {
        b.iter(|| m.read_rows(&probe_rows).len())
    });
    group.bench_function("hier_read_row_loop", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut n = 0usize;
            for &r in &probe_rows {
                m.read_row(r, &mut out);
                n += out.len();
            }
            n
        })
    });
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("hier_get_many_batched", |b| {
        b.iter(|| m.read_get_many(&keys).iter().flatten().sum::<u64>())
    });
    group.bench_function("hier_get_loop", |b| {
        b.iter(|| {
            keys.iter()
                .filter_map(|&(r, c)| m.read_get(r, c))
                .sum::<u64>()
        })
    });
    group.finish();
}

/// The transpose read path head-to-head: column extract and in-degree
/// top-k served from the lazily-built column twin / column degree index
/// versus the whole-matrix cursor sweeps they replace.
fn bench_column_queries(c: &mut Criterion) {
    use hyperstream_graphblas::cursor::{merged_col_into, merged_in_top_k};
    use hyperstream_graphblas::MatrixReader;

    let mut group = c.benchmark_group("column_queries");
    group.sample_size(20);
    let mut m = random_matrix(200_000, 9);
    let probe_col = m.dcsr().row_slot(0).0[0];
    // Build the column twin once, outside the timed region, so the bench
    // measures the steady-state O(k) answer (first-query activation is a
    // one-off full transpose).
    let mut warm = Vec::new();
    m.read_col(probe_col, &mut warm);
    assert!(!warm.is_empty());

    group.bench_function("read_col_twin", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            m.read_col(probe_col, &mut out);
            out.len()
        })
    });
    group.bench_function("read_col_sweep", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            merged_col_into(&[m.dcsr()], probe_col, Plus, &mut out);
            out.len()
        })
    });
    group.bench_function("in_top_k_8_indexed", |b| b.iter(|| m.read_in_top_k(8)));
    group.bench_function("in_top_k_8_sweep", |b| {
        b.iter(|| merged_in_top_k(&[m.dcsr()], 8))
    });
    group.finish();
}

fn bench_mxm_and_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxm_reduce");
    group.sample_size(10);
    let a = random_matrix(20_000, 7);
    group.bench_function("mxm_20k_squared", |b| {
        b.iter(|| mxm(&a, &a, PlusTimes).nvals())
    });
    let big = random_matrix(200_000, 8);
    group.bench_function("reduce_rows_200k", |b| {
        b.iter(|| reduce_rows(&big, PlusMonoid).nvals())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_ewise_add,
    bench_accum_tuples,
    bench_sort_dedup,
    bench_merged_cursor,
    bench_batched_reads,
    bench_column_queries,
    bench_mxm_and_reduce
);
criterion_main!(benches);
