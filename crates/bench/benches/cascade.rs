//! E4 (micro view) — cost of a single cascade step as a function of the
//! receiving level's size, demonstrating why the amortised-per-update cost
//! stays flat when cuts grow geometrically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add;
use hyperstream_graphblas::Matrix;
use hyperstream_hier::{HierConfig, HierMatrix};
use hyperstream_workload::{PowerLawConfig, PowerLawGenerator};

const DIM: u64 = 1 << 32;

fn matrix_with(nnz: usize, seed: u64) -> Matrix<u64> {
    let mut gen = PowerLawGenerator::new(PowerLawConfig {
        seed,
        ..PowerLawConfig::paper()
    });
    let edges = gen.batch(nnz);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    Matrix::from_tuples(DIM, DIM, &rows, &cols, &vals, Plus).unwrap()
}

fn bench_cascade_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("cascade_merge");
    group.sample_size(15);
    let incoming = matrix_with(1 << 14, 3);
    for &target_nnz in &[1usize << 16, 1 << 18, 1 << 20] {
        let target = matrix_with(target_nnz, 4);
        group.throughput(Throughput::Elements((incoming.nvals() + target_nnz) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(target_nnz),
            &target_nnz,
            |b, _| b.iter(|| ewise_add(&target, &incoming, Plus).nvals()),
        );
    }
    group.finish();
}

fn bench_level_count_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("level_count_ablation");
    group.sample_size(10);
    let mut gen = PowerLawGenerator::new(PowerLawConfig::paper());
    let edges = gen.batch(200_000);
    let rows: Vec<u64> = edges.iter().map(|e| e.src).collect();
    let cols: Vec<u64> = edges.iter().map(|e| e.dst).collect();
    let vals: Vec<u64> = edges.iter().map(|e| e.weight).collect();
    group.throughput(Throughput::Elements(edges.len() as u64));

    for levels in [2usize, 3, 4, 5] {
        let cfg = HierConfig::geometric(levels, 1 << 13, 8).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, _| {
            b.iter(|| {
                let mut m = HierMatrix::<u64>::new(DIM, DIM, cfg.clone()).unwrap();
                for chunk in rows
                    .chunks(10_000)
                    .zip(cols.chunks(10_000))
                    .zip(vals.chunks(10_000))
                {
                    let ((r, c), v) = chunk;
                    m.update_batch(r, c, v).unwrap();
                }
                m.total_entries_bound()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cascade_merge, bench_level_count_ablation);
criterion_main!(benches);
