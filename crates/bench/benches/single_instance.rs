//! E1 — single-instance streaming update rate (Criterion version).
//!
//! Measures the per-batch ingest time of one hierarchical hypersparse
//! matrix fed the paper's power-law stream, for several cut schedules, and
//! of the flat pending-tuple matrix for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperstream_bench::paper_batches;
use hyperstream_graphblas::Matrix;
use hyperstream_hier::{HierConfig, HierMatrix};

const DIM: u64 = 1 << 32;

fn bench_hier_update(c: &mut Criterion) {
    let batches = paper_batches(4, 42);
    let batch_len: u64 = batches[0].len() as u64;

    let mut group = c.benchmark_group("single_instance_update");
    group.throughput(Throughput::Elements(batch_len * batches.len() as u64));
    group.sample_size(10);

    for (name, cfg) in [
        ("hier_paper_cuts", HierConfig::paper_default()),
        (
            "hier_small_cuts",
            HierConfig::from_cuts(vec![1 << 12, 1 << 15, 1 << 18]).unwrap(),
        ),
        ("hier_flat_equivalent", HierConfig::effectively_flat()),
    ] {
        group.bench_function(BenchmarkId::new("graphblas", name), |b| {
            b.iter(|| {
                let mut m = HierMatrix::<u64>::new(DIM, DIM, cfg.clone()).unwrap();
                for batch in &batches {
                    let rows: Vec<u64> = batch.iter().map(|e| e.src).collect();
                    let cols: Vec<u64> = batch.iter().map(|e| e.dst).collect();
                    let vals: Vec<u64> = batch.iter().map(|e| e.weight).collect();
                    m.update_batch(&rows, &cols, &vals).unwrap();
                }
                m.total_entries_bound()
            })
        });
    }

    group.bench_function(BenchmarkId::new("graphblas", "flat_pending_tuples"), |b| {
        b.iter(|| {
            let mut m = Matrix::<u64>::new(DIM, DIM).with_pending_limit(1 << 17);
            for batch in &batches {
                for e in batch {
                    m.accum_element(e.src, e.dst, e.weight).unwrap();
                }
            }
            m.wait();
            m.nvals()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hier_update);
criterion_main!(benches);
