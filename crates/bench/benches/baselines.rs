//! E3 (micro view) — per-batch ingest cost of the database analogues and
//! hierarchical D4M against the hierarchical GraphBLAS matrix on the same
//! power-law stream.
//!
//! Every system is constructed by `make_sink` and driven through the one
//! generic `drive_sink` harness, so the measured differences are the
//! systems', not the harness's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperstream_bench::paper_batches;
use hyperstream_cluster::{drive_sink, make_sink, SystemKind};

const DIM: u64 = 1 << 32;

fn bench_baseline_ingest(c: &mut Criterion) {
    // One paper batch (100k edges), scaled down to keep the slow analogues in
    // a reasonable Criterion budget.
    let batches = vec![paper_batches(1, 9)[0][..20_000].to_vec()];

    let mut group = c.benchmark_group("baseline_ingest_20k");
    group.throughput(Throughput::Elements(batches[0].len() as u64));
    group.sample_size(10);

    for &sys in SystemKind::all() {
        group.bench_function(BenchmarkId::new("system", format!("{sys:?}")), |b| {
            b.iter(|| {
                let mut sink = make_sink(sys, DIM);
                drive_sink(sink.as_mut(), &batches).unwrap()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_baseline_ingest);
criterion_main!(benches);
