//! E3 (micro view) — per-batch ingest cost of the database analogues and
//! hierarchical D4M against the hierarchical GraphBLAS matrix on the same
//! power-law stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperstream_baselines::{
    ArrayStore, DocStore, InsertRecord, RowStore, StreamingStore, TabletStore,
};
use hyperstream_bench::paper_batches;
use hyperstream_d4m::HierAssoc;
use hyperstream_hier::{HierConfig, HierMatrix};

const DIM: u64 = 1 << 32;

fn bench_baseline_ingest(c: &mut Criterion) {
    // One paper batch (100k edges), scaled down to keep the slow analogues in
    // a reasonable Criterion budget.
    let batch: Vec<_> = paper_batches(1, 9)[0][..20_000].to_vec();
    let records: Vec<InsertRecord> = batch
        .iter()
        .map(|e| InsertRecord::new(e.src, e.dst, e.weight))
        .collect();

    let mut group = c.benchmark_group("baseline_ingest_20k");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("system", "hier_graphblas"), |b| {
        b.iter(|| {
            let mut m = HierMatrix::<u64>::new(DIM, DIM, HierConfig::paper_default()).unwrap();
            let rows: Vec<u64> = batch.iter().map(|e| e.src).collect();
            let cols: Vec<u64> = batch.iter().map(|e| e.dst).collect();
            let vals: Vec<u64> = batch.iter().map(|e| e.weight).collect();
            m.update_batch(&rows, &cols, &vals).unwrap();
            m.total_entries_bound()
        })
    });

    group.bench_function(BenchmarkId::new("system", "hier_d4m"), |b| {
        b.iter(|| {
            let mut m = HierAssoc::with_default_config();
            for e in &batch {
                m.update(&e.src.to_string(), &e.dst.to_string(), e.weight as f64);
            }
            m.updates()
        })
    });

    group.bench_function(BenchmarkId::new("system", "accumulo_like"), |b| {
        b.iter(|| {
            let mut s = TabletStore::new();
            s.insert_batch(&records);
            s.flush();
            s.total_weight()
        })
    });

    group.bench_function(BenchmarkId::new("system", "scidb_like"), |b| {
        b.iter(|| {
            let mut s = ArrayStore::new();
            s.insert_batch(&records);
            s.flush();
            s.total_weight()
        })
    });

    group.bench_function(BenchmarkId::new("system", "tpcc_like"), |b| {
        b.iter(|| {
            let mut s = RowStore::new();
            s.insert_batch(&records);
            s.flush();
            s.total_weight()
        })
    });

    group.bench_function(BenchmarkId::new("system", "cratedb_like"), |b| {
        b.iter(|| {
            let mut s = DocStore::new();
            s.insert_batch(&records);
            s.flush();
            s.total_weight()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_baseline_ingest);
criterion_main!(benches);
