//! # hyperstream-bench
//!
//! Benchmark harness for the hierarchical hypersparse GraphBLAS
//! reproduction.  Two kinds of artifacts live here:
//!
//! * **Criterion micro-benchmarks** (`benches/`) — kernel-level timings of
//!   the GraphBLAS operations, the hierarchical cascade, and the baseline
//!   stores; and
//! * **experiment binaries** (`src/bin/`) — long-running harnesses that
//!   regenerate each figure/claim of the paper's evaluation (see
//!   `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for the
//!   recorded results):
//!
//! | binary | experiment |
//! |--------|-----------|
//! | `single_rate` | E1 — single-instance update rate (the ">1,000,000 updates/s" claim) |
//! | `fig2` | E2/E3 — update rate vs. number of servers for every system |
//! | `cut_sweep` | E4 — ablation over cut schedules and level counts |
//! | `memory_pressure` | E5 — fast- vs slow-memory traffic, flat vs hierarchical |
//! | `query_tradeoff` | E6 — throughput vs. query (materialisation) frequency |
//!
//! All binaries take a `--quick` flag to run a reduced configuration and
//! print the same tables.

#![forbid(unsafe_code)]

use hyperstream_graphblas::StreamingSink;
use hyperstream_workload::{Edge, PowerLawConfig, PowerLawGenerator, StreamConfig};

/// Shared helper: the paper's per-instance workload (power-law edges in
/// batches of 100,000), scaled to `batches` batches.
pub fn paper_batches(batches: usize, seed: u64) -> Vec<Vec<Edge>> {
    let gen = PowerLawGenerator::new(PowerLawConfig {
        seed,
        ..PowerLawConfig::paper()
    });
    let cfg = StreamConfig::scaled_down(batches);
    hyperstream_workload::StreamPartitioner::new(gen, cfg)
        .batches()
        .collect()
}

/// Shared helper: time [`hyperstream_cluster::drive_sink`] over `batches`
/// and return `(updates, seconds)` — the one timing wrapper every
/// experiment binary uses, so their reported rates stay comparable.
pub fn timed_drive<S: StreamingSink<u64> + ?Sized>(
    sink: &mut S,
    batches: &[Vec<Edge>],
) -> (u64, f64) {
    let updates: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let start = std::time::Instant::now();
    hyperstream_cluster::drive_sink(sink, batches);
    (updates, start.elapsed().as_secs_f64().max(1e-9))
}

/// Shared helper: parse a `--quick` flag from the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Shared helper: parse a `--flag value` integer argument.
pub fn arg_value(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Run metadata recorded in every machine-readable benchmark artifact so
/// successive commits and machines can be compared.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Available hardware threads on the measuring machine.
    pub threads: usize,
    /// `git rev-parse HEAD` of the measured tree ("unknown" outside a
    /// checkout).
    pub git_commit: String,
    /// Wall-clock time of the run (seconds since the Unix epoch).
    pub unix_time: u64,
}

/// Collect the run metadata for a benchmark artifact.
pub fn bench_meta() -> BenchMeta {
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    BenchMeta {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        git_commit,
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

impl BenchMeta {
    /// The metadata rendered as JSON object fields (no surrounding braces),
    /// ready to splice into a benchmark artifact.
    pub fn json_fields(&self) -> String {
        format!(
            "  \"threads\": {},\n  \"git_commit\": \"{}\",\n  \"unix_time\": {},\n",
            self.threads,
            self.git_commit.replace(['"', '\\'], "?"),
            self.unix_time
        )
    }
}

/// Format a rate with engineering-notation style used in the reports.
pub fn fmt_rate(rate: f64) -> String {
    format!("{rate:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batches_shape() {
        let b = paper_batches(2, 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 100_000);
        // Deterministic for the same seed.
        let b2 = paper_batches(2, 1);
        assert_eq!(b[0][..10], b2[0][..10]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(75e9), "7.500e10");
    }
}
