//! # hyperstream-bench
//!
//! Benchmark harness for the hierarchical hypersparse GraphBLAS
//! reproduction.  Two kinds of artifacts live here:
//!
//! * **Criterion micro-benchmarks** (`benches/`) — kernel-level timings of
//!   the GraphBLAS operations, the hierarchical cascade, and the baseline
//!   stores; and
//! * **experiment binaries** (`src/bin/`) — long-running harnesses that
//!   regenerate each figure/claim of the paper's evaluation (see
//!   `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for the
//!   recorded results):
//!
//! | binary | experiment |
//! |--------|-----------|
//! | `single_rate` | E1 — single-instance update rate (the ">1,000,000 updates/s" claim) |
//! | `fig2` | E2/E3 — update rate vs. number of servers for every system |
//! | `cut_sweep` | E4 — ablation over cut schedules and level counts |
//! | `memory_pressure` | E5 — fast- vs slow-memory traffic, flat vs hierarchical |
//! | `query_tradeoff` | E6 — throughput vs. query (materialisation) frequency |
//!
//! All binaries take a `--quick` flag to run a reduced configuration and
//! print the same tables.

#![forbid(unsafe_code)]

use hyperstream_graphblas::StreamingSink;
use hyperstream_workload::{Edge, PowerLawConfig, PowerLawGenerator, StreamConfig};

/// Shared helper: the paper's per-instance workload (power-law edges in
/// batches of 100,000), scaled to `batches` batches.
pub fn paper_batches(batches: usize, seed: u64) -> Vec<Vec<Edge>> {
    let gen = PowerLawGenerator::new(PowerLawConfig {
        seed,
        ..PowerLawConfig::paper()
    });
    let cfg = StreamConfig::scaled_down(batches);
    hyperstream_workload::StreamPartitioner::new(gen, cfg)
        .batches()
        .collect()
}

/// Shared helper: time [`hyperstream_cluster::drive_sink`] over `batches`
/// and return `(updates, seconds)` — the one timing wrapper every
/// experiment binary uses, so their reported rates stay comparable.
pub fn timed_drive<S: StreamingSink<u64> + ?Sized>(
    sink: &mut S,
    batches: &[Vec<Edge>],
) -> (u64, f64) {
    let updates: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let start = std::time::Instant::now();
    hyperstream_cluster::drive_sink(sink, batches).expect("healthy sink ingests the stream");
    (updates, start.elapsed().as_secs_f64().max(1e-9))
}

/// Shared helper: parse a `--quick` flag from the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Shared helper: parse a `--flag value` integer argument.
pub fn arg_value(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Run metadata recorded in every machine-readable benchmark artifact so
/// successive commits and machines can be compared.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// Available hardware threads on the measuring machine.
    pub threads: usize,
    /// `git rev-parse HEAD` of the measured tree ("unknown" outside a
    /// checkout).
    pub git_commit: String,
    /// Wall-clock time of the run (seconds since the Unix epoch).
    pub unix_time: u64,
    /// Failpoint fires observed in this process (always 0 unless the
    /// `failpoints` feature is compiled in AND a site was armed); recorded
    /// so artifacts from fault-capable builds attest the measurement ran
    /// clean.
    pub faults_injected: u64,
    /// WAL fsync policy (or policy sweep) the measurement ran under —
    /// `None` for experiments that never touch the durable store, and
    /// then omitted from the artifact entirely.  Durability artifacts are
    /// meaningless without it: an `EveryBatch` rate and a `Never` rate
    /// are different experiments.
    pub fsync_policy: Option<String>,
}

/// Collect the run metadata for a benchmark artifact.
pub fn bench_meta() -> BenchMeta {
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    BenchMeta {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        git_commit,
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        #[cfg(feature = "failpoints")]
        faults_injected: hyperstream_hier::failpoint::total_fired(),
        #[cfg(not(feature = "failpoints"))]
        faults_injected: 0,
        fsync_policy: None,
    }
}

impl BenchMeta {
    /// Record the WAL fsync policy (or sweep label) this run used.
    pub fn with_fsync_policy(mut self, policy: impl Into<String>) -> Self {
        self.fsync_policy = Some(policy.into());
        self
    }

    /// The metadata rendered as JSON object fields (no surrounding braces),
    /// ready to splice into a benchmark artifact.
    pub fn json_fields(&self) -> String {
        let fsync = match &self.fsync_policy {
            Some(p) => format!("  \"fsync_policy\": \"{}\",\n", p.replace(['"', '\\'], "?")),
            None => String::new(),
        };
        format!(
            "  \"threads\": {},\n  \"git_commit\": \"{}\",\n  \"unix_time\": {},\n  \"faults_injected\": {},\n{fsync}",
            self.threads,
            self.git_commit.replace(['"', '\\'], "?"),
            self.unix_time,
            self.faults_injected
        )
    }
}

/// Format a rate with engineering-notation style used in the reports.
pub fn fmt_rate(rate: f64) -> String {
    format!("{rate:.3e}")
}

/// Per-trial rates of one best-of-N measurement, recorded verbatim in the
/// benchmark artifacts: on a 1-core container whose host speed drifts
/// ±30%, folding trials into a silent best-of hides the noise floor — the
/// spread belongs in the JSON so artifact consumers can judge it.
#[derive(Debug, Clone, Default)]
pub struct TrialRates {
    /// One measured rate per trial, in run order.
    pub rates: Vec<f64>,
}

impl TrialRates {
    /// Record one trial's rate.
    pub fn push(&mut self, rate: f64) {
        self.rates.push(rate);
    }

    /// The reported (best) rate: max across trials, 0 when none ran.
    pub fn best(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// Number of trials.
    pub fn best_of(&self) -> usize {
        self.rates.len()
    }

    /// Relative spread `(max - min) / max` — 0 for a single trial; the
    /// per-artifact record of the host's drift during this measurement.
    pub fn spread(&self) -> f64 {
        let max = self.best();
        if self.rates.len() < 2 || max <= 0.0 {
            return 0.0;
        }
        let min = self.rates.iter().copied().fold(f64::INFINITY, f64::min);
        (max - min) / max
    }

    /// The trial fields rendered as JSON object fields (no surrounding
    /// braces or trailing comma), ready to splice into an artifact entry.
    /// Key names derive from `name` so several metrics' trials can live in
    /// one object without duplicate keys (the caller writes `best_of`
    /// itself, once).
    pub fn json_fields(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut rates = String::new();
        for (i, r) in self.rates.iter().enumerate() {
            let _ = write!(rates, "{}{:.1}", if i == 0 { "" } else { ", " }, r);
        }
        format!(
            "\"trial_{name}\": [{rates}], \"trial_{name}_spread\": {:.4}",
            self.spread()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batches_shape() {
        let b = paper_batches(2, 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 100_000);
        // Deterministic for the same seed.
        let b2 = paper_batches(2, 1);
        assert_eq!(b[0][..10], b2[0][..10]);
    }

    #[test]
    fn bench_meta_fsync_policy_is_optional() {
        let meta = bench_meta();
        assert!(!meta.json_fields().contains("fsync_policy"));
        let with = meta.with_fsync_policy("every-batch");
        assert!(with
            .json_fields()
            .contains("\"fsync_policy\": \"every-batch\""));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(75e9), "7.500e10");
    }

    #[test]
    fn trial_rates_best_and_spread() {
        let mut t = TrialRates::default();
        assert_eq!(t.best(), 0.0);
        assert_eq!(t.spread(), 0.0);
        t.push(100.0);
        assert_eq!(t.spread(), 0.0);
        t.push(80.0);
        t.push(90.0);
        assert_eq!(t.best(), 100.0);
        assert_eq!(t.best_of(), 3);
        assert!((t.spread() - 0.2).abs() < 1e-12);
        let json = t.json_fields("insert_rates");
        assert!(json.contains("\"trial_insert_rates\": [100.0, 80.0, 90.0]"));
        assert!(json.contains("\"trial_insert_rates_spread\": 0.2000"));
        assert!(!json.contains("\"best_of\""), "caller writes best_of once");
    }
}
