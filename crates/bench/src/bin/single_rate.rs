//! Experiment E1 — single-instance streaming update rate.
//!
//! Reproduces the paper's claim that "hierarchical hypersparse matrices
//! achieve over 1,000,000 updates per second in a single instance" by
//! streaming the paper's per-instance workload (power-law edges in batches
//! of 100,000) into one instance of every system and reporting the sustained
//! rate.  Run with `--quick` for a reduced batch count.

use hyperstream_bench::{fmt_rate, paper_batches, quick_mode};
use hyperstream_cluster::{measure_system, SystemKind};

fn main() {
    let quick = quick_mode();
    let batches = if quick { 5 } else { 50 };
    println!("=== E1: single-instance update rate ===");
    println!(
        "workload: power-law stream, {} batches x 100,000 edges ({} total updates){}",
        batches,
        batches * 100_000,
        if quick { "  [--quick]" } else { "" }
    );
    println!();
    println!(
        "{:<28} {:>14} {:>12} {:>16}",
        "system", "updates", "seconds", "updates/sec"
    );
    println!("{}", "-".repeat(74));

    let stream = paper_batches(batches, 2020);
    let dim = 1u64 << 32;
    let mut hier_rate = 0.0;
    for &sys in SystemKind::all() {
        // The slowest analogues get a shorter stream so the harness finishes
        // in minutes; rates are still per-update and comparable.
        let sys_stream: Vec<_> = match sys {
            SystemKind::HierGraphBlas | SystemKind::FlatGraphBlas => stream.clone(),
            _ => stream.iter().take(stream.len().min(5)).cloned().collect(),
        };
        let r = measure_system(sys, &sys_stream, dim);
        if sys == SystemKind::HierGraphBlas {
            hier_rate = r.updates_per_second();
        }
        println!(
            "{:<28} {:>14} {:>12.3} {:>16}",
            sys.label(),
            r.updates,
            r.seconds,
            fmt_rate(r.updates_per_second())
        );
    }

    println!();
    println!(
        "paper claim: > 1.0e6 updates/s per instance;  measured hierarchical GraphBLAS: {}  [{}]",
        fmt_rate(hier_rate),
        if hier_rate > 1.0e6 { "PASS" } else { "below claim on this machine" }
    );
}
