//! Experiment E1 — single-instance streaming update rate.
//!
//! Reproduces the paper's claim that "hierarchical hypersparse matrices
//! achieve over 1,000,000 updates per second in a single instance" by
//! streaming the paper's per-instance workload (power-law edges in batches
//! of 100,000) into one instance of every system — all through the
//! `StreamingSink` harness — and reporting the sustained rate.  A second
//! sweep varies the hierarchy depth, the knob the paper tunes.
//!
//! Besides the human-readable table, the run writes
//! `BENCH_single_rate.json` (machine-readable: per-system rates and
//! inserts/sec per hierarchy depth) so successive commits can be compared
//! automatically.  Run with `--quick` for a reduced batch count.

use hyperstream_bench::{bench_meta, fmt_rate, paper_batches, quick_mode, timed_drive, TrialRates};
use hyperstream_cluster::{measure_system, SystemKind};
use hyperstream_graphblas::{merge_kernel_stats, MergeKernelStats};
use hyperstream_hier::{HierConfig, HierMatrix};
use hyperstream_workload::Edge;

const DIM: u64 = 1 << 32;

/// Rate of one hierarchy depth (geometric cuts from the paper's base cut).
struct DepthRate {
    levels: usize,
    cuts: Vec<u64>,
    updates: u64,
    seconds: f64,
    trials: TrialRates,
}

fn measure_depth(levels: usize, batches: &[Vec<Edge>], runs: usize) -> DepthRate {
    let cfg = if levels <= 1 {
        // The flat baseline: a cut so large it never trips.  Reported as
        // depth 1 with no cuts — the sentinel cut is an implementation
        // detail and exceeds f64 precision in JSON consumers.
        HierConfig::effectively_flat()
    } else {
        HierConfig::geometric(levels, 1 << 12, 8).expect("valid geometric schedule")
    };
    let cuts = if levels <= 1 {
        Vec::new()
    } else {
        cfg.cuts().to_vec()
    };
    let mut trials = TrialRates::default();
    let (mut updates, mut best_seconds) = (0u64, f64::INFINITY);
    for _ in 0..runs.max(1) {
        let mut m = HierMatrix::<u64>::new(DIM, DIM, cfg.clone()).expect("valid dims");
        let (u, seconds) = timed_drive(&mut m, batches);
        trials.push(u as f64 / seconds);
        updates = u;
        best_seconds = best_seconds.min(seconds);
    }
    DepthRate {
        levels,
        cuts,
        updates,
        seconds: best_seconds,
        trials,
    }
}

fn json_label(s: &str) -> &str {
    // All labels we emit are static ASCII identifiers; assert instead of
    // implementing a JSON string escaper.
    assert!(
        !s.contains(['"', '\\']) && s.is_ascii(),
        "label needs JSON escaping: {s}"
    );
    s
}

fn write_json(
    path: &str,
    quick: bool,
    systems: &[(SystemKind, u64, f64, TrialRates)],
    depths: &[DepthRate],
    merges: &MergeKernelStats,
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"single_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(&bench_meta().json_fields());
    out.push_str("  \"systems\": [\n");
    for (i, (sys, updates, seconds, trials)) in systems.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"system\": \"{}\", \"label\": \"{}\", \"updates\": {}, \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \"best_of\": {}, {}}}",
            json_label(&format!("{sys:?}")),
            json_label(sys.label()),
            updates,
            seconds,
            *updates as f64 / seconds,
            trials.best_of(),
            trials.json_fields("updates_per_sec"),
        );
        out.push_str(if i + 1 < systems.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"hierarchy_depths\": [\n");
    for (i, d) in depths.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"levels\": {}, \"cuts\": {:?}, \"updates\": {}, \"seconds\": {:.6}, \"inserts_per_sec\": {:.1}, \"best_of\": {}, {}}}",
            d.levels,
            d.cuts,
            d.updates,
            d.seconds,
            d.updates as f64 / d.seconds,
            d.trials.best_of(),
            d.trials.json_fields("inserts_per_sec"),
        );
        out.push_str(if i + 1 < depths.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    // Which merge-kernel strategies the whole run's cascades exercised
    // (element counts): end-to-end evidence that the production ingest
    // path gallops through skewed colliding rows instead of walking them.
    let _ = writeln!(
        out,
        "  \"merge_kernels\": {{\"galloped_elems\": {}, \"bulk_row_elems\": {}, \"branchless_elems\": {}, \"linear_elems\": {}}}",
        merges.galloped_elems, merges.bulk_row_elems, merges.branchless_elems, merges.linear_elems,
    );
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let batches = if quick { 5 } else { 50 };
    println!("=== E1: single-instance update rate ===");
    println!(
        "workload: power-law stream, {} batches x 100,000 edges ({} total updates){}",
        batches,
        batches * 100_000,
        if quick { "  [--quick]" } else { "" }
    );
    println!();
    println!(
        "{:<28} {:>14} {:>12} {:>16}",
        "system", "updates", "seconds", "updates/sec"
    );
    println!("{}", "-".repeat(74));

    let stream = paper_batches(batches, 2020);
    let merges_at_start = merge_kernel_stats();
    let mut hier_rate = 0.0;
    let mut system_rows: Vec<(SystemKind, u64, f64, TrialRates)> = Vec::new();
    for &sys in SystemKind::all() {
        // The slowest analogues get a shorter stream (and a single trial)
        // so the harness finishes in minutes; rates are still per-update
        // and comparable.
        let (sys_stream, runs): (Vec<_>, usize) = match sys {
            SystemKind::HierGraphBlas
            | SystemKind::ShardedHierGraphBlas
            | SystemKind::FlatGraphBlas => (stream.clone(), if quick { 1 } else { 2 }),
            _ => (
                stream.iter().take(stream.len().min(5)).cloned().collect(),
                1,
            ),
        };
        let mut trials = TrialRates::default();
        let mut best = measure_system(sys, &sys_stream, DIM);
        trials.push(best.updates_per_second());
        for _ in 1..runs {
            let r = measure_system(sys, &sys_stream, DIM);
            trials.push(r.updates_per_second());
            if r.seconds < best.seconds {
                best = r;
            }
        }
        let r = best;
        if sys == SystemKind::HierGraphBlas {
            hier_rate = r.updates_per_second();
        }
        println!(
            "{:<28} {:>14} {:>12.3} {:>16}",
            sys.label(),
            r.updates,
            r.seconds,
            fmt_rate(r.updates_per_second())
        );
        system_rows.push((sys, r.updates, r.seconds, trials));
    }

    println!();
    println!(
        "{:<28} {:>14} {:>12} {:>16}",
        "hierarchy depth", "updates", "seconds", "inserts/sec"
    );
    println!("{}", "-".repeat(74));
    let depth_stream: Vec<_> = stream
        .iter()
        .take(stream.len().min(if quick { 3 } else { 20 }))
        .cloned()
        .collect();
    let depths: Vec<DepthRate> = [1usize, 2, 3, 4, 5]
        .iter()
        .map(|&levels| {
            let d = measure_depth(levels, &depth_stream, if quick { 1 } else { 2 });
            let label = if d.cuts.is_empty() {
                format!("{} level (flat, no cuts)", d.levels)
            } else {
                format!("{} levels, cuts {:?}", d.levels, d.cuts)
            };
            println!(
                "{:<28} {:>14} {:>12.3} {:>16}",
                label,
                d.updates,
                d.seconds,
                fmt_rate(d.updates as f64 / d.seconds)
            );
            d
        })
        .collect();

    let end = merge_kernel_stats();
    let merges = MergeKernelStats {
        galloped_elems: end.galloped_elems - merges_at_start.galloped_elems,
        bulk_row_elems: end.bulk_row_elems - merges_at_start.bulk_row_elems,
        branchless_elems: end.branchless_elems - merges_at_start.branchless_elems,
        linear_elems: end.linear_elems - merges_at_start.linear_elems,
    };
    println!();
    println!(
        "merge kernels (elements): galloped {}  bulk-row {}  branchless {}  linear {}",
        merges.galloped_elems, merges.bulk_row_elems, merges.branchless_elems, merges.linear_elems
    );

    let json_path = "BENCH_single_rate.json";
    match write_json(json_path, quick, &system_rows, &depths, &merges) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }

    println!();
    println!(
        "paper claim: > 1.0e6 updates/s per instance;  measured hierarchical GraphBLAS: {}  [{}]",
        fmt_rate(hier_rate),
        if hier_rate > 1.0e6 {
            "PASS"
        } else {
            "below claim on this machine"
        }
    );
}
