//! Experiment E8 — sharded parallel ingest rate versus shard count, on the
//! persistent-worker-pool engine.
//!
//! The paper's Fig. 2 scaling curve was previously *extrapolated* from a
//! single-instance measurement; this harness *measures* it on one node.
//! Three workload modes:
//!
//! * **strong** (default) — one fixed edge stream is split by row
//!   ownership across `1..=max(4, cores)` shards; aggregate rate and
//!   `speedup_vs_1` are recorded.  On a multi-core machine the speedup is
//!   thread parallelism; on a single core it measures whatever working-set
//!   advantage the per-shard hierarchies still have (close to none since
//!   the bulk-copy merge kernel — see the README's benchmark notes).
//! * **weak** (`--weak`) — every shard receives its *own* full power-law
//!   stream (`workload::shard_streams`), mirroring the paper's
//!   per-process workload shape: total work grows with the shard count, so
//!   ideal scaling is a flat per-shard rate (aggregate rate × N).
//! * **zipf** (`--zipf`) — an additional skew section: rows drawn from a
//!   Zipf distribution, recording per-shard update counts to quantify the
//!   row-hash imbalance that bounds the aggregate rate on skewed streams
//!   (the ROADMAP's work-stealing follow-on).
//!
//! The run writes `BENCH_parallel_rate.json` (mode, per-shard-count
//! aggregate rates, speedups vs. 1 shard, optional zipf skew, and run
//! metadata) so successive commits can be compared automatically.  Flags:
//! `--quick` (reduced stream), `--max-shards N` (cap the sweep, e.g. the
//! CI smoke runs 2), `--batches N` (override the stream length), `--weak`,
//! `--zipf`.

use hyperstream_bench::{arg_value, bench_meta, fmt_rate, quick_mode, timed_drive, TrialRates};
use hyperstream_hier::{HierConfig, ShardedConfig, ShardedHierMatrix};
use hyperstream_workload::{
    edges_to_tuples_into, shard_streams, Edge, PowerLawConfig, PowerLawGenerator, StreamConfig,
    StreamPartitioner, Zipf,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: u64 = 1 << 32;
const BATCH_SIZE: usize = 100_000;

/// The sweep workload: the paper's batch structure (100,000-edge sets) over
/// a *wide* power-law graph — more logical vertices and a flatter exponent
/// than the Fig. 2 stream, so most edges are distinct cells.  This is the
/// regime the sharded engine exists for (e.g. enterprise IP-similarity
/// graphs, where almost every observed IP pair is new): a duplicate-heavy
/// stream is absorbed by level 0 and never stresses the upper levels.
fn sweep_batches(batches: usize, seed: u64) -> Vec<Vec<Edge>> {
    let gen = PowerLawGenerator::new(PowerLawConfig {
        vertices: 1 << 26,
        alpha: 1.05,
        seed,
        ..PowerLawConfig::paper()
    });
    StreamPartitioner::new(gen, StreamConfig::scaled_down(batches))
        .batches()
        .collect()
}

/// Cut schedule for the sweep.  Deliberately small relative to the stream
/// (the stream holds many multiples of the top cut in distinct entries), so
/// a single hierarchy is past its sweet spot — the regime sharding exists
/// for.
fn sweep_cuts() -> HierConfig {
    HierConfig::geometric(4, 1 << 9, 4).expect("valid schedule")
}

fn sweep_engine(shards: usize) -> ShardedHierMatrix<u64> {
    ShardedHierMatrix::new(
        DIM,
        DIM,
        sweep_cuts(),
        ShardedConfig {
            // Mid-sized handoff batches: big enough to amortise the channel
            // round trip to the persistent workers, small enough that
            // partitioning overlaps worker application.
            chunk_tuples: 8192,
            ..ShardedConfig::with_shards(shards)
        },
    )
    .expect("valid dims")
}

struct ShardRate {
    shards: usize,
    updates: u64,
    seconds: f64,
    trials: TrialRates,
}

impl ShardRate {
    fn aggregate_rate(&self) -> f64 {
        self.updates as f64 / self.seconds
    }
}

/// Measure one shard count under strong scaling (one shared stream).  Each
/// configuration is driven `runs` times on a fresh engine and the fastest
/// run is reported (standard best-of-N for throughput: the minimum wall
/// time has the least scheduler/page-fault noise, which matters on shared
/// machines).
fn measure_strong(shards: usize, batches: &[Vec<Edge>], runs: usize) -> ShardRate {
    let mut best_seconds = f64::INFINITY;
    let mut updates = 0;
    let mut trials = TrialRates::default();
    for _ in 0..runs.max(1) {
        let mut engine = sweep_engine(shards);
        let (u, seconds) = timed_drive(&mut engine, batches);
        trials.push(u as f64 / seconds);
        updates = u;
        best_seconds = best_seconds.min(seconds);
    }
    ShardRate {
        shards,
        updates,
        seconds: best_seconds,
        trials,
    }
}

/// Measure one shard count under weak scaling: `shards` independent
/// streams of `batches` batches each, all ingested by one engine, so the
/// total work grows with the shard count (the paper's per-process shape).
fn measure_weak(shards: usize, batches: usize, seed: u64, runs: usize) -> ShardRate {
    let streams = shard_streams(shards, batches, BATCH_SIZE, DIM, seed);
    let mut best_seconds = f64::INFINITY;
    let mut updates = 0u64;
    let mut trials = TrialRates::default();
    for _ in 0..runs.max(1) {
        let mut engine = sweep_engine(shards);
        let start = std::time::Instant::now();
        let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
        for b in 0..batches {
            for stream in &streams {
                edges_to_tuples_into(&stream[b], &mut rows, &mut cols, &mut vals);
                engine
                    .update_batch(&rows, &cols, &vals)
                    .expect("in-bounds updates");
            }
        }
        engine.flush().expect("flush completes");
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        updates = (shards * batches * BATCH_SIZE) as u64;
        trials.push(updates as f64 / seconds);
        best_seconds = best_seconds.min(seconds);
    }
    ShardRate {
        shards,
        updates,
        seconds: best_seconds,
        trials,
    }
}

/// The Zipf skew section: rows drawn from a Zipf distribution over a
/// modest rank pool (heavy hitters dominate), scattered across the index
/// space, so the row-hash partitioner's imbalance becomes visible in the
/// per-shard update counts.
struct ZipfSkew {
    shards: usize,
    updates: u64,
    seconds: f64,
    per_shard_updates: Vec<u64>,
}

fn measure_zipf(shards: usize, batches: usize, seed: u64) -> ZipfSkew {
    let zipf = Zipf::new(10_000, 1.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut engine = sweep_engine(shards);
    let start = std::time::Instant::now();
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for b in 0..batches {
        rows.clear();
        cols.clear();
        vals.clear();
        for i in 0..BATCH_SIZE {
            // Scatter the Zipf rank over the hypersparse row space; columns
            // spread uniformly so cells stay mostly distinct.
            let rank = zipf.sample(&mut rng);
            rows.push(rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % DIM);
            cols.push(((b * BATCH_SIZE + i) as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9) % DIM);
            vals.push(1);
        }
        engine
            .update_batch(&rows, &cols, &vals)
            .expect("in-bounds updates");
    }
    engine.flush().expect("flush completes");
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let per_shard_updates: Vec<u64> = (0..shards)
        .map(|s| engine.shard_stats(s).expect("worker pool healthy").updates)
        .collect();
    ZipfSkew {
        shards,
        updates: (batches * BATCH_SIZE) as u64,
        seconds,
        per_shard_updates,
    }
}

fn write_json(
    path: &str,
    quick: bool,
    mode: &str,
    batches: usize,
    cuts: &[u64],
    rates: &[ShardRate],
    zipf: Option<&ZipfSkew>,
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    let meta = bench_meta();
    let base_rate = rates
        .first()
        .map(|r| r.aggregate_rate())
        .unwrap_or(f64::NAN);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"parallel_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(&meta.json_fields());
    let _ = writeln!(out, "  \"batches\": {batches},");
    let _ = writeln!(out, "  \"batch_size\": {BATCH_SIZE},");
    let _ = writeln!(out, "  \"cuts\": {cuts:?},");
    out.push_str("  \"shard_counts\": [\n");
    for (i, r) in rates.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"updates\": {}, \"seconds\": {:.6}, \"aggregate_rate\": {:.1}, \"speedup_vs_1\": {:.3}, \"best_of\": {}, {}}}",
            r.shards,
            r.updates,
            r.seconds,
            r.aggregate_rate(),
            r.aggregate_rate() / base_rate,
            r.trials.best_of(),
            r.trials.json_fields("aggregate_rates"),
        );
        out.push_str(if i + 1 < rates.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if let Some(z) = zipf {
        let mean = z.updates as f64 / z.shards as f64;
        let max = z.per_shard_updates.iter().copied().max().unwrap_or(0) as f64;
        let _ = write!(
            out,
            ",\n  \"zipf_skew\": {{\"shards\": {}, \"updates\": {}, \"seconds\": {:.6}, \"aggregate_rate\": {:.1}, \"per_shard_updates\": {:?}, \"imbalance_max_over_mean\": {:.3}}}",
            z.shards,
            z.updates,
            z.seconds,
            z.updates as f64 / z.seconds,
            z.per_shard_updates,
            max / mean.max(1.0),
        );
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let weak = std::env::args().any(|a| a == "--weak");
    let zipf = std::env::args().any(|a| a == "--zipf");
    let mode = if weak { "weak" } else { "strong" };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_shards = arg_value("--max-shards")
        .map(|v| (v as usize).max(1))
        .unwrap_or_else(|| cores.max(4));
    let batches = arg_value("--batches")
        .map(|v| v as usize)
        .unwrap_or(if quick { 10 } else { 60 });

    println!("=== E8: sharded parallel ingest rate (persistent worker pool) ===");
    println!(
        "mode: {mode} scaling; {} batches x {} edges{}, cuts {:?}{}",
        batches,
        BATCH_SIZE,
        if weak { " per shard" } else { " total" },
        sweep_cuts().cuts(),
        if quick { "  [--quick]" } else { "" }
    );
    println!("machine: {cores} hardware thread(s); sweeping 1..={max_shards} shards");
    println!();
    println!(
        "{:<10} {:>14} {:>12} {:>18} {:>12}",
        "shards", "updates", "seconds", "aggregate rate", "speedup"
    );
    println!("{}", "-".repeat(72));

    let runs = if quick { 1 } else { 2 };
    let stream = if weak {
        Vec::new()
    } else {
        sweep_batches(batches, 2020)
    };
    // Warm the allocator/page cache so the first measured configuration is
    // not penalised relative to later ones.
    if weak {
        let _ = measure_weak(1, batches.min(2), 2020, 1);
    } else {
        let _ = measure_strong(1, &stream[..stream.len().min(2)], 1);
    }
    let mut rates: Vec<ShardRate> = Vec::new();
    for shards in 1..=max_shards {
        let r = if weak {
            measure_weak(shards, batches, 2020, runs)
        } else {
            measure_strong(shards, &stream, runs)
        };
        let speedup = r.aggregate_rate()
            / rates
                .first()
                .map(|b: &ShardRate| b.aggregate_rate())
                .unwrap_or(r.aggregate_rate());
        println!(
            "{:<10} {:>14} {:>12.3} {:>18} {:>11.2}x",
            r.shards,
            r.updates,
            r.seconds,
            fmt_rate(r.aggregate_rate()),
            speedup
        );
        rates.push(r);
    }

    let zipf_skew = if zipf {
        let z = measure_zipf(
            max_shards,
            if quick { batches } else { (batches / 4).max(1) },
            7777,
        );
        let mean = z.updates as f64 / z.shards as f64;
        let max = z.per_shard_updates.iter().copied().max().unwrap_or(0) as f64;
        println!(
            "\nzipf skew @ {} shards: {} updates at {}, per-shard {:?} (imbalance {:.2}x)",
            z.shards,
            z.updates,
            fmt_rate(z.updates as f64 / z.seconds),
            z.per_shard_updates,
            max / mean.max(1.0),
        );
        Some(z)
    } else {
        None
    };

    let json_path = "BENCH_parallel_rate.json";
    match write_json(
        json_path,
        quick,
        mode,
        batches,
        sweep_cuts().cuts(),
        &rates,
        zipf_skew.as_ref(),
    ) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }

    if let (Some(one), Some(four)) = (
        rates.iter().find(|r| r.shards == 1),
        rates.iter().find(|r| r.shards == 4),
    ) {
        let speedup = four.aggregate_rate() / one.aggregate_rate();
        println!("\n4-shard speedup vs 1 shard ({mode}): {speedup:.2}x on {cores} core(s)");
    }
}
