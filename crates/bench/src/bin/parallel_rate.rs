//! Experiment E8 — sharded parallel ingest rate versus shard count.
//!
//! The paper's Fig. 2 scaling curve was previously *extrapolated* from a
//! single-instance measurement; this harness *measures* it: the same fixed
//! edge stream is driven through a `ShardedHierMatrix` at every shard count
//! in `1..=max(4, cores)` and the aggregate insert rate is recorded.  Two
//! real effects produce the speedup:
//!
//! * on multi-core machines, shards ingest in parallel (the paper's
//!   process-level scaling at thread level); and
//! * at any core count, each shard's hierarchy holds ~1/N of the stream, so
//!   cascade merges rewrite ~1/N of the data — the working-set effect the
//!   hierarchy itself exploits, one level up.
//!
//! The run writes `BENCH_parallel_rate.json` (per-shard-count aggregate
//! rates, speedups vs. 1 shard, and run metadata) so successive commits can
//! be compared automatically.  Flags: `--quick` (reduced stream),
//! `--max-shards N` (cap the sweep, e.g. the CI smoke runs 2),
//! `--batches N` (override the stream length).

use hyperstream_bench::{arg_value, bench_meta, fmt_rate, quick_mode, timed_drive};
use hyperstream_hier::{HierConfig, ShardedConfig, ShardedHierMatrix};
use hyperstream_workload::{
    Edge, PowerLawConfig, PowerLawGenerator, StreamConfig, StreamPartitioner,
};

const DIM: u64 = 1 << 32;

/// The sweep workload: the paper's batch structure (100,000-edge sets) over
/// a *wide* power-law graph — more logical vertices and a flatter exponent
/// than the Fig. 2 stream, so most edges are distinct cells.  This is the
/// regime the sharded engine exists for (e.g. enterprise IP-similarity
/// graphs, where almost every observed IP pair is new): a duplicate-heavy
/// stream is absorbed by level 0 and never stresses the upper levels.
fn sweep_batches(batches: usize, seed: u64) -> Vec<Vec<Edge>> {
    let gen = PowerLawGenerator::new(PowerLawConfig {
        vertices: 1 << 26,
        alpha: 1.05,
        seed,
        ..PowerLawConfig::paper()
    });
    StreamPartitioner::new(gen, StreamConfig::scaled_down(batches))
        .batches()
        .collect()
}

/// Cut schedule for the sweep.  Deliberately small relative to the stream
/// (the stream holds many multiples of the top cut in distinct entries), so
/// a single hierarchy is past its sweet spot and the per-shard working-set
/// reduction is visible even on one core — the regime sharding exists for.
fn sweep_cuts() -> HierConfig {
    HierConfig::geometric(4, 1 << 9, 4).expect("valid schedule")
}

struct ShardRate {
    shards: usize,
    updates: u64,
    seconds: f64,
}

impl ShardRate {
    fn aggregate_rate(&self) -> f64 {
        self.updates as f64 / self.seconds
    }
}

/// Measure one shard count.  Each configuration is driven `runs` times on a
/// fresh engine and the fastest run is reported (standard best-of-N for
/// throughput: the minimum wall time has the least scheduler/page-fault
/// noise, which matters on shared machines).
fn measure_shards(shards: usize, batches: &[Vec<Edge>], runs: usize) -> ShardRate {
    let mut best_seconds = f64::INFINITY;
    let mut updates = 0;
    for _ in 0..runs.max(1) {
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            sweep_cuts(),
            ShardedConfig {
                // Fine-grained chunks keep per-shard cascades frequent, so
                // the sweep exercises the cascade path hard at every shard
                // count (the regime the engine is for).
                chunk_tuples: 4096,
                ..ShardedConfig::with_shards(shards)
            },
        )
        .expect("valid dims");
        let (u, seconds) = timed_drive(&mut engine, batches);
        updates = u;
        best_seconds = best_seconds.min(seconds);
    }
    ShardRate {
        shards,
        updates,
        seconds: best_seconds,
    }
}

fn write_json(
    path: &str,
    quick: bool,
    batches: usize,
    cuts: &[u64],
    rates: &[ShardRate],
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    let meta = bench_meta();
    let base_rate = rates
        .first()
        .map(|r| r.aggregate_rate())
        .unwrap_or(f64::NAN);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"parallel_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(&meta.json_fields());
    let _ = writeln!(out, "  \"batches\": {batches},");
    let _ = writeln!(out, "  \"batch_size\": 100000,");
    let _ = writeln!(out, "  \"cuts\": {cuts:?},");
    out.push_str("  \"shard_counts\": [\n");
    for (i, r) in rates.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"updates\": {}, \"seconds\": {:.6}, \"aggregate_rate\": {:.1}, \"speedup_vs_1\": {:.3}}}",
            r.shards,
            r.updates,
            r.seconds,
            r.aggregate_rate(),
            r.aggregate_rate() / base_rate,
        );
        out.push_str(if i + 1 < rates.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_shards = arg_value("--max-shards")
        .map(|v| (v as usize).max(1))
        .unwrap_or_else(|| cores.max(4));
    let batches = arg_value("--batches")
        .map(|v| v as usize)
        .unwrap_or(if quick { 10 } else { 60 });

    println!("=== E8: sharded parallel ingest rate ===");
    println!(
        "workload: power-law stream, {} batches x 100,000 edges ({} total updates), cuts {:?}{}",
        batches,
        batches * 100_000,
        sweep_cuts().cuts(),
        if quick { "  [--quick]" } else { "" }
    );
    println!("machine: {cores} hardware thread(s); sweeping 1..={max_shards} shards");
    println!();
    println!(
        "{:<10} {:>14} {:>12} {:>18} {:>12}",
        "shards", "updates", "seconds", "aggregate rate", "speedup"
    );
    println!("{}", "-".repeat(72));

    let stream = sweep_batches(batches, 2020);
    let runs = if quick { 1 } else { 2 };
    // Warm the allocator/page cache so the first measured configuration is
    // not penalised relative to later ones.
    let _ = measure_shards(1, &stream[..stream.len().min(2)], 1);
    let mut rates: Vec<ShardRate> = Vec::new();
    for shards in 1..=max_shards {
        let r = measure_shards(shards, &stream, runs);
        let speedup = r.aggregate_rate()
            / rates
                .first()
                .map(|b: &ShardRate| b.aggregate_rate())
                .unwrap_or(r.aggregate_rate());
        println!(
            "{:<10} {:>14} {:>12.3} {:>18} {:>11.2}x",
            r.shards,
            r.updates,
            r.seconds,
            fmt_rate(r.aggregate_rate()),
            speedup
        );
        rates.push(r);
    }

    let json_path = "BENCH_parallel_rate.json";
    match write_json(json_path, quick, batches, sweep_cuts().cuts(), &rates) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }

    if let (Some(one), Some(four)) = (
        rates.iter().find(|r| r.shards == 1),
        rates.iter().find(|r| r.shards == 4),
    ) {
        let speedup = four.aggregate_rate() / one.aggregate_rate();
        println!(
            "\n4-shard speedup vs 1 shard: {speedup:.2}x  [{}]",
            if speedup >= 2.5 {
                "PASS (>= 2.5x)"
            } else {
                "below 2.5x on this machine"
            }
        );
    }
}
