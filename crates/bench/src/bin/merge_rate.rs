//! Experiment E11 — how fast is ⊕ when the operands are lopsided?
//!
//! Three sweeps over the skew-aware merge kernels
//! (`crates/graphblas/src/formats/merge.rs`):
//!
//! 1. **Adaptive vs. linear merge rate** — full `Dcsr::merge` over a grid
//!    of per-row size ratios (1:1 … 1:8192) × row-overlap fractions
//!    (0, ½, 1).  The cascade primitive `A_{i+1} ⊕= A_i` is exactly a
//!    skewed colliding-row merge once levels diverge in size, so the
//!    skewed cells of this grid are the production shape.  Strategy
//!    counter deltas ([`merge_kernel_stats`]) prove which kernel ran.
//! 2. **Crossover table** — the isolated single-row kernel with each
//!    strategy *forced* ([`RowMergeStrategy`]), sweeping the size ratio to
//!    locate where galloping overtakes the branchless two-pointer loop.
//!    This is the measurement behind [`GALLOP_RATIO`].
//! 3. **Radix digit-width sweep** — `Coo::sort_dedup_radix` with the digit
//!    width forced over 8/11/12/13/14/16 bits, re-measuring the table that
//!    chose the 13-bit default on the current split-plane layout.
//!
//! Writes `BENCH_merge_rate.json`.  `--quick` runs a reduced grid and
//! *enforces* a regression tripwire: the skewed full-overlap cell must
//! beat the linear kernel by a floor and must show nonzero galloped and
//! bulk-row counters, else the process exits 1 (the CI smoke relies on
//! this).

use hyperstream_bench::{bench_meta, fmt_rate, quick_mode, TrialRates};
use hyperstream_graphblas::formats::merge::{merge_row_into_planes, RowMergeStrategy};
use hyperstream_graphblas::prelude::{Coo, Dcsr, Index, Plus};
use hyperstream_graphblas::{merge_kernel_stats, MergeScratch};
use std::hint::black_box;
use std::time::Instant;

/// Logical matrix dimension for the merge sweep (hypersparse: only a few
/// hundred rows are occupied).
const DIM: Index = 1 << 20;

/// Speedup floor enforced by the `--quick` tripwire on the skewed
/// full-overlap cell.  The measured speedup on this container is far
/// higher (see `BENCH_merge_rate.json`); 1.3 leaves headroom for CI
/// hosts with noisy neighbours while still catching a kernel that
/// silently degraded to linear.
const TRIPWIRE_FLOOR: f64 = 1.3;

/// One cell of the adaptive-vs-linear grid.
struct SweepRow {
    ratio: usize,
    overlap: f64,
    nnz_a: usize,
    nnz_b: usize,
    adaptive: TrialRates,
    linear: TrialRates,
    /// Strategy counter deltas from one adaptive merge of this cell.
    galloped: u64,
    bulk_row: u64,
    branchless: u64,
    linear_elems: u64,
}

/// One row of the forced-strategy crossover table.
struct CrossoverRow {
    ratio: usize,
    n: usize,
    m: usize,
    gallop_eps: f64,
    branchless_eps: f64,
    linear_eps: f64,
}

/// One cell of the radix digit-width sweep.
struct DigitRow {
    nnz: usize,
    digit_bits: usize,
    tuples_per_sec: f64,
}

/// The sweep's large operand: `rows` occupied rows (even ids, so odd ids
/// are free for non-colliding `B` rows), `cols_per_row` columns at stride
/// 4 (so stride-2 offsets interleave without colliding).
fn build_a(rows: usize, cols_per_row: usize) -> Dcsr<u64> {
    let mut coo = Coo::<u64>::with_capacity(DIM, DIM, rows * cols_per_row);
    for i in 0..rows {
        let r = (i * 2) as Index;
        for j in 0..cols_per_row {
            coo.push(r, (j * 4) as Index, (i * cols_per_row + j) as u64);
        }
    }
    Dcsr::from_coo(coo, Plus).expect("valid A operand")
}

/// Deterministic 64-bit mix (Fibonacci hashing + xor-shift) — the bench
/// cannot use an RNG, but the merge pattern must be *irregular*: a
/// regular alternating pattern is perfectly branch-predictable and
/// flatters branchy kernels in a way no power-law stream does.
fn mix(x: u64) -> u64 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// The sweep's small operand: same number of occupied rows as `A`, but
/// only `cols_per_row / ratio` entries per row (floored at 1), hash-spread
/// across `A`'s column range.  A fraction `overlap` of its rows collide
/// with `A`'s rows (the rest take odd row ids); within a colliding row
/// each entry lands *irregularly* either exactly on an `A` column
/// (exercising ⊕) or between two (exercising the skip path), with
/// hash-jittered gaps.
fn build_b(rows: usize, cols_per_row: usize, ratio: usize, overlap: f64) -> Dcsr<u64> {
    let b_cols = (cols_per_row / ratio).max(1);
    let colliding = ((rows as f64) * overlap).round() as usize;
    let mut coo = Coo::<u64>::with_capacity(DIM, DIM, rows * b_cols);
    for i in 0..rows {
        let r = if i < colliding {
            (i * 2) as Index
        } else {
            (i * 2 + 1) as Index
        };
        for k in 0..b_cols {
            let h = mix((i * b_cols + k) as u64 + 1);
            // One entry per stride-`ratio` bucket keeps columns unique and
            // sorted-by-construction while the position inside the bucket
            // and the collide-vs-interleave choice stay irregular.
            let p = k * ratio + h as usize % ratio.max(1);
            let c = (p * 4 + if h & (1 << 40) != 0 { 0 } else { 2 }) as Index;
            coo.push(r, c, 1);
        }
    }
    Dcsr::from_coo(coo, Plus).expect("valid B operand")
}

/// Best-of-`trials` elements/sec for one merge direction.
fn time_merge(a: &Dcsr<u64>, b: &Dcsr<u64>, adaptive: bool, trials: usize) -> TrialRates {
    let elems = (a.nvals() + b.nvals()) as f64;
    let mut rates = TrialRates::default();
    for _ in 0..trials {
        let start = Instant::now();
        let out = if adaptive {
            a.merge(b, Plus)
        } else {
            a.merge_linear(b, Plus)
        }
        .expect("same dims");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        black_box(out.nvals());
        rates.push(elems / secs);
    }
    rates
}

fn run_sweep(quick: bool) -> Vec<SweepRow> {
    let (rows, cols_per_row) = if quick { (64, 1024) } else { (128, 8192) };
    let ratios: &[usize] = if quick {
        &[1, 1024]
    } else {
        &[1, 16, 128, 1024, 8192]
    };
    let overlaps: &[f64] = if quick { &[0.5, 1.0] } else { &[0.0, 0.5, 1.0] };
    let trials = if quick { 2 } else { 3 };

    let a = build_a(rows, cols_per_row);
    println!(
        "{:>6} {:>8} {:>10} {:>8} {:>14} {:>14} {:>8}",
        "ratio", "overlap", "nnz_a", "nnz_b", "adaptive", "linear", "speedup"
    );
    println!("{}", "-".repeat(74));
    let mut out = Vec::new();
    for &ratio in ratios {
        for &overlap in overlaps {
            let b = build_b(rows, cols_per_row, ratio, overlap);
            // One untimed adaptive merge bracketed by stat snapshots:
            // the counters are process-global, so deltas must be taken
            // around a run that is *only* this cell's adaptive merge.
            let before = merge_kernel_stats();
            black_box(a.merge(&b, Plus).expect("same dims").nvals());
            let after = merge_kernel_stats();
            let adaptive = time_merge(&a, &b, true, trials);
            let linear = time_merge(&a, &b, false, trials);
            let speedup = adaptive.best() / linear.best();
            println!(
                "{:>6} {:>8.1} {:>10} {:>8} {:>14} {:>14} {:>7.2}x",
                ratio,
                overlap,
                a.nvals(),
                b.nvals(),
                fmt_rate(adaptive.best()),
                fmt_rate(linear.best()),
                speedup
            );
            out.push(SweepRow {
                ratio,
                overlap,
                nnz_a: a.nvals(),
                nnz_b: b.nvals(),
                adaptive,
                linear,
                galloped: after.galloped_elems - before.galloped_elems,
                bulk_row: after.bulk_row_elems - before.bulk_row_elems,
                branchless: after.branchless_elems - before.branchless_elems,
                linear_elems: after.linear_elems - before.linear_elems,
            });
        }
    }
    out
}

/// Time `reps` single-row merges under one forced strategy.
fn time_forced(
    strategy: RowMergeStrategy,
    ca: &[Index],
    va: &[u64],
    cb: &[Index],
    vb: &[u64],
    reps: usize,
) -> f64 {
    let mut oc: Vec<Index> = Vec::with_capacity(ca.len() + cb.len());
    let mut ov: Vec<u64> = Vec::with_capacity(ca.len() + cb.len());
    let elems = ((ca.len() + cb.len()) * reps) as f64;
    let start = Instant::now();
    for _ in 0..reps {
        oc.clear();
        ov.clear();
        merge_row_into_planes(strategy, ca, va, cb, vb, Plus, &mut oc, &mut ov);
        black_box(oc.len());
    }
    elems / start.elapsed().as_secs_f64().max(1e-9)
}

fn run_crossover(quick: bool) -> Vec<CrossoverRow> {
    let n: usize = if quick { 1 << 14 } else { 1 << 16 };
    let reps = if quick { 20 } else { 200 };
    let ca: Vec<Index> = (0..n).map(|i| (i * 2) as Index).collect();
    let va: Vec<u64> = vec![1; n];
    println!(
        "{:>6} {:>8} {:>6} {:>14} {:>14} {:>14}",
        "ratio", "n", "m", "gallop", "branchless", "linear"
    );
    println!("{}", "-".repeat(68));
    let mut out = Vec::new();
    for &ratio in &[2usize, 4, 8, 16, 32, 128] {
        let m = n / ratio;
        // Interleaved, collision-free small side: worst case for the skip
        // path (every gallop lands between two `A` columns), hash-jittered
        // inside each stride-`ratio` bucket so no kernel gets a perfectly
        // predictable pattern.
        let cb: Vec<Index> = (0..m)
            .map(|j| (j * 2 * ratio + 2 * (mix(j as u64 + 1) as usize % ratio) + 1) as Index)
            .collect();
        let vb: Vec<u64> = vec![1; m];
        let gallop_eps = time_forced(RowMergeStrategy::Gallop, &ca, &va, &cb, &vb, reps);
        let branchless_eps = time_forced(RowMergeStrategy::Branchless, &ca, &va, &cb, &vb, reps);
        let linear_eps = time_forced(RowMergeStrategy::Linear, &ca, &va, &cb, &vb, reps);
        println!(
            "{:>6} {:>8} {:>6} {:>14} {:>14} {:>14}",
            ratio,
            n,
            m,
            fmt_rate(gallop_eps),
            fmt_rate(branchless_eps),
            fmt_rate(linear_eps)
        );
        out.push(CrossoverRow {
            ratio,
            n,
            m,
            gallop_eps,
            branchless_eps,
            linear_eps,
        });
    }
    out
}

fn run_digit_sweep(quick: bool) -> Vec<DigitRow> {
    let sizes: &[usize] = if quick {
        &[1 << 14]
    } else {
        &[1 << 14, 1 << 17, 1 << 20]
    };
    let trials = if quick { 1 } else { 3 };
    println!("{:>10} {:>6} {:>14}", "nnz", "bits", "tuples/sec");
    println!("{}", "-".repeat(34));
    let mut out = Vec::new();
    for &nnz in sizes {
        // Deterministic pseudo-random tuples (Fibonacci hashing): the
        // shuffled, duplicate-bearing shape the settle path actually sees.
        let mut base = Coo::<u64>::with_capacity(DIM, DIM, nnz);
        for i in 0..nnz as u64 {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            base.push((h >> 44) & (DIM - 1), (h >> 20) & (DIM - 1), 1);
        }
        for &bits in &[8usize, 11, 12, 13, 14, 16] {
            let mut best = 0.0f64;
            for _ in 0..trials {
                let mut coo = base.clone();
                let mut scratch = MergeScratch::<u64>::default();
                let start = Instant::now();
                coo.sort_dedup_radix_forced(Plus, &mut scratch, bits);
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                black_box(coo.len());
                best = best.max(nnz as f64 / secs);
            }
            println!("{:>10} {:>6} {:>14}", nnz, bits, fmt_rate(best));
            out.push(DigitRow {
                nnz,
                digit_bits: bits,
                tuples_per_sec: best,
            });
        }
        let winner = out
            .iter()
            .filter(|r| r.nnz == nnz)
            .max_by(|a, b| a.tuples_per_sec.total_cmp(&b.tuples_per_sec))
            .expect("nonempty sweep");
        println!("  -> winner at nnz={nnz}: {} bits", winner.digit_bits);
    }
    out
}

fn write_json(
    path: &str,
    quick: bool,
    sweep: &[SweepRow],
    crossover: &[CrossoverRow],
    digits: &[DigitRow],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"merge_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    let _ = writeln!(out, "  \"gallop_ratio_constant\": 8,");
    out.push_str(&bench_meta().json_fields());
    out.push_str("  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"ratio\": {}, \"overlap\": {:.1}, \"nnz_a\": {}, \"nnz_b\": {}, \"adaptive_elems_per_sec\": {:.1}, \"linear_elems_per_sec\": {:.1}, \"speedup\": {:.3}, \"galloped\": {}, \"bulk_row\": {}, \"branchless\": {}, \"linear_elems\": {}, \"best_of\": {}, {}}}",
            r.ratio,
            r.overlap,
            r.nnz_a,
            r.nnz_b,
            r.adaptive.best(),
            r.linear.best(),
            r.adaptive.best() / r.linear.best(),
            r.galloped,
            r.bulk_row,
            r.branchless,
            r.linear_elems,
            r.adaptive.best_of(),
            r.adaptive.json_fields("adaptive_elems_per_sec"),
        );
        out.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"crossover\": [\n");
    for (i, r) in crossover.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"ratio\": {}, \"n\": {}, \"m\": {}, \"gallop_elems_per_sec\": {:.1}, \"branchless_elems_per_sec\": {:.1}, \"linear_elems_per_sec\": {:.1}}}",
            r.ratio, r.n, r.m, r.gallop_eps, r.branchless_eps, r.linear_eps,
        );
        out.push_str(if i + 1 < crossover.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"digit_sweep\": [\n");
    for (i, r) in digits.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"nnz\": {}, \"digit_bits\": {}, \"tuples_per_sec\": {:.1}}}",
            r.nnz, r.digit_bits, r.tuples_per_sec,
        );
        out.push_str(if i + 1 < digits.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    println!("=== E11: skew-aware merge kernel rates ===");
    println!(
        "adaptive vs linear over ratio x overlap grid{}",
        if quick { "  [--quick]" } else { "" }
    );
    println!();

    let sweep = run_sweep(quick);
    println!();
    println!("crossover (forced single-row strategies):");
    let crossover = run_crossover(quick);
    println!();
    println!("radix digit-width sweep:");
    let digits = run_digit_sweep(quick);

    write_json("BENCH_merge_rate.json", quick, &sweep, &crossover, &digits)
        .expect("write BENCH_merge_rate.json");
    println!();
    println!("wrote BENCH_merge_rate.json");

    // Regression tripwire: the skewed full-overlap cell is the shape the
    // adaptive dispatch exists for.  If it no longer gallops (zero
    // counters) or no longer beats linear by the floor, fail the run so
    // CI goes red instead of silently shipping a degraded kernel.
    let skewed: Vec<&SweepRow> = sweep
        .iter()
        .filter(|r| r.ratio >= 1024 && r.overlap >= 1.0)
        .collect();
    assert!(
        !skewed.is_empty(),
        "sweep grid must include a skewed full-overlap cell"
    );
    let mut failed = false;
    for r in &skewed {
        let speedup = r.adaptive.best() / r.linear.best();
        if quick && speedup < TRIPWIRE_FLOOR {
            eprintln!(
                "TRIPWIRE: ratio {} overlap {:.1} speedup {:.2}x < floor {:.1}x",
                r.ratio, r.overlap, speedup, TRIPWIRE_FLOOR
            );
            failed = true;
        }
        if r.galloped == 0 {
            eprintln!(
                "TRIPWIRE: ratio {} overlap {:.1} galloped=0 (skewed merge must gallop)",
                r.ratio, r.overlap
            );
            failed = true;
        }
    }
    // Bulk row copies only occur where the operands have non-colliding
    // rows, so require them across the whole sweep (the partial-overlap
    // cells), not per skewed cell.
    if sweep.iter().map(|r| r.bulk_row).sum::<u64>() == 0 {
        eprintln!("TRIPWIRE: no bulk row copies anywhere in the sweep");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
