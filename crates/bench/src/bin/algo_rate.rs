//! Experiment E12 — algorithm throughput through the reader-native
//! semiring kernels: pagerank / BFS / triangle counting, pure and under
//! sustained ingest, for every cursor-capable system.
//!
//! The paper's workflow computes "various network statistics" on each
//! traffic matrix while updates keep arriving.  This harness measures that
//! end to end:
//!
//! * **kernel points** — `vxm`/`mxm` through the sparse-accumulator (SPA)
//!   kernels against the retained `*_btree` fallbacks, on the same flat
//!   matrix, recording the per-strategy accumulator counters
//!   (`spa_kernel_stats`) alongside every timing;
//! * **pure algorithm points** — reader-native `pagerank`, `bfs_levels`
//!   and `triangle_count` driven directly off the DCSR level slices of the
//!   flat matrix, the hierarchical matrix, the sharded engine (pattern
//!   pushes dispatched to the owning shards) and a settled snapshot;
//! * **under-ingest points** — the hierarchical and sharded systems
//!   re-run pagerank (and triangle counting on a capped prefix) after
//!   every 100,000-edge batch of a power-law stream, reporting the
//!   sustained insert rate *with* the analysis stalls included.
//!
//! Triangle counting and `mxm` cost grows with the square of the hub
//! degree, so those points run on a recorded *capped* prefix of the stream
//! (`tri_batches` / `mxm_edges` in the artifact — never a silent cap).
//! The run writes `BENCH_algo_rate.json` with best-of-N rates, per-trial
//! spreads and SPA strategy counters.  Flags: `--quick` (reduced stream +
//! the SPA-speedup and reader-vs-tuples tripwires CI relies on),
//! `--batches N`.

use hyperstream_bench::{arg_value, bench_meta, fmt_rate, quick_mode, TrialRates};
use hyperstream_graphblas::algo::{bfs_levels, pagerank, pagerank_tuples, triangle_count};
use hyperstream_graphblas::ops::mxm::{mxm, mxm_btree};
use hyperstream_graphblas::ops::mxv::{vxm, vxm_btree};
use hyperstream_graphblas::ops::semiring::PlusTimes;
use hyperstream_graphblas::{
    spa_kernel_stats, Matrix, MatrixSnapshot, SpaKernelStats, SparseVector,
};
use hyperstream_hier::{HierConfig, HierMatrix, ShardedConfig, ShardedHierMatrix};
use hyperstream_workload::{edges_to_tuples_into, Edge};

const DIM: u64 = 1 << 32;
const BATCH_SIZE: usize = 100_000;
const SHARDS: usize = 4;
const DAMPING: f64 = 0.85;
const PURE_ITERS: usize = 20;
const INGEST_ITERS: usize = 10;
const TOL: f64 = 1e-12;
const FRONTIER_CAP: usize = 65_536;
const VXM_REPS: usize = 8;

fn json_label(s: &str) -> &str {
    assert!(
        !s.contains(['"', '\\']) && s.is_ascii(),
        "label needs JSON escaping: {s}"
    );
    s
}

/// SPA strategy counters accumulated during one measurement, as JSON
/// object fields (no surrounding braces or trailing comma).
fn spa_json(s: &SpaKernelStats) -> String {
    format!(
        "\"spa_dense_rows\": {}, \"spa_scatter_rows\": {}, \"spa_dense_flops\": {}, \"spa_scatter_flops\": {}",
        s.dense_rows, s.scatter_rows, s.dense_flops, s.scatter_flops
    )
}

fn spa_delta(before: SpaKernelStats, after: SpaKernelStats) -> SpaKernelStats {
    SpaKernelStats {
        dense_rows: after.dense_rows - before.dense_rows,
        dense_flops: after.dense_flops - before.dense_flops,
        scatter_rows: after.scatter_rows - before.scatter_rows,
        scatter_flops: after.scatter_flops - before.scatter_flops,
    }
}

/// One best-of-N measurement of a repeated operation: best per-op seconds,
/// every trial's ops/sec, and the SPA counters the best trial accumulated.
struct Point {
    seconds: f64,
    trials: TrialRates,
    spa: SpaKernelStats,
    /// Scalar summary of the result (nvals, triangle count, ...) so the
    /// artifact attests the measured work produced a real answer.
    out: u64,
}

/// Measure `op` best-of-`runs`, `reps` calls per trial; `op` returns a
/// scalar summary of its result.
fn measure<F: FnMut() -> u64>(runs: usize, reps: usize, mut op: F) -> Point {
    let mut trials = TrialRates::default();
    let mut best = f64::INFINITY;
    let mut spa = SpaKernelStats::default();
    let mut out = 0u64;
    for _ in 0..runs.max(1) {
        let before = spa_kernel_stats();
        let start = std::time::Instant::now();
        for _ in 0..reps.max(1) {
            out = std::hint::black_box(op());
        }
        let secs = start.elapsed().as_secs_f64().max(1e-12) / reps.max(1) as f64;
        let delta = spa_delta(before, spa_kernel_stats());
        trials.push(1.0 / secs);
        if secs < best {
            best = secs;
            spa = delta;
        }
    }
    Point {
        seconds: best,
        trials,
        spa,
        out,
    }
}

impl Point {
    fn json(&self, head: &str) -> String {
        format!(
            "{{{head}, \"seconds\": {:.6}, \"ops_per_sec\": {:.3}, \"out\": {}, \"best_of\": {}, {}, {}}}",
            self.seconds,
            1.0 / self.seconds.max(1e-12),
            self.out,
            self.trials.best_of(),
            self.trials.json_fields("ops_per_sec"),
            spa_json(&self.spa),
        )
    }
}

/// One under-ingest measurement: a full stream replay with an algorithm
/// re-run after every batch.
struct IngestPoint {
    algo: &'static str,
    inserts: u64,
    algo_runs: u64,
    total_seconds: f64,
    algo_seconds: f64,
    spa: SpaKernelStats,
    out: u64,
}

impl IngestPoint {
    /// Sustained insert rate with analysis stalls included.
    fn insert_rate(&self) -> f64 {
        self.inserts as f64 / self.total_seconds.max(1e-12)
    }

    fn algo_rate(&self) -> f64 {
        self.algo_runs as f64 / self.algo_seconds.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"algo\": \"{}\", \"inserts\": {}, \"algo_runs\": {}, \"total_seconds\": {:.6}, \"algo_seconds\": {:.6}, \"insert_rate\": {:.1}, \"algo_runs_per_sec\": {:.3}, \"out\": {}, {}}}",
            json_label(self.algo),
            self.inserts,
            self.algo_runs,
            self.total_seconds,
            self.algo_seconds,
            self.insert_rate(),
            self.algo_rate(),
            self.out,
            spa_json(&self.spa),
        )
    }
}

/// The cursor-capable systems under test, with their different call shapes
/// folded behind one interface.
enum System {
    Flat(Matrix<u64>),
    Hier(HierMatrix<u64>),
    Sharded(ShardedHierMatrix<u64>),
    Snapshot(MatrixSnapshot<u64>),
}

impl System {
    fn label(&self) -> &'static str {
        match self {
            System::Flat(_) => "flat-graphblas",
            System::Hier(_) => "hier-graphblas",
            System::Sharded(_) => "sharded-hier-graphblas",
            System::Snapshot(_) => "hier-snapshot",
        }
    }

    fn ingest(&mut self, rows: &[u64], cols: &[u64], vals: &[u64]) {
        match self {
            System::Flat(m) => {
                for i in 0..rows.len() {
                    m.accum_element(rows[i], cols[i], vals[i])
                        .expect("in-bounds");
                }
                m.wait();
            }
            System::Hier(m) => m.update_batch(rows, cols, vals).expect("in-bounds"),
            System::Sharded(m) => m.update_batch(rows, cols, vals).expect("healthy engine"),
            System::Snapshot(_) => panic!("snapshots are immutable"),
        }
    }

    fn pagerank(&mut self, iters: usize) -> SparseVector<f64> {
        match self {
            System::Flat(m) => pagerank(m, DAMPING, iters, TOL),
            System::Hier(m) => pagerank(m, DAMPING, iters, TOL),
            System::Sharded(m) => m.pagerank(DAMPING, iters, TOL).expect("healthy engine"),
            System::Snapshot(s) => pagerank(s, DAMPING, iters, TOL),
        }
    }

    fn bfs(&mut self, source: u64) -> SparseVector<u64> {
        match self {
            System::Flat(m) => bfs_levels(m, source),
            System::Hier(m) => bfs_levels(m, source),
            System::Sharded(m) => m.bfs_levels(source).expect("healthy engine"),
            System::Snapshot(s) => bfs_levels(s, source),
        }
    }

    fn triangles(&mut self) -> u64 {
        match self {
            System::Flat(m) => triangle_count(m),
            System::Hier(m) => triangle_count(m),
            System::Sharded(m) => triangle_count(m),
            System::Snapshot(s) => triangle_count(s),
        }
    }
}

/// The four systems in report order, each freshly ingesting `stream`.
/// The snapshot system is a settled capture of an identically fed
/// hierarchical matrix.
fn build_systems(stream: &[Vec<Edge>]) -> Vec<System> {
    let mut out = Vec::new();
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for kind in 0..4usize {
        let mut sys = match kind {
            0 => System::Flat(Matrix::new(DIM, DIM)),
            1 | 3 => System::Hier(
                HierMatrix::new(DIM, DIM, HierConfig::paper_default()).expect("valid dims"),
            ),
            _ => System::Sharded(
                ShardedHierMatrix::new(
                    DIM,
                    DIM,
                    HierConfig::paper_default(),
                    ShardedConfig::with_shards(SHARDS),
                )
                .expect("valid dims"),
            ),
        };
        for batch in stream {
            edges_to_tuples_into(batch, &mut rows, &mut cols, &mut vals);
            sys.ingest(&rows, &cols, &vals);
        }
        if kind == 3 {
            let System::Hier(mut h) = sys else {
                unreachable!()
            };
            sys = System::Snapshot(h.snapshot());
        }
        out.push(sys);
    }
    out
}

/// Replay `stream` into a fresh system, re-running `algo` after every
/// batch; reports the sustained insert rate with the analysis stalls
/// included.
fn measure_under_ingest(
    mut sys: System,
    stream: &[Vec<Edge>],
    algo: &'static str,
    mut run: impl FnMut(&mut System) -> u64,
) -> IngestPoint {
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    let before = spa_kernel_stats();
    let mut algo_seconds = 0.0;
    let mut out = 0u64;
    let start = std::time::Instant::now();
    for batch in stream {
        edges_to_tuples_into(batch, &mut rows, &mut cols, &mut vals);
        sys.ingest(&rows, &cols, &vals);
        let a = std::time::Instant::now();
        out = std::hint::black_box(run(&mut sys));
        algo_seconds += a.elapsed().as_secs_f64();
    }
    IngestPoint {
        algo,
        inserts: stream.iter().map(|b| b.len() as u64).sum(),
        algo_runs: stream.len() as u64,
        total_seconds: start.elapsed().as_secs_f64().max(1e-12),
        algo_seconds,
        spa: spa_delta(before, spa_kernel_stats()),
        out,
    }
}

/// A flat matrix holding the whole stream (settled).
fn build_flat(stream: &[Vec<Edge>]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for batch in stream {
        for e in batch {
            m.accum_element(e.src, e.dst, e.weight).expect("in-bounds");
        }
    }
    m.wait();
    m
}

/// The most frequent source vertex of the first batch — the power-law hub,
/// the interesting BFS root.
fn hub_source(stream: &[Vec<Edge>]) -> u64 {
    let mut counts = std::collections::HashMap::new();
    for e in &stream[0] {
        *counts.entry(e.src).or_insert(0u64) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(src, n)| (n, src))
        .map(|(src, _)| src)
        .expect("non-empty batch")
}

/// A frontier of up to [`FRONTIER_CAP`] distinct first-batch sources,
/// weight 1 — the vxm operand (ascending sets append in O(1)).
fn frontier_vector(stream: &[Vec<Edge>]) -> SparseVector<u64> {
    let mut srcs: Vec<u64> = stream[0].iter().map(|e| e.src).collect();
    srcs.sort_unstable();
    srcs.dedup();
    srcs.truncate(FRONTIER_CAP);
    let mut u = SparseVector::<u64>::new(DIM);
    for s in srcs {
        u.set(s, 1).expect("in range");
    }
    u
}

struct SystemResult {
    label: &'static str,
    pure: Vec<(String, Point)>,
    under_ingest: Vec<IngestPoint>,
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    batches: usize,
    tri_batches: usize,
    mxm_edges: usize,
    kernels: &[(String, Point)],
    speedups: &[(&str, f64)],
    systems: &[SystemResult],
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"algo_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(&bench_meta().json_fields());
    let _ = writeln!(out, "  \"batch_size\": {BATCH_SIZE},");
    let _ = writeln!(out, "  \"batches\": {batches},");
    let _ = writeln!(out, "  \"tri_batches\": {tri_batches},");
    let _ = writeln!(out, "  \"mxm_edges\": {mxm_edges},");
    let _ = writeln!(out, "  \"pagerank_iters_pure\": {PURE_ITERS},");
    let _ = writeln!(out, "  \"pagerank_iters_ingest\": {INGEST_ITERS},");
    out.push_str("  \"kernels\": [\n");
    for (i, (head, p)) in kernels.iter().enumerate() {
        let _ = write!(out, "    {}", p.json(head));
        out.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    for (name, x) in speedups {
        let _ = writeln!(out, "  \"{}\": {x:.3},", json_label(name));
    }
    out.push_str("  \"systems\": [\n");
    for (i, sys) in systems.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"system\": \"{}\", \"pure\": [",
            json_label(sys.label)
        );
        for (j, (head, p)) in sys.pure.iter().enumerate() {
            let _ = write!(out, "      {}", p.json(head));
            out.push_str(if j + 1 < sys.pure.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ], \"under_ingest\": [\n");
        for (j, p) in sys.under_ingest.iter().enumerate() {
            let _ = write!(out, "      {}", p.json());
            out.push_str(if j + 1 < sys.under_ingest.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < systems.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn print_point(sys: &str, what: &str, p: &Point) {
    let total = p.spa.total_rows().max(1);
    println!(
        "{:<24} {:>18} {:>12.6} {:>12} {:>10} {:>9.1}% {:>8.1}%",
        sys,
        what,
        p.seconds,
        fmt_rate(1.0 / p.seconds.max(1e-12)),
        p.out,
        100.0 * p.trials.spread(),
        100.0 * p.spa.dense_rows as f64 / total as f64,
    );
}

fn main() {
    let quick = quick_mode();
    let batches = arg_value("--batches")
        .map(|v| v as usize)
        .unwrap_or(if quick { 2 } else { 10 });
    // Triangle counting and mxm cost grows with the square of the hub
    // degree; they run on a recorded prefix of the stream.
    let tri_batches = batches.min(if quick { 1 } else { 2 });
    let mxm_edges = if quick { 20_000 } else { 50_000 };
    let runs = if quick { 1 } else { 2 };

    println!("=== E10: algorithm rate (reader-native semiring kernels) ===");
    println!(
        "workload: power-law stream, {} batches x {} edges (triangles/mxm capped to {} batches / {} edges){}",
        batches,
        BATCH_SIZE,
        tri_batches,
        mxm_edges,
        if quick { "  [--quick]" } else { "" }
    );
    println!();
    println!(
        "{:<24} {:>18} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "system", "measurement", "seconds", "ops/sec", "out", "spread", "dense"
    );
    println!("{}", "-".repeat(102));

    let stream = hyperstream_bench::paper_batches(batches, 2020);
    let tri_stream = &stream[..tri_batches];
    let source = hub_source(&stream);

    // --- Kernel points: SPA kernels vs the retained BTreeMap fallbacks ---
    let flat = build_flat(&stream);
    let frontier = frontier_vector(&stream);
    let vxm_spa = measure(runs, VXM_REPS, || {
        vxm(&frontier, &flat, PlusTimes).nvals() as u64
    });
    let vxm_bt = measure(runs, VXM_REPS, || {
        vxm_btree(&frontier, &flat, PlusTimes).nvals() as u64
    });
    print_point("kernel", "vxm-spa", &vxm_spa);
    print_point("kernel", "vxm-btree", &vxm_bt);

    let mxm_input = build_flat(&[stream[0][..mxm_edges.min(stream[0].len())].to_vec()]);
    let mxm_spa = measure(runs, 1, || {
        mxm(&mxm_input, &mxm_input, PlusTimes).nvals() as u64
    });
    let mxm_bt = measure(runs, 1, || {
        mxm_btree(&mxm_input, &mxm_input, PlusTimes).nvals() as u64
    });
    print_point("kernel", "mxm-spa", &mxm_spa);
    print_point("kernel", "mxm-btree", &mxm_bt);

    let vxm_speedup = vxm_bt.seconds / vxm_spa.seconds.max(1e-12);
    let mxm_speedup = mxm_bt.seconds / mxm_spa.seconds.max(1e-12);
    let kernels = vec![
        (
            "\"kernel\": \"vxm\", \"variant\": \"spa\"".to_string(),
            vxm_spa,
        ),
        (
            "\"kernel\": \"vxm\", \"variant\": \"btree\"".to_string(),
            vxm_bt,
        ),
        (
            "\"kernel\": \"mxm\", \"variant\": \"spa\"".to_string(),
            mxm_spa,
        ),
        (
            "\"kernel\": \"mxm\", \"variant\": \"btree\"".to_string(),
            mxm_bt,
        ),
    ];

    // --- Pure algorithm points over every cursor-capable system ---
    let mut results: Vec<SystemResult> = Vec::new();
    let mut pagerank_tuples_seconds = f64::INFINITY;
    let mut pagerank_reader_seconds = f64::INFINITY;
    for mut sys in build_systems(&stream) {
        let label = sys.label();
        let mut pure = Vec::new();

        let pr = measure(runs, 1, || sys.pagerank(PURE_ITERS).nvals() as u64);
        print_point(label, "pagerank", &pr);
        if matches!(sys, System::Hier(_)) {
            pagerank_reader_seconds = pr.seconds;
        }
        pure.push(("\"algo\": \"pagerank\"".to_string(), pr));

        let bfs = measure(runs, 1, || sys.bfs(source).nvals() as u64);
        print_point(label, "bfs", &bfs);
        pure.push(("\"algo\": \"bfs\"".to_string(), bfs));

        // The tuple-materialising fallback on the hierarchical system: the
        // retained baseline the reader-native path must keep beating.
        if let System::Hier(h) = &mut sys {
            let pt = measure(1, 1, || {
                pagerank_tuples(h, DAMPING, PURE_ITERS, TOL).nvals() as u64
            });
            print_point(label, "pagerank-tuples", &pt);
            pagerank_tuples_seconds = pt.seconds;
            pure.push(("\"algo\": \"pagerank_tuples\"".to_string(), pt));
        }

        results.push(SystemResult {
            label,
            pure,
            under_ingest: Vec::new(),
        });
    }

    // Triangles run on fresh instances fed the capped prefix.
    for mut sys in build_systems(tri_stream) {
        let label = sys.label();
        let tri = measure(runs, 1, || sys.triangles());
        print_point(label, "triangles", &tri);
        let slot = results
            .iter_mut()
            .find(|r| r.label == label)
            .expect("same system order");
        slot.pure.push(("\"algo\": \"triangles\"".to_string(), tri));
    }

    // --- Under-ingest: hier and sharded re-run analysis after each batch ---
    for sharded in [false, true] {
        let mk = || -> System {
            if sharded {
                System::Sharded(
                    ShardedHierMatrix::new(
                        DIM,
                        DIM,
                        HierConfig::paper_default(),
                        ShardedConfig::with_shards(SHARDS),
                    )
                    .expect("valid dims"),
                )
            } else {
                System::Hier(
                    HierMatrix::new(DIM, DIM, HierConfig::paper_default()).expect("valid dims"),
                )
            }
        };
        let label = mk().label();
        let pr = measure_under_ingest(mk(), &stream, "pagerank", |s| {
            s.pagerank(INGEST_ITERS).nvals() as u64
        });
        let tri = measure_under_ingest(mk(), tri_stream, "triangles", |s| s.triangles());
        for p in [&pr, &tri] {
            println!(
                "{:<24} {:>18} {:>12.6} {:>12} {:>10} {:>9} {:>8}",
                label,
                format!("{}+ingest", p.algo),
                p.algo_seconds / p.algo_runs.max(1) as f64,
                fmt_rate(p.insert_rate()),
                p.out,
                format!("{} runs", p.algo_runs),
                "-",
            );
        }
        let slot = results
            .iter_mut()
            .find(|r| r.label == label)
            .expect("same system order");
        slot.under_ingest = vec![pr, tri];
    }

    let speedups = [
        ("vxm_spa_over_btree", vxm_speedup),
        ("mxm_spa_over_btree", mxm_speedup),
        (
            "pagerank_reader_over_tuples",
            pagerank_tuples_seconds / pagerank_reader_seconds.max(1e-12),
        ),
    ];
    println!();
    println!(
        "SPA kernel speedup over btree fallback: vxm {vxm_speedup:.1}x, mxm {mxm_speedup:.1}x"
    );
    println!(
        "reader-native pagerank over tuple-rebuild fallback (hier): {:.1}x",
        speedups[2].1
    );

    let json_path = "BENCH_algo_rate.json";
    match write_json(
        json_path,
        quick,
        batches,
        tri_batches,
        mxm_edges,
        &kernels,
        &speedups,
        &results,
    ) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("failed to write {json_path}: {e}"),
    }

    // CI tripwires (quick mode only; release builds only — under
    // debug_assertions pagerank re-derives its degree vector through a
    // full sweep and the SPA kernels run their own self-checks, which is
    // exactly the overhead the thresholds exist to catch).
    if quick && !cfg!(debug_assertions) {
        // The mxm (Gustavson) point is where the accumulator dominates;
        // the single-row vxm point has a cache-resident btree baseline at
        // quick scale, so it only carries a no-regression floor.
        if mxm_speedup < 2.0 || vxm_speedup < 1.0 {
            eprintln!(
                "SPA tripwire FAILED: SPA kernels only mxm {mxm_speedup:.2}x / vxm \
                 {vxm_speedup:.2}x the btree fallbacks (need mxm >= 2x, vxm >= 1x) — \
                 the accumulator has regressed"
            );
            std::process::exit(1);
        }
        println!(
            "SPA tripwire: mxm {mxm_speedup:.1}x, vxm {vxm_speedup:.1}x btree — accumulator healthy"
        );
        if pagerank_reader_seconds >= pagerank_tuples_seconds {
            eprintln!(
                "reader tripwire FAILED: reader-native pagerank ({pagerank_reader_seconds:.3}s) \
                 no longer beats the read_tuples rebuild ({pagerank_tuples_seconds:.3}s)"
            );
            std::process::exit(1);
        }
        println!(
            "reader tripwire: pagerank {pagerank_reader_seconds:.3}s vs tuples rebuild \
             {pagerank_tuples_seconds:.3}s — cursor path healthy"
        );
    }
}
