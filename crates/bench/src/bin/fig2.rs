//! Experiments E2/E3 — Figure 2: update rate as a function of the number of
//! servers for hierarchical GraphBLAS, hierarchical D4M, and the database
//! systems of the original figure.
//!
//! The hierarchical GraphBLAS curve is measured locally (single instance +
//! multi-instance weak scaling) and extrapolated to the 1,100-node MIT
//! SuperCloud topology; database analogues are measured locally at one
//! server; the original published results are replayed as reference lines.
//! Every row is labelled `measured` or `modelled`.
//!
//! Run with `--quick` for a reduced measurement, `--csv` for CSV output.

use hyperstream_bench::{fmt_rate, quick_mode};
use hyperstream_cluster::fig2::headline_comparison;
use hyperstream_cluster::{build_fig2, render_csv, render_table, Fig2Options};

fn main() {
    let opts = if quick_mode() {
        Fig2Options::quick()
    } else {
        Fig2Options::default()
    };
    let csv = std::env::args().any(|a| a == "--csv");

    eprintln!(
        "building Fig. 2 data set (updates/instance = {}, local instances up to {}) ...",
        opts.updates_per_instance, opts.max_local_instances
    );
    let series = build_fig2(&opts);

    if csv {
        print!("{}", render_csv(&series));
    } else {
        println!("=== E2/E3: update rate vs number of servers (Fig. 2) ===");
        println!();
        print!("{}", render_table(&series));
        println!();
        let (ours, best_published) = headline_comparison(&series);
        println!(
            "extrapolated hierarchical GraphBLAS at 1,100 servers: {} updates/s",
            fmt_rate(ours)
        );
        println!(
            "best previously published (Hierarchical D4M, 1,100 servers): {} updates/s",
            fmt_rate(best_published)
        );
        println!(
            "paper reports 7.5e10; reproduction {} the prior published results by {:.1}x",
            if ours > best_published {
                "exceeds"
            } else {
                "does NOT exceed"
            },
            ours / best_published
        );
    }
}
