//! Experiment E9 — mixed ingest + query rates through the `MatrixReader`
//! layer: the repo's first measured read/mixed workload.
//!
//! The paper's point in sustaining extreme insert rates is to *analyse*
//! traffic while it arrives.  This harness drives every system through the
//! combined `StreamingSystem` interface: a sustained power-law ingest
//! stream with `Q` queries interleaved after every 100,000-edge batch,
//! rotating through row extract / row degree / point get / top-k — the
//! dynamic-network-analytics pattern (per-source fan-out, heavy-talker
//! scans) running against live data, no materialised snapshots.
//!
//! Swept read:write mixes: `Q = 0` (pure ingest baseline) plus at least
//! two non-zero mixes.  The run writes `BENCH_query_rate.json`
//! (per-system, per-mix insert and query rates plus run metadata) next to
//! the other benchmark artifacts.  Flags: `--quick` (reduced stream),
//! `--batches N`.

use hyperstream_bench::{arg_value, bench_meta, fmt_rate, quick_mode};
use hyperstream_cluster::{measure_mixed, MixedRate, SystemKind};

const DIM: u64 = 1 << 32;
const BATCH_SIZE: usize = 100_000;

fn json_label(s: &str) -> &str {
    assert!(
        !s.contains(['"', '\\']) && s.is_ascii(),
        "label needs JSON escaping: {s}"
    );
    s
}

fn write_json(
    path: &str,
    quick: bool,
    batches: usize,
    mixes: &[usize],
    results: &[(SystemKind, Vec<MixedRate>)],
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"query_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(&bench_meta().json_fields());
    let _ = writeln!(out, "  \"batch_size\": {BATCH_SIZE},");
    let _ = writeln!(out, "  \"batches\": {batches},");
    let _ = writeln!(out, "  \"queries_per_batch_mixes\": {mixes:?},");
    out.push_str("  \"systems\": [\n");
    for (i, (sys, rates)) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"system\": \"{}\", \"label\": \"{}\", \"mixes\": [",
            json_label(&format!("{sys:?}")),
            json_label(sys.label()),
        );
        for (j, r) in rates.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"queries_per_batch\": {}, \"read_write_ratio\": {:.6}, \"inserts\": {}, \"queries\": {}, \"seconds\": {:.6}, \"insert_rate\": {:.1}, \"query_rate\": {:.1}}}",
                if j == 0 { "" } else { ", " },
                r.queries_per_batch,
                r.queries as f64 / r.inserts.max(1) as f64,
                r.inserts,
                r.queries,
                r.seconds,
                r.insert_rate(),
                r.query_rate(),
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let batches = arg_value("--batches")
        .map(|v| v as usize)
        .unwrap_or(if quick { 3 } else { 10 });
    // Pure-ingest baseline plus two read:write mixes (queries per
    // 100,000-edge batch).
    let mixes: &[usize] = if quick { &[0, 4, 32] } else { &[0, 16, 128] };

    println!("=== E9: mixed ingest + query rate (MatrixReader layer) ===");
    println!(
        "workload: power-law stream, {} batches x {} edges; query mix rotates row/degree/get/top-k{}",
        batches,
        BATCH_SIZE,
        if quick { "  [--quick]" } else { "" }
    );
    println!();
    println!(
        "{:<28} {:>8} {:>12} {:>10} {:>16} {:>16}",
        "system", "q/batch", "seconds", "queries", "inserts/sec", "queries/sec"
    );
    println!("{}", "-".repeat(96));

    let stream = hyperstream_bench::paper_batches(batches, 2020);
    let mut results: Vec<(SystemKind, Vec<MixedRate>)> = Vec::new();
    for &sys in SystemKind::all() {
        // The slow database analogues get a shorter stream (rates stay
        // per-operation and comparable), exactly like `single_rate`.
        let sys_stream: Vec<_> = match sys {
            SystemKind::HierGraphBlas
            | SystemKind::ShardedHierGraphBlas
            | SystemKind::FlatGraphBlas => stream.clone(),
            _ => stream.iter().take(stream.len().min(3)).cloned().collect(),
        };
        let mut rates = Vec::new();
        for &q in mixes {
            // Best-of-N (min wall time) against scheduler noise on shared
            // machines, like the other experiment binaries.
            let runs = if quick { 1 } else { 2 };
            let r = (0..runs)
                .map(|_| measure_mixed(sys, &sys_stream, q, DIM))
                .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                .expect("at least one run");
            println!(
                "{:<28} {:>8} {:>12.3} {:>10} {:>16} {:>16}",
                sys.label(),
                q,
                r.seconds,
                r.queries,
                fmt_rate(r.insert_rate()),
                if q == 0 {
                    "-".to_string()
                } else {
                    fmt_rate(r.query_rate())
                },
            );
            rates.push(r);
        }
        results.push((sys, rates));
    }

    let json_path = "BENCH_query_rate.json";
    match write_json(json_path, quick, batches, mixes, &results) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }

    // Headline: how much ingest rate the hierarchical system keeps while
    // answering the heaviest query mix.
    if let Some((_, rates)) = results
        .iter()
        .find(|(s, _)| *s == SystemKind::HierGraphBlas)
    {
        if let (Some(pure), Some(heavy)) = (rates.first(), rates.last()) {
            println!(
                "\nhier-graphblas ingest under heaviest mix: {} of pure-ingest rate ({} vs {})",
                format_args!(
                    "{:.1}%",
                    100.0 * heavy.insert_rate() / pure.insert_rate().max(1e-9)
                ),
                fmt_rate(heavy.insert_rate()),
                fmt_rate(pure.insert_rate()),
            );
        }
    }
}
