//! Experiment E9 — mixed ingest + query rates through the `MatrixReader`
//! layer: the repo's measured read/mixed workload.
//!
//! The paper's point in sustaining extreme insert rates is to *analyse*
//! traffic while it arrives.  This harness drives every system through the
//! combined `StreamingSystem` interface: a sustained power-law ingest
//! stream with `Q` queries interleaved after every 100,000-edge batch, in
//! two blends:
//!
//! * **rotating** — row extract / row degree / point get / top-k, swept at
//!   `Q ∈ {0, 16, 128, 512}` (the `Q = 512` point shows where the old
//!   sweep-served top-k quarter collapsed ingest to ~10% of pure);
//! * **topk-heavy** — three top-k scans per degree-distribution query,
//!   the blend the incremental degree index exists for;
//! * **col-heavy** — column extract / column degree / two in-degree top-k
//!   scans per cycle, the transpose-direction blend the lazily-maintained
//!   column twin and column degree index exist for.
//!
//! The slower database analogues run a shorter stream and skip the
//! heaviest points (rates stay per-operation and comparable).  The run
//! writes `BENCH_query_rate.json` with per-mix insert/query rates *and*
//! the per-trial rates + relative spread of every best-of-N measurement,
//! so the single-core host drift is visible in the artifact instead of
//! silently folded away.  Flags: `--quick` (reduced stream + the top-k
//! and in-degree sweep-regression tripwires CI relies on), `--batches N`.

use hyperstream_bench::{arg_value, bench_meta, fmt_rate, quick_mode, TrialRates};
use hyperstream_cluster::{measure_mixed, MixedRate, QueryMix, SystemKind};

const DIM: u64 = 1 << 32;
const BATCH_SIZE: usize = 100_000;

/// One measured (mix, Q) point: the best trial plus every trial's rates.
struct MixPoint {
    best: MixedRate,
    insert_trials: TrialRates,
    query_trials: TrialRates,
}

fn json_label(s: &str) -> &str {
    assert!(
        !s.contains(['"', '\\']) && s.is_ascii(),
        "label needs JSON escaping: {s}"
    );
    s
}

fn write_json(
    path: &str,
    quick: bool,
    batches: usize,
    results: &[(SystemKind, Vec<MixPoint>)],
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"query_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(&bench_meta().json_fields());
    let _ = writeln!(out, "  \"batch_size\": {BATCH_SIZE},");
    let _ = writeln!(out, "  \"batches\": {batches},");
    out.push_str("  \"systems\": [\n");
    for (i, (sys, points)) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"system\": \"{}\", \"label\": \"{}\", \"mixes\": [",
            json_label(&format!("{sys:?}")),
            json_label(sys.label()),
        );
        for (j, p) in points.iter().enumerate() {
            let r = &p.best;
            let _ = write!(
                out,
                "      {{\"mix\": \"{}\", \"queries_per_batch\": {}, \"read_write_ratio\": {:.6}, \"inserts\": {}, \"queries\": {}, \"seconds\": {:.6}, \"insert_rate\": {:.1}, \"query_rate\": {:.1}, \"best_of\": {}, {}, {}}}",
                r.mix.label(),
                r.queries_per_batch,
                r.queries as f64 / r.inserts.max(1) as f64,
                r.inserts,
                r.queries,
                r.seconds,
                r.insert_rate(),
                r.query_rate(),
                p.insert_trials.best_of(),
                p.insert_trials.json_fields("insert_rates"),
                p.query_trials.json_fields("query_rates"),
            );
            out.push_str(if j + 1 < points.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Measure one (system, mix, Q) point best-of-`runs`, recording every
/// trial's rates.
fn measure_point(
    sys: SystemKind,
    stream: &[Vec<hyperstream_workload::Edge>],
    q: usize,
    mix: QueryMix,
    runs: usize,
) -> MixPoint {
    let mut insert_trials = TrialRates::default();
    let mut query_trials = TrialRates::default();
    let mut best: Option<MixedRate> = None;
    for _ in 0..runs.max(1) {
        let r = measure_mixed(sys, stream, q, DIM, mix);
        insert_trials.push(r.insert_rate());
        query_trials.push(r.query_rate());
        if best.map_or(true, |b| r.seconds < b.seconds) {
            best = Some(r);
        }
    }
    MixPoint {
        best: best.expect("at least one run"),
        insert_trials,
        query_trials,
    }
}

/// The sweep-regression tripwire behind `--quick` (run by the CI smoke):
/// a burst of top-k + degree-distribution queries against a freshly
/// ingested hierarchical matrix must complete within a generous budget.
/// Served from the degree index the burst is milliseconds; if a regression
/// sends top-k back to full cursor sweeps, the burst costs thousands of
/// whole-matrix walks and blows the budget.
fn topk_tripwire(stream: &[Vec<hyperstream_workload::Edge>]) -> Result<f64, f64> {
    use hyperstream_graphblas::MatrixReader;
    use hyperstream_hier::{HierConfig, HierMatrix};

    const BURST: usize = 2_000;
    const BUDGET_SECONDS: f64 = 5.0;

    let mut m = HierMatrix::<u64>::new(DIM, DIM, HierConfig::paper_default()).expect("valid dims");
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for batch in stream {
        hyperstream_workload::edges_to_tuples_into(batch, &mut rows, &mut cols, &mut vals);
        m.update_batch(&rows, &cols, &vals).expect("in-bounds");
    }
    let start = std::time::Instant::now();
    let mut checksum = 0u64;
    for i in 0..BURST {
        if i % 4 == 3 {
            checksum ^= m.read_degree_histogram().len() as u64;
        } else {
            checksum ^= m.read_top_k(8).first().map(|t| t.0).unwrap_or(0);
        }
    }
    std::hint::black_box(checksum);
    let took = start.elapsed().as_secs_f64();
    if took <= BUDGET_SECONDS {
        Ok(took)
    } else {
        Err(took)
    }
}

/// The transpose-direction tripwire behind `--quick`: a burst of in-degree
/// top-k + column-extract queries against a freshly ingested hierarchical
/// matrix must complete within the same budget.  Served from the column
/// degree index and column twin the burst is milliseconds; a regression to
/// cursor sweeps costs thousands of whole-matrix walks.  On success returns
/// `(burst seconds, per-query speedup of the indexed in-degree top-k over
/// the cursor-sweep answer)`.
fn col_tripwire(stream: &[Vec<hyperstream_workload::Edge>]) -> Result<(f64, f64), f64> {
    use hyperstream_graphblas::MatrixReader;
    use hyperstream_hier::{HierConfig, HierMatrix};

    const BURST: usize = 2_000;
    const BUDGET_SECONDS: f64 = 5.0;
    const SWEEP_BURST: usize = 16;

    let mut m = HierMatrix::<u64>::new(DIM, DIM, HierConfig::paper_default()).expect("valid dims");
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for batch in stream {
        hyperstream_workload::edges_to_tuples_into(batch, &mut rows, &mut cols, &mut vals);
        m.update_batch(&rows, &cols, &vals).expect("in-bounds");
    }
    let probe_col = stream[0][0].dst;
    let start = std::time::Instant::now();
    let mut checksum = 0u64;
    let mut col_buf = Vec::new();
    for i in 0..BURST {
        if i % 4 == 0 {
            m.read_col(probe_col, &mut col_buf);
            checksum ^= col_buf.len() as u64;
        } else {
            checksum ^= m.read_in_top_k(8).first().map(|t| t.0).unwrap_or(0);
        }
    }
    std::hint::black_box(checksum);
    let took = start.elapsed().as_secs_f64();
    if took > BUDGET_SECONDS {
        return Err(took);
    }
    let indexed_per_query = took / BURST as f64;

    // Per-query cost of the cursor-sweep answer to the same in-degree
    // top-k, over the identical settled data (a flat rebuild of the
    // stream): the baseline the column index is supposed to beat.
    let mut flat = hyperstream_graphblas::Matrix::<u64>::new(DIM, DIM);
    for batch in stream {
        for e in batch {
            flat.accum_element(e.src, e.dst, e.weight)
                .expect("in-bounds");
        }
    }
    flat.wait();
    let start = std::time::Instant::now();
    let mut checksum = 0u64;
    for _ in 0..SWEEP_BURST {
        let top = hyperstream_graphblas::cursor::merged_in_top_k(&[flat.dcsr()], 8);
        checksum ^= top.first().map(|t| t.0).unwrap_or(0);
    }
    std::hint::black_box(checksum);
    let sweep_per_query = start.elapsed().as_secs_f64() / SWEEP_BURST as f64;
    Ok((took, sweep_per_query / indexed_per_query.max(1e-12)))
}

fn main() {
    let quick = quick_mode();
    let batches = arg_value("--batches")
        .map(|v| v as usize)
        .unwrap_or(if quick { 3 } else { 10 });
    // The rotating blend sweeps a pure-ingest baseline plus increasingly
    // read-heavy mixes; the top-k-heavy blend isolates the degree-ranking
    // path.  Points are (mix, queries per 100,000-edge batch).
    let rotating: &[usize] = if quick {
        &[0, 4, 32]
    } else {
        &[0, 16, 128, 512]
    };
    let topk: &[usize] = if quick { &[8] } else { &[16, 128, 512] };
    let colheavy: &[usize] = if quick { &[8] } else { &[16, 128, 512] };

    println!("=== E9: mixed ingest + query rate (MatrixReader layer) ===");
    println!(
        "workload: power-law stream, {} batches x {} edges; blends: rotating row/degree/get/top-k and top-k-heavy{}",
        batches,
        BATCH_SIZE,
        if quick { "  [--quick]" } else { "" }
    );
    println!();
    println!(
        "{:<28} {:>11} {:>8} {:>10} {:>10} {:>14} {:>14} {:>8}",
        "system", "mix", "q/batch", "seconds", "queries", "inserts/sec", "queries/sec", "spread"
    );
    println!("{}", "-".repeat(110));

    let stream = hyperstream_bench::paper_batches(batches, 2020);
    let runs = if quick { 1 } else { 2 };
    let mut results: Vec<(SystemKind, Vec<MixPoint>)> = Vec::new();
    for &sys in SystemKind::all() {
        // The GraphBLAS-backed systems run the full stream and every
        // point; the slow database analogues get a shorter stream and skip
        // the heaviest points (rates stay per-operation and comparable).
        let graphblas_native = matches!(
            sys,
            SystemKind::HierGraphBlas
                | SystemKind::ShardedHierGraphBlas
                | SystemKind::FlatGraphBlas
        );
        let sys_stream: Vec<_> = if graphblas_native {
            stream.clone()
        } else {
            stream.iter().take(stream.len().min(3)).cloned().collect()
        };
        let mut points: Vec<(QueryMix, usize)> = rotating
            .iter()
            .filter(|&&q| graphblas_native || q <= 128)
            .map(|&q| (QueryMix::Rotating, q))
            .collect();
        points.extend(
            topk.iter()
                .filter(|&&q| graphblas_native || q <= 16)
                .map(|&q| (QueryMix::TopKHeavy, q)),
        );
        points.extend(
            colheavy
                .iter()
                .filter(|&&q| graphblas_native || q <= 16)
                .map(|&q| (QueryMix::ColHeavy, q)),
        );

        let mut measured = Vec::new();
        for (mix, q) in points {
            let p = measure_point(sys, &sys_stream, q, mix, runs);
            let r = &p.best;
            println!(
                "{:<28} {:>11} {:>8} {:>10.3} {:>10} {:>14} {:>14} {:>7.1}%",
                sys.label(),
                mix.label(),
                q,
                r.seconds,
                r.queries,
                fmt_rate(r.insert_rate()),
                if q == 0 {
                    "-".to_string()
                } else {
                    fmt_rate(r.query_rate())
                },
                100.0 * p.insert_trials.spread(),
            );
            measured.push(p);
        }
        results.push((sys, measured));
    }

    let json_path = "BENCH_query_rate.json";
    match write_json(json_path, quick, batches, &results) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }

    // Headline: how much ingest rate the hierarchical system keeps while
    // answering the heaviest rotating mix, and what the top-k-heavy blend
    // sustains.
    if let Some((_, points)) = results
        .iter()
        .find(|(s, _)| *s == SystemKind::HierGraphBlas)
    {
        let pure = points
            .iter()
            .find(|p| p.best.mix == QueryMix::Rotating && p.best.queries_per_batch == 0);
        let heavy = points.iter().rfind(|p| p.best.mix == QueryMix::Rotating);
        if let (Some(pure), Some(heavy)) = (pure, heavy) {
            println!(
                "\nhier-graphblas ingest under heaviest rotating mix (Q={}): {:.1}% of pure-ingest ({} vs {})",
                heavy.best.queries_per_batch,
                100.0 * heavy.best.insert_rate() / pure.best.insert_rate().max(1e-9),
                fmt_rate(heavy.best.insert_rate()),
                fmt_rate(pure.best.insert_rate()),
            );
        }
        if let Some(tk) = points.iter().rfind(|p| p.best.mix == QueryMix::TopKHeavy) {
            println!(
                "hier-graphblas top-k-heavy mix (Q={}): {} queries/sec at {} inserts/sec",
                tk.best.queries_per_batch,
                fmt_rate(tk.best.query_rate()),
                fmt_rate(tk.best.insert_rate()),
            );
        }
        if let Some(ch) = points.iter().rfind(|p| p.best.mix == QueryMix::ColHeavy) {
            println!(
                "hier-graphblas col-heavy mix (Q={}): {} queries/sec at {} inserts/sec",
                ch.best.queries_per_batch,
                fmt_rate(ch.best.query_rate()),
                fmt_rate(ch.best.insert_rate()),
            );
        }
    }

    // CI sweep-regression tripwire (quick mode only: the smoke must stay
    // fast, and the budget is generous enough for any healthy index).
    // Release builds only: under debug_assertions every indexed answer
    // re-derives itself through a full cursor sweep, which is exactly the
    // cost the budget exists to catch.
    if quick && !cfg!(debug_assertions) {
        match topk_tripwire(&stream) {
            Ok(took) => println!(
                "top-k tripwire: 2000-query burst in {took:.3}s (budget 5s) — index path healthy"
            ),
            Err(took) => {
                eprintln!(
                    "top-k tripwire FAILED: 2000-query burst took {took:.3}s (budget 5s) — \
                     degree-ranking queries have regressed to full sweeps"
                );
                std::process::exit(1);
            }
        }
        match col_tripwire(&stream) {
            Ok((took, speedup)) => println!(
                "in-degree tripwire: 2000-query burst in {took:.3}s (budget 5s), \
                 indexed in-degree top-k {speedup:.0}x the cursor sweep — column twin healthy"
            ),
            Err(took) => {
                eprintln!(
                    "in-degree tripwire FAILED: 2000-query burst took {took:.3}s (budget 5s) — \
                     column queries have regressed to full sweeps"
                );
                std::process::exit(1);
            }
        }
    }
}
