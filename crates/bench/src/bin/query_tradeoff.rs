//! Experiment E6 — throughput versus query (materialisation) frequency.
//!
//! The hierarchy defers work; a query must sum all levels (`A = Σ A_i`).
//! This harness measures sustained ingest throughput when a full
//! materialisation is requested every `q` batches, quantifying the cost of
//! fresh analytics on a streaming hierarchy.

use hyperstream_bench::{fmt_rate, paper_batches, quick_mode};
use hyperstream_hier::{HierConfig, HierMatrix};
use std::time::Instant;

const DIM: u64 = 1 << 32;

fn main() {
    let quick = quick_mode();
    let nbatches = if quick { 6 } else { 30 };
    let batches = paper_batches(nbatches, 55);
    let total_updates: u64 = batches.iter().map(|b| b.len() as u64).sum();

    println!("=== E6: ingest throughput vs query frequency ===");
    println!(
        "{} batches x 100k edges; query = full materialisation of Σ A_i",
        nbatches
    );
    println!();
    println!(
        "{:<24} {:>16} {:>14} {:>12}",
        "query every N batches", "updates/sec", "queries", "final nnz"
    );
    println!("{}", "-".repeat(70));

    for &every in &[0usize, 1, 2, 5, 10] {
        let mut m = HierMatrix::<u64>::new(DIM, DIM, HierConfig::paper_default()).unwrap();
        let mut queries = 0u64;
        let start = Instant::now();
        for (i, batch) in batches.iter().enumerate() {
            let rows: Vec<u64> = batch.iter().map(|e| e.src).collect();
            let cols: Vec<u64> = batch.iter().map(|e| e.dst).collect();
            let vals: Vec<u64> = batch.iter().map(|e| e.weight).collect();
            m.update_batch(&rows, &cols, &vals).unwrap();
            if every > 0 && (i + 1) % every == 0 {
                std::hint::black_box(m.materialize().nvals());
                queries += 1;
            }
        }
        let final_nnz = m.materialize_ref().nvals();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let label = if every == 0 {
            "never (ingest only)".to_string()
        } else {
            format!("every {every}")
        };
        println!(
            "{:<24} {:>16} {:>14} {:>12}",
            label,
            fmt_rate(total_updates as f64 / secs),
            queries,
            final_nnz
        );
    }
}
