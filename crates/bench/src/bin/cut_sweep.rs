//! Experiment E4 — ablation of the hierarchy parameters: measured update
//! rate as a function of the number of levels and the first-level cut,
//! alongside the cost-model prediction.
//!
//! The paper states the cuts "are easily tunable to achieve optimal
//! performance"; this harness shows the tuning surface.

use hyperstream_bench::{fmt_rate, paper_batches, quick_mode, timed_drive};
use hyperstream_hier::{sweep_cut_schedules, HierConfig, HierMatrix};
use hyperstream_memsim::MemoryHierarchy;

const DIM: u64 = 1 << 32;

fn measure(cfg: &HierConfig, batches: &[Vec<hyperstream_workload::Edge>]) -> f64 {
    let mut m = HierMatrix::<u64>::new(DIM, DIM, cfg.clone()).unwrap();
    let (updates, seconds) = timed_drive(&mut m, batches);
    updates as f64 / seconds
}

fn main() {
    let quick = quick_mode();
    let nbatches = if quick { 5 } else { 30 };
    let batches = paper_batches(nbatches, 77);
    println!(
        "=== E4: cut-schedule ablation ({} batches x 100k edges) ===",
        nbatches
    );
    println!();
    println!(
        "{:<12} {:<12} {:>16} {:>18}",
        "levels", "first cut", "measured upd/s", "model upd/s"
    );
    println!("{}", "-".repeat(62));

    let hierarchy = MemoryHierarchy::xeon_node();
    let level_counts = [2usize, 3, 4, 5];
    let base_cuts = [1u64 << 12, 1 << 15, 1 << 18];
    let predictions = sweep_cut_schedules(&hierarchy, 3_000_000, &level_counts, &base_cuts, 8);

    for &levels in &level_counts {
        for &base in &base_cuts {
            let cfg = HierConfig::geometric(levels, base, 8).unwrap();
            let measured = measure(&cfg, &batches);
            let predicted = predictions
                .iter()
                .find(|p| p.cuts == cfg.cuts())
                .map(|p| p.predicted_updates_per_sec)
                .unwrap_or(f64::NAN);
            println!(
                "{:<12} {:<12} {:>16} {:>18}",
                levels,
                base,
                fmt_rate(measured),
                fmt_rate(predicted)
            );
        }
    }

    // Flat baseline for reference.
    let flat_rate = measure(&HierConfig::effectively_flat(), &batches);
    println!();
    println!(
        "flat (no hierarchy) baseline: {} updates/s",
        fmt_rate(flat_rate)
    );
    println!(
        "best recommendation from the cost model: cuts = {:?}",
        predictions[0].cuts
    );
}
