//! Experiment E5 — memory-pressure validation of Fig. 1: what fraction of
//! the update traffic is served by fast memory (cache) for a flat matrix
//! versus a hierarchical matrix, using the cache simulator.

use hyperstream_bench::quick_mode;
use hyperstream_hier::memtrace::compare_strategies;
use hyperstream_hier::HierConfig;

fn main() {
    let quick = quick_mode();
    let updates: u64 = if quick { 50_000 } else { 400_000 };
    let pending_limit = 1u64 << 14;
    println!("=== E5: fast- vs slow-memory traffic (cache-simulated) ===");
    println!("updates per scenario: {updates}");
    println!();
    println!(
        "{:<16} {:<28} {:>12} {:>14} {:>12}",
        "steady nnz", "strategy", "fast frac", "avg ns/access", "dram touches"
    );
    println!("{}", "-".repeat(88));

    for &settled_nnz in &[1_000_000u64, 10_000_000, 100_000_000] {
        let cfg = HierConfig::paper_default();
        let cmp = compare_strategies(updates, settled_nnz, pending_limit, &cfg);
        for (name, report) in [
            ("flat pending-tuples", &cmp.flat),
            ("hierarchical", &cmp.hier),
        ] {
            println!(
                "{:<16} {:<28} {:>12.3} {:>14.1} {:>12}",
                settled_nnz,
                name,
                report.fast_fraction(),
                report.avg_ns_per_access(),
                report.dram_accesses
            );
        }
        println!(
            "{:<16} {:<28} {:>12.2}x slower per access (flat vs hierarchical)",
            "",
            "-> flat slowdown",
            cmp.slowdown_of_flat()
        );
    }

    println!();
    println!(
        "Fig. 1 claim: \"hierarchical hypersparse matrices ensure that the majority of \
         updates are performed in fast memory\" — confirmed when the hierarchical fast \
         fraction stays above 0.5 while the flat fraction collapses as nnz grows."
    );
}
