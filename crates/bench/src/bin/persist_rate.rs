//! Experiment E10 — the price of durability and the cost of coming back.
//!
//! Two sweeps over the durable hierarchy (`crates/hier/src/persist`):
//!
//! 1. **Ingest rate vs. fsync policy** — the paper-shaped power-law
//!    stream driven into an in-memory hierarchy (the WAL-off baseline)
//!    and into durable stores under `EveryBatch`, `EveryN(64)`, and
//!    `Never`, all through the same `StreamingSink` harness as every
//!    other rate experiment.  The spread is the durability trade-off
//!    table in the README, measured.
//! 2. **Reopen latency vs. size** — stores checkpointed at growing entry
//!    counts (fixed level count) and reopened cold.  Recovery is
//!    O(levels) structural work (each level is one sequential file read,
//!    no per-entry re-ingest), so reopen time must stay far below
//!    re-ingest time and grow only with the bytes of the level files.
//!
//! Writes `BENCH_persist.json`.  Run with `--quick` for a reduced
//! configuration (the CI smoke greps a `reopen_seconds` row from it).

use hyperstream_bench::{bench_meta, fmt_rate, paper_batches, quick_mode, timed_drive, TrialRates};
use hyperstream_hier::{DurableConfig, FsyncPolicy, HierConfig, HierMatrix};
use hyperstream_workload::Edge;
use std::path::PathBuf;

const DIM: u64 = 1 << 32;

/// One ingest mode: WAL off, or a WAL under one fsync policy.
struct IngestRow {
    mode: &'static str,
    updates: u64,
    seconds: f64,
    trials: TrialRates,
    /// WAL frames appended / fsyncs issued during one trial (0 for WAL
    /// off).  Makes a policy's *actual* sync behaviour visible: on a
    /// 20-batch stream `EveryN(64)` never reaches its threshold and issues
    /// the same zero mid-stream syncs as `Never`.
    wal_appends: u64,
    wal_syncs: u64,
}

/// One reopen measurement: a store of `nnz` entries across `levels`
/// levels, reopened cold.
struct ReopenRow {
    nnz: usize,
    levels: usize,
    ingest_seconds: f64,
    reopen_seconds: f64,
    wal_records_replayed: u64,
}

fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hs-persist-rate-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn hier_cfg() -> HierConfig {
    HierConfig::geometric(3, 1 << 12, 8).expect("valid geometric schedule")
}

/// One timed drive of the full stream under one mode: returns
/// `(updates, seconds, wal_appends, wal_syncs)`.
fn ingest_trial(
    mode: &'static str,
    policy: Option<FsyncPolicy>,
    batches: &[Vec<Edge>],
    run: usize,
) -> (u64, f64, u64, u64) {
    match policy {
        None => {
            let mut m = HierMatrix::<u64>::new(DIM, DIM, hier_cfg()).expect("valid dims");
            let (u, s) = timed_drive(&mut m, batches);
            (u, s, 0, 0)
        }
        Some(p) => {
            let dir = scratch(&format!("{mode}-{run}"));
            let mut m = HierMatrix::<u64>::new_durable(
                DIM,
                DIM,
                hier_cfg(),
                DurableConfig::new(&dir).fsync(p),
            )
            .expect("fresh durable store");
            let (u, s) = timed_drive(&mut m, batches);
            let (appends, syncs) = m.wal_telemetry().unwrap_or((0, 0));
            drop(m);
            let _ = std::fs::remove_dir_all(&dir);
            (u, s, appends, syncs)
        }
    }
}

fn measure_reopen(batches: &[Vec<Edge>]) -> ReopenRow {
    let dir = scratch(&format!("reopen-{}", batches.len()));
    let mut m = HierMatrix::<u64>::new_durable(
        DIM,
        DIM,
        hier_cfg(),
        // The reopen sweep measures recovery, not WAL pacing.
        DurableConfig::new(&dir).fsync(FsyncPolicy::Never),
    )
    .expect("fresh durable store");
    let (_, ingest_seconds) = timed_drive(&mut m, batches);
    m.flush().expect("checkpoint");
    let nnz = m.nvals_exact();
    let levels = m.levels();
    drop(m);

    let start = std::time::Instant::now();
    let r = HierMatrix::<u64>::open(&dir).expect("reopen checkpointed store");
    let reopen_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let wal_records_replayed = r
        .recovery_report()
        .map(|rep| rep.wal_records_replayed)
        .unwrap_or(0);
    assert_eq!(r.nvals_exact(), nnz, "reopen must reproduce the store");
    drop(r);
    let _ = std::fs::remove_dir_all(&dir);
    ReopenRow {
        nnz,
        levels,
        ingest_seconds,
        reopen_seconds,
        wal_records_replayed,
    }
}

fn write_json(
    path: &str,
    quick: bool,
    ingest: &[IngestRow],
    reopen: &[ReopenRow],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"persist_rate\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"dim\": {DIM},");
    out.push_str(
        &bench_meta()
            .with_fsync_policy("off,every-batch,every-64,never")
            .json_fields(),
    );
    out.push_str("  \"ingest\": [\n");
    for (i, r) in ingest.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"fsync_policy\": \"{}\", \"updates\": {}, \"seconds\": {:.6}, \"updates_per_sec\": {:.1}, \"best_of\": {}, \"wal_appends\": {}, \"wal_syncs\": {}, {}}}",
            r.mode,
            r.updates,
            r.seconds,
            r.updates as f64 / r.seconds,
            r.trials.best_of(),
            r.wal_appends,
            r.wal_syncs,
            r.trials.json_fields("updates_per_sec"),
        );
        out.push_str(if i + 1 < ingest.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"reopen\": [\n");
    for (i, r) in reopen.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"nnz\": {}, \"levels\": {}, \"ingest_seconds\": {:.6}, \"reopen_seconds\": {:.6}, \"wal_records_replayed\": {}}}",
            r.nnz, r.levels, r.ingest_seconds, r.reopen_seconds, r.wal_records_replayed,
        );
        out.push_str(if i + 1 < reopen.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let n_batches = if quick { 3 } else { 20 };
    let runs = if quick { 1 } else { 3 };
    println!("=== E10: durable ingest rate and reopen latency ===");
    println!(
        "workload: power-law stream, {} batches x 100,000 edges{}",
        n_batches,
        if quick { "  [--quick]" } else { "" }
    );
    println!();

    let batches = paper_batches(n_batches, 2020);
    println!(
        "{:<16} {:>14} {:>12} {:>16}",
        "fsync_policy", "updates", "seconds", "updates/sec"
    );
    println!("{}", "-".repeat(62));
    let modes: [(&'static str, Option<FsyncPolicy>); 4] = [
        ("off", None),
        ("every-batch", Some(FsyncPolicy::EveryBatch)),
        ("every-64", Some(FsyncPolicy::EveryN(64))),
        ("never", Some(FsyncPolicy::Never)),
    ];
    // Trials interleave round-robin across the modes instead of running
    // each mode's trials back to back: on a 1-core container with ±30%
    // host drift, sequential blocks hand later modes a different host
    // state than earlier ones, which is exactly how an earlier artifact
    // measured `never` *slower* than `every-64` (neither issues a
    // mid-stream fsync on this stream — see the wal_syncs column).
    // Round-robin spreads any drift epoch across all four modes.
    let mut ingest: Vec<IngestRow> = modes
        .iter()
        .map(|&(mode, _)| IngestRow {
            mode,
            updates: 0,
            seconds: f64::INFINITY,
            trials: TrialRates::default(),
            wal_appends: 0,
            wal_syncs: 0,
        })
        .collect();
    for run in 0..runs.max(1) {
        for (i, &(mode, policy)) in modes.iter().enumerate() {
            let (u, seconds, appends, syncs) = ingest_trial(mode, policy, &batches, run);
            let row = &mut ingest[i];
            row.trials.push(u as f64 / seconds);
            row.updates = u;
            row.seconds = row.seconds.min(seconds);
            row.wal_appends = appends;
            row.wal_syncs = syncs;
        }
    }
    for row in &ingest {
        println!(
            "{:<16} {:>14} {:>12.3} {:>16}",
            row.mode,
            row.updates,
            row.seconds,
            fmt_rate(row.updates as f64 / row.seconds)
        );
    }

    println!();
    println!(
        "{:<12} {:>8} {:>16} {:>16} {:>10}",
        "nnz", "levels", "ingest_seconds", "reopen_seconds", "replayed"
    );
    println!("{}", "-".repeat(68));
    let scales: &[usize] = if quick { &[1, 3] } else { &[2, 8, 20] };
    let mut reopen = Vec::new();
    for &n in scales {
        let row = measure_reopen(&batches[..n.min(batches.len())]);
        println!(
            "{:<12} {:>8} {:>16.4} {:>16.4} {:>10}",
            row.nnz, row.levels, row.ingest_seconds, row.reopen_seconds, row.wal_records_replayed
        );
        reopen.push(row);
    }

    write_json("BENCH_persist.json", quick, &ingest, &reopen).expect("write BENCH_persist.json");
    println!();
    println!("wrote BENCH_persist.json");
}
