//! Stream partitioning: cutting an edge stream into the fixed-size update
//! batches that are fed to each matrix instance.
//!
//! The paper streams `total_edges = 100,000,000` edges per instance as
//! `batches = 1,000` sets of `batch_size = 100,000` entries (§III).

use crate::edge::Edge;

/// Shape of a streaming-insert experiment for one matrix instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of update batches.
    pub batches: usize,
    /// Edges per batch.
    pub batch_size: usize,
}

impl StreamConfig {
    /// The paper's per-instance workload: 1,000 batches of 100,000 edges
    /// (10^8 total).
    pub fn paper() -> Self {
        Self {
            batches: 1000,
            batch_size: 100_000,
        }
    }

    /// A laptop-scale version preserving the batch structure (used by tests
    /// and the default benchmark profile): the batch size is the paper's,
    /// the number of batches is reduced.
    pub fn scaled_down(batches: usize) -> Self {
        Self {
            batches,
            batch_size: 100_000,
        }
    }

    /// Total number of edges streamed.
    pub fn total_edges(&self) -> usize {
        self.batches * self.batch_size
    }
}

/// Splits any edge iterator into batches according to a [`StreamConfig`].
#[derive(Debug)]
pub struct StreamPartitioner<G> {
    generator: G,
    config: StreamConfig,
}

impl<G: Iterator<Item = Edge>> StreamPartitioner<G> {
    /// Wrap an edge generator.
    pub fn new(generator: G, config: StreamConfig) -> Self {
        Self { generator, config }
    }

    /// The stream configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Iterate over the batches.
    pub fn batches(self) -> BatchIter<G> {
        BatchIter {
            generator: self.generator,
            config: self.config,
            emitted: 0,
        }
    }
}

/// Iterator over fixed-size batches of edges.
#[derive(Debug)]
pub struct BatchIter<G> {
    generator: G,
    config: StreamConfig,
    emitted: usize,
}

impl<G: Iterator<Item = Edge>> Iterator for BatchIter<G> {
    type Item = Vec<Edge>;

    fn next(&mut self) -> Option<Vec<Edge>> {
        if self.emitted >= self.config.batches {
            return None;
        }
        let mut batch = Vec::with_capacity(self.config.batch_size);
        for _ in 0..self.config.batch_size {
            match self.generator.next() {
                Some(e) => batch.push(e),
                None => break,
            }
        }
        self.emitted += 1;
        if batch.is_empty() {
            None
        } else {
            Some(batch)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.config.batches - self.emitted;
        (0, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::{PowerLawConfig, PowerLawGenerator};

    #[test]
    fn paper_config_shape() {
        let c = StreamConfig::paper();
        assert_eq!(c.batches, 1000);
        assert_eq!(c.batch_size, 100_000);
        assert_eq!(c.total_edges(), 100_000_000);
    }

    #[test]
    fn scaled_down_preserves_batch_size() {
        let c = StreamConfig::scaled_down(10);
        assert_eq!(c.batch_size, 100_000);
        assert_eq!(c.total_edges(), 1_000_000);
    }

    #[test]
    fn partitioner_produces_requested_batches() {
        let gen = PowerLawGenerator::new(PowerLawConfig::default());
        let cfg = StreamConfig {
            batches: 5,
            batch_size: 100,
        };
        let batches: Vec<Vec<Edge>> = StreamPartitioner::new(gen, cfg).batches().collect();
        assert_eq!(batches.len(), 5);
        assert!(batches.iter().all(|b| b.len() == 100));
    }

    #[test]
    fn finite_generator_short_final_batch() {
        let edges = vec![Edge::unit(1, 2); 250];
        let cfg = StreamConfig {
            batches: 5,
            batch_size: 100,
        };
        let batches: Vec<Vec<Edge>> = StreamPartitioner::new(edges.into_iter(), cfg)
            .batches()
            .collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 100);
        assert_eq!(batches[2].len(), 50);
    }

    #[test]
    fn empty_generator_yields_nothing() {
        let cfg = StreamConfig {
            batches: 3,
            batch_size: 10,
        };
        let batches: Vec<Vec<Edge>> = StreamPartitioner::new(std::iter::empty(), cfg)
            .batches()
            .collect();
        assert!(batches.is_empty());
    }

    #[test]
    fn config_accessor() {
        let gen = std::iter::empty();
        let cfg = StreamConfig {
            batches: 1,
            batch_size: 1,
        };
        let p = StreamPartitioner::new(gen, cfg);
        assert_eq!(p.config(), cfg);
    }
}
