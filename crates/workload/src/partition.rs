//! Sharded stream generation: splitting one edge stream across N parallel
//! ingest shards, or generating N independent per-shard streams.
//!
//! The paper's cluster experiment gives every process its *own* stream
//! (weak scaling); a single-node sharded engine instead splits one stream
//! by row ownership (strong scaling).  Both shapes are provided here so the
//! `parallel_rate` benchmark can measure either.

use crate::edge::Edge;
use crate::powerlaw::{PowerLawConfig, PowerLawGenerator};
use crate::stream::{StreamConfig, StreamPartitioner};

/// Split one batch of edges into per-shard batches using `shard_of`
/// (typically a row-based partitioner such as
/// `hyperstream_hier::ShardPartitioner`).  Returns `nshards` vectors; an
/// edge lands in exactly one.
pub fn partition_batch(
    batch: &[Edge],
    nshards: usize,
    mut shard_of: impl FnMut(&Edge) -> usize,
) -> Vec<Vec<Edge>> {
    let nshards = nshards.max(1);
    let mut out: Vec<Vec<Edge>> = (0..nshards)
        .map(|_| Vec::with_capacity(batch.len() / nshards + 1))
        .collect();
    for &e in batch {
        let s = shard_of(&e).min(nshards - 1);
        out[s].push(e);
    }
    out
}

/// Generate `nshards` *independent* power-law streams, each shaped like the
/// paper's per-instance workload (`batches` sets of `batch_size` edges),
/// with per-shard seeds derived from `seed`.  This is the weak-scaling
/// workload: every shard gets its own full stream.
pub fn shard_streams(
    nshards: usize,
    batches: usize,
    batch_size: usize,
    dim: u64,
    seed: u64,
) -> Vec<Vec<Vec<Edge>>> {
    (0..nshards.max(1) as u64)
        .map(|shard| {
            let gen = PowerLawGenerator::new(PowerLawConfig {
                dim,
                seed: seed ^ (shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..PowerLawConfig::paper()
            });
            StreamPartitioner::new(
                gen,
                StreamConfig {
                    batches,
                    batch_size,
                },
            )
            .batches()
            .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_batch_is_a_partition() {
        let batch: Vec<Edge> = (0..1000).map(|i| Edge::unit(i * 13 % 97, i)).collect();
        let parts = partition_batch(&batch, 4, |e| (e.src % 4) as usize);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), batch.len());
        for (s, part) in parts.iter().enumerate() {
            assert!(part.iter().all(|e| (e.src % 4) as usize == s));
            // Stream order is preserved within a shard (dst encodes the
            // generating index here).
            for w in part.windows(2) {
                assert!(w[0].dst < w[1].dst);
            }
        }
    }

    #[test]
    fn partition_batch_clamps() {
        let batch = vec![Edge::unit(5, 5)];
        let parts = partition_batch(&batch, 0, |_| 99);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 1);
    }

    #[test]
    fn shard_streams_are_independent_and_shaped() {
        let streams = shard_streams(3, 2, 100, 1 << 32, 42);
        assert_eq!(streams.len(), 3);
        for s in &streams {
            assert_eq!(s.len(), 2);
            assert!(s.iter().all(|b| b.len() == 100));
        }
        // Different shards get different streams; same call is deterministic.
        assert_ne!(streams[0][0], streams[1][0]);
        let again = shard_streams(3, 2, 100, 1 << 32, 42);
        assert_eq!(streams[0][0], again[0][0]);
    }
}
