//! Synthetic IPv4/IPv6 origin–destination traffic streams.
//!
//! The paper's motivating application is building network traffic matrices
//! whose rows/columns are the full IP address space.  Real traffic captures
//! are not redistributable, so this generator produces a synthetic
//! equivalent with the properties the analysis pipelines care about:
//!
//! * source and destination popularity are Zipfian (a few busy hosts);
//! * a configurable fraction of flows goes to a small set of "supernode"
//!   servers (the network supernodes whose temporal fluctuation the paper's
//!   references analyse);
//! * packet counts per flow update are small integers;
//! * addresses occupy the full 2^32 (IPv4) or 2^64 (IPv6) index space, so
//!   the resulting matrices are genuinely hypersparse.

use crate::edge::Edge;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Address family of the synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpVersion {
    /// 32-bit address space (matrix dimension `2^32`).
    V4,
    /// 64-bit address space (matrix dimension `2^64`, capped to `2^60` by
    /// the library's dimension limit — the top nibble of real IPv6 space is
    /// unused in practice anyway).
    V6,
}

impl IpVersion {
    /// Matrix dimension implied by the address family.
    pub fn dim(&self) -> u64 {
        match self {
            IpVersion::V4 => 1u64 << 32,
            IpVersion::V6 => 1u64 << 60,
        }
    }
}

/// Configuration of the traffic generator.
#[derive(Debug, Clone, Copy)]
pub struct IpTrafficConfig {
    /// Address family.
    pub version: IpVersion,
    /// Number of active hosts (distinct addresses that can appear).
    pub active_hosts: u64,
    /// Zipf exponent of host popularity.
    pub popularity_exponent: f64,
    /// Number of supernode servers attracting a disproportionate share.
    pub supernodes: u64,
    /// Fraction of flows whose destination is a supernode (0.0–1.0).
    pub supernode_fraction: f64,
    /// Maximum packets per flow update (weights drawn uniformly in 1..=max).
    pub max_packets_per_update: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IpTrafficConfig {
    fn default() -> Self {
        Self {
            version: IpVersion::V4,
            active_hosts: 1 << 20,
            popularity_exponent: 1.2,
            supernodes: 64,
            supernode_fraction: 0.3,
            max_packets_per_update: 8,
            seed: 0xBEEF,
        }
    }
}

/// Deterministic synthetic traffic stream (an infinite iterator of flow
/// updates).
#[derive(Debug, Clone)]
pub struct IpTrafficGenerator {
    cfg: IpTrafficConfig,
    host_zipf: Zipf,
    rng: StdRng,
    supernode_addrs: Vec<u64>,
}

impl IpTrafficGenerator {
    /// Create a generator from a configuration.
    ///
    /// # Panics
    /// Panics when `supernode_fraction` is outside `[0, 1]` or there are no
    /// active hosts.
    pub fn new(cfg: IpTrafficConfig) -> Self {
        assert!(cfg.active_hosts > 0, "need at least one active host");
        assert!(
            (0.0..=1.0).contains(&cfg.supernode_fraction),
            "supernode fraction must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let dim = cfg.version.dim();
        let supernode_addrs = (0..cfg.supernodes).map(|_| rng.gen_range(0..dim)).collect();
        Self {
            host_zipf: Zipf::new(cfg.active_hosts, cfg.popularity_exponent),
            cfg,
            rng,
            supernode_addrs,
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &IpTrafficConfig {
        &self.cfg
    }

    /// The addresses designated as supernode servers.
    pub fn supernode_addresses(&self) -> &[u64] {
        &self.supernode_addrs
    }

    /// Scatter a host rank over the address space (deterministic hash).
    fn host_address(&self, rank: u64) -> u64 {
        let mut x = rank.wrapping_add(0x0123_4567_89AB_CDEF);
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        x % self.cfg.version.dim()
    }

    /// Generate the next flow update.
    pub fn next_flow(&mut self) -> Edge {
        let src_rank = self.host_zipf.sample(&mut self.rng);
        let src = self.host_address(src_rank);
        let dst = if !self.supernode_addrs.is_empty()
            && self.rng.gen::<f64>() < self.cfg.supernode_fraction
        {
            let i = self.rng.gen_range(0..self.supernode_addrs.len());
            self.supernode_addrs[i]
        } else {
            let dst_rank = self.host_zipf.sample(&mut self.rng);
            self.host_address(dst_rank)
        };
        let weight = self
            .rng
            .gen_range(1..=self.cfg.max_packets_per_update.max(1));
        Edge { src, dst, weight }
    }

    /// Generate a batch of `count` flow updates.
    pub fn batch(&mut self, count: usize) -> Vec<Edge> {
        (0..count).map(|_| self.next_flow()).collect()
    }
}

impl Iterator for IpTrafficGenerator {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        Some(self.next_flow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn addresses_within_family_dim() {
        let v4 = IpTrafficGenerator::new(IpTrafficConfig::default()).batch(5000);
        assert!(v4.iter().all(|e| e.src < (1 << 32) && e.dst < (1 << 32)));

        let cfg6 = IpTrafficConfig {
            version: IpVersion::V6,
            ..Default::default()
        };
        let v6 = IpTrafficGenerator::new(cfg6).batch(5000);
        assert!(v6.iter().all(|e| e.src < (1 << 60) && e.dst < (1 << 60)));
    }

    #[test]
    fn weights_in_range() {
        let cfg = IpTrafficConfig {
            max_packets_per_update: 5,
            ..Default::default()
        };
        let flows = IpTrafficGenerator::new(cfg).batch(2000);
        assert!(flows.iter().all(|e| (1..=5).contains(&e.weight)));
    }

    #[test]
    fn supernodes_attract_traffic() {
        let cfg = IpTrafficConfig {
            supernodes: 4,
            supernode_fraction: 0.5,
            ..Default::default()
        };
        let gen = IpTrafficGenerator::new(cfg);
        let supers: HashSet<u64> = gen.supernode_addresses().iter().copied().collect();
        let mut gen = gen;
        let flows = gen.batch(10_000);
        let to_super = flows.iter().filter(|e| supers.contains(&e.dst)).count();
        let frac = to_super as f64 / flows.len() as f64;
        assert!(frac > 0.4, "supernode fraction observed {frac}");
    }

    #[test]
    fn no_supernodes_when_fraction_zero() {
        let cfg = IpTrafficConfig {
            supernodes: 0,
            supernode_fraction: 0.0,
            ..Default::default()
        };
        let flows = IpTrafficGenerator::new(cfg).batch(100);
        assert_eq!(flows.len(), 100);
    }

    #[test]
    fn deterministic() {
        let cfg = IpTrafficConfig::default();
        assert_eq!(
            IpTrafficGenerator::new(cfg).batch(500),
            IpTrafficGenerator::new(cfg).batch(500)
        );
    }

    #[test]
    fn hypersparse_spread() {
        // Distinct hosts should be spread over the address space, not packed
        // into low addresses.
        let flows = IpTrafficGenerator::new(IpTrafficConfig::default()).batch(2000);
        let high = flows.iter().filter(|e| e.src > (1u64 << 31)).count();
        assert!(high > 500);
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_panics() {
        IpTrafficGenerator::new(IpTrafficConfig {
            supernode_fraction: 1.5,
            ..Default::default()
        });
    }

    #[test]
    fn iterator_interface() {
        let flows: Vec<Edge> = IpTrafficGenerator::new(IpTrafficConfig::default())
            .take(5)
            .collect();
        assert_eq!(flows.len(), 5);
    }
}
