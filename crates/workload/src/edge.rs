//! The streaming edge/update record shared by all generators.

/// A single streaming update: add `weight` to entry `(src, dst)` of the
/// traffic/adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Row index (origin vertex / source IP).
    pub src: u64,
    /// Column index (destination vertex / destination IP).
    pub dst: u64,
    /// Update weight (packet or byte count; 1 for simple edge counts).
    pub weight: u64,
}

impl Edge {
    /// Construct an edge with weight 1.
    pub fn unit(src: u64, dst: u64) -> Self {
        Self {
            src,
            dst,
            weight: 1,
        }
    }

    /// Construct an edge with an explicit weight.
    pub fn weighted(src: u64, dst: u64, weight: u64) -> Self {
        Self { src, dst, weight }
    }
}

/// Split a slice of edges into its three parallel coordinate/value vectors,
/// the form the GraphBLAS build/update APIs take.
pub fn edges_to_tuples(edges: &[Edge]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    edges_to_tuples_into(edges, &mut rows, &mut cols, &mut vals);
    (rows, cols, vals)
}

/// Like [`edges_to_tuples`], but refilling caller-owned buffers so a
/// batch-driving loop allocates nothing after the first batch.  The
/// measurement harnesses use this: three fresh vectors per 100,000-edge
/// batch cost ~13% of the fastest sinks' wall time, which belongs to the
/// measured system, not the harness.
pub fn edges_to_tuples_into(
    edges: &[Edge],
    rows: &mut Vec<u64>,
    cols: &mut Vec<u64>,
    vals: &mut Vec<u64>,
) {
    rows.clear();
    cols.clear();
    vals.clear();
    rows.extend(edges.iter().map(|e| e.src));
    cols.extend(edges.iter().map(|e| e.dst));
    vals.extend(edges.iter().map(|e| e.weight));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Edge::unit(3, 5);
        assert_eq!(e.weight, 1);
        let w = Edge::weighted(3, 5, 42);
        assert_eq!(w.weight, 42);
        assert_eq!(w.src, 3);
        assert_eq!(w.dst, 5);
    }

    #[test]
    fn tuple_conversion() {
        let edges = vec![Edge::unit(1, 2), Edge::weighted(3, 4, 9)];
        let (r, c, v) = edges_to_tuples(&edges);
        assert_eq!(r, vec![1, 3]);
        assert_eq!(c, vec![2, 4]);
        assert_eq!(v, vec![1, 9]);
    }

    #[test]
    fn empty_conversion() {
        let (r, c, v) = edges_to_tuples(&[]);
        assert!(r.is_empty() && c.is_empty() && v.is_empty());
    }
}
