//! # hyperstream-workload
//!
//! Synthetic streaming workloads for the hierarchical hypersparse matrix
//! benchmarks.
//!
//! The paper's scalability experiment streams "a power-law graph of
//! 100,000,000 entries divided up into 1,000 sets of 100,000 entries" into
//! each matrix instance.  This crate regenerates that workload exactly
//! (§III), plus the IPv4/IPv6 origin–destination traffic streams the
//! introduction motivates, and R-MAT/Kronecker graphs as an alternative
//! scale-free generator.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible across machines and runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge;
pub mod ip_traffic;
pub mod kronecker;
pub mod partition;
pub mod powerlaw;
pub mod stream;
pub mod zipf;

pub use edge::{edges_to_tuples, edges_to_tuples_into, Edge};
pub use ip_traffic::{IpTrafficConfig, IpTrafficGenerator, IpVersion};
pub use kronecker::{KroneckerConfig, KroneckerGenerator};
pub use partition::{partition_batch, shard_streams};
pub use powerlaw::{PowerLawConfig, PowerLawGenerator};
pub use stream::{BatchIter, StreamConfig, StreamPartitioner};
pub use zipf::Zipf;
