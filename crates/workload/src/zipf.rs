//! Zipf-distributed integer sampler.
//!
//! Network endpoints are famously Zipfian: a handful of servers appear in a
//! large fraction of all flows.  The sampler uses the rejection–inversion
//! method of Hörmann & Derflinger, which needs `O(1)` memory and works for
//! element counts up to `2^64` — required when sampling IPv6-sized index
//! spaces where a CDF table is impossible.

use rand::Rng;

/// Zipf distribution over `{1, 2, …, n}` with exponent `s > 0`
/// (probability of `k` proportional to `k^-s`).
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion sampler.
    h_x1: f64,
    h_n: f64,
    dominant_s: f64,
}

impl Zipf {
    /// Create a sampler over `{1..=n}` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0` or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let h_x1 = Self::h_static(1.5, s) - 1.0;
        let h_n = Self::h_static(n as f64 + 0.5, s);
        Self {
            n,
            s,
            h_x1,
            h_n,
            dominant_s: s,
        }
    }

    /// Number of distinct values.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    // H(x) = integral of x^-s: ((x)^(1-s) - 1)/(1-s), with the s≈1 limit ln(x).
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(x, self.dominant_s)
    }

    fn h_inv(&self, x: f64) -> f64 {
        let s = self.dominant_s;
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
        }
    }

    /// Draw one sample in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Rejection-inversion (Hörmann & Derflinger 1996).
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let k_u64 = k as u64;
            if (self.h(k + 0.5) - u) <= (k).powf(-self.s) || k_u64 == 1 {
                // Acceptance test; k=1 is always accepted because the hat is
                // exact there by construction of h_x1.
                if k_u64 >= 1 && k_u64 <= self.n {
                    return k_u64;
                }
            }
        }
    }

    /// Draw `count` samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 101];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max_idx = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(max_idx, 1);
        // And the frequency should drop noticeably by rank 10.
        assert!(counts[1] > counts[10] * 3);
    }

    #[test]
    fn works_for_huge_supports() {
        // IPv6-scale support: no table allocation may happen.
        let z = Zipf::new(u64::MAX / 2, 1.1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!(k >= 1);
        }
    }

    #[test]
    fn exponent_one_special_case() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let samples = z.sample_many(&mut rng, 5000);
        assert!(samples.iter().all(|&k| (1..=50).contains(&k)));
        let ones = samples.iter().filter(|&&k| k == 1).count();
        assert!(ones > 500, "rank 1 should dominate, got {ones}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 1.3);
        let a = z.sample_many(&mut StdRng::seed_from_u64(42), 100);
        let b = z.sample_many(&mut StdRng::seed_from_u64(42), 100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_support_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_exponent_panics() {
        Zipf::new(10, 0.0);
    }

    #[test]
    fn accessors() {
        let z = Zipf::new(10, 2.0);
        assert_eq!(z.n(), 10);
        assert_eq!(z.s(), 2.0);
    }
}
