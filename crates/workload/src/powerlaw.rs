//! Power-law graph edge stream generator.
//!
//! The paper's workload is "a power-law graph of 100,000,000 entries divided
//! up into 1,000 sets of 100,000 entries" (§III).  Kepner-style perfect
//! power-law graphs draw both endpoints of each edge from a Zipf
//! distribution over the vertex id space and then scatter the ids over the
//! full hypersparse index space (the 2^32/2^64 address space) with a
//! deterministic hash, so that the *matrix* is hypersparse even though the
//! *degree structure* is scale-free.

use crate::edge::Edge;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the power-law edge generator.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Number of distinct "logical" vertices the Zipf ranks map onto.
    pub vertices: u64,
    /// Power-law exponent (`alpha`); Kepner's traffic studies use 1.2–1.8.
    pub alpha: f64,
    /// Dimension of the target hypersparse matrix (e.g. `2^32` for IPv4).
    pub dim: u64,
    /// When true, vertex ranks are scattered over `[0, dim)` with a
    /// multiplicative hash (hypersparse); when false, ids stay dense in
    /// `[0, vertices)`.
    pub scatter: bool,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        Self {
            vertices: 1 << 20,
            alpha: 1.3,
            dim: 1 << 32,
            scatter: true,
            seed: 0x5eed,
        }
    }
}

impl PowerLawConfig {
    /// The exact workload of the paper's §III experiment: 10^8 edges over a
    /// scale-free vertex set, streamed into a 2^32-dimension matrix.
    /// (Callers usually generate a prefix of it; see
    /// [`StreamConfig::paper`](crate::stream::StreamConfig::paper).)
    pub fn paper() -> Self {
        Self {
            vertices: 1 << 22,
            alpha: 1.3,
            dim: 1 << 32,
            scatter: true,
            seed: 2020,
        }
    }
}

/// Deterministic power-law edge generator (an infinite iterator).
#[derive(Debug, Clone)]
pub struct PowerLawGenerator {
    cfg: PowerLawConfig,
    zipf: Zipf,
    rng: StdRng,
}

impl PowerLawGenerator {
    /// Create a generator from a configuration.
    pub fn new(cfg: PowerLawConfig) -> Self {
        let zipf = Zipf::new(cfg.vertices, cfg.alpha);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self { cfg, zipf, rng }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &PowerLawConfig {
        &self.cfg
    }

    /// Map a Zipf rank (1-based) onto the hypersparse index space.
    ///
    /// A fixed odd multiplier (SplitMix64-style finalizer) spreads ranks over
    /// `[0, dim)` while remaining a bijection on the low 64 bits, so two
    /// distinct ranks never collide for `dim = 2^64` and collide only by
    /// truncation for smaller dims.
    fn scatter_id(&self, rank: u64) -> u64 {
        if !self.cfg.scatter {
            return (rank - 1) % self.cfg.dim;
        }
        let mut x = rank;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x % self.cfg.dim
    }

    /// Generate the next edge.
    pub fn next_edge(&mut self) -> Edge {
        let src_rank = self.zipf.sample(&mut self.rng);
        let dst_rank = self.zipf.sample(&mut self.rng);
        Edge {
            src: self.scatter_id(src_rank),
            dst: self.scatter_id(dst_rank),
            weight: 1,
        }
    }

    /// Generate a batch of `count` edges.
    pub fn batch(&mut self, count: usize) -> Vec<Edge> {
        (0..count).map(|_| self.next_edge()).collect()
    }
}

impl Iterator for PowerLawGenerator {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        Some(self.next_edge())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_given_seed() {
        let cfg = PowerLawConfig {
            seed: 99,
            ..Default::default()
        };
        let a: Vec<Edge> = PowerLawGenerator::new(cfg).batch(1000);
        let b: Vec<Edge> = PowerLawGenerator::new(cfg).batch(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = PowerLawConfig {
            seed: 1,
            ..Default::default()
        };
        let c2 = PowerLawConfig {
            seed: 2,
            ..Default::default()
        };
        assert_ne!(
            PowerLawGenerator::new(c1).batch(100),
            PowerLawGenerator::new(c2).batch(100)
        );
    }

    #[test]
    fn indices_within_dimension() {
        let cfg = PowerLawConfig {
            dim: 1 << 32,
            ..Default::default()
        };
        let edges = PowerLawGenerator::new(cfg).batch(10_000);
        assert!(edges.iter().all(|e| e.src < (1 << 32) && e.dst < (1 << 32)));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // A power-law stream must concentrate traffic on a few heavy vertices.
        let cfg = PowerLawConfig {
            vertices: 10_000,
            alpha: 1.5,
            dim: 1 << 32,
            scatter: true,
            seed: 5,
        };
        let edges = PowerLawGenerator::new(cfg).batch(50_000);
        let mut out_deg: HashMap<u64, u64> = HashMap::new();
        for e in &edges {
            *out_deg.entry(e.src).or_default() += 1;
        }
        let mut counts: Vec<u64> = out_deg.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top_1pct: u64 = counts.iter().take(counts.len() / 100 + 1).sum();
        // The top 1% of sources should carry far more than 1% of edges.
        assert!(
            top_1pct as f64 > 0.10 * total as f64,
            "top 1% carries only {top_1pct}/{total}"
        );
    }

    #[test]
    fn hypersparsity_when_scattered() {
        // Scattered ids should be spread widely over the 2^32 space, not
        // clustered at small indices.
        let cfg = PowerLawConfig {
            scatter: true,
            ..Default::default()
        };
        let edges = PowerLawGenerator::new(cfg).batch(1000);
        let above_half = edges.iter().filter(|e| e.src > (1 << 31)).count();
        assert!(
            above_half > 200,
            "ids not spread: {above_half}/1000 above 2^31"
        );
    }

    #[test]
    fn dense_ids_when_not_scattered() {
        let cfg = PowerLawConfig {
            vertices: 1000,
            scatter: false,
            dim: 1 << 32,
            ..Default::default()
        };
        let edges = PowerLawGenerator::new(cfg).batch(1000);
        assert!(edges.iter().all(|e| e.src < 1000 && e.dst < 1000));
    }

    #[test]
    fn iterator_interface() {
        let gen = PowerLawGenerator::new(PowerLawConfig::default());
        let edges: Vec<Edge> = gen.take(10).collect();
        assert_eq!(edges.len(), 10);
        assert!(edges.iter().all(|e| e.weight == 1));
    }

    #[test]
    fn paper_config_values() {
        let cfg = PowerLawConfig::paper();
        assert_eq!(cfg.dim, 1 << 32);
        assert!(cfg.scatter);
    }
}
