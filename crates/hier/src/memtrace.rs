//! Memory-trace simulation of flat vs. hierarchical update strategies.
//!
//! Experiment E5 validates the paper's Fig. 1 claim — "hierarchical
//! hypersparse matrices ensure that the majority of updates are performed in
//! fast memory" — by replaying the *address touch pattern* of both
//! strategies through the `hyperstream-memsim` cache simulator and comparing
//! the fraction of touches served by cache.
//!
//! The traces model the dominant data movement of each strategy:
//!
//! * **flat** — each update binary-searches the settled structure
//!   (`log2(nnz)` probes spread across the structure) and appends to a small
//!   pending buffer; every `pending_limit` updates the whole structure is
//!   re-read and re-written.
//! * **hierarchical** — each update appends to the level-0 buffer; when a
//!   level exceeds its cut it is streamed into the next level (both levels
//!   read + written once).

use crate::config::HierConfig;
use hyperstream_memsim::{AccessKind, AccessTracker, TrackerReport};

/// Bytes charged per stored tuple in the traces (two indices + value).
const BYTES_PER_ENTRY: u64 = 24;

/// Result of tracing both strategies over the same number of updates.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceComparison {
    /// Report for the flat strategy.
    pub flat: TrackerReport,
    /// Report for the hierarchical strategy.
    pub hier: TrackerReport,
}

impl TraceComparison {
    /// How much larger the flat strategy's average access time is.
    pub fn slowdown_of_flat(&self) -> f64 {
        let h = self.hier.avg_ns_per_access();
        if h <= 0.0 {
            return f64::INFINITY;
        }
        self.flat.avg_ns_per_access() / h
    }
}

/// Simulate the touch pattern of `updates` streaming inserts into a flat
/// hypersparse matrix that already holds `settled_nnz` entries and merges
/// its pending buffer every `pending_limit` updates.
pub fn simulate_flat_trace(updates: u64, settled_nnz: u64, pending_limit: u64) -> TrackerReport {
    let mut tracker = AccessTracker::new();
    let pending_limit = pending_limit.max(1);
    let settled_bytes = settled_nnz.saturating_mul(BYTES_PER_ENTRY);
    let settled_base = 1u64 << 40; // settled structure lives far from the buffer
    let pending_base = 1u64 << 20;

    let mut hash = 0x1234_5678_9abc_def0u64;
    for u in 0..updates {
        // Binary-search probes into the settled structure: log2(nnz) touches
        // at pseudo-random offsets (each probe lands in a different region).
        if settled_nnz > 1 {
            let probes = 64 - settled_nnz.leading_zeros() as u64;
            for p in 0..probes {
                hash = hash.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u ^ p);
                let off = hash % settled_bytes.max(1);
                tracker.touch(settled_base + off, AccessKind::Read);
            }
        }
        // Append to the pending buffer (sequential).
        let pend_off = (u % pending_limit) * BYTES_PER_ENTRY;
        tracker.touch_range(pending_base + pend_off, BYTES_PER_ENTRY, AccessKind::Write);

        // Periodic merge: stream the settled structure once (read + write).
        if (u + 1) % pending_limit == 0 && settled_bytes > 0 {
            stream_touch(&mut tracker, settled_base, settled_bytes);
        }
    }
    tracker.report()
}

/// Simulate the touch pattern of `updates` streaming inserts into a
/// hierarchical matrix with the given cut schedule (top level assumed to
/// hold `settled_nnz` entries at steady state).
pub fn simulate_hier_trace(updates: u64, settled_nnz: u64, config: &HierConfig) -> TrackerReport {
    let mut tracker = AccessTracker::new();
    let cuts = config.cuts();
    let mut level_fill: Vec<u64> = vec![0; config.levels()];
    // Place each level at a distinct base address.
    let level_base: Vec<u64> = (0..config.levels() as u64).map(|i| (i + 1) << 36).collect();
    let top = config.levels() - 1;

    for u in 0..updates {
        // Append into level 0 (sequential within the level-0 buffer).
        let off = (level_fill[0] % cuts[0].max(1)) * BYTES_PER_ENTRY;
        tracker.touch_range(level_base[0] + off, BYTES_PER_ENTRY, AccessKind::Write);
        level_fill[0] += 1;

        // Cascade as needed.
        let mut i = 0;
        while i < top {
            let cut = cuts[i];
            if level_fill[i] <= cut {
                break;
            }
            // Stream level i (read) and level i+1 (read + write).
            stream_touch(&mut tracker, level_base[i], level_fill[i] * BYTES_PER_ENTRY);
            let next_size = if i + 1 == top {
                // Steady-state top level size.
                settled_nnz.min(u + 1)
            } else {
                level_fill[i + 1]
            };
            stream_touch(
                &mut tracker,
                level_base[i + 1],
                next_size.max(1) * BYTES_PER_ENTRY,
            );
            level_fill[i + 1] += level_fill[i];
            level_fill[i] = 0;
            i += 1;
        }
    }
    tracker.report()
}

/// Compare both strategies over the same stream shape.
pub fn compare_strategies(
    updates: u64,
    settled_nnz: u64,
    pending_limit: u64,
    config: &HierConfig,
) -> TraceComparison {
    TraceComparison {
        flat: simulate_flat_trace(updates, settled_nnz, pending_limit),
        hier: simulate_hier_trace(updates, settled_nnz, config),
    }
}

fn stream_touch(tracker: &mut AccessTracker, base: u64, bytes: u64) {
    // Streaming touches every cache line once; model with a 64-byte stride.
    let lines = bytes / 64 + 1;
    // Cap the modelled stream at 1M lines to keep the simulator fast; the
    // hit-rate conclusions are unaffected because everything past the cache
    // size is a guaranteed miss anyway.
    let lines = lines.min(1 << 20);
    for l in 0..lines {
        tracker.touch(base + l * 64, AccessKind::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_trace_is_mostly_fast_memory() {
        let cfg = HierConfig::from_cuts(vec![1 << 10, 1 << 13]).unwrap();
        let report = simulate_hier_trace(50_000, 10_000_000, &cfg);
        assert!(
            report.fast_fraction() > 0.5,
            "hierarchical fast fraction {}",
            report.fast_fraction()
        );
    }

    #[test]
    fn flat_trace_is_mostly_slow_memory_for_large_matrices() {
        let report = simulate_flat_trace(20_000, 50_000_000, 1 << 10);
        assert!(
            report.fast_fraction() < 0.7,
            "flat fast fraction {}",
            report.fast_fraction()
        );
    }

    #[test]
    fn hierarchy_beats_flat_in_avg_access_time() {
        let cfg = HierConfig::from_cuts(vec![1 << 10, 1 << 13]).unwrap();
        let cmp = compare_strategies(20_000, 50_000_000, 1 << 10, &cfg);
        assert!(
            cmp.slowdown_of_flat() > 1.0,
            "flat should be slower per access: {:?}",
            cmp
        );
    }

    #[test]
    fn zero_updates_produce_empty_reports() {
        let cfg = HierConfig::paper_default();
        assert_eq!(simulate_hier_trace(0, 0, &cfg).total_accesses(), 0);
        assert_eq!(simulate_flat_trace(0, 0, 16).total_accesses(), 0);
    }

    #[test]
    fn comparison_handles_tiny_streams() {
        let cfg = HierConfig::from_cuts(vec![4]).unwrap();
        let cmp = compare_strategies(10, 100, 4, &cfg);
        assert!(cmp.flat.total_accesses() > 0);
        assert!(cmp.hier.total_accesses() > 0);
    }
}
