//! Instrumentation of a hierarchical matrix: cascade counts, entries moved,
//! and memory footprints per level.

/// Counters maintained by a [`HierMatrix`](crate::HierMatrix).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierStats {
    /// Total number of logical updates applied (`update` calls, counting
    /// each tuple of a batch).
    pub updates: u64,
    /// Number of cascades out of each level (`cascades[i]` = times level `i`
    /// overflowed into level `i + 1`).
    pub cascades: Vec<u64>,
    /// Total entries moved out of each level by cascades.
    pub entries_moved: Vec<u64>,
    /// Number of full materialisations (`Σ A_i`) performed.
    pub materializations: u64,
}

impl HierStats {
    /// Create counters for a hierarchy with `levels` levels.
    pub fn new(levels: usize) -> Self {
        Self {
            updates: 0,
            cascades: vec![0; levels],
            entries_moved: vec![0; levels],
            materializations: 0,
        }
    }

    /// Cascades out of level `level` (0-based).
    pub fn cascades_from_level(&self, level: usize) -> u64 {
        self.cascades.get(level).copied().unwrap_or(0)
    }

    /// Entries moved out of level `level` by cascades.
    pub fn entries_moved_from_level(&self, level: usize) -> u64 {
        self.entries_moved.get(level).copied().unwrap_or(0)
    }

    /// Total cascades across all levels.
    pub fn total_cascades(&self) -> u64 {
        self.cascades.iter().sum()
    }

    /// Total entries moved across all levels.  Each logical update can be
    /// moved at most once per level, so this is bounded by
    /// `updates * levels`; the ratio [`HierStats::write_amplification`]
    /// measures how much re-writing the hierarchy performs.
    pub fn total_entries_moved(&self) -> u64 {
        self.entries_moved.iter().sum()
    }

    /// Entries moved per logical update (the write amplification of the
    /// cascade; the paper's design keeps this close to 1 per level touched).
    pub fn write_amplification(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total_entries_moved() as f64 / self.updates as f64
        }
    }

    /// Fraction of updates that were absorbed without leaving level 0
    /// (the "performed in fast memory" fraction of Fig. 1).
    pub fn fast_update_fraction(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        let moved_out_of_l0 = self.entries_moved_from_level(0);
        1.0 - (moved_out_of_l0 as f64 / self.updates as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = HierStats::new(4);
        assert_eq!(s.updates, 0);
        assert_eq!(s.cascades.len(), 4);
        assert_eq!(s.total_cascades(), 0);
        assert_eq!(s.write_amplification(), 0.0);
        assert_eq!(s.fast_update_fraction(), 0.0);
    }

    #[test]
    fn accessors_out_of_range_are_zero() {
        let s = HierStats::new(2);
        assert_eq!(s.cascades_from_level(7), 0);
        assert_eq!(s.entries_moved_from_level(7), 0);
    }

    #[test]
    fn derived_metrics() {
        let s = HierStats {
            updates: 1000,
            cascades: vec![10, 2, 0],
            entries_moved: vec![500, 400, 0],
            materializations: 3,
        };
        assert_eq!(s.total_cascades(), 12);
        assert_eq!(s.total_entries_moved(), 900);
        assert!((s.write_amplification() - 0.9).abs() < 1e-12);
        assert!((s.fast_update_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fast_fraction_clamped() {
        // entries_moved can exceed updates when values collapse; fraction
        // must stay in [0, 1].
        let s = HierStats {
            updates: 10,
            cascades: vec![5],
            entries_moved: vec![50],
            materializations: 0,
        };
        assert_eq!(s.fast_update_fraction(), 0.0);
    }
}
