//! A tiny fault-injection facility in the spirit of the `fail` crate.
//!
//! Compiled only under the `failpoints` feature; release builds without the
//! feature compile every [`crate::failpoint!`] site to nothing.  Sites are
//! armed by name through [`arm`]/[`arm_at`] or the `HYPERSTREAM_FAILPOINTS`
//! environment variable, fire deterministically on their n-th evaluation,
//! and can target one shard index so a chaos test kills a chosen worker
//! regardless of thread scheduling.
//!
//! Environment syntax (sites separated by `;`):
//!
//! ```text
//! HYPERSTREAM_FAILPOINTS="worker-apply#2=panic@5;hier-flush=error"
//! ```
//!
//! `#idx` restricts the site to one shard index, `@n` fires on the n-th
//! evaluation (1-based, default 1).  Actions: `panic`, `error`,
//! `sleep:<ms>`.

use hyperstream_graphblas::{GrbError, GrbResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic the evaluating thread (worker-death injection).
    Panic,
    /// Return [`GrbError::Injected`] from the site (fallible sites only;
    /// panic-only sites escalate this to a panic).
    Error,
    /// Sleep for the given duration, then continue (timeout injection).
    Sleep(Duration),
}

/// A site key: name plus an optional shard-index restriction.
type SiteKey = (&'static str, Option<usize>);

struct Site {
    action: FailAction,
    /// Fire on the n-th evaluation of this site (1-based).
    nth: u64,
    /// Evaluations of this site seen so far.
    hits: u64,
    /// Times the site has fired.
    fired: u64,
}

struct Registry {
    sites: HashMap<SiteKey, Site>,
}

/// Fast disarmed-path check: a single relaxed load when nothing is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut reg = Registry {
            sites: HashMap::new(),
        };
        if let Ok(spec) = std::env::var("HYPERSTREAM_FAILPOINTS") {
            arm_from_spec(&mut reg, &spec);
        }
        if !reg.sites.is_empty() {
            ANY_ARMED.store(true, Ordering::Release);
        }
        Mutex::new(reg)
    })
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    // The registry mutex is poisoned if a worker panics *while holding it*;
    // the registry is just counters, so recover the data.
    registry()
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Parse one `name[#idx]=action[@nth]` spec list into the registry.  Site
/// names must match string literals used at `failpoint!` sites; names are
/// interned by leaking (env arming happens once per process).
fn arm_from_spec(reg: &mut Registry, spec: &str) {
    for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let Some((site, action)) = part.split_once('=') else {
            continue;
        };
        let (name, idx) = match site.split_once('#') {
            Some((n, i)) => (n.trim(), i.trim().parse::<usize>().ok()),
            None => (site.trim(), None),
        };
        let (action, nth) = match action.split_once('@') {
            Some((a, n)) => (a.trim(), n.trim().parse::<u64>().unwrap_or(1)),
            None => (action.trim(), 1),
        };
        let action = if action == "panic" {
            FailAction::Panic
        } else if action == "error" {
            FailAction::Error
        } else if let Some(ms) = action.strip_prefix("sleep:") {
            FailAction::Sleep(Duration::from_millis(ms.parse().unwrap_or(1)))
        } else {
            continue;
        };
        let name: &'static str = Box::leak(name.to_string().into_boxed_str());
        reg.sites.insert(
            (name, idx),
            Site {
                action,
                nth: nth.max(1),
                hits: 0,
                fired: 0,
            },
        );
    }
}

/// Arm `name` for every shard index: fires on its `nth` evaluation
/// (1-based) with `action`.
pub fn arm(name: &'static str, nth: u64, action: FailAction) {
    arm_at(name, None, nth, action);
}

/// Arm `name` restricted to evaluations reporting shard index `idx`
/// (`None` = any index).  Per-index arming is the deterministic form: each
/// worker evaluates its own sites in a scheduling-independent order.
pub fn arm_at(name: &'static str, idx: Option<usize>, nth: u64, action: FailAction) {
    let mut reg = lock_registry();
    reg.sites.insert(
        (name, idx),
        Site {
            action,
            nth: nth.max(1),
            hits: 0,
            fired: 0,
        },
    );
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarm one site (both its wildcard and every per-index entry).
pub fn disarm(name: &str) {
    let mut reg = lock_registry();
    reg.sites.retain(|(n, _), _| *n != name);
    if reg.sites.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarm every site and reset all counters.
pub fn disarm_all() {
    let mut reg = lock_registry();
    reg.sites.clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Evaluations seen by `name` (summed over its per-index entries) since it
/// was armed.  Counting only happens while the site is armed.
pub fn hits(name: &str) -> u64 {
    let reg = lock_registry();
    reg.sites
        .iter()
        .filter(|((n, _), _)| *n == name)
        .map(|(_, s)| s.hits)
        .sum()
}

/// Total fires across every armed site — benchmark artifacts record this
/// as `faults_injected` so a measurement taken with the feature compiled
/// in can attest that no fault actually fired.
pub fn total_fired() -> u64 {
    let reg = lock_registry();
    reg.sites.values().map(|s| s.fired).sum()
}

/// Times `name` has fired since it was armed.
pub fn fired(name: &str) -> u64 {
    let reg = lock_registry();
    reg.sites
        .iter()
        .filter(|((n, _), _)| *n == name)
        .map(|(_, s)| s.fired)
        .sum()
}

/// Look up the action to take for one evaluation, maintaining counters.
/// Exact `(name, Some(idx))` entries take precedence over the wildcard.
fn evaluate(name: &'static str, idx: usize) -> Option<FailAction> {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return None;
    }
    let mut reg = lock_registry();
    let key = if reg.sites.contains_key(&(name, Some(idx))) {
        (name, Some(idx))
    } else {
        (name, None)
    };
    let site = reg.sites.get_mut(&key)?;
    site.hits += 1;
    if site.hits == site.nth {
        site.fired += 1;
        Some(site.action)
    } else {
        None
    }
}

/// Evaluate a fallible failpoint site.  Used through
/// [`crate::failpoint!`]; `idx` is `usize::MAX` for sites with no shard
/// identity.
pub fn check(name: &'static str, idx: usize) -> GrbResult<()> {
    match evaluate(name, idx) {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("failpoint '{name}' injected panic (shard {idx})"),
        Some(FailAction::Error) => Err(GrbError::Injected(name)),
        Some(FailAction::Sleep(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

/// Evaluate a panic-only failpoint site (infallible contexts).  An armed
/// `Error` action escalates to a panic here.
pub fn check_panic_only(name: &'static str, idx: usize) {
    match evaluate(name, idx) {
        None => {}
        Some(FailAction::Sleep(d)) => std::thread::sleep(d),
        Some(_) => panic!("failpoint '{name}' injected panic (shard {idx})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; every test uses its own site names so
    // the cases stay independent under the parallel test runner.

    #[test]
    fn disarmed_sites_are_inert() {
        assert!(check("fp-test-inert", 0).is_ok());
        assert_eq!(hits("fp-test-inert"), 0);
    }

    #[test]
    fn nth_evaluation_fires_exactly_once() {
        arm("fp-test-nth", 3, FailAction::Error);
        assert!(check("fp-test-nth", 0).is_ok());
        assert!(check("fp-test-nth", 1).is_ok());
        assert_eq!(
            check("fp-test-nth", 2),
            Err(GrbError::Injected("fp-test-nth"))
        );
        assert!(check("fp-test-nth", 0).is_ok());
        assert_eq!(hits("fp-test-nth"), 4);
        assert_eq!(fired("fp-test-nth"), 1);
        disarm("fp-test-nth");
        assert!(check("fp-test-nth", 2).is_ok());
    }

    #[test]
    fn per_index_arming_only_hits_that_index() {
        arm_at("fp-test-idx", Some(2), 1, FailAction::Error);
        assert!(check("fp-test-idx", 0).is_ok());
        assert!(check("fp-test-idx", 1).is_ok());
        assert!(check("fp-test-idx", 2).is_err());
        disarm("fp-test-idx");
    }

    #[test]
    fn sleep_action_delays_then_continues() {
        arm(
            "fp-test-sleep",
            1,
            FailAction::Sleep(Duration::from_millis(5)),
        );
        let start = std::time::Instant::now();
        assert!(check("fp-test-sleep", 0).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(5));
        disarm("fp-test-sleep");
    }

    #[test]
    fn env_spec_parses_names_indices_and_nth() {
        let mut reg = Registry {
            sites: HashMap::new(),
        };
        arm_from_spec(&mut reg, "a#2=panic@5; b=error ;c=sleep:7;junk;d=bogus");
        assert_eq!(reg.sites.len(), 3);
        let a = reg.sites.get(&("a", Some(2))).unwrap();
        assert_eq!((a.action, a.nth), (FailAction::Panic, 5));
        let b = reg.sites.get(&("b", None)).unwrap();
        assert_eq!((b.action, b.nth), (FailAction::Error, 1));
        let c = reg.sites.get(&("c", None)).unwrap();
        assert_eq!(c.action, FailAction::Sleep(Duration::from_millis(7)));
    }
}
