//! The hierarchical hypersparse matrix itself.

use crate::config::HierConfig;
use crate::persist::{self, manifest, recover, wal, DurableConfig, DurableState, RecoveryReport};
use crate::stats::HierStats;
use hyperstream_graphblas::cursor::{
    for_each_merged, merge_levels, merged_col_degree, merged_col_into, merged_col_range,
    merged_col_reduce, merged_in_degree_histogram, merged_in_top_k, merged_nnz, merged_point,
    merged_row_degree, merged_row_into, merged_row_range, merged_row_reduce, merged_top_k,
};
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::formats::MemoryFootprint;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::monoid::PlusMonoid;
use hyperstream_graphblas::ops::reduce::reduce_scalar;
use hyperstream_graphblas::{
    CursorReader, DegreeIndex, GrbError, GrbResult, Index, Matrix, MatrixReader, MatrixSnapshot,
    ScalarType, StreamingSink,
};
use std::sync::Arc;

/// An N-level hierarchical hypersparse matrix accumulating under `+`.
///
/// See the [crate-level documentation](crate) for the algorithm and an
/// example.  The accumulation operator is the `Plus` monoid of the scalar
/// type (logical OR for `bool`), matching the paper's usage; the linearity
/// guarantees the paper emphasises hold because cascades are ordinary
/// GraphBLAS `ewise_add` calls.
///
/// Alongside the levels the matrix maintains an incremental
/// [`DegreeIndex`]: every level-0 settle feeds its sorted, deduplicated
/// batch through the index (cascades move cells between levels without
/// changing the represented union, so they cost the index nothing), which
/// turns `read_nnz` / `read_row_degree` / `read_row_reduce` into O(1)
/// answers and `read_top_k` / the degree histogram into O(k) answers off
/// lazily rebuilt caches — previously all full cursor sweeps.  The sweep
/// path is retained as the `sweep_*` fallback family and re-checked by
/// `debug_assert` on every indexed answer.
///
/// The *column* read path mirrors all of this through the transpose: a
/// second, lazily-activated [`DegreeIndex`] keyed by column (fed by the
/// same settle observer with the coordinate slices swapped) answers
/// in-degree / in-degree-top-k / in-degree-histogram in O(1)/O(k), and
/// per-level column twins ([`Matrix::col_shadow`]) serve column extracts
/// and column-range scans in O(k) per level.  Cascades are union-preserving
/// so they cost the column structures nothing either; the `sweep_col_*` /
/// `sweep_in_*` fallbacks retain the cursor path for equivalence checks.
#[derive(Debug)]
pub struct HierMatrix<T> {
    nrows: Index,
    ncols: Index,
    config: HierConfig,
    levels: Vec<Matrix<T>>,
    stats: HierStats,
    index: DegreeIndex<T>,
    /// Column-keyed twin of `index`: the same settle events observed with
    /// the coordinate slices swapped maintain in-degree stats (the observer
    /// is coordinate-agnostic).  Lazily activated by the first column-side
    /// degree query, so pure-ingest and row-only workloads never pay.
    col_index: DegreeIndex<T>,
    /// Durable backing (WAL + checkpointed level files), present only for
    /// matrices created through [`HierMatrix::new_durable`] /
    /// [`HierMatrix::open`].  See [`crate::persist`].
    durable: Option<DurableState>,
}

/// A clone is a detached in-memory copy: it shares no durable directory
/// with the original (two writers to one WAL would corrupt it), so the
/// clone's `durable` state is `None` regardless of the source's.
impl<T: Clone> Clone for HierMatrix<T> {
    fn clone(&self) -> Self {
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            config: self.config.clone(),
            levels: self.levels.clone(),
            stats: self.stats.clone(),
            index: self.index.clone(),
            col_index: self.col_index.clone(),
            durable: None,
        }
    }
}

/// Clean shutdown flushes the WAL tail to stable storage, so the next
/// open never sees a torn tail after an orderly drop.  Errors are
/// swallowed — a failing disk at drop time has nowhere to report to, and
/// recovery handles the resulting state anyway.
impl<T> Drop for HierMatrix<T> {
    fn drop(&mut self) {
        if let Some(d) = self.durable.as_mut() {
            let _ = d.wal.sync();
        }
    }
}

impl<T: ScalarType> HierMatrix<T> {
    /// Create an empty hierarchical matrix.
    pub fn new(nrows: Index, ncols: Index, config: HierConfig) -> GrbResult<Self> {
        let n_levels = config.levels();
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            // Disable the per-matrix automatic wait: the hierarchy itself is
            // the batching policy.
            levels.push(Matrix::try_new(nrows, ncols)?.with_pending_limit(usize::MAX));
        }
        Ok(Self {
            nrows,
            ncols,
            stats: HierStats::new(n_levels),
            config,
            levels,
            index: DegreeIndex::new(),
            col_index: DegreeIndex::new(),
            durable: None,
        })
    }

    /// Create with the default (paper) cut schedule.
    pub fn with_default_config(nrows: Index, ncols: Index) -> GrbResult<Self> {
        Self::new(nrows, ncols, HierConfig::default())
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// The cut configuration.
    pub fn config(&self) -> &HierConfig {
        &self.config
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &HierStats {
        &self.stats
    }

    /// Reset instrumentation counters (matrix contents are unchanged).
    pub fn reset_stats(&mut self) {
        self.stats = HierStats::new(self.levels.len());
    }

    /// Merge-kernel strategy counters (galloped / bulk-row / branchless /
    /// linear elements).  These are **process-global** — every matrix and
    /// every shard worker in the process shares them — re-exported here so
    /// engine-level debugging and the bench harness can explain *which*
    /// merge strategy a workload's cascades took without reaching into the
    /// graphblas crate.
    pub fn merge_kernel_stats() -> hyperstream_graphblas::MergeKernelStats {
        hyperstream_graphblas::merge_kernel_stats()
    }

    /// Apply one streaming update `A(row, col) += val`.
    pub fn update(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        if self.durable.is_some() {
            self.wal_log(&[row], &[col], &[val])?;
        }
        self.levels[0].accum_element(row, col, val)?;
        self.stats.updates += 1;
        self.mark_dirty(0);
        self.maybe_cascade()?;
        Ok(())
    }

    /// Apply a batch of updates given as parallel slices.
    ///
    /// The whole batch takes the bulk path: one validation pass, one bulk
    /// extend of the level-0 pending buffer, and one cascade check — which
    /// mirrors how the paper's benchmark feeds 100,000-edge sets into `A_1`.
    /// The batch applies atomically: on any invalid index nothing is
    /// inserted.
    pub fn update_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        if self.durable.is_some() {
            self.wal_log(rows, cols, vals)?;
        }
        self.levels[0].accum_tuples(rows, cols, vals)?;
        self.stats.updates += rows.len() as u64;
        self.mark_dirty(0);
        self.maybe_cascade()?;
        Ok(())
    }

    /// Apply a whole update matrix: `A_1 = A_1 ⊕ A` (the paper's formulation).
    pub fn update_matrix(&mut self, a: &Matrix<T>) -> GrbResult<()> {
        if a.nrows() != self.nrows || a.ncols() != self.ncols {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "update matrix is {}x{}, hierarchy is {}x{}",
                    a.nrows(),
                    a.ncols(),
                    self.nrows,
                    self.ncols
                ),
            });
        }
        let nupd = a.nvals_settled() + a.npending();
        if self.durable.is_some() {
            let (r, c, v) = a.extract_tuples();
            self.wal_log(&r, &c, &v)?;
        }
        // `accum_matrix` settles level 0 internally; settle through the
        // observed path first so the index sees the dedup-unpack, then feed
        // the whole update matrix through the cell oracle.
        self.settle_level(0);
        if a.npending() == 0 {
            self.index.observe_dcsr(a.dcsr());
            self.col_index.observe_dcsr_transposed(a.dcsr());
            self.levels[0].accum_matrix(a)?;
        } else {
            let settled = a.to_settled();
            self.index.observe_dcsr(settled.dcsr());
            self.col_index.observe_dcsr_transposed(settled.dcsr());
            self.levels[0].accum_matrix(&settled)?;
        }
        self.stats.updates += nupd as u64;
        self.mark_dirty(0);
        self.maybe_cascade()?;
        Ok(())
    }

    /// Upper bound on the number of stored entries at level `i`
    /// (exact for settled levels; counts pending tuples before duplicate
    /// collapse for level 0).
    pub fn level_entries_bound(&self, level: usize) -> usize {
        self.levels[level].nvals_settled() + self.levels[level].npending()
    }

    /// Upper bound on the total number of stored entries across all levels.
    pub fn total_entries_bound(&self) -> usize {
        (0..self.levels.len())
            .map(|i| self.level_entries_bound(i))
            .sum()
    }

    /// Per-level entry bounds, useful for inspecting the cascade state.
    pub fn entries_per_level(&self) -> Vec<usize> {
        (0..self.levels.len())
            .map(|i| self.level_entries_bound(i))
            .collect()
    }

    /// Per-level memory footprints.
    pub fn memory_per_level(&self) -> Vec<MemoryFootprint> {
        self.levels.iter().map(|l| l.memory()).collect()
    }

    /// Total bytes across all levels, including the degree index's tables.
    pub fn memory_bytes(&self) -> usize {
        self.memory_per_level()
            .iter()
            .map(|m| m.total())
            .sum::<usize>()
            + self.index.memory_bytes()
            + self.col_index.memory_bytes()
    }

    /// Sum of all stored values (in `f64`), computable without materialising
    /// because summation is linear across levels.
    pub fn total_weight(&self) -> u64 {
        self.total_weight_f64().round() as u64
    }

    /// Sum of all stored values without integer rounding, for scalar types
    /// with fractional weights.
    pub fn total_weight_f64(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| reduce_scalar(l, PlusMonoid).to_f64())
            .sum::<f64>()
    }

    /// Materialise the full matrix `A = Σ_i A_i` (the paper's query step).
    ///
    /// The hierarchy itself is left untouched, so streaming can continue
    /// afterwards; only the statistics record the materialisation.
    pub fn materialize(&mut self) -> Matrix<T> {
        self.stats.materializations += 1;
        self.materialize_ref()
    }

    /// Materialise without touching statistics (usable through `&self`).
    ///
    /// The settled level structures merge through the k-way cursor kernel
    /// in one pass — a single output allocation instead of the old
    /// per-level `ewise_add` loop that rewrote the accumulator L times —
    /// and any pending level-0 tuples fold in afterwards.
    pub fn materialize_ref(&self) -> Matrix<T> {
        let dcsrs: Vec<&Dcsr<T>> = self.level_dcsrs().collect();
        let merged =
            merge_levels(self.nrows, self.ncols, &dcsrs, Plus).expect("levels share dimensions");
        let mut acc = Matrix::from_dcsr(merged);
        self.fold_pending_into(&mut acc);
        acc
    }

    /// The settled DCSR structure of every level, lowest first (pending
    /// level-0 tuples are *not* included — see
    /// [`HierMatrix::fold_pending_into`]).
    pub(crate) fn level_dcsrs(&self) -> impl Iterator<Item = &Dcsr<T>> {
        self.levels.iter().map(|l| l.dcsr())
    }

    /// Fold every level's pending tuples into `acc` — the companion of
    /// [`HierMatrix::level_dcsrs`] for read paths that merge settled
    /// structures first.
    pub(crate) fn fold_pending_into(&self, acc: &mut Matrix<T>) {
        let mut any = false;
        for level in &self.levels {
            let (r, c, v) = level.pending_parts();
            if !r.is_empty() {
                acc.accum_tuples(r, c, v)
                    .expect("pending tuples are within bounds");
                any = true;
            }
        }
        if any {
            acc.wait();
        }
    }

    /// Settle level `i`'s pending tuples through the degree-index observer:
    /// the sorted, in-batch-deduplicated pending batch is exactly the settle
    /// dedup-unpack event the index maintains itself on.  Every settle in
    /// the hierarchy routes through here so the index never misses a cell.
    fn settle_level(&mut self, i: usize) {
        if self.levels[i].npending() == 0 {
            return;
        }
        crate::failpoint_panic!("hier-settle");
        let index = &mut self.index;
        let col_index = &mut self.col_index;
        self.levels[i].wait_observed(&mut |rows, cols, vals| {
            index.observe_settle(rows, cols, vals);
            // Same event, coordinates swapped: the observer is
            // coordinate-agnostic, so this maintains the in-degree stats.
            col_index.observe_settle(cols, rows, vals);
        });
    }

    /// Settle every level's pending tuples in place (cheap — only level 0
    /// can hold pending data, and it is cache resident by construction).
    /// The represented matrix is unchanged; afterwards the level DCSRs are
    /// the complete content, which is what the cursor queries walk.
    pub(crate) fn settle_levels(&mut self) {
        for i in 0..self.levels.len() {
            self.settle_level(i);
        }
    }

    /// The settled level DCSRs without settling — callers must have
    /// settled first ([`HierMatrix::settle_levels`]).
    fn dcsr_refs(&self) -> Vec<&Dcsr<T>> {
        self.levels.iter().map(|l| l.dcsr()).collect()
    }

    /// Settle everything and make sure the degree index is live.  The index
    /// is lazily activated so pure-ingest streams pay zero maintenance: the
    /// first degree query lands here, activates it and rebuilds it with one
    /// pass over the settled levels (the cell oracle deduplicates cells
    /// that sit in several levels); every later settle maintains it
    /// incrementally through the observer.
    fn ensure_index(&mut self) {
        self.settle_levels();
        if !self.index.is_active() {
            self.index.activate();
            for level in &self.levels {
                self.index.observe_dcsr(level.dcsr());
            }
        }
    }

    /// Settle everything and make sure the *column* degree index is live —
    /// the transpose mirror of [`HierMatrix::ensure_index`].  The first
    /// in-degree query activates it and rebuilds it with one transposed
    /// pass over the settled levels; every later settle maintains it
    /// incrementally through the swapped-coordinate observer.
    fn ensure_col_index(&mut self) {
        self.settle_levels();
        if !self.col_index.is_active() {
            self.col_index.activate();
            for level in &self.levels {
                self.col_index.observe_dcsr_transposed(level.dcsr());
            }
        }
    }

    /// Settle and return the level DCSRs for cursor queries.
    fn settled_level_dcsrs(&mut self) -> Vec<&Dcsr<T>> {
        self.settle_levels();
        self.levels.iter().map(|l| l.dcsr()).collect()
    }

    /// Settle (through the index observers) and return each level's column
    /// twin.  Settling first matters: [`Matrix::col_shadow`] runs a plain
    /// *unobserved* settle internally, which would bypass the degree
    /// indexes — after [`HierMatrix::settle_levels`] that internal wait is
    /// a no-op.  Twins are lazily built and Arc-cached per level, so a
    /// column-read phase builds each once and cascades invalidate only the
    /// levels they touch.
    pub(crate) fn settled_col_shadows(&mut self) -> Vec<Arc<Dcsr<T>>> {
        self.settle_levels();
        self.levels.iter_mut().map(|l| l.col_shadow()).collect()
    }

    /// Exact number of stored entries of the represented matrix.
    ///
    /// Settled hierarchies are counted through the merged cursors without
    /// materialising; only when pending tuples exist does this fall back to
    /// a materialisation pass (use the [`MatrixReader`] interface to settle
    /// and avoid even that).
    pub fn nvals_exact(&self) -> usize {
        if self.levels.iter().all(|l| l.npending() == 0) {
            if self.index.is_active() {
                // Everything settled has passed through the index.
                let n = self.index.nnz();
                debug_assert_eq!(n, {
                    let dcsrs: Vec<&Dcsr<T>> = self.level_dcsrs().collect();
                    merged_nnz(&dcsrs)
                });
                n
            } else {
                let dcsrs: Vec<&Dcsr<T>> = self.level_dcsrs().collect();
                merged_nnz(&dcsrs)
            }
        } else {
            self.materialize_ref().nvals()
        }
    }

    /// Value of the represented matrix at `(row, col)`: the sum of the
    /// entry across all levels.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        let mut acc: Option<T> = None;
        for level in &self.levels {
            if let Some(v) = level.get(row, col) {
                acc = Some(match acc {
                    Some(a) => a.add(v),
                    None => v,
                });
            }
        }
        acc
    }

    /// Push every entry up into the top level (complete all pending
    /// cascades), leaving levels `0..N-1` empty.  Useful before handing the
    /// matrix off for analysis or for checkpointing.
    ///
    /// Infallible today except under fault injection — the fallible
    /// signature is what lets a shard worker latch and report a flush
    /// failure instead of dropping it.
    pub fn flush(&mut self) -> GrbResult<()> {
        crate::failpoint!("hier-flush");
        let top = self.levels.len() - 1;
        for i in 0..top {
            let entries = self.level_entries_bound(i);
            if entries == 0 {
                continue;
            }
            self.cascade_level(i);
        }
        // A durable flush is also a checkpoint barrier: the flushed state
        // lands in level files and the WAL rotates empty, so a reopen
        // after a clean flush replays nothing.
        if self.durable.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Remove every stored entry from every level (dimensions and
    /// configuration are kept; statistics are reset).
    ///
    /// # Panics
    ///
    /// A durable matrix checkpoints the empty state immediately (the WAL
    /// has no delete records, so the old levels must be retired on the
    /// spot) and panics if that store write fails — an unpersisted clear
    /// would resurrect the deleted entries on the next open.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
        self.index.clear();
        self.col_index.clear();
        self.reset_stats();
        if self.durable.is_some() {
            for i in 0..self.levels.len() {
                self.mark_dirty(i);
            }
            self.checkpoint()
                .expect("durable clear: checkpointing the empty state failed");
        }
    }

    /// Run the cascade check starting at level 0, exactly as in the paper:
    /// repeat while `nnz(A_i) > c_i` and `i < N`.
    ///
    /// The fill proxy for level 0 is its pending-tuple count, which counts
    /// duplicates; when the proxy trips the cut the level is first settled
    /// (cheap — it is cache resident by construction) and the *distinct*
    /// entry count decides whether a cascade really happens.  Duplicate-heavy
    /// streams therefore stay in fast memory, which is the behaviour the
    /// paper relies on for traffic matrices with heavy-hitter flows.
    fn maybe_cascade(&mut self) -> GrbResult<()> {
        let mut i = 0;
        let mut cascaded = false;
        while i + 1 < self.levels.len() {
            let cut = self
                .config
                .cut(i)
                .expect("every level below the top has a cut");
            if (self.level_entries_bound(i) as u64) <= cut {
                break;
            }
            if self.levels[i].npending() > 0 {
                self.settle_level(i);
                if (self.levels[i].nvals_settled() as u64) <= cut {
                    break;
                }
            }
            self.cascade_level(i);
            cascaded = true;
            i += 1;
        }
        // Checkpoint when a cascade chain completes: level 0 is empty at
        // this point, so the settled levels are the complete state and
        // the WAL can rotate empty (cascade-as-compaction).
        if cascaded && self.durable.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Unconditionally cascade level `i` into level `i + 1` and clear it.
    ///
    /// The merge is in place ([`Matrix::accum_matrix`]): the destination
    /// level's old structure becomes its scratch space for the next cascade
    /// and the source level keeps its buffer capacity, so steady-state
    /// cascading allocates nothing — previously every cascade rebuilt the
    /// entire destination level on the heap, the single biggest cost on the
    /// streaming hot path.
    fn cascade_level(&mut self, i: usize) {
        debug_assert!(i + 1 < self.levels.len());
        crate::failpoint_panic!("hier-cascade");
        // Settle level i first so the merge sees compressed data.  The
        // merge itself moves cells between levels without changing the
        // represented union, so the cascade costs the degree index nothing.
        self.settle_level(i);
        let moved = self.levels[i].nvals_settled() as u64;
        if moved == 0 {
            return;
        }
        let (src_levels, dst_levels) = self.levels.split_at_mut(i + 1);
        dst_levels[0]
            .accum_matrix(&src_levels[i])
            .expect("levels share dimensions by construction");
        self.levels[i].clear_retaining_capacity();
        self.stats.cascades[i] += 1;
        self.stats.entries_moved[i] += moved;
        self.mark_dirty(i);
        self.mark_dirty(i + 1);
    }

    // ----- durability ---------------------------------------------------

    /// Create a durable matrix backed by a fresh store at `cfg.dir`.
    ///
    /// The directory is created if absent; an already-initialised store is
    /// refused ([`GrbError::InvalidValue`]) — reopen it with
    /// [`HierMatrix::open_with`] instead, so a typo'd path can never
    /// silently shadow existing data.
    pub fn new_durable(
        nrows: Index,
        ncols: Index,
        config: HierConfig,
        cfg: DurableConfig,
    ) -> GrbResult<Self> {
        std::fs::create_dir_all(&cfg.dir).map_err(|e| persist::io_err("create durable dir", e))?;
        if manifest::exists(&cfg.dir) {
            return Err(GrbError::InvalidValue(format!(
                "durable store at {} is already initialised; open it instead",
                cfg.dir.display()
            )));
        }
        let mut m = Self::new(nrows, ncols, config)?;
        let wal_gen = 1u64;
        let wal_path = cfg.dir.join(manifest::wal_file_name(wal_gen));
        let wal = wal::WalWriter::create(&wal_path, T::TYPE_TAG)?;
        let n_levels = m.levels.len();
        let entries = vec![manifest::LevelEntry { gen: 0, nnz: 0 }; n_levels];
        manifest::write(
            &cfg.dir,
            &manifest::Manifest {
                type_tag: T::TYPE_TAG,
                nrows,
                ncols,
                next_gen: 2,
                wal_gen,
                cuts: m.config.cuts().to_vec(),
                levels: entries.clone(),
            },
        )?;
        m.durable = Some(DurableState {
            cfg,
            wal,
            wal_gen,
            next_gen: 2,
            levels: entries,
            dirty: vec![false; n_levels],
            report: None,
            retired_appends: 0,
            retired_syncs: 0,
        });
        Ok(m)
    }

    /// Reopen a durable store with the default (strict, fsync-every-batch)
    /// configuration.  See [`HierMatrix::open_with`].
    pub fn open(dir: impl Into<std::path::PathBuf>) -> GrbResult<Self> {
        Self::open_with(DurableConfig::new(dir))
    }

    /// Reopen a durable store: load the checkpointed level files
    /// (O(levels) structural work — each settled level is one sequential
    /// read, never a per-entry re-ingest), truncate any torn WAL tail,
    /// replay the surviving WAL records, and resume logging.
    ///
    /// The dimensions and cut schedule come from the manifest; the scalar
    /// type must match the one the store was created with
    /// ([`GrbError::Corruption`] otherwise).  Inspect what recovery did
    /// via [`HierMatrix::recovery_report`].
    pub fn open_with(cfg: DurableConfig) -> GrbResult<Self> {
        let recovered = recover::open_dir::<T>(&cfg)?;
        let recover::Recovered {
            manifest: man,
            levels,
            records,
            wal_writer,
            mut report,
        } = recovered;
        let config = HierConfig::from_cuts(man.cuts.clone())?;
        let n_levels = levels.len();
        let mut m = Self {
            nrows: man.nrows,
            ncols: man.ncols,
            config,
            levels,
            stats: HierStats::new(n_levels),
            index: DegreeIndex::new(),
            col_index: DegreeIndex::new(),
            durable: None,
        };
        // Replay the WAL on top of the checkpoint while `durable` is still
        // `None`: replay must not re-log records or trigger checkpoints,
        // and any cascades it causes stay in memory (⊕ is associative and
        // commutative, so the cascade schedule during replay need not match
        // the pre-crash one — the represented matrix is identical either
        // way).
        let replayed = report.wal_records_replayed > 0;
        for r in &records {
            let vals: Vec<T> = r.valbits.iter().map(|&b| T::decode_bits(b)).collect();
            m.update_batch(&r.rows, &r.cols, &vals)
                .map_err(|e| persist::corruption(format!("wal record failed to replay: {e}")))?;
        }
        report.wal_records_replayed = records.len() as u64;
        // Replay is reconstruction, not new ingest.
        m.reset_stats();
        // Replayed state diverges from the level files until the next
        // checkpoint; a corrupt-but-salvaged level must also be rewritten.
        let mut dirty = vec![replayed; n_levels];
        for &i in &report.corrupt_levels {
            dirty[i] = true;
        }
        m.durable = Some(DurableState {
            cfg,
            wal: wal_writer,
            wal_gen: man.wal_gen,
            next_gen: man.next_gen,
            levels: man.levels,
            dirty,
            report: Some(report),
            retired_appends: 0,
            retired_syncs: 0,
        });
        Ok(m)
    }

    /// Open the store at `cfg.dir` if initialised (validating that its
    /// dimensions and cut schedule match the requested ones), otherwise
    /// create it.
    pub fn open_or_create(
        nrows: Index,
        ncols: Index,
        config: HierConfig,
        cfg: DurableConfig,
    ) -> GrbResult<Self> {
        if manifest::exists(&cfg.dir) {
            let m = Self::open_with(cfg)?;
            if m.nrows != nrows || m.ncols != ncols {
                return Err(GrbError::InvalidValue(format!(
                    "durable store is {}x{}, requested {}x{}",
                    m.nrows, m.ncols, nrows, ncols
                )));
            }
            if m.config.cuts() != config.cuts() {
                return Err(GrbError::InvalidValue(
                    "durable store was created with a different cut schedule".into(),
                ));
            }
            Ok(m)
        } else {
            Self::new_durable(nrows, ncols, config, cfg)
        }
    }

    /// Whether this matrix persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What the recovery that produced this matrix observed (`None` for a
    /// non-durable or freshly created matrix).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().and_then(|d| d.report.as_ref())
    }

    /// WAL telemetry `(frames appended, fsyncs issued)` over this store's
    /// lifetime in this process, accumulated across checkpoint rotations;
    /// `None` for non-durable matrices.  Recorded in bench artifacts so a
    /// policy's *actual* sync behaviour is visible — e.g. `EveryN(64)`
    /// never reaching its threshold on a short stream, making it
    /// behaviourally identical to `Never` for that run.
    pub fn wal_telemetry(&self) -> Option<(u64, u64)> {
        self.durable.as_ref().map(|d| {
            (
                d.retired_appends + d.wal.appends(),
                d.retired_syncs + d.wal.syncs(),
            )
        })
    }

    /// Force the WAL tail to stable storage regardless of the configured
    /// [`FsyncPolicy`](crate::persist::FsyncPolicy) — a durability barrier
    /// for `EveryN`/`Never` stores.
    /// No-op on non-durable matrices.
    pub fn wal_sync(&mut self) -> GrbResult<()> {
        if let Some(d) = self.durable.as_mut() {
            d.wal.sync()?;
        }
        Ok(())
    }

    /// Checkpoint the settled levels to fresh files and rotate the WAL.
    ///
    /// Crash-consistency: every new file (dirty level files, the empty
    /// replacement WAL) is written and fsynced under a *fresh* generation
    /// number the old manifest does not reference, then the new manifest
    /// is committed via write-temp → fsync → rename → directory fsync.
    /// A crash anywhere before the rename leaves the old manifest naming
    /// the old, complete file set (the orphans are swept on reopen); the
    /// rename itself is atomic.  Only after the commit does the in-memory
    /// state swap and the old files retire, so an error at any point
    /// leaves `self` still consistently backed by the previous
    /// checkpoint + WAL.
    ///
    /// No-op on a non-durable matrix; called automatically when a cascade
    /// chain completes, on [`HierMatrix::flush`], and on
    /// [`HierMatrix::clear`].
    pub fn checkpoint(&mut self) -> GrbResult<()> {
        if self.durable.is_none() {
            return Ok(());
        }
        // Compress pending tails so the level files carry everything.
        self.settle_levels();
        let d = self.durable.as_ref().expect("checked durable above");
        let dir = d.cfg.dir.clone();
        let mut next_gen = d.next_gen;
        // Build the new entry table locally; `self.durable` is swapped only
        // after the manifest commit succeeds.
        let mut new_entries = Vec::with_capacity(self.levels.len());
        for (i, level) in self.levels.iter().enumerate() {
            debug_assert_eq!(level.npending(), 0, "settled above");
            let nnz = level.nvals_settled() as u64;
            if !d.dirty[i] {
                new_entries.push(d.levels[i]);
                continue;
            }
            if nnz == 0 {
                new_entries.push(manifest::LevelEntry { gen: 0, nnz: 0 });
                continue;
            }
            let gen = next_gen;
            next_gen += 1;
            let name = manifest::level_file_name(gen);
            persist::format::write_level(&dir, &name, &level.settled_arc())?;
            new_entries.push(manifest::LevelEntry { gen, nnz });
        }
        // Fresh empty WAL for the post-checkpoint tail.
        let new_wal_gen = next_gen;
        next_gen += 1;
        let wal_path = dir.join(manifest::wal_file_name(new_wal_gen));
        let new_wal = wal::WalWriter::create(&wal_path, T::TYPE_TAG)?;
        // The new files must be *named* durably before the manifest can
        // reference them.
        manifest::fsync_dir(&dir)?;
        // Commit point.
        let man = manifest::Manifest {
            type_tag: T::TYPE_TAG,
            nrows: self.nrows,
            ncols: self.ncols,
            next_gen,
            wal_gen: new_wal_gen,
            cuts: self.config.cuts().to_vec(),
            levels: new_entries.clone(),
        };
        manifest::write(&dir, &man)?;
        // Committed: swap in-memory state and retire the old generation's
        // files (best-effort — reopen sweeps leftovers).
        let d = self.durable.as_mut().expect("checked durable above");
        let old_wal_gen = d.wal_gen;
        let old_entries = std::mem::replace(&mut d.levels, new_entries);
        d.retired_appends += d.wal.appends();
        d.retired_syncs += d.wal.syncs();
        d.wal = new_wal;
        d.wal_gen = new_wal_gen;
        d.next_gen = next_gen;
        for flag in d.dirty.iter_mut() {
            *flag = false;
        }
        for (old, new) in old_entries.iter().zip(d.levels.iter()) {
            if old.gen != 0 && old.gen != new.gen {
                let _ = std::fs::remove_file(dir.join(manifest::level_file_name(old.gen)));
            }
        }
        let _ = std::fs::remove_file(dir.join(manifest::wal_file_name(old_wal_gen)));
        Ok(())
    }

    /// Mark level `i`'s committed file stale (no-op when not durable).
    fn mark_dirty(&mut self, i: usize) {
        if let Some(d) = self.durable.as_mut() {
            d.dirty[i] = true;
        }
    }

    /// Log a batch to the WAL *before* it touches the in-memory levels.
    ///
    /// Pre-validates everything `update_batch` would reject (length
    /// mismatch, out-of-bounds indices) so the WAL never records a batch
    /// the matrix then refuses — replay must be able to apply every
    /// surviving record.
    fn wal_log(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "update batch slices disagree: {} rows, {} cols, {} vals",
                    rows.len(),
                    cols.len(),
                    vals.len()
                ),
            });
        }
        if let (Some(&max_row), Some(&max_col)) = (rows.iter().max(), cols.iter().max()) {
            hyperstream_graphblas::validate_index(max_row, self.nrows)?;
            hyperstream_graphblas::validate_index(max_col, self.ncols)?;
        }
        let valbits: Vec<u64> = vals.iter().map(|v| v.encode_bits()).collect();
        let d = self
            .durable
            .as_mut()
            .expect("wal_log is only called when durable");
        d.wal.append(rows, cols, &valbits, d.cfg.fsync)
    }

    /// The maintained degree index (settled content only — settle first via
    /// the reader interface for answers covering pending tuples).
    pub fn degree_index(&self) -> &DegreeIndex<T> {
        &self.index
    }

    /// The maintained *column* (in-degree) index.  Inactive until the first
    /// column-side degree query; see [`HierMatrix::degree_index`] for the
    /// settling caveat.
    pub fn col_degree_index(&self) -> &DegreeIndex<T> {
        &self.col_index
    }

    /// Take a consistent point-in-time snapshot: settles the cache-resident
    /// pending tuples (through the index observer), then captures Arc'd
    /// handles to every level plus a degree-index view — O(levels), no
    /// entry is copied.  The snapshot answers every [`MatrixReader`] query
    /// independently while this matrix keeps ingesting (subsequent settles
    /// and cascades copy-on-write their own structures).
    pub fn snapshot(&mut self) -> MatrixSnapshot<T> {
        self.ensure_index();
        // Column stats ride along only when the column index is already
        // live — snapshotting must not defeat its lazy activation.  A
        // snapshot without the view still answers column queries off its
        // own lazily-built merged twin.
        let col_view = self.col_index.is_active().then(|| self.col_index.view());
        MatrixSnapshot::new(
            "hier-graphblas-snapshot",
            self.nrows,
            self.ncols,
            self.levels.iter().map(|l| l.settled_arc()).collect(),
            (&[], &[], &[]),
            Some(self.index.view()),
        )
        .with_col_index(col_view)
    }

    /// Snapshot through `&self`: the settled levels share as in
    /// [`HierMatrix::snapshot`] and any not-yet-settled pending tuples are
    /// *copied* as the snapshot's tail level.  When a tail exists the
    /// snapshot's degree answers fall back to cursor sweeps (the index has
    /// not seen those cells yet).
    pub fn snapshot_ref(&self) -> MatrixSnapshot<T> {
        let (mut tr, mut tc, mut tv) = (Vec::new(), Vec::new(), Vec::new());
        for level in &self.levels {
            let (r, c, v) = level.pending_parts();
            tr.extend_from_slice(r);
            tc.extend_from_slice(c);
            tv.extend_from_slice(v);
        }
        let index = if tr.is_empty() && self.index.is_active() {
            Some(self.index.view())
        } else {
            None
        };
        let col_view = (tr.is_empty() && self.col_index.is_active()).then(|| self.col_index.view());
        MatrixSnapshot::new(
            "hier-graphblas-snapshot",
            self.nrows,
            self.ncols,
            self.levels.iter().map(|l| l.settled_arc()).collect(),
            (&tr, &tc, &tv),
            index,
        )
        .with_col_index(col_view)
    }

    /// The retained cursor-sweep fallback of [`MatrixReader::read_nnz`]:
    /// counts distinct cells by walking the merged level cursors.  The
    /// equivalence property tests pit every indexed answer against its
    /// `sweep_*` twin.
    pub fn sweep_nnz(&mut self) -> usize {
        let dcsrs = self.settled_level_dcsrs();
        merged_nnz(&dcsrs)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_row_degree`].
    pub fn sweep_row_degree(&mut self, row: Index) -> usize {
        let dcsrs = self.settled_level_dcsrs();
        merged_row_degree(&dcsrs, row)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_row_reduce`].
    pub fn sweep_row_reduce(&mut self, row: Index) -> Option<T> {
        let dcsrs = self.settled_level_dcsrs();
        merged_row_reduce(&dcsrs, row, Plus)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_top_k`].
    pub fn sweep_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let dcsrs = self.settled_level_dcsrs();
        merged_top_k(&dcsrs, k)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_degree_histogram`].
    pub fn sweep_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        self.settle_levels();
        hyperstream_graphblas::cursor::merged_degree_histogram(&self.dcsr_refs())
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col`]: per-level
    /// binary searches over the row-major structures, no column twin.
    pub fn sweep_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        let dcsrs = self.settled_level_dcsrs();
        merged_col_into(&dcsrs, col, Plus, out);
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col_degree`].
    pub fn sweep_col_degree(&mut self, col: Index) -> usize {
        let dcsrs = self.settled_level_dcsrs();
        merged_col_degree(&dcsrs, col)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col_reduce`].
    pub fn sweep_col_reduce(&mut self, col: Index) -> Option<T> {
        let dcsrs = self.settled_level_dcsrs();
        merged_col_reduce(&dcsrs, col, Plus)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_in_top_k`]: one full
    /// merged sweep counting every column — the O(nnz) cost the column
    /// index exists to avoid.
    pub fn sweep_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let dcsrs = self.settled_level_dcsrs();
        merged_in_top_k(&dcsrs, k)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_in_degree_histogram`].
    pub fn sweep_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let dcsrs = self.settled_level_dcsrs();
        merged_in_degree_histogram(&dcsrs)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col_range`].
    pub fn sweep_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let dcsrs = self.settled_level_dcsrs();
        merged_col_range(&dcsrs, lo, hi, Plus, f);
    }
}

/// Two `+`-reductions agree: exactly for the integer scalars, to relative
/// rounding for `f64` (arrival-order vs level-order folds).
pub(crate) fn reduce_agrees<T: ScalarType>(a: Option<T>, b: Option<T>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            let (x, y) = (x.to_f64(), y.to_f64());
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => false,
    }
}

/// The paper's insert path: `insert` feeds level 0 and runs the cascade
/// check, `flush` completes all outstanding cascades.
impl<T: ScalarType> StreamingSink<T> for HierMatrix<T> {
    fn sink_name(&self) -> &str {
        "hier-graphblas"
    }

    fn insert(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        self.update(row, col, val)
    }

    fn insert_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        self.update_batch(rows, cols, vals)
    }

    fn flush(&mut self) -> GrbResult<()> {
        HierMatrix::flush(self)
    }

    fn nvals(&self) -> usize {
        self.nvals_exact()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight_f64()
    }
}

/// The paper's query path: point/row/entry extraction merges the L level
/// cursors on the fly (after settling the cache-resident pending buffers);
/// the degree-centric answers — nnz, per-row degree/reduce, top-k, degree
/// histogram — come from the incremental [`DegreeIndex`] in O(1)/O(k).  In
/// debug builds every indexed answer is re-derived through the retained
/// cursor-sweep fallback.
impl<T: ScalarType> MatrixReader<T> for HierMatrix<T> {
    fn reader_name(&self) -> &str {
        "hier-graphblas"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        self.ensure_index();
        let n = self.index.nnz();
        debug_assert_eq!(n, merged_nnz(&self.dcsr_refs()));
        n
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        // Per-level gets fold pending tuples in directly; no settle needed.
        HierMatrix::get(self, row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        let dcsrs = self.settled_level_dcsrs();
        merged_row_into(&dcsrs, row, Plus, out);
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        self.ensure_index();
        let d = self.index.row_degree(row);
        debug_assert_eq!(d, merged_row_degree(&self.dcsr_refs(), row));
        d
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        self.ensure_index();
        let w = self.index.row_weight(row);
        debug_assert!(
            reduce_agrees(w, merged_row_reduce(&self.dcsr_refs(), row, Plus)),
            "index weight diverged from cursor fold for row {row}"
        );
        w
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        self.ensure_index();
        let top = self.index.top_k(k);
        debug_assert_eq!(top, merged_top_k(&self.dcsr_refs(), k));
        top
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        let dcsrs = self.settled_level_dcsrs();
        for_each_merged(&dcsrs, Plus, f);
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let dcsrs = self.settled_level_dcsrs();
        merged_row_range(&dcsrs, lo, hi, Plus, f);
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        self.ensure_index();
        let hist = self.index.degree_histogram();
        debug_assert_eq!(hist, self.sweep_degree_histogram());
        hist
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        // O(k) off the per-level column twins instead of the default
        // full-entry sweep: one binary search per twin, then a k-way merge
        // of the per-level column runs.
        let shadows = self.settled_col_shadows();
        let refs: Vec<&Dcsr<T>> = shadows.iter().map(|s| s.as_ref()).collect();
        merged_row_into(&refs, col, Plus, out);
        debug_assert_eq!(*out, {
            let mut sweep = Vec::new();
            merged_col_into(&self.dcsr_refs(), col, Plus, &mut sweep);
            sweep
        });
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        self.ensure_col_index();
        let d = self.col_index.row_degree(col);
        debug_assert_eq!(d, merged_col_degree(&self.dcsr_refs(), col));
        d
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        self.ensure_col_index();
        let w = self.col_index.row_weight(col);
        debug_assert!(
            reduce_agrees(w, merged_col_reduce(&self.dcsr_refs(), col, Plus)),
            "column index weight diverged from cursor fold for col {col}"
        );
        w
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        self.ensure_col_index();
        let top = self.col_index.top_k(k);
        debug_assert_eq!(top, merged_in_top_k(&self.dcsr_refs(), k));
        top
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        self.ensure_col_index();
        let hist = self.col_index.degree_histogram();
        debug_assert_eq!(hist, merged_in_degree_histogram(&self.dcsr_refs()));
        hist
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        // The twins are row-major in (col, row), so a plain row-range walk
        // over them *is* the column-major contract order — no collect/sort
        // pass like the default sweep needs.
        let shadows = self.settled_col_shadows();
        let refs: Vec<&Dcsr<T>> = shadows.iter().map(|s| s.as_ref()).collect();
        merged_row_range(&refs, lo, hi, Plus, &mut |c, r, v| f(r, c, v));
    }

    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        // One settle for the whole batch (the default pays the settle
        // check per call through `read_row`).
        let dcsrs = self.settled_level_dcsrs();
        rows.iter()
            .map(|&row| {
                let mut out = Vec::new();
                merged_row_into(&dcsrs, row, Plus, &mut out);
                out
            })
            .collect()
    }

    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        // One settle, then two binary searches per key per level — the
        // default's per-key `read_get` rescans every pending tuple instead.
        let dcsrs = self.settled_level_dcsrs();
        keys.iter()
            .map(|&(row, col)| merged_point(&dcsrs, row, col, Plus))
            .collect()
    }
}

impl<T: ScalarType> CursorReader<T> for HierMatrix<T> {
    fn with_level_dcsrs(&mut self, f: &mut dyn FnMut(&[&Dcsr<T>])) {
        // One settle folds the pending tuples into level 0; afterwards the
        // level DCSRs are the complete represented content, summed under
        // `+` — exactly the level-slice contract the cursor kernels need.
        self.settle_levels();
        f(&self.dcsr_refs());
    }

    fn out_degrees(&mut self) -> Option<Vec<(Index, u64)>> {
        // Cells living in several levels are counted once: the index is
        // rebuilt through the cell oracle on activation and maintained by
        // the settle observer, which deduplicates across levels.
        self.ensure_index();
        Some(self.index.row_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HierConfig {
        HierConfig::from_cuts(vec![8, 64, 512]).unwrap()
    }

    #[test]
    fn construction() {
        let m = HierMatrix::<u64>::new(1 << 32, 1 << 32, small_config()).unwrap();
        assert_eq!(m.levels(), 4);
        assert_eq!(m.nrows(), 1 << 32);
        assert_eq!(m.total_entries_bound(), 0);
        assert_eq!(m.stats().updates, 0);
    }

    #[test]
    fn single_updates_accumulate() {
        let mut m = HierMatrix::<u64>::new(100, 100, small_config()).unwrap();
        m.update(3, 4, 2).unwrap();
        m.update(3, 4, 5).unwrap();
        m.update(9, 9, 1).unwrap();
        assert_eq!(m.get(3, 4), Some(7));
        assert_eq!(m.get(9, 9), Some(1));
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.stats().updates, 3);
        assert_eq!(m.total_weight(), 8);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = HierMatrix::<u64>::new(10, 10, small_config()).unwrap();
        assert!(m.update(10, 0, 1).is_err());
        assert!(m.update_batch(&[1, 20], &[1, 1], &[1, 1]).is_err());
        assert!(m.update_batch(&[1], &[1, 2], &[1]).is_err());
    }

    #[test]
    fn cascades_happen_and_preserve_content() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        // 1000 distinct entries with small cuts forces multiple cascades.
        for i in 0..1000u64 {
            m.update(i % 777, (i * 13) % 991, 1).unwrap();
        }
        assert!(m.stats().cascades_from_level(0) > 0, "no level-0 cascades");
        assert!(m.stats().total_cascades() > 0);
        // Content must be identical to a flat accumulation.
        let mut flat = Matrix::<u64>::new(1 << 20, 1 << 20);
        for i in 0..1000u64 {
            flat.accum_element(i % 777, (i * 13) % 991, 1).unwrap();
        }
        flat.wait();
        let materialized = m.materialize();
        assert_eq!(materialized.nvals(), flat.nvals());
        assert_eq!(materialized.extract_tuples(), flat.extract_tuples());
    }

    #[test]
    fn cascade_equivalence_under_duplicate_heavy_stream() {
        // Heavy duplication: many updates to few cells, exercising value
        // accumulation across cascade boundaries.
        let mut m = HierMatrix::<u64>::new(64, 64, small_config()).unwrap();
        let mut flat = Matrix::<u64>::new(64, 64);
        for i in 0..5000u64 {
            let (r, c) = (i % 5, (i / 5) % 5);
            m.update(r, c, 1).unwrap();
            flat.accum_element(r, c, 1).unwrap();
        }
        flat.wait();
        let snap = m.materialize();
        assert_eq!(snap.extract_tuples(), flat.extract_tuples());
        assert_eq!(m.total_weight(), 5000);
    }

    #[test]
    fn batch_updates_equivalent_to_singles() {
        let cfg = small_config();
        let rows: Vec<u64> = (0..300).map(|i| i % 41).collect();
        let cols: Vec<u64> = (0..300).map(|i| (i * 7) % 53).collect();
        let vals: Vec<u64> = (0..300).map(|i| i % 3 + 1).collect();

        let mut a = HierMatrix::<u64>::new(100, 100, cfg.clone()).unwrap();
        a.update_batch(&rows, &cols, &vals).unwrap();

        let mut b = HierMatrix::<u64>::new(100, 100, cfg).unwrap();
        for i in 0..rows.len() {
            b.update(rows[i], cols[i], vals[i]).unwrap();
        }
        assert_eq!(
            a.materialize().extract_tuples(),
            b.materialize().extract_tuples()
        );
        assert_eq!(a.stats().updates, b.stats().updates);
    }

    #[test]
    fn update_matrix_form() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        let upd = Matrix::from_tuples(
            1 << 16,
            1 << 16,
            &[1, 2, 3],
            &[1, 2, 3],
            &[5u64, 6, 7],
            Plus,
        )
        .unwrap();
        m.update_matrix(&upd).unwrap();
        m.update_matrix(&upd).unwrap();
        assert_eq!(m.get(1, 1), Some(10));
        assert_eq!(m.stats().updates, 6);

        let wrong = Matrix::<u64>::new(4, 4);
        assert!(m.update_matrix(&wrong).is_err());
    }

    #[test]
    fn flush_moves_everything_to_top() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..200u64 {
            m.update(i, i, 1).unwrap();
        }
        m.flush().unwrap();
        let per_level = m.entries_per_level();
        for (i, &n) in per_level.iter().enumerate() {
            if i + 1 < per_level.len() {
                assert_eq!(n, 0, "level {i} not empty after flush");
            } else {
                assert_eq!(n, 200);
            }
        }
        assert_eq!(m.total_weight(), 200);
    }

    #[test]
    fn materialize_does_not_disturb_streaming() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..100u64 {
            m.update(i, 0, 1).unwrap();
        }
        let snap1 = m.materialize();
        for i in 100..200u64 {
            m.update(i, 0, 1).unwrap();
        }
        let snap2 = m.materialize();
        assert_eq!(snap1.nvals(), 100);
        assert_eq!(snap2.nvals(), 200);
        assert_eq!(m.stats().materializations, 2);
    }

    #[test]
    fn clear_resets_contents_and_stats() {
        let mut m = HierMatrix::<u64>::new(100, 100, small_config()).unwrap();
        for i in 0..50u64 {
            m.update(i, i, 1).unwrap();
        }
        m.clear();
        assert_eq!(m.total_entries_bound(), 0);
        assert_eq!(m.stats().updates, 0);
        assert_eq!(m.nvals_exact(), 0);
    }

    #[test]
    fn effectively_flat_config_never_cascades() {
        let mut m =
            HierMatrix::<u64>::new(1 << 20, 1 << 20, HierConfig::effectively_flat()).unwrap();
        for i in 0..1000u64 {
            m.update(i, i, 1).unwrap();
        }
        assert_eq!(m.stats().total_cascades(), 0);
        assert_eq!(m.nvals_exact(), 1000);
    }

    #[test]
    fn fast_update_fraction_high_for_duplicate_heavy_stream() {
        // When the stream repeatedly hits the same few cells, level 0
        // absorbs most weight and few entries cascade.
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..10_000u64 {
            m.update(i % 4, i % 4, 1).unwrap();
        }
        assert!(m.stats().fast_update_fraction() > 0.9);
    }

    #[test]
    fn memory_grows_with_entries() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        let before = m.memory_bytes();
        for i in 0..2000u64 {
            m.update(i, i, 1).unwrap();
        }
        assert!(m.memory_bytes() > before);
        assert_eq!(m.memory_per_level().len(), 4);
    }

    #[test]
    fn streaming_sink_path_equals_native_path() {
        let mut native = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        let mut sink: Box<dyn StreamingSink<u64>> =
            Box::new(HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap());
        for i in 0..500u64 {
            native.update(i % 97, (i * 11) % 89, 1).unwrap();
            sink.insert(i % 97, (i * 11) % 89, 1).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "hier-graphblas");
        assert_eq!(sink.nvals(), native.nvals_exact());
        assert_eq!(sink.total_weight(), 500.0);
        assert_eq!(native.total_weight(), 500);
    }

    #[test]
    fn sink_flush_completes_cascades() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        StreamingSink::insert_batch(
            &mut m,
            &(0..100u64).collect::<Vec<_>>(),
            &(0..100u64).collect::<Vec<_>>(),
            &[1u64; 100],
        )
        .unwrap();
        StreamingSink::flush(&mut m).unwrap();
        let per_level = m.entries_per_level();
        for (i, &n) in per_level.iter().enumerate().take(per_level.len() - 1) {
            assert_eq!(n, 0, "level {i} not flushed");
        }
    }

    #[test]
    fn reader_matches_materialized_answers() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        for i in 0..2000u64 {
            m.update(i % 97, (i * 13) % 211, (i % 5) + 1).unwrap();
        }
        // Deliberately unflushed: entries sit in several levels plus the
        // level-0 pending buffer.
        let snap = m.materialize_ref();
        assert_eq!(m.read_nnz(), snap.nvals());
        let (er, ec, ev) = snap.extract_tuples();
        let mut gr = Vec::new();
        let mut gc = Vec::new();
        let mut gv = Vec::new();
        m.read_entries(&mut |r, c, v| {
            gr.push(r);
            gc.push(c);
            gv.push(v);
        });
        assert_eq!((gr, gc, gv), (er.clone(), ec, ev));
        // Row queries for a present and an absent row.
        let row = er[0];
        let mut got_row = Vec::new();
        m.read_row(row, &mut got_row);
        let (cols, vals) = snap.dcsr().row(row).unwrap();
        let expect_row: Vec<(u64, u64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
        assert_eq!(got_row, expect_row);
        assert_eq!(m.read_row_degree(row), expect_row.len());
        assert_eq!(
            m.read_row_reduce(row),
            Some(expect_row.iter().map(|&(_, v)| v).sum())
        );
        m.read_row(1 << 19, &mut got_row);
        assert!(got_row.is_empty());
        assert_eq!(m.read_row_degree(1 << 19), 0);
        assert_eq!(m.read_row_reduce(1 << 19), None);
        assert_eq!(m.read_get(row, expect_row[0].0), Some(expect_row[0].1));
    }

    #[test]
    fn reader_top_k_matches_reference() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..500u64 {
            m.update(i % 23, (i * 7) % 200, 1).unwrap();
        }
        let snap = m.materialize_ref();
        let d = snap.dcsr();
        let mut expect: Vec<(u64, usize)> = (0..d.nrows_nonempty())
            .map(|k| (d.row_ids()[k], d.row_slot(k).0.len()))
            .collect();
        expect.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for k in [0usize, 1, 5, 1000] {
            let mut e = expect.clone();
            e.truncate(k);
            assert_eq!(m.read_top_k(k), e, "k = {k}");
        }
    }

    #[test]
    fn nvals_exact_without_pending_uses_cursors() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..300u64 {
            m.update(i, i, 1).unwrap();
        }
        m.settle_levels();
        assert!(m.levels.iter().all(|l| l.npending() == 0));
        assert_eq!(m.nvals_exact(), 300);
        // With pending tuples the fallback still answers exactly.
        m.update(5, 5, 1).unwrap();
        assert_eq!(m.nvals_exact(), 300);
        m.update(1 << 15, 1, 1).unwrap();
        assert_eq!(m.nvals_exact(), 301);
    }

    #[test]
    fn index_answers_equal_sweep_fallbacks() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        for i in 0..3000u64 {
            m.update(i % 131, (i * 17) % 257, i % 7 + 1).unwrap();
        }
        // Mid-stream: entries sit across levels plus the pending buffer.
        assert_eq!(m.read_nnz(), m.sweep_nnz());
        for row in [0u64, 1, 77, 130, 131, 9999] {
            assert_eq!(m.read_row_degree(row), m.sweep_row_degree(row), "{row}");
            assert_eq!(m.read_row_reduce(row), m.sweep_row_reduce(row), "{row}");
        }
        for k in [0usize, 1, 8, 1000] {
            assert_eq!(m.read_top_k(k), m.sweep_top_k(k), "k = {k}");
        }
        assert_eq!(m.read_degree_histogram(), m.sweep_degree_histogram());
        // Flush (cascades everything to the top) must not disturb the index.
        m.flush().unwrap();
        assert_eq!(m.read_nnz(), m.sweep_nnz());
        assert_eq!(m.read_top_k(5), m.sweep_top_k(5));
        // update_matrix path feeds the index too.
        let upd = Matrix::from_tuples(
            1 << 20,
            1 << 20,
            &[1, 500_000, 1],
            &[999, 0, 1000],
            &[2u64, 3, 4],
            Plus,
        )
        .unwrap();
        m.update_matrix(&upd).unwrap();
        assert_eq!(m.read_nnz(), m.sweep_nnz());
        assert_eq!(m.read_row_degree(500_000), 1);
        // clear resets the index with the content.
        m.clear();
        assert_eq!(m.read_nnz(), 0);
        assert!(m.read_top_k(3).is_empty());
    }

    #[test]
    fn column_index_answers_equal_sweep_fallbacks() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        for i in 0..3000u64 {
            m.update(i % 131, (i * 17) % 257, i % 7 + 1).unwrap();
        }
        // Mid-stream: entries sit across levels plus the pending buffer.
        for col in [0u64, 1, 77, 200, 256, 257, 9999] {
            assert_eq!(m.read_col_degree(col), m.sweep_col_degree(col), "{col}");
            assert!(
                reduce_agrees(m.read_col_reduce(col), m.sweep_col_reduce(col)),
                "col {col}"
            );
            let mut got = Vec::new();
            m.read_col(col, &mut got);
            let mut sweep = Vec::new();
            m.sweep_col(col, &mut sweep);
            assert_eq!(got, sweep, "{col}");
        }
        for k in [0usize, 1, 8, 1000] {
            assert_eq!(m.read_in_top_k(k), m.sweep_in_top_k(k), "k = {k}");
        }
        assert_eq!(m.read_in_degree_histogram(), m.sweep_in_degree_histogram());
        // Flush (cascades everything to the top) must not disturb the
        // column index, and more ingest keeps it maintained incrementally.
        m.flush().unwrap();
        for i in 0..500u64 {
            m.update(i % 7 + 200_000, (i * 5) % 61, 1).unwrap();
        }
        assert_eq!(m.read_in_top_k(5), m.sweep_in_top_k(5));
        assert_eq!(m.read_in_degree_histogram(), m.sweep_in_degree_histogram());
        // update_matrix path feeds the column index too.
        let upd = Matrix::from_tuples(
            1 << 20,
            1 << 20,
            &[1, 500_000, 1],
            &[999, 999_999, 1000],
            &[2u64, 3, 4],
            Plus,
        )
        .unwrap();
        m.update_matrix(&upd).unwrap();
        assert_eq!(m.read_col_degree(999_999), 1);
        assert_eq!(m.read_in_top_k(3), m.sweep_in_top_k(3));
        // clear resets the column index with the content.
        m.clear();
        assert!(m.read_in_top_k(3).is_empty());
        assert_eq!(m.read_col_degree(0), 0);
    }

    #[test]
    fn column_reads_mirror_a_transposed_flat_matrix() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        let mut transposed = Matrix::<u64>::new(1 << 16, 1 << 16);
        for i in 0..1200u64 {
            let (r, c, v) = ((i * 13) % 400, (i * 7) % 90, i % 5 + 1);
            m.update(r, c, v).unwrap();
            transposed.accum_element(c, r, v).unwrap();
        }
        transposed.wait();
        for col in [0u64, 1, 44, 89, 90, 12345] {
            let mut got = Vec::new();
            m.read_col(col, &mut got);
            let expect: Vec<(u64, u64)> = transposed
                .dcsr()
                .row(col)
                .map(|(rs, vs)| rs.iter().copied().zip(vs.iter().copied()).collect())
                .unwrap_or_default();
            assert_eq!(got, expect, "col {col}");
            assert_eq!(m.read_col_degree(col), expect.len());
        }
        // Column-range scan is column-major and matches the transpose's
        // row-range scan with coordinates swapped back.
        for (lo, hi) in [(0u64, 30u64), (30, 31), (85, 1 << 16)] {
            let mut got = Vec::new();
            m.read_col_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
            let mut expect = Vec::new();
            transposed.read_row_range(lo, hi, &mut |c, r, v| expect.push((r, c, v)));
            assert_eq!(got, expect, "range {lo}..{hi}");
        }
    }

    #[test]
    fn batched_reads_match_singles() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..900u64 {
            m.update(i % 50, (i * 3) % 70, 1).unwrap();
        }
        let rows = [0u64, 7, 49, 50, 60_000];
        let batch = m.read_rows(&rows);
        assert_eq!(batch.len(), rows.len());
        for (i, &row) in rows.iter().enumerate() {
            let mut single = Vec::new();
            m.read_row(row, &mut single);
            assert_eq!(batch[i], single, "row {row}");
        }
        let keys = [(0u64, 0u64), (7, 21), (49, 3), (50, 50), (60_000, 1)];
        let got = m.read_get_many(&keys);
        let expect: Vec<Option<u64>> = keys.iter().map(|&(r, c)| m.read_get(r, c)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn snapshot_carries_column_index_only_when_active() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        for i in 0..400u64 {
            m.update(i % 31, (i * 11) % 47, 1).unwrap();
        }
        // No column query yet: snapshot has row index only, but still
        // answers column queries via its own merged twin.
        let mut plain = m.snapshot();
        assert!(plain.has_index());
        assert!(!plain.has_col_index());
        let expect_top = m.sweep_in_top_k(4);
        assert_eq!(plain.read_in_top_k(4), expect_top);
        // Activate the column index, snapshot again: the view rides along
        // and survives further ingest on the source.
        let live_top = m.read_in_top_k(4);
        assert_eq!(live_top, expect_top);
        let mut indexed = m.snapshot();
        assert!(indexed.has_col_index());
        for i in 0..400u64 {
            m.update(i + 1000, 0, 1).unwrap();
        }
        assert_eq!(indexed.read_in_top_k(4), expect_top);
        assert!(m.read_col_degree(0) > indexed.read_col_degree(0));
    }

    #[test]
    fn read_row_range_matches_filtered_entries() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        for i in 0..800u64 {
            m.update((i * 13) % 500, i % 40, 1).unwrap();
        }
        let mut all = Vec::new();
        m.read_entries(&mut |r, c, v| all.push((r, c, v)));
        for (lo, hi) in [(0u64, 100u64), (100, 101), (250, 499), (600, 1 << 20)] {
            let mut got = Vec::new();
            m.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
            let expect: Vec<_> = all
                .iter()
                .copied()
                .filter(|&(r, _, _)| r >= lo && r < hi)
                .collect();
            assert_eq!(got, expect, "range {lo}..{hi}");
        }
    }

    #[test]
    fn snapshot_overlaps_with_ingest() {
        let mut m = HierMatrix::<u64>::new(1 << 20, 1 << 20, small_config()).unwrap();
        for i in 0..500u64 {
            m.update(i % 97, (i * 3) % 211, 1).unwrap();
        }
        let frozen = m.materialize_ref();
        let mut snap = m.snapshot();
        assert!(snap.has_index());
        // Keep streaming: the snapshot must not move.
        for i in 0..500u64 {
            m.update((i % 89) + 100_000, i % 50, 1).unwrap();
        }
        assert_eq!(snap.read_nnz(), frozen.nvals());
        let probe = frozen.dcsr().row_ids()[0];
        assert_eq!(
            snap.read_row_degree(probe),
            frozen.dcsr().row(probe).unwrap().0.len()
        );
        let mut entries = Vec::new();
        snap.read_entries(&mut |r, c, v| entries.push((r, c, v)));
        let (er, ec, ev) = frozen.extract_tuples();
        let expect: Vec<_> = er
            .into_iter()
            .zip(ec)
            .zip(ev)
            .map(|((r, c), v)| (r, c, v))
            .collect();
        assert_eq!(entries, expect);
        // The live matrix has moved on.
        assert!(m.read_nnz() > snap.read_nnz());
    }

    #[test]
    fn snapshot_ref_carries_pending_tail() {
        let mut m = HierMatrix::<u64>::new(1 << 16, 1 << 16, small_config()).unwrap();
        m.update(3, 3, 5).unwrap();
        m.update(3, 4, 6).unwrap();
        // Pending only — the &self snapshot copies the tail.
        let mut snap = m.snapshot_ref();
        assert!(!snap.has_index());
        assert_eq!(snap.read_nnz(), 2);
        assert_eq!(snap.read_get(3, 3), Some(5));
        assert_eq!(snap.read_row_reduce(3), Some(11));
        // Settled source with a live (query-activated) index: the &self
        // snapshot carries the index view.
        assert_eq!(m.read_nnz(), 2);
        let mut settled_snap = m.snapshot_ref();
        assert!(settled_snap.has_index());
        assert_eq!(settled_snap.read_nnz(), 2);
        assert_eq!(settled_snap.read_top_k(1), vec![(3, 2)]);
    }

    #[test]
    fn f64_values_supported() {
        let mut m = HierMatrix::<f64>::new(100, 100, small_config()).unwrap();
        for _ in 0..100 {
            m.update(1, 1, 0.5).unwrap();
        }
        assert_eq!(m.get(1, 1), Some(50.0));
        assert_eq!(m.total_weight(), 50);
    }
}
