//! Cut-schedule tuning.
//!
//! The paper notes that "the cut values c_i can be selected so as to
//! optimize the performance with respect to particular applications".  This
//! module provides two tools:
//!
//! * [`recommend_cuts`] — an analytic recommendation derived from the
//!   memory-hierarchy cost model (level 1 sized to the L2 working set,
//!   geometric growth up the hierarchy); and
//! * [`sweep_cut_schedules`] — an exhaustive sweep of candidate schedules
//!   under the cost model, used by the `cut_sweep` ablation benchmark
//!   (experiment E4) and as a starting point for empirical tuning.

use crate::config::HierConfig;
use hyperstream_memsim::{CostModel, MemoryHierarchy};

/// One evaluated cut schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CutRecommendation {
    /// The cut values (levels `1..N-1`).
    pub cuts: Vec<u64>,
    /// Predicted updates per second under the cost model.
    pub predicted_updates_per_sec: f64,
    /// Predicted speed-up over a flat (single-level) matrix with the same
    /// total nonzero count.
    pub predicted_speedup_vs_flat: f64,
}

/// Analytically recommend a cut schedule for a stream expected to
/// accumulate `expected_nnz` stored entries.
///
/// Level 1 is sized so its tuple buffer fits comfortably in the L2 cache
/// (half of L2 by default), and each higher level is `ratio` times larger,
/// stopping once the next cut would exceed `expected_nnz` (the top level is
/// unbounded anyway).
pub fn recommend_cuts(hierarchy: &MemoryHierarchy, expected_nnz: u64, ratio: u64) -> HierConfig {
    let model = CostModel::new(hierarchy.clone());
    let bytes_per_entry = model.bytes_per_entry.max(1);
    // Use the second level of the hierarchy (L2) as the residence target for
    // level 1; fall back to the first level for exotic hierarchies.
    let levels = hierarchy.levels();
    let target = levels.get(1).unwrap_or(&levels[0]);
    let base = (target.capacity_bytes / 2 / bytes_per_entry).max(1024);

    let ratio = ratio.max(2);
    let mut cuts = vec![base];
    loop {
        let next = cuts.last().unwrap().saturating_mul(ratio);
        if next >= expected_nnz || cuts.len() >= 6 {
            break;
        }
        cuts.push(next);
    }
    HierConfig::from_cuts(cuts).expect("generated schedule is strictly increasing")
}

/// Evaluate a family of candidate schedules under the cost model and return
/// them sorted best-first by predicted update rate.
///
/// Candidates are geometric schedules with `levels` ∈ `level_counts`,
/// base cut ∈ `base_cuts` and growth ratio `ratio`.
pub fn sweep_cut_schedules(
    hierarchy: &MemoryHierarchy,
    expected_nnz: u64,
    level_counts: &[usize],
    base_cuts: &[u64],
    ratio: u64,
) -> Vec<CutRecommendation> {
    let model = CostModel::new(hierarchy.clone());
    let mut out = Vec::new();
    for &levels in level_counts {
        for &base in base_cuts {
            let Ok(cfg) = HierConfig::geometric(levels.max(2), base, ratio.max(2)) else {
                continue;
            };
            let cost = model.hierarchical_update_cost(cfg.cuts(), expected_nnz);
            let speedup = model.predicted_speedup(cfg.cuts(), expected_nnz, 1 << 20);
            out.push(CutRecommendation {
                cuts: cfg.cuts().to_vec(),
                predicted_updates_per_sec: cost.updates_per_second(),
                predicted_speedup_vs_flat: speedup,
            });
        }
    }
    out.sort_by(|a, b| {
        b.predicted_updates_per_sec
            .partial_cmp(&a.predicted_updates_per_sec)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommendation_is_valid_config() {
        let h = MemoryHierarchy::xeon_node();
        let cfg = recommend_cuts(&h, 100_000_000, 8);
        assert!(cfg.levels() >= 2);
        // First cut should fit comfortably in L2 when expressed in bytes.
        let first_bytes = cfg.cuts()[0] * 24;
        assert!(first_bytes <= h.levels()[1].capacity_bytes);
        // Cuts strictly increasing is enforced by construction.
        for w in cfg.cuts().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn recommendation_caps_levels() {
        let h = MemoryHierarchy::xeon_node();
        let cfg = recommend_cuts(&h, u64::MAX / 4, 4);
        assert!(cfg.levels() <= 7);
    }

    #[test]
    fn small_streams_get_shallow_hierarchies() {
        let h = MemoryHierarchy::xeon_node();
        let small = recommend_cuts(&h, 10_000, 8);
        let large = recommend_cuts(&h, 1_000_000_000, 8);
        assert!(small.levels() <= large.levels());
    }

    #[test]
    fn sweep_sorted_best_first_and_prefers_hierarchies() {
        let h = MemoryHierarchy::xeon_node();
        let recs = sweep_cut_schedules(
            &h,
            100_000_000,
            &[2, 3, 4, 5],
            &[1 << 12, 1 << 15, 1 << 18],
            8,
        );
        assert!(!recs.is_empty());
        for w in recs.windows(2) {
            assert!(w[0].predicted_updates_per_sec >= w[1].predicted_updates_per_sec);
        }
        // The best schedule should beat the flat baseline.
        assert!(recs[0].predicted_speedup_vs_flat > 1.0);
    }

    #[test]
    fn sweep_skips_invalid_candidates() {
        let h = MemoryHierarchy::xeon_node();
        // level count 0/1 coerced to 2; base 0 is invalid and skipped.
        let recs = sweep_cut_schedules(&h, 1_000_000, &[1], &[0, 1024], 8);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cuts, vec![1024]);
    }
}
