//! # hyperstream-hier
//!
//! Hierarchical hypersparse GraphBLAS matrices — the primary contribution of
//! *"75,000,000,000 Streaming Inserts/Second Using Hierarchical Hypersparse
//! GraphBLAS Matrices"* (Kepner et al., 2020).
//!
//! ## The idea
//!
//! Streaming accumulation into one large hypersparse matrix is limited by
//! the memory hierarchy: once the matrix outgrows the caches, every update
//! (or every merge of a pending-tuple buffer) touches slow memory.  A
//! [`HierMatrix`] instead keeps `N` hypersparse matrices `A_1 … A_N` with
//! nonzero-count cuts `c_1 < c_2 < … < c_{N-1}`:
//!
//! * updates are added into `A_1` (tiny, cache resident);
//! * whenever `nnz(A_i) > c_i`, `A_{i+1} = A_{i+1} ⊕ A_i` and `A_i` is
//!   cleared (the *cascade*);
//! * a query materialises `A = Σ_i A_i`.
//!
//! Because ⊕ is an associative, commutative monoid, the cascade schedule
//! never changes the represented matrix — only the cost of maintaining it.
//!
//! ## Quick example
//!
//! ```
//! use hyperstream_hier::{HierConfig, HierMatrix};
//!
//! // 2^32 x 2^32 IPv4 traffic matrix, 4-level hierarchy.
//! let cfg = HierConfig::geometric(4, 1 << 12, 8).unwrap();
//! let mut m = HierMatrix::<u64>::new(1 << 32, 1 << 32, cfg).unwrap();
//!
//! for i in 0..100_000u64 {
//!     m.update(i % 1000, (i * 7) % 5000, 1).unwrap();
//! }
//! assert_eq!(m.total_weight(), 100_000);
//!
//! let snapshot = m.materialize();          // A = Σ A_i
//! assert!(snapshot.nvals() <= 100_000);
//! let stats = m.stats();
//! assert!(stats.cascades_from_level(0) > 0); // the hierarchy actually cascaded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod matrix;
pub mod memtrace;
pub mod persist;
pub mod pool;
pub mod sharded;
pub mod stats;
pub mod tuning;
pub mod windowed;

pub use config::HierConfig;
#[cfg(feature = "failpoints")]
pub use failpoint::FailAction;
pub use matrix::HierMatrix;
pub use memtrace::{simulate_flat_trace, simulate_hier_trace, TraceComparison};
pub use persist::{DurableConfig, FsyncPolicy, RecoveryReport};
pub use pool::{InstancePool, PartitionBuffers};
pub use sharded::{EngineHealth, ShardRecovery};
pub use sharded::{ShardPartitioner, ShardedConfig, ShardedHierMatrix, ShardedSnapshot};
pub use stats::HierStats;
pub use tuning::{recommend_cuts, sweep_cut_schedules, CutRecommendation};
pub use windowed::WindowedHierMatrix;

/// Evaluate a fallible fault-injection site: under the `failpoints`
/// feature an armed site may return [`GrbError::Injected`]
/// (`GrbError` = `hyperstream_graphblas::GrbError`), panic, or sleep;
/// without the feature the macro compiles to nothing.  The optional second
/// argument is the shard index the site reports for per-index arming.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        #[cfg(feature = "failpoints")]
        $crate::failpoint::check($name, usize::MAX)?;
    };
    ($name:expr, $idx:expr) => {
        #[cfg(feature = "failpoints")]
        $crate::failpoint::check($name, $idx)?;
    };
}

/// Panic-only form of [`failpoint!`] for infallible contexts (an armed
/// `error` action escalates to a panic).  Compiles to nothing without the
/// `failpoints` feature.
#[macro_export]
macro_rules! failpoint_panic {
    ($name:expr) => {
        #[cfg(feature = "failpoints")]
        $crate::failpoint::check_panic_only($name, usize::MAX);
    };
    ($name:expr, $idx:expr) => {
        #[cfg(feature = "failpoints")]
        $crate::failpoint::check_panic_only($name, $idx);
    };
}
