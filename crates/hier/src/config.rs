//! Hierarchy configuration: number of levels and nonzero-count cuts.

use hyperstream_graphblas::{GrbError, GrbResult};

/// Configuration of an N-level hierarchical hypersparse matrix.
///
/// `cuts[i]` is the nonzero threshold `c_{i+1}` of level `i + 1` (0-based
/// level `i`); when `nnz(A_i) > cuts[i]` the level cascades into `A_{i+1}`.
/// The last level has no cut — it simply accumulates (the paper stops the
/// cascade at `i = N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierConfig {
    cuts: Vec<u64>,
}

impl HierConfig {
    /// Build from explicit cut values for levels `1..N-1`.
    ///
    /// The resulting hierarchy has `cuts.len() + 1` levels.  Cuts must be
    /// non-zero and strictly increasing (a non-increasing schedule would
    /// cascade on every update).
    pub fn from_cuts(cuts: Vec<u64>) -> GrbResult<Self> {
        if cuts.is_empty() {
            return Err(GrbError::EmptyObject("cut list"));
        }
        if cuts.contains(&0) {
            return Err(GrbError::InvalidValue("cuts must be non-zero".into()));
        }
        for w in cuts.windows(2) {
            if w[0] >= w[1] {
                return Err(GrbError::InvalidValue(format!(
                    "cuts must be strictly increasing, got {} then {}",
                    w[0], w[1]
                )));
            }
        }
        Ok(Self { cuts })
    }

    /// A geometric cut schedule: `levels` total levels, first cut `base`,
    /// each subsequent cut `ratio` times larger.
    ///
    /// The paper tunes cuts per application; a geometric schedule whose
    /// first level fits in L2 and whose ratio is ~8 is the default used by
    /// the benchmarks.
    pub fn geometric(levels: usize, base: u64, ratio: u64) -> GrbResult<Self> {
        if levels < 2 {
            return Err(GrbError::InvalidValue(
                "a hierarchy needs at least 2 levels".into(),
            ));
        }
        if base == 0 || ratio < 2 {
            return Err(GrbError::InvalidValue(
                "base must be non-zero and ratio at least 2".into(),
            ));
        }
        let cuts = (0..levels - 1)
            .map(|i| {
                base.checked_mul(ratio.pow(i as u32))
                    .ok_or_else(|| GrbError::InvalidValue("cut schedule overflows u64".into()))
            })
            .collect::<GrbResult<Vec<u64>>>()?;
        Self::from_cuts(cuts)
    }

    /// The default configuration used throughout the benchmarks: four
    /// levels with cuts 2^17, 2^20, 2^23 (first level ~3 MiB of tuples —
    /// cache resident; upper levels amortise DRAM traffic).
    pub fn paper_default() -> Self {
        Self::from_cuts(vec![1 << 17, 1 << 20, 1 << 23]).expect("static schedule is valid")
    }

    /// A single-level "hierarchy" (no cuts is not representable, so this is
    /// two levels with an enormous first cut): effectively the flat
    /// baseline expressed in the same API, used by ablation benchmarks.
    pub fn effectively_flat() -> Self {
        Self::from_cuts(vec![u64::MAX / 2]).expect("static schedule is valid")
    }

    /// Number of levels (`cuts.len() + 1`).
    pub fn levels(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The cut for level `i` (0-based).  The last level has no cut.
    pub fn cut(&self, level: usize) -> Option<u64> {
        self.cuts.get(level).copied()
    }

    /// All cuts.
    pub fn cuts(&self) -> &[u64] {
        &self.cuts
    }
}

impl Default for HierConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cuts_valid() {
        let c = HierConfig::from_cuts(vec![100, 1000, 10_000]).unwrap();
        assert_eq!(c.levels(), 4);
        assert_eq!(c.cut(0), Some(100));
        assert_eq!(c.cut(2), Some(10_000));
        assert_eq!(c.cut(3), None);
        assert_eq!(c.cuts(), &[100, 1000, 10_000]);
    }

    #[test]
    fn invalid_cuts_rejected() {
        assert!(HierConfig::from_cuts(vec![]).is_err());
        assert!(HierConfig::from_cuts(vec![0, 10]).is_err());
        assert!(HierConfig::from_cuts(vec![10, 10]).is_err());
        assert!(HierConfig::from_cuts(vec![100, 50]).is_err());
    }

    #[test]
    fn geometric_schedule() {
        let c = HierConfig::geometric(4, 1024, 8).unwrap();
        assert_eq!(c.cuts(), &[1024, 8192, 65536]);
        assert_eq!(c.levels(), 4);
    }

    #[test]
    fn geometric_invalid_params() {
        assert!(HierConfig::geometric(1, 1024, 8).is_err());
        assert!(HierConfig::geometric(4, 0, 8).is_err());
        assert!(HierConfig::geometric(4, 1024, 1).is_err());
        assert!(HierConfig::geometric(12, u64::MAX / 2, 8).is_err());
    }

    #[test]
    fn default_schedules() {
        let d = HierConfig::default();
        assert_eq!(d, HierConfig::paper_default());
        assert_eq!(d.levels(), 4);
        let flat = HierConfig::effectively_flat();
        assert_eq!(flat.levels(), 2);
        assert!(flat.cut(0).unwrap() > 1 << 60);
    }
}
