//! A pool of independent hierarchical matrix instances.
//!
//! The paper's 75 G-updates/s figure comes from 31,000 *independent*
//! instances, one per process, each building its own graph.  Within one
//! process the same pattern appears when a stream is sharded by flow hash
//! across several instances (e.g. one per worker thread).  `InstancePool`
//! provides that sharding plus aggregate statistics; the
//! `hyperstream-cluster` crate runs one pool per simulated node.

use crate::config::HierConfig;
use crate::matrix::HierMatrix;
use crate::stats::HierStats;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::{GrbError, GrbResult, Index, Matrix, MatrixReader, ScalarType};

/// The multiplicative row hash shared by every row-based sharder in the
/// workspace ([`InstancePool::route`], the sharded engine's row-hash
/// partitioner, and the workload-side stream partitioning).
pub fn row_hash(row: Index) -> u64 {
    row.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Re-rank concatenated per-part top-k lists from parts that own
/// *disjoint row sets* (instances, shards, shard snapshots): the global
/// top-k is the top-k of the concatenation, ordered degree descending
/// then row ascending.  One combine rule shared by every disjoint-row
/// engine so their tie-breaking can never diverge.
pub(crate) fn rerank_top_k(mut all: Vec<(Index, usize)>, k: usize) -> Vec<(Index, usize)> {
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Sum per-part degree histograms from disjoint-row parts: every row is
/// counted by exactly one part, so the counts add.
pub(crate) fn sum_histograms(
    parts: impl IntoIterator<Item = std::collections::BTreeMap<u64, u64>>,
) -> std::collections::BTreeMap<u64, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for part in parts {
        for (d, n) in part {
            *counts.entry(d).or_insert(0) += n;
        }
    }
    counts
}

/// Sum per-part `(column, degree)` partials from parts that own disjoint
/// **row** sets.  Columns are *not* disjoint across row-partitioned parts
/// — one column's cells split over every part — so, unlike the row-side
/// top-k, partial rankings cannot be re-ranked: the per-column degrees
/// must be summed first and ranked afterwards.
pub(crate) fn sum_col_degrees(
    parts: impl IntoIterator<Item = Vec<(Index, usize)>>,
) -> std::collections::BTreeMap<Index, usize> {
    let mut degrees = std::collections::BTreeMap::new();
    for part in parts {
        for (c, d) in part {
            *degrees.entry(c).or_insert(0) += d;
        }
    }
    degrees
}

/// Rank a summed column→degree map (degree descending, column ascending)
/// and keep the first `k` — the in-degree combine rule paired with
/// [`sum_col_degrees`], mirroring [`rerank_top_k`]'s tie-breaking.
pub(crate) fn rank_col_degrees(
    degrees: &std::collections::BTreeMap<Index, usize>,
    k: usize,
) -> Vec<(Index, usize)> {
    let mut all: Vec<(Index, usize)> = degrees.iter().map(|(&c, &d)| (c, d)).collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Histogram of a summed column→degree map — the in-degree mirror of
/// [`sum_histograms`], which would over-count columns whose cells split
/// across parts if applied to per-part in-degree histograms.
pub(crate) fn col_degree_histogram(
    degrees: &std::collections::BTreeMap<Index, usize>,
) -> std::collections::BTreeMap<u64, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for &d in degrees.values() {
        *counts.entry(d as u64).or_insert(0) += 1;
    }
    counts
}

/// Reusable per-shard staging buffers for partitioning a tuple stream.
///
/// Partitioning a 100,000-tuple batch across N shards must not allocate
/// 3·N vectors per batch; a `PartitionBuffers` is filled, drained
/// shard-by-shard, and reset (retaining capacity) for the next batch.  Both
/// [`InstancePool::update_batch`] and the sharded parallel engine
/// (`crate::sharded::ShardedHierMatrix`) stage through this type.
#[derive(Debug, Clone, Default)]
pub struct PartitionBuffers<T> {
    rows: Vec<Vec<Index>>,
    cols: Vec<Vec<Index>>,
    vals: Vec<Vec<T>>,
    total: usize,
}

impl<T: ScalarType> PartitionBuffers<T> {
    /// Empty buffers for `shards` shards.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            rows: (0..shards).map(|_| Vec::new()).collect(),
            cols: (0..shards).map(|_| Vec::new()).collect(),
            vals: (0..shards).map(|_| Vec::new()).collect(),
            total: 0,
        }
    }

    /// Number of shards the buffers stage for.
    pub fn shards(&self) -> usize {
        self.rows.len()
    }

    /// Total tuples currently staged across all shards.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Tuples currently staged for `shard`.
    pub fn staged(&self, shard: usize) -> usize {
        self.rows[shard].len()
    }

    /// Stage one tuple for `shard`.
    pub fn push(&mut self, shard: usize, row: Index, col: Index, val: T) {
        self.rows[shard].push(row);
        self.cols[shard].push(col);
        self.vals[shard].push(val);
        self.total += 1;
    }

    /// The staged tuple slices of `shard`.
    pub fn shard_slices(&self, shard: usize) -> (&[Index], &[Index], &[T]) {
        (&self.rows[shard], &self.cols[shard], &self.vals[shard])
    }

    /// Take ownership of `shard`'s staged tuple vectors, installing
    /// `replacement` (cleared first) as the shard's fresh staging space.
    /// This is the zero-copy handoff of the persistent-pool engine: the
    /// staged buffers travel to the worker whole, and recycled buffers
    /// come back as the replacement, so steady-state dispatch allocates
    /// nothing.
    pub fn take_shard(
        &mut self,
        shard: usize,
        replacement: (Vec<Index>, Vec<Index>, Vec<T>),
    ) -> (Vec<Index>, Vec<Index>, Vec<T>) {
        let (mut r, mut c, mut v) = replacement;
        r.clear();
        c.clear();
        v.clear();
        std::mem::swap(&mut self.rows[shard], &mut r);
        std::mem::swap(&mut self.cols[shard], &mut c);
        std::mem::swap(&mut self.vals[shard], &mut v);
        self.total -= r.len();
        (r, c, v)
    }

    /// Clear every shard's staging, retaining all capacity.
    pub fn reset(&mut self) {
        for s in 0..self.rows.len() {
            self.rows[s].clear();
            self.cols[s].clear();
            self.vals[s].clear();
        }
        self.total = 0;
    }
}

/// A set of independent [`HierMatrix`] instances sharded by source index.
#[derive(Debug, Clone)]
pub struct InstancePool<T> {
    instances: Vec<HierMatrix<T>>,
    staging: PartitionBuffers<T>,
}

impl<T: ScalarType> InstancePool<T> {
    /// Create `count` instances of `nrows x ncols` matrices sharing one cut
    /// configuration.
    pub fn new(count: usize, nrows: Index, ncols: Index, config: HierConfig) -> GrbResult<Self> {
        let mut instances = Vec::with_capacity(count.max(1));
        for _ in 0..count.max(1) {
            instances.push(HierMatrix::new(nrows, ncols, config.clone())?);
        }
        Ok(Self {
            staging: PartitionBuffers::new(count.max(1)),
            instances,
        })
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the pool has no instances (never the case for pools built
    /// with [`InstancePool::new`], which clamps to at least one).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instance an update with this source index is routed to.
    pub fn route(&self, src: Index) -> usize {
        // Multiplicative hash so nearby sources spread across instances.
        (row_hash(src) % self.instances.len() as u64) as usize
    }

    /// Apply an update, routing it to the owning instance.
    pub fn update(&mut self, src: Index, dst: Index, val: T) -> GrbResult<()> {
        let i = self.route(src);
        self.instances[i].update(src, dst, val)
    }

    /// Apply a batch of updates, routing each tuple to its owning instance
    /// and feeding every instance through the bulk
    /// [`HierMatrix::update_batch`] path.  The partition staging buffers are
    /// reused across calls.
    pub fn update_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        hyperstream_graphblas::sink::check_tuple_lengths(rows, cols, vals)?;
        let (nr, nc) = {
            let first = &self.instances[0];
            (first.nrows(), first.ncols())
        };
        // The leading reset establishes a clean slate (it also heals state
        // left by a mid-loop validation error in an earlier call).
        self.staging.reset();
        for i in 0..rows.len() {
            hyperstream_graphblas::validate_index(rows[i], nr)?;
            hyperstream_graphblas::validate_index(cols[i], nc)?;
            let shard = self.route(rows[i]);
            self.staging.push(shard, rows[i], cols[i], vals[i]);
        }
        for (shard, instance) in self.instances.iter_mut().enumerate() {
            let (r, c, v) = self.staging.shard_slices(shard);
            if !r.is_empty() {
                instance.update_batch(r, c, v)?;
            }
        }
        Ok(())
    }

    /// Direct access to an instance.
    pub fn instance(&self, i: usize) -> &HierMatrix<T> {
        &self.instances[i]
    }

    /// Direct mutable access to an instance.
    pub fn instance_mut(&mut self, i: usize) -> &mut HierMatrix<T> {
        &mut self.instances[i]
    }

    /// Iterate over the instances.
    pub fn iter(&self) -> impl Iterator<Item = &HierMatrix<T>> {
        self.instances.iter()
    }

    /// Total updates applied across all instances.
    pub fn total_updates(&self) -> u64 {
        self.instances.iter().map(|m| m.stats().updates).sum()
    }

    /// Aggregate statistics (sums over instances).
    pub fn aggregate_stats(&self) -> HierStats {
        let levels = self.instances.first().map(|m| m.levels()).unwrap_or(1);
        let mut agg = HierStats::new(levels);
        for m in &self.instances {
            let s = m.stats();
            agg.updates += s.updates;
            agg.materializations += s.materializations;
            for l in 0..levels {
                agg.cascades[l] += s.cascades_from_level(l);
                agg.entries_moved[l] += s.entries_moved_from_level(l);
            }
        }
        agg
    }

    /// The `k` highest-degree rows across the pool (degree descending, row
    /// ascending).  Instances are routed by row hash — they own disjoint
    /// row sets — so the pool's top-k is the re-ranked concatenation of
    /// each instance's O(k) degree-index answer; no instance materialises.
    pub fn top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(Index, usize)> = Vec::new();
        for m in &mut self.instances {
            all.extend(m.read_top_k(k));
        }
        rerank_top_k(all, k)
    }

    /// Exact distinct cells across the pool: the per-instance degree-index
    /// counts sum because instances own disjoint rows.
    pub fn nnz_exact(&mut self) -> usize {
        self.instances.iter_mut().map(|m| m.read_nnz()).sum()
    }

    /// The pool's degree histogram (per-instance index histograms summed).
    pub fn degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        sum_histograms(self.instances.iter_mut().map(|m| m.read_degree_histogram()))
    }

    /// The `k` highest **in-degree** columns across the pool.  Instances
    /// own disjoint rows but share columns, so the per-instance column
    /// stats are *summed* per column (never re-ranked) before ranking.
    pub fn in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        let parts: Vec<Vec<(Index, usize)>> = self
            .instances
            .iter_mut()
            .map(|m| {
                let bound = m.read_nnz();
                m.read_in_top_k(bound)
            })
            .collect();
        rank_col_degrees(&sum_col_degrees(parts), k)
    }

    /// In-degree of one column across the pool (per-instance column-index
    /// answers summed — columns are not disjoint across instances).
    pub fn col_degree(&mut self, col: Index) -> usize {
        self.instances
            .iter_mut()
            .map(|m| m.read_col_degree(col))
            .sum()
    }

    /// The pool's in-degree histogram, computed from summed per-column
    /// degrees (summing per-instance histograms would split columns).
    pub fn in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let parts: Vec<Vec<(Index, usize)>> = self
            .instances
            .iter_mut()
            .map(|m| {
                let bound = m.read_nnz();
                m.read_in_top_k(bound)
            })
            .collect();
        col_degree_histogram(&sum_col_degrees(parts))
    }

    /// Materialise the union of all instances into a single matrix
    /// (sum of the per-instance matrices — valid because instances hold
    /// disjoint or additively-combinable content).
    ///
    /// All instances' levels merge through the k-way cursor kernel in one
    /// pass, instead of materialising every instance and summing the
    /// copies pairwise.
    pub fn materialize_union(&self) -> GrbResult<Matrix<T>> {
        // Construction clamps the pool to at least one instance, so an
        // empty pool means the invariant broke — report it, don't panic.
        let first = self
            .instances
            .first()
            .ok_or(GrbError::EmptyObject("instance pool"))?;
        let (nrows, ncols) = (first.nrows(), first.ncols());
        let dcsrs: Vec<&hyperstream_graphblas::prelude::Dcsr<T>> = self
            .instances
            .iter()
            .flat_map(|m| m.level_dcsrs())
            .collect();
        // Previously `.ok()?` collapsed a merge failure into `None`,
        // indistinguishable from an empty pool; propagate it instead.
        let merged = hyperstream_graphblas::cursor::merge_levels(nrows, ncols, &dcsrs, Plus)?;
        let mut acc = Matrix::from_dcsr(merged);
        for m in &self.instances {
            m.fold_pending_into(&mut acc);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> InstancePool<u64> {
        InstancePool::new(
            n,
            1 << 20,
            1 << 20,
            HierConfig::from_cuts(vec![16, 256]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_clamps_to_one() {
        assert_eq!(pool(0).len(), 1);
        assert_eq!(pool(4).len(), 4);
        assert!(!pool(4).is_empty());
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let p = pool(7);
        for src in 0..1000u64 {
            let r1 = p.route(src);
            let r2 = p.route(src);
            assert_eq!(r1, r2);
            assert!(r1 < 7);
        }
    }

    #[test]
    fn routing_spreads_sources() {
        let p = pool(8);
        let mut counts = vec![0usize; 8];
        for src in 0..8000u64 {
            counts[p.route(src)] += 1;
        }
        // No instance should be starved or hold the vast majority.
        assert!(
            counts.iter().all(|&c| c > 200),
            "skewed routing: {counts:?}"
        );
    }

    #[test]
    fn updates_routed_and_counted() {
        let mut p = pool(4);
        for i in 0..400u64 {
            p.update(i, i * 2 % 1000, 1).unwrap();
        }
        assert_eq!(p.total_updates(), 400);
        let agg = p.aggregate_stats();
        assert_eq!(agg.updates, 400);
        // Every instance should have received some updates.
        assert!(p.iter().all(|m| m.stats().updates > 0));
    }

    #[test]
    fn union_matches_total_weight() {
        let mut p = pool(3);
        for i in 0..300u64 {
            p.update(i % 50, i % 70, 2).unwrap();
        }
        let union = p.materialize_union().unwrap();
        let total: u64 = union.extract_tuples().2.iter().sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn update_batch_routes_like_singles() {
        let rows: Vec<u64> = (0..500).map(|i| i * 7 % 300).collect();
        let cols: Vec<u64> = (0..500).map(|i| i * 13 % 400).collect();
        let vals: Vec<u64> = vec![2; 500];
        let mut batched = pool(4);
        batched.update_batch(&rows, &cols, &vals).unwrap();
        let mut singles = pool(4);
        for i in 0..rows.len() {
            singles.update(rows[i], cols[i], vals[i]).unwrap();
        }
        assert_eq!(batched.total_updates(), singles.total_updates());
        let bu = batched.materialize_union().unwrap();
        let su = singles.materialize_union().unwrap();
        assert_eq!(bu.extract_tuples(), su.extract_tuples());
    }

    #[test]
    fn pool_analytics_match_materialized_union() {
        let mut p = pool(3);
        for i in 0..600u64 {
            p.update(i % 37, (i * 11) % 101, 1).unwrap();
        }
        let union = p.materialize_union().unwrap();
        assert_eq!(p.nnz_exact(), union.nvals());
        let d = union.dcsr();
        let mut expect: Vec<(u64, usize)> = (0..d.nrows_nonempty())
            .map(|k| (d.row_ids()[k], d.row_slot(k).0.len()))
            .collect();
        expect.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        expect.truncate(5);
        assert_eq!(p.top_k(5), expect);
        assert!(p.top_k(0).is_empty());
        let mut union_ro = union;
        assert_eq!(p.degree_histogram(), union_ro.read_degree_histogram());
        // Analytics never materialise any instance.
        assert_eq!(p.aggregate_stats().materializations, 0);
    }

    #[test]
    fn pool_column_analytics_sum_across_instances() {
        let mut p = pool(3);
        for i in 0..600u64 {
            // Rows spread across instances; columns deliberately shared, so
            // each column's degree splits over several instances.
            p.update(i % 37, (i * 11) % 23, 1).unwrap();
        }
        let mut union = p.materialize_union().unwrap();
        for k in [0usize, 1, 5, 100] {
            assert_eq!(p.in_top_k(k), union.read_in_top_k(k), "k = {k}");
        }
        for col in 0u64..25 {
            assert_eq!(p.col_degree(col), union.read_col_degree(col), "{col}");
        }
        assert_eq!(p.in_degree_histogram(), union.read_in_degree_histogram());
        assert_eq!(p.aggregate_stats().materializations, 0);
    }

    #[test]
    fn update_batch_validates_before_applying() {
        let mut p = pool(2);
        let bad = (1u64 << 20) + 1; // out of the 2^20 bounds
        assert!(p.update_batch(&[1, bad], &[1, 1], &[1, 1]).is_err());
        assert_eq!(p.total_updates(), 0);
        assert!(p.update_batch(&[1], &[1, 2], &[1]).is_err());
    }

    #[test]
    fn partition_buffers_reuse() {
        let mut b = PartitionBuffers::<u64>::new(3);
        assert_eq!(b.shards(), 3);
        b.push(0, 1, 1, 1);
        b.push(2, 2, 2, 2);
        assert_eq!(b.total(), 2);
        assert_eq!(b.staged(0), 1);
        assert_eq!(b.staged(1), 0);
        assert_eq!(b.shard_slices(2), (&[2u64][..], &[2u64][..], &[2u64][..]));
        b.reset();
        assert_eq!(b.total(), 0);
        assert_eq!(b.staged(2), 0);
        // Zero shards clamps to one.
        assert_eq!(PartitionBuffers::<u64>::new(0).shards(), 1);
    }

    #[test]
    fn row_hash_spreads() {
        let mut counts = [0usize; 4];
        for r in 0..4000u64 {
            counts[(row_hash(r) % 4) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500), "skewed: {counts:?}");
    }

    #[test]
    fn per_instance_access() {
        let mut p = pool(2);
        p.instance_mut(0).update(1, 1, 5).unwrap();
        assert_eq!(p.instance(0).get(1, 1), Some(5));
        assert_eq!(p.instance(1).get(1, 1), None);
    }
}
