//! Time-windowed hierarchical matrices.
//!
//! The traffic-matrix applications the paper cites analyse *temporal
//! fluctuations* — packet counts per origin/destination per time window.
//! [`WindowedHierMatrix`] keeps one [`HierMatrix`] per fixed-length window
//! of the update stream, rotating automatically, so an analysis pipeline can
//! ask for "the matrix of the last window" or "the sum over the last k
//! windows" while the stream keeps flowing.  Each window is itself a full
//! hierarchical matrix, so per-window ingest keeps the paper's fast-memory
//! behaviour.

use crate::config::HierConfig;
use crate::matrix::HierMatrix;
use hyperstream_graphblas::cursor::{
    for_each_merged, merge_levels, merged_col_degree, merged_col_into, merged_col_range,
    merged_col_reduce, merged_in_degree_histogram, merged_in_top_k, merged_nnz, merged_point,
    merged_row_degree, merged_row_into, merged_row_range, merged_row_reduce, merged_top_k,
    LevelCursors,
};
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::{
    DegreeIndex, GrbResult, Index, Matrix, MatrixReader, ScalarType, StreamingSink,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A rotating sequence of hierarchical matrices, one per time window.
///
/// The reader's degree-centric answers come from a **union degree index**
/// over the retained windows.  Unlike a single hierarchy — whose index
/// maintains itself incrementally because cells never leave the union —
/// rotation *evicts* whole windows, and a cell may or may not survive in
/// other retained windows; the union index therefore follows the
/// decrement-or-rebuild rule in its simplest exact form: any mutation
/// (update, rotation, eviction) marks it stale and the next degree query
/// rebuilds it in one merged cursor sweep.  Within a query burst (the
/// analytics pattern: a batch arrives, then many queries) every answer
/// after the first is O(1)/O(k).
#[derive(Debug, Clone)]
pub struct WindowedHierMatrix<T> {
    nrows: Index,
    ncols: Index,
    config: HierConfig,
    /// Number of updates per window.
    window_updates: u64,
    /// Maximum number of retained windows (older windows are dropped).
    max_windows: usize,
    /// Closed windows, oldest first.
    closed: VecDeque<HierMatrix<T>>,
    /// The window currently receiving updates.
    current: HierMatrix<T>,
    /// Updates received by the current window.
    current_count: u64,
    /// Total windows ever closed (including dropped ones).
    windows_closed: u64,
    /// Lazily rebuilt union degree index over the retained windows.
    index: DegreeIndex<T>,
    /// True when a mutation has outdated `index`.
    index_stale: bool,
    /// Column twin of `index`: union in-degree stats over the retained
    /// windows, following the same stale-mark + wholesale-rebuild rule
    /// (eviction can remove a column's cells from one window while they
    /// survive in another, so incremental maintenance is not exact here).
    /// Rebuilt only by column-side degree queries, so row-only workloads
    /// never pay for it.
    col_index: DegreeIndex<T>,
    /// True when a mutation has outdated `col_index`.
    col_index_stale: bool,
}

impl<T: ScalarType> WindowedHierMatrix<T> {
    /// Create a windowed matrix: each window absorbs `window_updates`
    /// updates; at most `max_windows` closed windows are retained.
    pub fn new(
        nrows: Index,
        ncols: Index,
        config: HierConfig,
        window_updates: u64,
        max_windows: usize,
    ) -> GrbResult<Self> {
        Ok(Self {
            current: HierMatrix::new(nrows, ncols, config.clone())?,
            nrows,
            ncols,
            config,
            window_updates: window_updates.max(1),
            max_windows: max_windows.max(1),
            closed: VecDeque::new(),
            current_count: 0,
            windows_closed: 0,
            index: DegreeIndex::new(),
            index_stale: false,
            col_index: DegreeIndex::new(),
            col_index_stale: false,
        })
    }

    /// Number of closed windows currently retained.
    pub fn retained_windows(&self) -> usize {
        self.closed.len()
    }

    /// Total windows closed since construction (including evicted ones).
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Updates absorbed by the in-progress window so far.
    pub fn current_window_updates(&self) -> u64 {
        self.current_count
    }

    /// Apply one streaming update to the current window, rotating first if
    /// the window is full.
    pub fn update(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        if self.current_count >= self.window_updates {
            self.rotate()?;
        }
        self.current.update(row, col, val)?;
        self.current_count += 1;
        self.index_stale = true;
        self.col_index_stale = true;
        Ok(())
    }

    /// Close the current window immediately (e.g. at a wall-clock boundary)
    /// and start a new one.
    pub fn rotate(&mut self) -> GrbResult<()> {
        let fresh = HierMatrix::new(self.nrows, self.ncols, self.config.clone())?;
        let finished = std::mem::replace(&mut self.current, fresh);
        self.closed.push_back(finished);
        self.windows_closed += 1;
        self.current_count = 0;
        while self.closed.len() > self.max_windows {
            // Eviction removes cells whose survival depends on the other
            // retained windows — exactly the case the union index answers
            // by rebuilding.
            self.closed.pop_front();
        }
        self.index_stale = true;
        self.col_index_stale = true;
        Ok(())
    }

    /// Materialise the `k`-th most recent *closed* window (0 = most recent).
    pub fn window(&self, k: usize) -> Option<Matrix<T>> {
        let idx = self.closed.len().checked_sub(1 + k)?;
        Some(self.closed[idx].materialize_ref())
    }

    /// Materialise the in-progress window.
    pub fn current_window(&self) -> Matrix<T> {
        self.current.materialize_ref()
    }

    /// The hierarchies covering the last `k` closed windows plus the
    /// current one (current first).
    fn recent_windows(&self, k: usize) -> Vec<&HierMatrix<T>> {
        let mut ws = vec![&self.current];
        for i in 0..k.min(self.closed.len()) {
            ws.push(&self.closed[self.closed.len() - 1 - i]);
        }
        ws
    }

    /// Materialise the sum of the last `k` closed windows plus the current
    /// one — the "recent traffic" view used for background models.
    ///
    /// All the involved windows' levels merge through the k-way cursor
    /// kernel in one pass (previously: one full `ewise_add` rebuild per
    /// window).
    pub fn recent(&self, k: usize) -> GrbResult<Matrix<T>> {
        let ws = self.recent_windows(k);
        let dcsrs: Vec<&Dcsr<T>> = ws.iter().flat_map(|w| w.level_dcsrs()).collect();
        // All windows are constructed with this matrix's dimensions, so the
        // merge cannot mismatch; the error is propagated rather than
        // swallowed so a future invariant break surfaces as a typed error.
        let merged = merge_levels(self.nrows, self.ncols, &dcsrs, Plus)?;
        let mut acc = Matrix::from_dcsr(merged);
        for w in &ws {
            w.fold_pending_into(&mut acc);
        }
        Ok(acc)
    }

    /// Per-window total weights (oldest retained first, then the current
    /// window) — the raw series for temporal-fluctuation analysis.
    pub fn weight_series(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.closed.iter().map(|w| w.total_weight()).collect();
        out.push(self.current.total_weight());
        out
    }

    /// Total weight across all *retained* windows plus the current one
    /// (weight in evicted windows is gone by design).
    pub fn total_weight_f64(&self) -> f64 {
        self.closed
            .iter()
            .map(|w| w.total_weight_f64())
            .sum::<f64>()
            + self.current.total_weight_f64()
    }

    /// Materialised union of all retained windows plus the current one.
    pub fn materialize_retained(&self) -> GrbResult<Matrix<T>> {
        self.recent(self.closed.len())
    }
}

/// The windowed insert path: `insert` feeds the current window (rotating on
/// schedule); counts and weights cover the retained windows, so a sink
/// driven past its retention horizon reports less than it ingested — by
/// design, since windowing is the paper's temporal-analysis mode.
impl<T: ScalarType> StreamingSink<T> for WindowedHierMatrix<T> {
    fn sink_name(&self) -> &str {
        "hier-graphblas-windowed"
    }

    fn insert(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        self.update(row, col, val)
    }

    fn flush(&mut self) -> GrbResult<()> {
        // Completing deferred work means finishing cascades in every
        // retained hierarchy; the window schedule itself is not advanced.
        for w in &mut self.closed {
            w.flush()?;
        }
        self.current.flush()
    }

    fn nvals(&self) -> usize {
        // Infallible trait signature over a now-fallible materialisation:
        // the merge can only fail on a dimension-invariant break, in which
        // case report nothing rather than panic.
        self.materialize_retained().map(|m| m.nvals()).unwrap_or(0)
    }

    fn total_weight(&self) -> f64 {
        self.total_weight_f64()
    }
}

/// The windowed read path: queries cover the *retained* windows plus the
/// current one (evicted windows are gone by design, matching the sink's
/// totals).  Point/row/entry extraction merges one set of cursors over
/// every window's levels; the degree-centric answers come from the lazily
/// rebuilt union index (checked against the cursor sweep in debug builds).
impl<T: ScalarType> MatrixReader<T> for WindowedHierMatrix<T> {
    fn reader_name(&self) -> &str {
        "hier-graphblas-windowed"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        self.refresh_index();
        let n = self.index.nnz();
        debug_assert_eq!(n, self.sweep_nnz());
        n
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        let dcsrs = self.retained_settled_dcsrs();
        merged_point(&dcsrs, row, col, Plus)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        let dcsrs = self.retained_settled_dcsrs();
        merged_row_into(&dcsrs, row, Plus, out);
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        self.refresh_index();
        let d = self.index.row_degree(row);
        debug_assert_eq!(d, self.sweep_row_degree(row));
        d
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        self.refresh_index();
        let w = self.index.row_weight(row);
        debug_assert!(crate::matrix::reduce_agrees(w, self.sweep_row_reduce(row)));
        w
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        self.refresh_index();
        let top = self.index.top_k(k);
        debug_assert_eq!(top, self.sweep_top_k(k));
        top
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        let dcsrs = self.retained_settled_dcsrs();
        for_each_merged(&dcsrs, Plus, f);
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let dcsrs = self.retained_settled_dcsrs();
        merged_row_range(&dcsrs, lo, hi, Plus, f);
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        self.refresh_index();
        let hist = self.index.degree_histogram();
        debug_assert_eq!(hist, self.sweep_degree_histogram());
        hist
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        // O(k) off the per-window column twins (each window's shadows are
        // Arc-cached, so a query burst between rotations builds them once).
        let shadows = self.retained_col_shadows();
        let refs: Vec<&Dcsr<T>> = shadows.iter().map(|s| s.as_ref()).collect();
        merged_row_into(&refs, col, Plus, out);
        debug_assert_eq!(*out, {
            let mut sweep = Vec::new();
            self.sweep_col(col, &mut sweep);
            sweep
        });
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        self.refresh_col_index();
        let d = self.col_index.row_degree(col);
        debug_assert_eq!(d, self.sweep_col_degree(col));
        d
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        self.refresh_col_index();
        let w = self.col_index.row_weight(col);
        debug_assert!(crate::matrix::reduce_agrees(w, self.sweep_col_reduce(col)));
        w
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        self.refresh_col_index();
        let top = self.col_index.top_k(k);
        debug_assert_eq!(top, self.sweep_in_top_k(k));
        top
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        self.refresh_col_index();
        let hist = self.col_index.degree_histogram();
        debug_assert_eq!(hist, self.sweep_in_degree_histogram());
        hist
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        // The twins are row-major in (col, row): a row-range walk over them
        // is already the column-major contract order.
        let shadows = self.retained_col_shadows();
        let refs: Vec<&Dcsr<T>> = shadows.iter().map(|s| s.as_ref()).collect();
        merged_row_range(&refs, lo, hi, Plus, &mut |c, r, v| f(r, c, v));
    }

    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        // One settle across every retained window for the whole batch.
        let dcsrs = self.retained_settled_dcsrs();
        rows.iter()
            .map(|&row| {
                let mut out = Vec::new();
                merged_row_into(&dcsrs, row, Plus, &mut out);
                out
            })
            .collect()
    }

    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        let dcsrs = self.retained_settled_dcsrs();
        keys.iter()
            .map(|&(row, col)| merged_point(&dcsrs, row, col, Plus))
            .collect()
    }
}

impl<T: ScalarType> WindowedHierMatrix<T> {
    /// Settle every retained window's levels and return all their DCSRs
    /// for one merged cursor sweep.
    fn retained_settled_dcsrs(&mut self) -> Vec<&Dcsr<T>> {
        for w in &mut self.closed {
            w.settle_levels();
        }
        self.current.settle_levels();
        self.closed
            .iter()
            .flat_map(|w| w.level_dcsrs())
            .chain(self.current.level_dcsrs())
            .collect()
    }

    /// Rebuild the union index if any mutation outdated it: one merged
    /// cursor sweep over every retained window's levels, emitting each
    /// union row's degree and weight straight into the index (the entries
    /// are already deduplicated, so the rebuild skips the cell oracle).
    fn refresh_index(&mut self) {
        if !self.index_stale {
            return;
        }
        for w in &mut self.closed {
            w.settle_levels();
        }
        self.current.settle_levels();
        self.index.clear();
        let dcsrs: Vec<&Dcsr<T>> = self
            .closed
            .iter()
            .flat_map(|w| w.level_dcsrs())
            .chain(self.current.level_dcsrs())
            .collect();
        let mut cur = LevelCursors::new(&dcsrs);
        while let Some(row) = cur.next_row() {
            let mut degree = 0u64;
            let mut weight = T::default();
            cur.fold_row(Plus, &mut |_, v| {
                degree += 1;
                weight = weight.add(v);
            });
            self.index.add_unique_row(row, degree, weight);
        }
        self.index_stale = false;
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_nnz`].
    pub fn sweep_nnz(&mut self) -> usize {
        let dcsrs = self.retained_settled_dcsrs();
        merged_nnz(&dcsrs)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_row_degree`].
    pub fn sweep_row_degree(&mut self, row: Index) -> usize {
        let dcsrs = self.retained_settled_dcsrs();
        merged_row_degree(&dcsrs, row)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_row_reduce`].
    pub fn sweep_row_reduce(&mut self, row: Index) -> Option<T> {
        let dcsrs = self.retained_settled_dcsrs();
        merged_row_reduce(&dcsrs, row, Plus)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_top_k`].
    pub fn sweep_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let dcsrs = self.retained_settled_dcsrs();
        merged_top_k(&dcsrs, k)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_degree_histogram`].
    pub fn sweep_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let dcsrs = self.retained_settled_dcsrs();
        hyperstream_graphblas::cursor::merged_degree_histogram(&dcsrs)
    }

    /// Settle every retained window (through the index observers) and
    /// collect every window's per-level column twins for one merged
    /// transpose-side sweep.
    fn retained_col_shadows(&mut self) -> Vec<Arc<Dcsr<T>>> {
        let mut shadows = Vec::new();
        for w in &mut self.closed {
            shadows.extend(w.settled_col_shadows());
        }
        shadows.extend(self.current.settled_col_shadows());
        shadows
    }

    /// Rebuild the union *column* index if any mutation outdated it — the
    /// transpose mirror of [`WindowedHierMatrix::refresh_index`].  A
    /// row-major union sweep does not group columns the way it groups rows,
    /// so the rebuild first accumulates per-column (degree, weight) in a
    /// map, then bulk-loads the already-deduplicated stats.
    fn refresh_col_index(&mut self) {
        if !self.col_index_stale {
            return;
        }
        for w in &mut self.closed {
            w.settle_levels();
        }
        self.current.settle_levels();
        self.col_index.clear();
        let dcsrs: Vec<&Dcsr<T>> = self
            .closed
            .iter()
            .flat_map(|w| w.level_dcsrs())
            .chain(self.current.level_dcsrs())
            .collect();
        let mut cols: BTreeMap<Index, (u64, T)> = BTreeMap::new();
        for_each_merged(&dcsrs, Plus, &mut |_, c, v| {
            let slot = cols.entry(c).or_insert((0, T::default()));
            slot.0 += 1;
            slot.1 = slot.1.add(v);
        });
        for (c, (degree, weight)) in cols {
            self.col_index.add_unique_row(c, degree, weight);
        }
        self.col_index_stale = false;
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col`].
    pub fn sweep_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        let dcsrs = self.retained_settled_dcsrs();
        merged_col_into(&dcsrs, col, Plus, out);
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col_degree`].
    pub fn sweep_col_degree(&mut self, col: Index) -> usize {
        let dcsrs = self.retained_settled_dcsrs();
        merged_col_degree(&dcsrs, col)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col_reduce`].
    pub fn sweep_col_reduce(&mut self, col: Index) -> Option<T> {
        let dcsrs = self.retained_settled_dcsrs();
        merged_col_reduce(&dcsrs, col, Plus)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_in_top_k`].
    pub fn sweep_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let dcsrs = self.retained_settled_dcsrs();
        merged_in_top_k(&dcsrs, k)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_in_degree_histogram`].
    pub fn sweep_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let dcsrs = self.retained_settled_dcsrs();
        merged_in_degree_histogram(&dcsrs)
    }

    /// Cursor-sweep fallback of [`MatrixReader::read_col_range`].
    pub fn sweep_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let dcsrs = self.retained_settled_dcsrs();
        merged_col_range(&dcsrs, lo, hi, Plus, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windowed(window: u64, max: usize) -> WindowedHierMatrix<u64> {
        WindowedHierMatrix::new(
            1 << 20,
            1 << 20,
            HierConfig::from_cuts(vec![16, 128]).unwrap(),
            window,
            max,
        )
        .unwrap()
    }

    #[test]
    fn windows_rotate_automatically() {
        let mut w = windowed(100, 8);
        for i in 0..350u64 {
            w.update(i % 50, i % 70, 1).unwrap();
        }
        assert_eq!(w.windows_closed(), 3);
        assert_eq!(w.retained_windows(), 3);
        assert_eq!(w.current_window_updates(), 50);
        let series = w.weight_series();
        assert_eq!(series, vec![100, 100, 100, 50]);
    }

    #[test]
    fn eviction_respects_max_windows() {
        let mut w = windowed(10, 2);
        for i in 0..100u64 {
            w.update(i, i, 1).unwrap();
        }
        assert_eq!(w.retained_windows(), 2);
        assert_eq!(w.windows_closed(), 9);
    }

    #[test]
    fn window_access_most_recent_first() {
        let mut w = windowed(10, 4);
        // First window hits cell (1,1), second hits (2,2).
        for _ in 0..10 {
            w.update(1, 1, 1).unwrap();
        }
        for _ in 0..10 {
            w.update(2, 2, 1).unwrap();
        }
        w.rotate().unwrap();
        let most_recent = w.window(0).unwrap();
        assert_eq!(most_recent.get(2, 2), Some(10));
        assert_eq!(most_recent.get(1, 1), None);
        let older = w.window(1).unwrap();
        assert_eq!(older.get(1, 1), Some(10));
        assert!(w.window(2).is_none());
    }

    #[test]
    fn recent_sums_windows_and_current() {
        let mut w = windowed(10, 4);
        for _ in 0..25 {
            w.update(7, 7, 1).unwrap();
        }
        // Two closed windows (10 + 10) and 5 in the current one.
        let last1 = w.recent(1).unwrap();
        assert_eq!(last1.get(7, 7), Some(15));
        let last2 = w.recent(2).unwrap();
        assert_eq!(last2.get(7, 7), Some(25));
        let current_only = w.recent(0).unwrap();
        assert_eq!(current_only.get(7, 7), Some(5));
    }

    #[test]
    fn streaming_sink_reports_retained_totals() {
        let mut w = windowed(10, 4);
        let sink: &mut dyn StreamingSink<u64> = &mut w;
        for i in 0..25u64 {
            sink.insert(i % 3, i % 3, 1).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "hier-graphblas-windowed");
        // Nothing evicted yet (2 closed + current ≤ 4 retained).
        assert_eq!(sink.total_weight(), 25.0);
        assert_eq!(sink.nvals(), 3);
    }

    #[test]
    fn sink_totals_drop_evicted_windows() {
        let mut w = windowed(10, 2);
        for i in 0..50u64 {
            StreamingSink::insert(&mut w, i, i, 1).unwrap();
        }
        // 4 closed windows (2 evicted) + current: 2 * 10 + 10 remain.
        assert_eq!(w.total_weight_f64(), 30.0);
        assert_eq!(w.materialize_retained().unwrap().nvals(), 30);
    }

    #[test]
    fn reader_covers_retained_windows() {
        let mut w = windowed(10, 2);
        for i in 0..50u64 {
            w.update(i % 4, 7, 1).unwrap();
        }
        // 4 closed (2 evicted) + current: reader answers must equal the
        // materialised retained union.
        let snap = w.materialize_retained().unwrap();
        assert_eq!(w.read_nnz(), snap.nvals());
        assert_eq!(w.read_get(0, 7), snap.get(0, 7));
        let mut row = Vec::new();
        w.read_row(2, &mut row);
        let (cols, vals) = snap.dcsr().row(2).unwrap();
        let expect: Vec<(u64, u64)> = cols.iter().copied().zip(vals.iter().copied()).collect();
        assert_eq!(row, expect);
        assert_eq!(w.read_row_degree(2), 1);
        assert_eq!(w.read_row_reduce(2), snap.get(2, 7));
        assert_eq!(w.read_top_k(1).len(), 1);
        let mut total = 0u64;
        w.read_entries(&mut |_, _, v| total += v);
        assert_eq!(total as f64, w.total_weight_f64());
    }

    #[test]
    fn union_index_survives_rotation_and_eviction() {
        let mut w = windowed(25, 2);
        for i in 0..170u64 {
            // Cells recur across windows, so eviction removes some cells
            // that survive in other windows and some that do not.
            w.update(i % 7, (i * 3) % 11, 1).unwrap();
            if i % 40 == 39 {
                assert_eq!(w.read_nnz(), w.sweep_nnz(), "at update {i}");
                assert_eq!(w.read_top_k(4), w.sweep_top_k(4), "at update {i}");
            }
        }
        // Evictions happened (6 closed, 2 retained).
        assert_eq!(w.windows_closed(), 6);
        assert_eq!(w.retained_windows(), 2);
        for row in 0u64..8 {
            assert_eq!(w.read_row_degree(row), w.sweep_row_degree(row), "{row}");
            assert_eq!(w.read_row_reduce(row), w.sweep_row_reduce(row), "{row}");
        }
        assert_eq!(w.read_degree_histogram(), w.sweep_degree_histogram());
        // Manual rotation invalidates the cached index too.
        let before = w.read_nnz();
        w.rotate().unwrap();
        w.rotate().unwrap();
        w.rotate().unwrap();
        // All content evicted: three empty windows pushed the full ones out.
        assert_eq!(w.read_nnz(), w.sweep_nnz());
        assert!(w.read_nnz() < before);
    }

    #[test]
    fn union_col_index_survives_rotation_and_eviction() {
        let mut w = windowed(25, 2);
        for i in 0..170u64 {
            w.update(i % 7, (i * 3) % 11, 1).unwrap();
            if i % 40 == 39 {
                assert_eq!(w.read_in_top_k(4), w.sweep_in_top_k(4), "at update {i}");
            }
        }
        assert_eq!(w.windows_closed(), 6);
        for col in 0u64..12 {
            assert_eq!(w.read_col_degree(col), w.sweep_col_degree(col), "{col}");
            assert_eq!(w.read_col_reduce(col), w.sweep_col_reduce(col), "{col}");
            let mut got = Vec::new();
            w.read_col(col, &mut got);
            let mut sweep = Vec::new();
            w.sweep_col(col, &mut sweep);
            assert_eq!(got, sweep, "{col}");
        }
        assert_eq!(w.read_in_degree_histogram(), w.sweep_in_degree_histogram());
        // Rotating everything out empties the column answers too.
        w.rotate().unwrap();
        w.rotate().unwrap();
        w.rotate().unwrap();
        assert!(w.read_in_top_k(3).is_empty());
        assert_eq!(w.read_col_degree(5), 0);
    }

    #[test]
    fn windowed_col_range_and_batched_reads() {
        let mut w = windowed(30, 3);
        for i in 0..100u64 {
            w.update(i % 50, i % 9, 1).unwrap();
        }
        let mut all = Vec::new();
        w.read_entries(&mut |r, c, v| all.push((r, c, v)));
        // Column-range answers are column-major over the union.
        let mut got = Vec::new();
        w.read_col_range(3, 7, &mut |r, c, v| got.push((r, c, v)));
        let mut expect: Vec<_> = all
            .iter()
            .copied()
            .filter(|&(_, c, _)| (3..7).contains(&c))
            .collect();
        expect.sort_by_key(|&(r, c, _)| (c, r));
        assert_eq!(got, expect);
        // Batched reads match their single-query counterparts.
        let rows = [0u64, 13, 49, 60];
        let batch = w.read_rows(&rows);
        for (i, &row) in rows.iter().enumerate() {
            let mut single = Vec::new();
            w.read_row(row, &mut single);
            assert_eq!(batch[i], single, "row {row}");
        }
        let keys = [(0u64, 0u64), (13, 4), (49, 8), (60, 1)];
        let got = w.read_get_many(&keys);
        let expect: Vec<Option<u64>> = keys.iter().map(|&(r, c)| w.read_get(r, c)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn windowed_row_range_matches_filter() {
        let mut w = windowed(30, 3);
        for i in 0..100u64 {
            w.update(i % 50, i % 9, 1).unwrap();
        }
        let mut all = Vec::new();
        w.read_entries(&mut |r, c, v| all.push((r, c, v)));
        let mut got = Vec::new();
        w.read_row_range(10, 20, &mut |r, c, v| got.push((r, c, v)));
        let expect: Vec<_> = all
            .iter()
            .copied()
            .filter(|&(r, _, _)| (10..20).contains(&r))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn manual_rotate_on_empty_window_is_allowed() {
        let mut w = windowed(10, 4);
        w.rotate().unwrap();
        assert_eq!(w.windows_closed(), 1);
        assert_eq!(w.weight_series(), vec![0, 0]);
    }
}
