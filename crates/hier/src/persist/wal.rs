//! CRC-framed write-ahead log for the pending tail.
//!
//! File layout:
//!
//! ```text
//! header (16 bytes): magic u32 | version u32 | type_tag u32 | crc32(header[..12]) u32
//! frame:             len u32 | seq u32 | crc32(payload) u32 | payload (len bytes)
//! payload:           rows[n] u64 LE | cols[n] u64 LE | valbits[n] u64 LE   (n = len / 24)
//! ```
//!
//! Frames carry a monotonically increasing sequence number starting at 0
//! for each WAL generation.  Replay stops at the first frame that fails
//! any check — short header, bad length, CRC mismatch, out-of-order
//! sequence — and reports the byte offset of the last good frame so the
//! caller can truncate the torn tail.

use super::{corruption, crc32, decode_u64s, get_u32, io_err, put_u32, FsyncPolicy};
use hyperstream_graphblas::GrbResult;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

pub(crate) const WAL_MAGIC: u32 = 0x4853_5741; // "HSWA"
pub(crate) const WAL_VERSION: u32 = 1;
pub(crate) const WAL_HEADER_BYTES: u64 = 16;
const FRAME_HEADER_BYTES: usize = 12;
/// Upper bound on one frame's payload: a batch this large would be tens
/// of millions of tuples, far beyond any producer; anything larger in a
/// length field is corruption, and bounding it keeps a malicious length
/// from driving a huge allocation.
const MAX_FRAME_BYTES: u32 = 1 << 30;
/// Bytes per tuple in a frame payload (row + col + value bits).
const TUPLE_BYTES: usize = 24;

/// Append half of the WAL writer: owns the open file and the framing
/// state.  Reading happens separately through [`scan`].
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    /// Sequence number of the next frame to append.
    seq: u32,
    /// Batches appended since the last fsync.
    unsynced: u64,
    /// Reusable frame staging buffer: header and payload are built in
    /// place and the CRC patched in after the payload, so steady-state
    /// appends allocate nothing once the buffer has grown to the largest
    /// batch size (previously every append built two fresh `Vec`s and
    /// copied the payload twice).
    buf: Vec<u8>,
    /// Frames appended through this writer (telemetry).
    appends: u64,
    /// Fsyncs issued by this writer (telemetry).
    syncs: u64,
}

impl WalWriter {
    /// Create a fresh WAL file at `path` (failing if one exists would
    /// mask a generation-number bug, so truncate is refused), write and
    /// fsync the header.
    pub(crate) fn create(path: &Path, type_tag: u8) -> GrbResult<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| io_err("create wal", e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
        put_u32(&mut header, WAL_MAGIC);
        put_u32(&mut header, WAL_VERSION);
        put_u32(&mut header, type_tag as u32);
        let crc = crc32(&header);
        put_u32(&mut header, crc);
        file.write_all(&header)
            .map_err(|e| io_err("write wal header", e))?;
        file.sync_all().map_err(|e| io_err("fsync new wal", e))?;
        Ok(Self {
            file,
            seq: 0,
            unsynced: 0,
            buf: Vec::new(),
            appends: 0,
            syncs: 0,
        })
    }

    /// Reopen an existing (already scanned and truncated) WAL for append.
    pub(crate) fn resume(path: &Path, good_len: u64, next_seq: u32) -> GrbResult<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("reopen wal", e))?;
        file.seek(SeekFrom::Start(good_len))
            .map_err(|e| io_err("seek wal tail", e))?;
        Ok(Self {
            file,
            seq: next_seq,
            unsynced: 0,
            buf: Vec::new(),
            appends: 0,
            syncs: 0,
        })
    }

    /// Frames appended through this writer since it was opened.
    pub(crate) fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued by this writer since it was opened.
    pub(crate) fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Append one batch as a single frame and apply the fsync policy.
    /// `rows`/`cols`/`valbits` must have equal lengths (the caller
    /// validates before logging).  Empty batches are not logged.
    pub(crate) fn append(
        &mut self,
        rows: &[u64],
        cols: &[u64],
        valbits: &[u64],
        policy: FsyncPolicy,
    ) -> GrbResult<()> {
        crate::failpoint!("persist-wal-append");
        let n = rows.len();
        if n == 0 {
            return Ok(());
        }
        let len = n * TUPLE_BYTES;
        // Build the frame in the reusable buffer: header with a CRC
        // placeholder, then the payload, then the CRC patched in over the
        // placeholder — one buffer, zero steady-state allocation.
        self.buf.clear();
        self.buf.reserve(FRAME_HEADER_BYTES + len);
        put_u32(&mut self.buf, len as u32);
        put_u32(&mut self.buf, self.seq);
        put_u32(&mut self.buf, 0);
        for &r in rows {
            self.buf.extend_from_slice(&r.to_le_bytes());
        }
        for &c in cols {
            self.buf.extend_from_slice(&c.to_le_bytes());
        }
        for &v in valbits {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&self.buf[FRAME_HEADER_BYTES..]);
        self.buf[8..12].copy_from_slice(&crc.to_le_bytes());
        // Two physical writes with a failpoint between them: an armed
        // `persist-partial-write` leaves a torn frame on disk, exactly
        // what a crash mid-append produces.
        let mid = self.buf.len() / 2;
        self.file
            .write_all(&self.buf[..mid])
            .map_err(|e| io_err("append wal frame", e))?;
        crate::failpoint!("persist-partial-write");
        self.file
            .write_all(&self.buf[mid..])
            .map_err(|e| io_err("append wal frame", e))?;
        self.seq = self.seq.wrapping_add(1);
        self.appends += 1;
        match policy {
            FsyncPolicy::EveryBatch => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => self.unsynced += 1,
        }
        Ok(())
    }

    /// Force appended frames to stable storage.
    pub(crate) fn sync(&mut self) -> GrbResult<()> {
        crate::failpoint!("persist-pre-fsync");
        self.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
        crate::failpoint!("persist-post-fsync");
        self.unsynced = 0;
        self.syncs += 1;
        Ok(())
    }
}

/// One decoded WAL record: a batch of updates in encoded form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRecord {
    /// Row indices.
    pub(crate) rows: Vec<u64>,
    /// Column indices.
    pub(crate) cols: Vec<u64>,
    /// Values as [`ScalarType::encode_bits`](hyperstream_graphblas::ScalarType::encode_bits) words.
    pub(crate) valbits: Vec<u64>,
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Every frame up to (excluding) the first bad one.
    pub(crate) records: Vec<WalRecord>,
    /// Byte offset just past the last good frame.
    pub(crate) good_len: u64,
    /// True when bytes past `good_len` existed (a torn or corrupt tail).
    pub(crate) torn: bool,
    /// Sequence number the next appended frame must carry.
    pub(crate) next_seq: u32,
}

/// Read and validate `path`.  The 16-byte header must be intact — it was
/// written and fsynced before the manifest ever referenced this
/// generation, so a bad header is corruption, not a crash artifact.
/// Frames after it are validated one by one; the first failure ends the
/// scan (torn tail).
pub(crate) fn scan(path: &Path, expect_tag: u8) -> GrbResult<WalScan> {
    let mut file = File::open(path).map_err(|e| io_err("open wal", e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read wal", e))?;
    if bytes.len() < WAL_HEADER_BYTES as usize {
        return Err(corruption(format!(
            "wal header: {} bytes, need {}",
            bytes.len(),
            WAL_HEADER_BYTES
        )));
    }
    if get_u32(&bytes, 0, "wal magic")? != WAL_MAGIC {
        return Err(corruption("wal: bad magic"));
    }
    if get_u32(&bytes, 4, "wal version")? != WAL_VERSION {
        return Err(corruption("wal: unsupported version"));
    }
    let tag = get_u32(&bytes, 8, "wal type tag")?;
    if tag != expect_tag as u32 {
        return Err(corruption(format!(
            "wal: type tag {tag} does not match expected {expect_tag}"
        )));
    }
    if get_u32(&bytes, 12, "wal header crc")? != crc32(&bytes[..12]) {
        return Err(corruption("wal: header crc mismatch"));
    }

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_BYTES as usize;
    let mut next_seq = 0u32;
    while let Some(frame_end) = frame_at(&bytes, pos, next_seq) {
        let payload = &bytes[pos + FRAME_HEADER_BYTES..frame_end];
        let n = payload.len() / TUPLE_BYTES;
        let words = decode_u64s(payload);
        records.push(WalRecord {
            rows: words[..n].to_vec(),
            cols: words[n..2 * n].to_vec(),
            valbits: words[2 * n..].to_vec(),
        });
        next_seq = next_seq.wrapping_add(1);
        pos = frame_end;
    }
    Ok(WalScan {
        records,
        good_len: pos as u64,
        torn: pos < bytes.len(),
        next_seq,
    })
}

/// Validate the frame starting at `pos`; return its end offset, or
/// `None` when the frame is torn, corrupt, or out of sequence.
fn frame_at(bytes: &[u8], pos: usize, expect_seq: u32) -> Option<usize> {
    let header = bytes.get(pos..pos + FRAME_HEADER_BYTES)?;
    let len = u32::from_le_bytes(header[0..4].try_into().ok()?);
    let seq = u32::from_le_bytes(header[4..8].try_into().ok()?);
    let crc = u32::from_le_bytes(header[8..12].try_into().ok()?);
    if len == 0 || len > MAX_FRAME_BYTES || len as usize % TUPLE_BYTES != 0 {
        return None;
    }
    if seq != expect_seq {
        return None;
    }
    let start = pos + FRAME_HEADER_BYTES;
    let end = start.checked_add(len as usize)?;
    let payload = bytes.get(start..end)?;
    if crc32(payload) != crc {
        return None;
    }
    Some(end)
}

/// Truncate `path` to `good_len` (discarding a torn tail) and fsync.
pub(crate) fn truncate_to(path: &Path, good_len: u64) -> GrbResult<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("open wal for truncation", e))?;
    file.set_len(good_len)
        .map_err(|e| io_err("truncate torn wal tail", e))?;
    file.sync_data()
        .map_err(|e| io_err("fsync truncated wal", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "hyperstream-waltest-{}-{name}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_scan_round_trips() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::create(&path, 9).unwrap();
        w.append(&[1, 2], &[3, 4], &[10, 20], FsyncPolicy::EveryBatch)
            .unwrap();
        w.append(&[5], &[6], &[30], FsyncPolicy::Never).unwrap();
        drop(w);
        let scan = scan(&path, 9).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn);
        assert_eq!(scan.next_seq, 2);
        assert_eq!(scan.records[0].rows, vec![1, 2]);
        assert_eq!(scan.records[0].cols, vec![3, 4]);
        assert_eq!(scan.records[0].valbits, vec![10, 20]);
        assert_eq!(scan.records[1].rows, vec![5]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let path = tmp("torn");
        let mut w = WalWriter::create(&path, 9).unwrap();
        w.append(&[1], &[2], &[3], FsyncPolicy::EveryBatch).unwrap();
        w.append(&[4], &[5], &[6], FsyncPolicy::EveryBatch).unwrap();
        drop(w);
        // Chop the last frame in half.
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = full - 10;
        truncate_to(&path, cut).unwrap();
        let s = scan(&path, 9).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.torn);
        assert!(s.good_len < cut);
        truncate_to(&path, s.good_len).unwrap();
        let clean = scan(&path, 9).unwrap();
        assert_eq!(clean.records.len(), 1);
        assert!(!clean.torn);
        // Resume appending after the truncation.
        let mut w = WalWriter::resume(&path, clean.good_len, clean.next_seq).unwrap();
        w.append(&[7], &[8], &[9], FsyncPolicy::EveryBatch).unwrap();
        drop(w);
        let s = scan(&path, 9).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(!s.torn);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_type_tag_and_bad_magic_are_corruption() {
        let path = tmp("tagmagic");
        let w = WalWriter::create(&path, 9).unwrap();
        drop(w);
        assert!(matches!(
            scan(&path, 11),
            Err(hyperstream_graphblas::GrbError::Corruption { .. })
        ));
        // Flip a magic byte.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            scan(&path, 9),
            Err(hyperstream_graphblas::GrbError::Corruption { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_payload_ends_scan_at_previous_frame() {
        let path = tmp("badframe");
        let mut w = WalWriter::create(&path, 9).unwrap();
        w.append(&[1], &[2], &[3], FsyncPolicy::EveryBatch).unwrap();
        w.append(&[4], &[5], &[6], FsyncPolicy::EveryBatch).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the second frame's payload.
        let second_payload = WAL_HEADER_BYTES as usize + 12 + 24 + 12 + 4;
        bytes[second_payload] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&path, 9).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.torn);
        std::fs::remove_file(&path).unwrap();
    }
}
