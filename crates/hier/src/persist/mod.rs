//! Durable backing for a hierarchical matrix: checksummed on-disk level
//! files, a CRC-framed write-ahead log, and an atomically swapped manifest.
//!
//! ## Directory layout
//!
//! A durable matrix owns one directory:
//!
//! ```text
//! <dir>/MANIFEST            # root of trust: which files are current
//! <dir>/lvl-<gen>.dat       # one immutable DCSR per non-empty level
//! <dir>/wal-<gen>.log       # pending-tail write-ahead log
//! ```
//!
//! Every file carries a magic number, a format version, the scalar
//! [type tag](hyperstream_graphblas::ScalarType::TYPE_TAG) and CRC32
//! checksums; parsers validate strictly and return
//! [`GrbError::Corruption`] — never a panic — on any malformed input.
//!
//! ## Crash-consistency argument
//!
//! The manifest is the *only* mutable name.  Level files and WAL files are
//! written once under fresh generation numbers, fsynced, and only then
//! referenced by a new manifest that is itself committed by
//! write-temp → fsync → rename → fsync-directory.  A crash at any
//! intermediate point leaves the old manifest naming the old (complete,
//! checksummed) file set; new-generation files that were mid-write are
//! simply unreferenced garbage, swept on the next open or checkpoint.
//! Within the WAL, a torn final frame fails its length or CRC check and
//! recovery truncates the log there — the acknowledged-fsynced prefix is
//! exactly what survives.
//!
//! Checkpoints ride the cascade: when a cascade chain completes, level 0
//! is empty and the settled levels are the complete state, so the
//! checkpoint rewrites the dirty levels, rotates the WAL, and commits.
//! Because ⊕ is associative and commutative, replaying WAL records on top
//! of checkpointed levels reproduces the represented matrix regardless of
//! where the cascade schedule was interrupted.

pub mod format;
pub mod manifest;
pub mod recover;
pub mod wal;

use hyperstream_graphblas::GrbError;
use std::path::PathBuf;

/// When the write-ahead log is flushed to stable storage.
///
/// | Policy | Durability on crash | Relative ingest cost |
/// |---|---|---|
/// | `EveryBatch` | every acknowledged batch | one fsync per batch |
/// | `EveryN(n)`  | all but the last `< n` batches | one fsync per `n` batches |
/// | `Never`      | only checkpointed levels | none (OS page cache decides) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync the WAL after every appended batch: an `Ok` from an update
    /// means the batch survives any crash.
    EveryBatch,
    /// Fsync after every `n` appended batches (clamped to at least 1).
    EveryN(u64),
    /// Never fsync on append; only checkpoints force data to disk.
    Never,
}

impl FsyncPolicy {
    /// Stable label used by benchmark artifacts.
    pub fn label(self) -> String {
        match self {
            FsyncPolicy::EveryBatch => "every-batch".to_string(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// Configuration of a durable matrix directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableConfig {
    /// Directory holding the manifest, level files and WAL.
    pub dir: PathBuf,
    /// WAL fsync policy (default [`FsyncPolicy::EveryBatch`]).
    pub fsync: FsyncPolicy,
    /// When true, a level file that fails validation is loaded as an
    /// empty level and recorded in
    /// [`RecoveryReport::corrupt_levels`] instead of failing the open.
    /// Default false: corruption fails the open with
    /// [`GrbError::Corruption`].
    pub salvage_corrupt_levels: bool,
}

impl DurableConfig {
    /// Durable storage under `dir` with the default policy: fsync every
    /// batch, strict corruption handling.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryBatch,
            salvage_corrupt_levels: false,
        }
    }

    /// Replace the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Enable or disable salvage of corrupt level files.
    pub fn salvage(mut self, on: bool) -> Self {
        self.salvage_corrupt_levels = on;
        self
    }

    /// The per-shard sub-configuration used by the sharded engine: same
    /// policy, `shard-<i>` subdirectory.
    pub fn shard(&self, i: usize) -> Self {
        Self {
            dir: self.dir.join(format!("shard-{i}")),
            ..self.clone()
        }
    }
}

/// What recovery found when a durable matrix was opened.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Non-empty levels loaded from checkpointed level files.
    pub levels_loaded: usize,
    /// WAL records (batches) replayed on top of the checkpoint.
    pub wal_records_replayed: u64,
    /// True when the WAL ended in a torn or corrupt frame that recovery
    /// truncated away (the expected signature of a crash mid-append; a
    /// clean shutdown never sets this).
    pub torn_tail_truncated: bool,
    /// Levels whose files failed validation and were salvaged as empty
    /// (only populated under
    /// [`DurableConfig::salvage_corrupt_levels`]).
    pub corrupt_levels: Vec<usize>,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered {} level file(s), replayed {} WAL record(s), torn tail: {}, corrupt levels: {:?}",
            self.levels_loaded,
            self.wal_records_replayed,
            self.torn_tail_truncated,
            self.corrupt_levels
        )
    }
}

/// Construct the typed corruption error.
pub(crate) fn corruption(detail: impl Into<String>) -> GrbError {
    GrbError::Corruption {
        detail: detail.into(),
    }
}

/// Map an I/O failure on the durable store to the typed error.
pub(crate) fn io_err(context: &str, e: std::io::Error) -> GrbError {
    corruption(format!("{context}: {e}"))
}

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — implemented
/// in-crate because the workspace is offline and `forbid(unsafe_code)`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut k = 0;
            while k < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                k += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append a little-endian `u32` to a byte buffer.
pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64` to a byte buffer.
pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32` at `off`, or fail with [`corruption`].
pub(crate) fn get_u32(buf: &[u8], off: usize, what: &str) -> Result<u32, GrbError> {
    let end = off.checked_add(4).ok_or_else(|| corruption(what))?;
    let bytes = buf
        .get(off..end)
        .ok_or_else(|| corruption(format!("{what}: short read at offset {off}")))?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
}

/// Read a little-endian `u64` at `off`, or fail with [`corruption`].
pub(crate) fn get_u64(buf: &[u8], off: usize, what: &str) -> Result<u64, GrbError> {
    let end = off.checked_add(8).ok_or_else(|| corruption(what))?;
    let bytes = buf
        .get(off..end)
        .ok_or_else(|| corruption(format!("{what}: short read at offset {off}")))?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Decode a buffer of little-endian `u64` words.
pub(crate) fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Mutable durable bookkeeping carried by a durable
/// [`HierMatrix`](crate::HierMatrix).  Value-independent: the WAL stores
/// [`ScalarType::encode_bits`](hyperstream_graphblas::ScalarType::encode_bits)
/// words, so nothing here is generic.
#[derive(Debug)]
pub(crate) struct DurableState {
    /// The directory + policy this matrix persists to.
    pub(crate) cfg: DurableConfig,
    /// Open WAL for the current generation.
    pub(crate) wal: wal::WalWriter,
    /// Generation number of the current WAL file.
    pub(crate) wal_gen: u64,
    /// Next unused generation number.
    pub(crate) next_gen: u64,
    /// The level files the committed manifest references.
    pub(crate) levels: Vec<manifest::LevelEntry>,
    /// Levels whose in-memory settled content has diverged from their
    /// committed level file since the last checkpoint.
    pub(crate) dirty: Vec<bool>,
    /// Report of the recovery that produced this state (None for a
    /// freshly created store).
    pub(crate) report: Option<RecoveryReport>,
    /// WAL frames appended by writers already retired by checkpoint
    /// rotation (the live writer's own count is added on read).
    pub(crate) retired_appends: u64,
    /// Fsyncs issued by retired WAL writers.
    pub(crate) retired_syncs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn fsync_policy_labels() {
        assert_eq!(FsyncPolicy::EveryBatch.label(), "every-batch");
        assert_eq!(FsyncPolicy::EveryN(64).label(), "every-64");
        assert_eq!(FsyncPolicy::Never.label(), "never");
    }

    #[test]
    fn durable_config_builder_and_shard_dirs() {
        let cfg = DurableConfig::new("/tmp/x")
            .fsync(FsyncPolicy::EveryN(8))
            .salvage(true);
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(8));
        assert!(cfg.salvage_corrupt_levels);
        let s2 = cfg.shard(2);
        assert!(s2.dir.ends_with("shard-2"));
        assert_eq!(s2.fsync, cfg.fsync);
    }

    #[test]
    fn recovery_report_display_mentions_fields() {
        let r = RecoveryReport {
            levels_loaded: 3,
            wal_records_replayed: 17,
            torn_tail_truncated: true,
            corrupt_levels: vec![1],
        };
        let s = r.to_string();
        assert!(s.contains('3') && s.contains("17") && s.contains("true") && s.contains("[1]"));
    }
}
