//! The manifest: the single mutable name in a durable directory.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   magic u32 ("HSMF")
//! 4   version u32
//! 8   type_tag u32
//! 12  n_levels u32
//! 16  nrows u64
//! 24  ncols u64
//! 32  next_gen u64
//! 40  wal_gen u64
//! 48  cuts[n_levels - 1] u64
//! ..  levels[n_levels] { gen u64 (0 = empty level), nnz u64 }
//! ..  crc32 u32 (over everything before it)
//! ```
//!
//! Committed via write-temp → fsync → rename → fsync-directory: the
//! rename is atomic, so the directory always holds either the old or the
//! new manifest, each internally consistent and CRC-protected.

use super::{corruption, crc32, get_u32, get_u64, io_err, put_u32, put_u64};
use hyperstream_graphblas::GrbResult;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

pub(crate) const MANIFEST_MAGIC: u32 = 0x4853_4D46; // "HSMF"
pub(crate) const MANIFEST_VERSION: u32 = 1;
/// Sanity cap on the level count: a hierarchy needs a strictly
/// increasing u64 cut per level, so 64 is already unreachable; anything
/// larger in a manifest is corruption, not configuration.
const MAX_LEVELS: u32 = 64;
pub(crate) const MANIFEST_NAME: &str = "MANIFEST";

/// One level's committed backing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LevelEntry {
    /// Generation number of the level file (`lvl-<gen>.dat`); 0 means
    /// the level is empty and has no file.
    pub(crate) gen: u64,
    /// Entry count the file must carry (cross-checked on load).
    pub(crate) nnz: u64,
}

/// Decoded manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Scalar type tag of the stored matrix.
    pub(crate) type_tag: u8,
    /// Matrix dimensions.
    pub(crate) nrows: u64,
    /// Matrix dimensions.
    pub(crate) ncols: u64,
    /// Next unused generation number.
    pub(crate) next_gen: u64,
    /// Generation of the current WAL file.
    pub(crate) wal_gen: u64,
    /// Hierarchy cut schedule (`levels.len() - 1` entries).
    pub(crate) cuts: Vec<u64>,
    /// Per-level backing files.
    pub(crate) levels: Vec<LevelEntry>,
}

/// `<dir>/MANIFEST`.
pub(crate) fn path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

/// True when `dir` holds an initialised durable store.
pub(crate) fn exists(dir: &Path) -> bool {
    path(dir).is_file()
}

/// Name of a level file for generation `gen`.
pub(crate) fn level_file_name(gen: u64) -> String {
    format!("lvl-{gen:016x}.dat")
}

/// Name of a WAL file for generation `gen`.
pub(crate) fn wal_file_name(gen: u64) -> String {
    format!("wal-{gen:016x}.log")
}

fn encode(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 8 * m.cuts.len() + 16 * m.levels.len());
    put_u32(&mut buf, MANIFEST_MAGIC);
    put_u32(&mut buf, MANIFEST_VERSION);
    put_u32(&mut buf, m.type_tag as u32);
    put_u32(&mut buf, m.levels.len() as u32);
    put_u64(&mut buf, m.nrows);
    put_u64(&mut buf, m.ncols);
    put_u64(&mut buf, m.next_gen);
    put_u64(&mut buf, m.wal_gen);
    for &c in &m.cuts {
        put_u64(&mut buf, c);
    }
    for e in &m.levels {
        put_u64(&mut buf, e.gen);
        put_u64(&mut buf, e.nnz);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Commit `m` atomically: write `MANIFEST.tmp`, fsync it, rename over
/// `MANIFEST`, fsync the directory.
pub(crate) fn write(dir: &Path, m: &Manifest) -> GrbResult<()> {
    let bytes = encode(m);
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let mut file = File::create(&tmp).map_err(|e| io_err("create manifest tmp", e))?;
    file.write_all(&bytes)
        .map_err(|e| io_err("write manifest", e))?;
    crate::failpoint!("persist-pre-fsync");
    file.sync_all().map_err(|e| io_err("fsync manifest", e))?;
    crate::failpoint!("persist-post-fsync");
    drop(file);
    // The commit point: everything before the rename is invisible to
    // recovery; everything after it is fully committed.
    crate::failpoint!("persist-manifest-swap");
    std::fs::rename(&tmp, path(dir)).map_err(|e| io_err("swap manifest", e))?;
    fsync_dir(dir)?;
    Ok(())
}

/// Fsync the directory so renames within it are durable.
pub(crate) fn fsync_dir(dir: &Path) -> GrbResult<()> {
    let d = File::open(dir).map_err(|e| io_err("open dir for fsync", e))?;
    d.sync_all().map_err(|e| io_err("fsync dir", e))?;
    Ok(())
}

/// Read and strictly validate `<dir>/MANIFEST`.
pub(crate) fn read(dir: &Path) -> GrbResult<Manifest> {
    let mut file = File::open(path(dir)).map_err(|e| io_err("open manifest", e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read manifest", e))?;
    if bytes.len() < 52 {
        return Err(corruption(format!(
            "manifest: {} bytes is shorter than any valid manifest",
            bytes.len()
        )));
    }
    let body_len = bytes.len() - 4;
    if get_u32(&bytes, body_len, "manifest crc")? != crc32(&bytes[..body_len]) {
        return Err(corruption("manifest: crc mismatch"));
    }
    if get_u32(&bytes, 0, "manifest magic")? != MANIFEST_MAGIC {
        return Err(corruption("manifest: bad magic"));
    }
    if get_u32(&bytes, 4, "manifest version")? != MANIFEST_VERSION {
        return Err(corruption("manifest: unsupported version"));
    }
    let tag = get_u32(&bytes, 8, "manifest type tag")?;
    if tag > u8::MAX as u32 {
        return Err(corruption("manifest: type tag out of range"));
    }
    let n_levels = get_u32(&bytes, 12, "manifest level count")?;
    if !(2..=MAX_LEVELS).contains(&n_levels) {
        return Err(corruption(format!(
            "manifest: level count {n_levels} outside [2, {MAX_LEVELS}]"
        )));
    }
    let nrows = get_u64(&bytes, 16, "manifest nrows")?;
    let ncols = get_u64(&bytes, 24, "manifest ncols")?;
    let next_gen = get_u64(&bytes, 32, "manifest next_gen")?;
    let wal_gen = get_u64(&bytes, 40, "manifest wal_gen")?;
    let n = n_levels as usize;
    let expected_len = 48 + 8 * (n - 1) + 16 * n + 4;
    if bytes.len() != expected_len {
        return Err(corruption(format!(
            "manifest: length {} does not match expected {expected_len} for {n} levels",
            bytes.len()
        )));
    }
    let mut cuts = Vec::with_capacity(n - 1);
    let mut off = 48;
    for _ in 0..n - 1 {
        cuts.push(get_u64(&bytes, off, "manifest cut")?);
        off += 8;
    }
    let mut levels = Vec::with_capacity(n);
    for _ in 0..n {
        let gen = get_u64(&bytes, off, "manifest level gen")?;
        let nnz = get_u64(&bytes, off + 8, "manifest level nnz")?;
        if gen == 0 && nnz != 0 {
            return Err(corruption("manifest: empty level with non-zero nnz"));
        }
        if gen != 0 && gen >= next_gen {
            return Err(corruption(format!(
                "manifest: level gen {gen} not below next_gen {next_gen}"
            )));
        }
        levels.push(LevelEntry { gen, nnz });
        off += 16;
    }
    if wal_gen == 0 || wal_gen >= next_gen {
        return Err(corruption(format!(
            "manifest: wal gen {wal_gen} not in (0, next_gen {next_gen})"
        )));
    }
    Ok(Manifest {
        type_tag: tag as u8,
        nrows,
        ncols,
        next_gen,
        wal_gen,
        cuts,
        levels,
    })
}

/// Best-effort removal of files the committed manifest does not
/// reference: stale `.tmp` files and unreferenced level/WAL generations
/// left behind by a crash mid-checkpoint.  Never fails the caller —
/// garbage is harmless, deleting it is a bonus.
pub(crate) fn sweep_unreferenced(dir: &Path, m: &Manifest) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut referenced: Vec<String> = m
        .levels
        .iter()
        .filter(|e| e.gen != 0)
        .map(|e| level_file_name(e.gen))
        .collect();
    referenced.push(wal_file_name(m.wal_gen));
    referenced.push(MANIFEST_NAME.to_string());
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_ours = name.ends_with(".tmp")
            || (name.starts_with("lvl-") && name.ends_with(".dat"))
            || (name.starts_with("wal-") && name.ends_with(".log"));
        if is_ours && !referenced.iter().any(|r| r == name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("hyperstream-mantest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Manifest {
        Manifest {
            type_tag: 9,
            nrows: 1 << 32,
            ncols: 1 << 32,
            next_gen: 7,
            wal_gen: 6,
            cuts: vec![1 << 12, 1 << 15, 1 << 18],
            levels: vec![
                LevelEntry { gen: 0, nnz: 0 },
                LevelEntry { gen: 3, nnz: 1000 },
                LevelEntry {
                    gen: 4,
                    nnz: 50_000,
                },
                LevelEntry { gen: 5, nnz: 0 },
            ],
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = tmpdir("roundtrip");
        let m = sample();
        write(&dir, &m).unwrap();
        assert!(exists(&dir));
        assert_eq!(read(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let dir = tmpdir("flips");
        write(&dir, &sample()).unwrap();
        let p = path(&dir);
        let orig = std::fs::read(&p).unwrap();
        for i in 0..orig.len() {
            let mut mutated = orig.clone();
            mutated[i] ^= 0x10;
            std::fs::write(&p, &mutated).unwrap();
            assert!(read(&dir).is_err(), "flip at byte {i} went undetected");
        }
        // Truncation and extension too.
        std::fs::write(&p, &orig[..orig.len() - 3]).unwrap();
        assert!(read(&dir).is_err());
        let mut ext = orig.clone();
        ext.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&p, &ext).unwrap();
        assert!(read(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_unreferenced_store_files() {
        let dir = tmpdir("sweep");
        let m = sample();
        write(&dir, &m).unwrap();
        let keep_lvl = dir.join(level_file_name(3));
        let keep_wal = dir.join(wal_file_name(6));
        let drop_lvl = dir.join(level_file_name(99));
        let drop_tmp = dir.join("lvl-x.dat.tmp");
        let unrelated = dir.join("notes.txt");
        for f in [&keep_lvl, &keep_wal, &drop_lvl, &drop_tmp, &unrelated] {
            std::fs::write(f, b"x").unwrap();
        }
        sweep_unreferenced(&dir, &m);
        assert!(keep_lvl.exists() && keep_wal.exists() && unrelated.exists());
        assert!(!drop_lvl.exists() && !drop_tmp.exists());
        assert!(exists(&dir));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
