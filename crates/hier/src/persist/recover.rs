//! Crash-consistent recovery: turn a durable directory back into the
//! in-memory level stack plus the WAL records to replay.
//!
//! Recovery order:
//!
//! 1. Parse the manifest strictly (the commit point of the last
//!    successful checkpoint).
//! 2. Load every referenced level file, cross-checking dimensions and
//!    entry counts against the manifest.  A corrupt level either fails
//!    the open ([`GrbError::Corruption`](hyperstream_graphblas::GrbError))
//!    or, under [`DurableConfig::salvage_corrupt_levels`], loads empty
//!    and is reported.
//! 3. Scan the WAL of the manifest's generation, truncating the torn
//!    tail at the first bad frame; the surviving records are exactly the
//!    acknowledged-fsynced prefix (plus any unsynced frames the OS
//!    happened to flush).
//! 4. Sweep unreferenced files — the garbage a crash mid-checkpoint can
//!    leave behind.

use super::manifest::{self, Manifest};
use super::{corruption, wal, DurableConfig, RecoveryReport};
use hyperstream_graphblas::{GrbResult, Matrix, ScalarType};
use std::path::Path;

/// Everything [`HierMatrix::open_with`](crate::HierMatrix::open_with)
/// needs to reconstitute a durable matrix.
pub(crate) struct Recovered<T> {
    /// The committed manifest.
    pub(crate) manifest: Manifest,
    /// One matrix per level, loaded from the checkpointed files.
    pub(crate) levels: Vec<Matrix<T>>,
    /// WAL records to replay on top of the levels.
    pub(crate) records: Vec<wal::WalRecord>,
    /// The WAL reopened for append after the truncated tail.
    pub(crate) wal_writer: wal::WalWriter,
    /// What recovery observed.
    pub(crate) report: RecoveryReport,
}

/// Load a durable directory.  `O(levels)` structural work: each level is
/// one sequential file read straight into the arrays `Matrix` backs
/// itself with — no per-entry re-sort or re-ingest.
pub(crate) fn open_dir<T: ScalarType>(cfg: &DurableConfig) -> GrbResult<Recovered<T>> {
    let dir: &Path = &cfg.dir;
    let m = manifest::read(dir)?;
    if m.type_tag != T::TYPE_TAG {
        return Err(corruption(format!(
            "manifest type tag {} does not match requested scalar type {}",
            m.type_tag,
            T::TYPE_TAG
        )));
    }

    let mut report = RecoveryReport::default();
    let mut levels = Vec::with_capacity(m.levels.len());
    for (i, entry) in m.levels.iter().enumerate() {
        if entry.gen == 0 {
            levels.push(empty_level::<T>(m.nrows, m.ncols)?);
            continue;
        }
        let name = manifest::level_file_name(entry.gen);
        match super::format::read_level::<T>(dir, &name, m.nrows, m.ncols, entry.nnz) {
            Ok(dcsr) => {
                levels.push(Matrix::from_dcsr(dcsr).with_pending_limit(usize::MAX));
                report.levels_loaded += 1;
            }
            Err(e) if cfg.salvage_corrupt_levels => {
                report.corrupt_levels.push(i);
                levels.push(empty_level::<T>(m.nrows, m.ncols)?);
                // The entry count the manifest promised is gone; drop
                // the detail but keep going.
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }

    let wal_name = manifest::wal_file_name(m.wal_gen);
    let wal_path = dir.join(wal_name);
    let scan = wal::scan(&wal_path, T::TYPE_TAG)?;
    if scan.torn {
        wal::truncate_to(&wal_path, scan.good_len)?;
        report.torn_tail_truncated = true;
    }
    report.wal_records_replayed = scan.records.len() as u64;
    let wal_writer = wal::WalWriter::resume(&wal_path, scan.good_len, scan.next_seq)?;

    manifest::sweep_unreferenced(dir, &m);

    Ok(Recovered {
        manifest: m,
        levels,
        records: scan.records,
        wal_writer,
        report,
    })
}

fn empty_level<T: ScalarType>(nrows: u64, ncols: u64) -> GrbResult<Matrix<T>> {
    Ok(Matrix::try_new(nrows, ncols)?.with_pending_limit(usize::MAX))
}
