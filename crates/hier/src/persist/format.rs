//! Page-aligned, versioned, per-section-checksummed on-disk DCSR level
//! format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! page 0 (4096 bytes): header
//!   0   magic u32 ("HSLV")
//!   4   version u32
//!   8   type_tag u32
//!   12  reserved u32 (0)
//!   16  nrows u64
//!   24  ncols u64
//!   32  nnz u64              (entries; length of col_idx / vals)
//!   40  nrows_nonempty u64   (length of row_ids; row_ptr has one more)
//!   48  4 × section descriptor { offset u64, byte_len u64, crc32 u32, pad u32 }
//!   144 header crc32 (over bytes 0..144)
//!   ..4096 zero padding
//! sections, each starting on a 4096-byte boundary, in order:
//!   row_ids  u64 × nrows_nonempty
//!   row_ptr  u64 × (nrows_nonempty + 1)
//!   col_idx  u64 × nnz
//!   vals     encode_bits u64 × nnz
//! ```
//!
//! The parser is strict: expected section offsets and lengths are
//! *recomputed* from the counts and compared against the descriptors, the
//! file length must match exactly (truncations and extensions both fail),
//! every section CRC must verify, and the decoded arrays must pass the
//! full [`Dcsr`] invariant check.  Any violation returns
//! [`GrbError::Corruption`](hyperstream_graphblas::GrbError); no input
//! can cause a panic or an out-of-bounds read.

use super::{corruption, crc32, decode_u64s, get_u32, get_u64, io_err, put_u32, put_u64};
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::{GrbResult, ScalarType};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

pub(crate) const LEVEL_MAGIC: u32 = 0x4853_4C56; // "HSLV"
pub(crate) const LEVEL_VERSION: u32 = 1;
/// Section and header alignment: one page, so a future `mmap` backend
/// (feature-gated, not yet implemented) can map sections directly.
pub(crate) const PAGE: u64 = 4096;
const HEADER_CRC_OFFSET: usize = 144;
const SECTIONS: usize = 4;

/// Round up to the next page boundary (checked: corrupt headers can
/// carry counts whose byte sizes overflow).
fn align_up(x: u64) -> Option<u64> {
    x.checked_add(PAGE - 1).map(|v| v & !(PAGE - 1))
}

/// The four section layouts implied by `(nrows_nonempty, nnz)`:
/// `(offset, byte_len)` per section plus the exact total file length.
fn layout(ne: u64, nnz: u64) -> Option<([(u64, u64); SECTIONS], u64)> {
    let lens = [
        ne.checked_mul(8)?,
        ne.checked_add(1)?.checked_mul(8)?,
        nnz.checked_mul(8)?,
        nnz.checked_mul(8)?,
    ];
    let mut sections = [(0u64, 0u64); SECTIONS];
    let mut off = PAGE;
    for (i, &len) in lens.iter().enumerate() {
        sections[i] = (off, len);
        off = align_up(off.checked_add(len)?)?;
    }
    Some((sections, off))
}

/// Serialize `dcsr` into `<dir>/<name>` via write-temp → fsync → rename.
/// The caller is responsible for fsyncing the directory before a
/// manifest references the new name.
pub(crate) fn write_level<T: ScalarType>(dir: &Path, name: &str, dcsr: &Dcsr<T>) -> GrbResult<()> {
    let (row_ids, row_ptr, col_idx, vals) = dcsr.raw_parts();
    let ne = row_ids.len() as u64;
    let nnz = col_idx.len() as u64;
    let (sections, total) =
        layout(ne, nnz).ok_or_else(|| corruption("level layout overflows u64"))?;

    // Encode the four sections.
    let mut bodies: [Vec<u8>; SECTIONS] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    bodies[0].reserve(row_ids.len() * 8);
    for &r in row_ids {
        bodies[0].extend_from_slice(&r.to_le_bytes());
    }
    bodies[1].reserve(row_ptr.len() * 8);
    for &p in row_ptr {
        bodies[1].extend_from_slice(&(p as u64).to_le_bytes());
    }
    bodies[2].reserve(col_idx.len() * 8);
    for &c in col_idx {
        bodies[2].extend_from_slice(&c.to_le_bytes());
    }
    bodies[3].reserve(vals.len() * 8);
    for &v in vals {
        bodies[3].extend_from_slice(&v.encode_bits().to_le_bytes());
    }

    // Header page.
    let mut header = Vec::with_capacity(PAGE as usize);
    put_u32(&mut header, LEVEL_MAGIC);
    put_u32(&mut header, LEVEL_VERSION);
    put_u32(&mut header, T::TYPE_TAG as u32);
    put_u32(&mut header, 0);
    put_u64(&mut header, dcsr.nrows());
    put_u64(&mut header, dcsr.ncols());
    put_u64(&mut header, nnz);
    put_u64(&mut header, ne);
    for (i, &(off, len)) in sections.iter().enumerate() {
        put_u64(&mut header, off);
        put_u64(&mut header, len);
        put_u32(&mut header, crc32(&bodies[i]));
        put_u32(&mut header, 0);
    }
    debug_assert_eq!(header.len(), HEADER_CRC_OFFSET);
    let hcrc = crc32(&header);
    put_u32(&mut header, hcrc);
    header.resize(PAGE as usize, 0);

    let tmp = dir.join(format!("{name}.tmp"));
    let mut file = File::create(&tmp).map_err(|e| io_err("create level tmp", e))?;
    file.write_all(&header)
        .map_err(|e| io_err("write level header", e))?;
    // An armed `persist-partial-write` leaves a header-only temp file —
    // the state a crash between the header and body writes produces.
    crate::failpoint!("persist-partial-write");
    let mut pos = PAGE;
    for (i, body) in bodies.iter().enumerate() {
        let (off, len) = sections[i];
        debug_assert_eq!(len as usize, body.len());
        if off > pos {
            let pad = vec![0u8; (off - pos) as usize];
            file.write_all(&pad)
                .map_err(|e| io_err("pad level section", e))?;
        }
        file.write_all(body)
            .map_err(|e| io_err("write level section", e))?;
        pos = off + len;
    }
    if total > pos {
        let pad = vec![0u8; (total - pos) as usize];
        file.write_all(&pad)
            .map_err(|e| io_err("pad level tail", e))?;
    }
    crate::failpoint!("persist-pre-fsync");
    file.sync_all().map_err(|e| io_err("fsync level file", e))?;
    crate::failpoint!("persist-post-fsync");
    drop(file);
    crate::failpoint!("persist-mid-rename");
    std::fs::rename(&tmp, dir.join(name)).map_err(|e| io_err("rename level file", e))?;
    Ok(())
}

/// Parse `<dir>/<name>` strictly into a validated [`Dcsr`].
pub(crate) fn read_level<T: ScalarType>(
    dir: &Path,
    name: &str,
    expect_nrows: u64,
    expect_ncols: u64,
    expect_nnz: u64,
) -> GrbResult<Dcsr<T>> {
    let path = dir.join(name);
    let mut file = File::open(&path).map_err(|e| io_err("open level file", e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read level file", e))?;

    if bytes.len() < PAGE as usize {
        return Err(corruption(format!(
            "level {name}: {} bytes, header needs {PAGE}",
            bytes.len()
        )));
    }
    if get_u32(&bytes, 0, "level magic")? != LEVEL_MAGIC {
        return Err(corruption(format!("level {name}: bad magic")));
    }
    if get_u32(&bytes, 4, "level version")? != LEVEL_VERSION {
        return Err(corruption(format!("level {name}: unsupported version")));
    }
    let tag = get_u32(&bytes, 8, "level type tag")?;
    if tag != T::TYPE_TAG as u32 {
        return Err(corruption(format!(
            "level {name}: type tag {tag}, expected {}",
            T::TYPE_TAG
        )));
    }
    if get_u32(&bytes, HEADER_CRC_OFFSET, "level header crc")? != crc32(&bytes[..HEADER_CRC_OFFSET])
    {
        return Err(corruption(format!("level {name}: header crc mismatch")));
    }
    let nrows = get_u64(&bytes, 16, "level nrows")?;
    let ncols = get_u64(&bytes, 24, "level ncols")?;
    if nrows != expect_nrows || ncols != expect_ncols {
        return Err(corruption(format!(
            "level {name}: dimensions {nrows}x{ncols} do not match manifest {expect_nrows}x{expect_ncols}"
        )));
    }
    let nnz = get_u64(&bytes, 32, "level nnz")?;
    let ne = get_u64(&bytes, 40, "level nonempty rows")?;
    if nnz != expect_nnz {
        return Err(corruption(format!(
            "level {name}: nnz {nnz} does not match manifest {expect_nnz}"
        )));
    }
    if ne > nnz {
        return Err(corruption(format!(
            "level {name}: {ne} non-empty rows exceed {nnz} entries"
        )));
    }
    let (expect_sections, expect_total) =
        layout(ne, nnz).ok_or_else(|| corruption("level counts overflow layout"))?;
    if bytes.len() as u64 != expect_total {
        return Err(corruption(format!(
            "level {name}: file length {} does not match expected {expect_total}",
            bytes.len()
        )));
    }
    let mut sections: [&[u8]; SECTIONS] = [&[]; SECTIONS];
    for (i, section) in sections.iter_mut().enumerate() {
        let base = 48 + i * 24;
        let off = get_u64(&bytes, base, "section offset")?;
        let len = get_u64(&bytes, base + 8, "section length")?;
        let crc = get_u32(&bytes, base + 16, "section crc")?;
        if (off, len) != expect_sections[i] {
            return Err(corruption(format!(
                "level {name}: section {i} descriptor ({off}, {len}) does not match layout {:?}",
                expect_sections[i]
            )));
        }
        let end = off
            .checked_add(len)
            .filter(|&e| e <= bytes.len() as u64)
            .ok_or_else(|| corruption(format!("level {name}: section {i} out of bounds")))?;
        let body = &bytes[off as usize..end as usize];
        if crc32(body) != crc {
            return Err(corruption(format!(
                "level {name}: section {i} crc mismatch"
            )));
        }
        *section = body;
    }

    let row_ids = decode_u64s(sections[0]);
    let row_ptr_words = decode_u64s(sections[1]);
    let mut row_ptr = Vec::with_capacity(row_ptr_words.len());
    for w in row_ptr_words {
        let p = usize::try_from(w)
            .map_err(|_| corruption(format!("level {name}: row_ptr value {w} overflows usize")))?;
        row_ptr.push(p);
    }
    let col_idx = decode_u64s(sections[2]);
    let vals: Vec<T> = decode_u64s(sections[3])
        .into_iter()
        .map(T::decode_bits)
        .collect();
    Dcsr::try_from_raw_parts(nrows, ncols, row_ids, row_ptr, col_idx, vals)
        .map_err(|e| corruption(format!("level {name}: invariant check failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperstream_graphblas::prelude::Plus;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("hyperstream-lvltest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Dcsr<u64> {
        Dcsr::from_tuples(
            1 << 20,
            1 << 20,
            &[1, 1, 5, 900_000],
            &[2, 9, 5, 7],
            &[10u64, 20, 30, 40],
            Plus,
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = tmpdir("roundtrip");
        let d = sample();
        write_level(&dir, "lvl-test.dat", &d).unwrap();
        let back: Dcsr<u64> =
            read_level(&dir, "lvl-test.dat", d.nrows(), d.ncols(), d.nvals() as u64).unwrap();
        assert_eq!(back, d);
        back.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_level_round_trips() {
        let dir = tmpdir("empty");
        let d = Dcsr::<u64>::new(100, 100);
        write_level(&dir, "lvl-e.dat", &d).unwrap();
        let back: Dcsr<u64> = read_level(&dir, "lvl-e.dat", 100, 100, 0).unwrap();
        assert!(back.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_expectations_are_corruption() {
        let dir = tmpdir("mismatch");
        let d = sample();
        write_level(&dir, "lvl-m.dat", &d).unwrap();
        // Wrong nnz.
        assert!(read_level::<u64>(&dir, "lvl-m.dat", d.nrows(), d.ncols(), 99).is_err());
        // Wrong dims.
        assert!(read_level::<u64>(&dir, "lvl-m.dat", 7, 7, d.nvals() as u64).is_err());
        // Wrong type.
        assert!(
            read_level::<f64>(&dir, "lvl-m.dat", d.nrows(), d.ncols(), d.nvals() as u64).is_err()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_extension_and_flips_are_corruption() {
        let dir = tmpdir("mutate");
        let d = sample();
        write_level(&dir, "lvl-x.dat", &d).unwrap();
        let path = dir.join("lvl-x.dat");
        let orig = std::fs::read(&path).unwrap();

        // Truncation.
        std::fs::write(&path, &orig[..orig.len() - 1]).unwrap();
        assert!(read_level::<u64>(&dir, "lvl-x.dat", d.nrows(), d.ncols(), 4).is_err());
        // Extension.
        let mut ext = orig.clone();
        ext.push(0xAB);
        std::fs::write(&path, &ext).unwrap();
        assert!(read_level::<u64>(&dir, "lvl-x.dat", d.nrows(), d.ncols(), 4).is_err());
        // Flip a payload byte (inside the row_ids section).
        let mut flip = orig.clone();
        flip[PAGE as usize] ^= 0x40;
        std::fs::write(&path, &flip).unwrap();
        assert!(read_level::<u64>(&dir, "lvl-x.dat", d.nrows(), d.ncols(), 4).is_err());
        // Flip a header count (nnz) — header crc catches it.
        let mut flip = orig.clone();
        flip[32] ^= 0x01;
        std::fs::write(&path, &flip).unwrap();
        assert!(read_level::<u64>(&dir, "lvl-x.dat", d.nrows(), d.ncols(), 4).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
