//! The sharded parallel ingest engine: a **persistent pool** of N worker
//! threads, each owning a private [`HierMatrix`] shard, fed through
//! long-lived bounded SPSC tuple-batch channels.
//!
//! The paper's 75 G-updates/s headline is the *sum* of many independent
//! hierarchical hypersparse matrices, one per process.  Within one process
//! the same structure is a [`ShardedHierMatrix`]: a row partitioner routes
//! every update to the shard that owns its row, each shard is an ordinary
//! [`HierMatrix`] maintained by its own worker thread, and a query
//! materialises `Σ_shards Σ_levels` — valid because the shards hold disjoint
//! row sets and ⊕ is associative and commutative.
//!
//! Two effects make sharding pay:
//!
//! * **parallelism** — shards never communicate, so N cores stream N times
//!   as fast (the paper's process-level scaling, here at thread level); and
//! * **working-set reduction** — each shard's levels hold ~1/N of the
//!   entries, so every cascade merge rewrites ~1/N of the data.  This is
//!   measurable even on a single core once a stream outgrows one
//!   hierarchy's cut schedule (see the `parallel_rate` benchmark).
//!
//! # Threading model
//!
//! Workers are **persistent threads** spawned once at construction.  Each
//! worker owns its shard (behind an uncontended mutex that queries take
//! after a drain barrier), parks on its SPSC command channel when idle, and
//! lives until the engine is dropped — there are no per-round spawns or
//! joins.  The long-lived threads are also the parking spot the roadmap's
//! NUMA/affinity follow-on needs: a worker is a stable OS thread that can
//! be pinned once, not a scoped thread that vanishes every round.
//!
//! Inserts are staged into per-shard partition buffers
//! ([`PartitionBuffers`]); a shard's staging is handed to its worker
//! *whole* (a zero-copy `Vec` handoff, with emptied buffers recycled back
//! through a return channel) as soon as [`ShardedConfig::chunk_tuples`]
//! accumulate, so partitioning overlaps worker application continuously.
//! Every [`ShardedConfig::round_tuples`] staged updates the engine counts
//! one ingest *round* and force-dispatches all remainders.  The bounded
//! command channels provide backpressure: the producer blocks when a shard
//! falls [`ShardedConfig::channel_depth`] batches behind.
//!
//! Queries and [`ShardedHierMatrix::flush`] use a **drain barrier**: a
//! barrier message per worker, acknowledged only after every previously
//! queued batch has been applied (workers also report their thread id,
//! which the thread-reuse tests round-trip).
//!
//! # Fault tolerance
//!
//! Every worker runs under a panic-catching supervision wrapper: a panic
//! is captured (payload preserved), the worker's shared liveness flag
//! clears, and the engine observes the death as a *typed* error —
//! [`GrbError::ShardsLost`] — instead of panicking or hanging.  The
//! producer never blocks unboundedly: sends fail immediately once a dead
//! worker's channel disconnects (a live worker always drains, so the
//! blocking send is bounded by backpressure alone), and every ack/reply
//! wait is capped by [`ShardedConfig::wait_timeout`]
//! ([`GrbError::Timeout`]; a timeout does not declare the worker dead).
//! [`ShardedHierMatrix::health`] reports the pool state as an
//! [`EngineHealth`]; with [`ShardedConfig::degraded_reads`] enabled,
//! whole-matrix reads answer from the survivors and record the skipped
//! row bands; [`ShardedHierMatrix::respawn_shard`] rebuilds a dead worker
//! and replays the batches retained under
//! [`ShardedConfig::replay_limit_tuples`].  The `failpoints` feature
//! compiles deterministic fault-injection sites into the worker loop
//! (see [`crate::failpoint`]) — the chaos suite drives panics, injected
//! errors, and stalls through every one of these paths.

use crate::config::HierConfig;
use crate::matrix::HierMatrix;
use crate::persist::{DurableConfig, RecoveryReport};
use crate::pool::{
    col_degree_histogram, rank_col_degrees, rerank_top_k, row_hash, sum_col_degrees,
    sum_histograms, PartitionBuffers,
};
use crate::stats::HierStats;
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add_into;
use hyperstream_graphblas::ops::reader_mx::{vxm_pattern_levels_f64, PatternAdd};
use hyperstream_graphblas::sink::check_tuple_lengths;
use hyperstream_graphblas::GrbError;
use hyperstream_graphblas::{
    validate_index, CursorReader, GrbResult, Index, Matrix, MatrixReader, MatrixSnapshot,
    ScalarType, SpaScratch, SparseVector, StreamingSink,
};
use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::{JoinHandle, ThreadId};
use std::time::Duration;

/// How updates are routed to shards.  Both strategies depend only on the
/// row, so every `(row, col)` cell lives in exactly one shard and per-shard
/// results sum without overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPartitioner {
    /// Multiplicative row hash (default): spreads adjacent rows across
    /// shards, robust to skewed row spaces.
    RowHash,
    /// Contiguous row bands: shard `k` owns rows
    /// `[k·ceil(nrows/N), (k+1)·ceil(nrows/N))`.  Preserves row locality
    /// within a shard (useful when queries are row-range scans).
    RowRange,
}

impl ShardPartitioner {
    /// The shard that owns `row` in an `nshards`-way partition of `nrows`.
    pub fn shard(&self, row: Index, nrows: Index, nshards: usize) -> usize {
        match self {
            ShardPartitioner::RowHash => (row_hash(row) % nshards.max(1) as u64) as usize,
            ShardPartitioner::RowRange => {
                let band = nrows.div_ceil(nshards.max(1) as u64).max(1);
                ((row / band) as usize).min(nshards.max(1) - 1)
            }
        }
    }
}

/// Tuning knobs of the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of shards (= persistent worker threads).  Clamped to at
    /// least 1.
    pub shards: usize,
    /// Row partitioning strategy.
    pub partitioner: ShardPartitioner,
    /// Staged tuples at which a shard's buffer is handed to its worker.
    /// Larger batches amortise channel synchronisation; smaller batches
    /// start workers sooner.
    pub chunk_tuples: usize,
    /// Bounded channel capacity in batches — the producer blocks when a
    /// worker falls this far behind (backpressure).
    pub channel_depth: usize,
    /// Staged tuples that count one ingest round (all remainders are
    /// force-dispatched).  Rounds also complete on flush and queries.
    pub round_tuples: usize,
    /// Upper bound on any single wait for a worker (barrier acks, query
    /// replies).  A wait that exceeds it returns [`GrbError::Timeout`]
    /// instead of blocking forever; a timeout does *not* mark the worker
    /// lost (a slow worker is not a dead one — channel disconnection is
    /// what proves death).  The default is generous: it exists to bound
    /// pathological stalls, not to race healthy workers.
    pub wait_timeout: Duration,
    /// When `true`, whole-matrix reads against a degraded engine answer
    /// from the surviving shards and record the lost row bands in
    /// [`ShardedHierMatrix::last_answer_lost`]; when `false` (default),
    /// any read touching a lost shard returns [`GrbError::ShardsLost`].
    pub degraded_reads: bool,
    /// Per-shard bound on the tuples retained for replay after a worker
    /// loss ([`ShardedHierMatrix::respawn_shard`]).  `0` (default)
    /// disables retention entirely — the ingest hot path then does no
    /// copying — and a respawned shard restarts empty with the loss
    /// recorded.
    pub replay_limit_tuples: usize,
}

impl ShardedConfig {
    /// Default knobs for `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            partitioner: ShardPartitioner::RowHash,
            chunk_tuples: 8192,
            channel_depth: 4,
            round_tuples: 1 << 19,
            wait_timeout: Duration::from_secs(60),
            degraded_reads: false,
            replay_limit_tuples: 0,
        }
    }
}

impl Default for ShardedConfig {
    /// One shard per available core.
    fn default() -> Self {
        Self::with_shards(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

/// Supervision state of the worker pool, derived from per-worker liveness.
///
/// A worker is *lost* when its thread has exited — by panic (the panic
/// payload is captured and reported in [`GrbError::ShardsLost`]) or by
/// channel disconnection.  Losses are permanent until
/// [`ShardedHierMatrix::respawn_shard`] rebuilds the worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineHealth {
    /// Every worker is alive.
    Healthy,
    /// Some workers died; the listed shards' row bands are unreachable.
    /// Reads either fail typed or, with [`ShardedConfig::degraded_reads`],
    /// answer from the survivors.
    Degraded {
        /// Indices of the lost shards, ascending.
        lost: Vec<usize>,
    },
    /// Every worker died — no data is reachable through the pool.
    Failed,
}

/// The outcome of [`ShardedHierMatrix::respawn_shard`]: how much of the
/// lost shard's stream could be restored — from the in-memory replay
/// buffer, or (on a durable engine) from the shard's on-disk store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// The respawned shard.
    pub shard: usize,
    /// Tuples re-dispatched into the fresh hierarchy from the replay
    /// buffer (always 0 on a durable engine, where the on-disk store is
    /// authoritative and re-dispatching would double-apply under `⊕`).
    pub replayed_tuples: usize,
    /// In-memory engine: tuples that could not be recovered — dropped by
    /// the replay bound (or disabled retention) or retired by a pre-loss
    /// barrier.  Zero means the rebuilt shard is exact.
    ///
    /// Durable engine: an *upper bound* on the at-risk tuples — those
    /// dispatched since the last acknowledged barrier, which may or may
    /// not have reached the store before the worker died (applied batches
    /// are WAL-logged before they touch memory, so under
    /// [`crate::persist::FsyncPolicy::EveryBatch`] everything the worker
    /// actually applied is on disk).  Zero still means provably exact.
    pub lost_tuples: u64,
    /// Present when the shard is durable: what reopening its on-disk
    /// store observed.  `None` on in-memory engines.
    pub disk: Option<RecoveryReport>,
}

/// State shared between the engine and one worker thread's panic wrapper.
#[derive(Debug)]
struct WorkerShared {
    /// Cleared (release) by the worker's unwind wrapper on any exit, and
    /// by the producer when a send/recv finds the channel disconnected.
    /// An `AtomicBool` rather than a mutexed flag so `&self` read paths
    /// (e.g. [`StreamingSink::nvals`]) can record a discovered loss.
    alive: AtomicBool,
    /// The captured panic payload, if the worker died panicking.
    panic_msg: Mutex<Option<String>>,
}

impl WorkerShared {
    fn new() -> Self {
        Self {
            alive: AtomicBool::new(true),
            panic_msg: Mutex::new(None),
        }
    }
}

/// Producer-side retention of one shard's dispatched tuples, replayed into
/// a fresh hierarchy by [`ShardedHierMatrix::respawn_shard`].  Batches are
/// retained from dispatch until the next fully-acknowledged drain barrier
/// (the worker has then provably applied them *and* stayed alive), bounded
/// by [`ShardedConfig::replay_limit_tuples`].
#[derive(Debug, Default)]
struct ReplayBuffer<T> {
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<T>,
    /// Tuples dispatched but *not* retained (limit exceeded or retention
    /// disabled).  Non-zero at respawn time means the rebuilt shard is
    /// missing data — recorded, never silent.
    dropped: u64,
    /// Tuples retired by an acknowledged barrier since the last respawn.
    /// Non-zero at respawn time likewise means unrecoverable data: the
    /// dead worker's hierarchy held them and the replay buffer no longer
    /// does.
    retired: u64,
}

impl<T: ScalarType> ReplayBuffer<T> {
    fn retained(&self) -> usize {
        self.rows.len()
    }

    /// Retire retained batches after a fully-acknowledged barrier.
    fn on_barrier_ack(&mut self) {
        self.retired += self.rows.len() as u64;
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Forget everything (after a respawn replayed the retained tuples the
    /// fresh hierarchy corresponds to the buffer exactly).
    fn reset(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
        self.dropped = 0;
        self.retired = 0;
    }
}

/// A tuple batch travelling to a worker (and, emptied, back).
type TupleBuf<T> = (Vec<Index>, Vec<Index>, Vec<T>);

/// Batched-read routing: per shard, the original request indices and the
/// keys that shard owns, so replies scatter back into request order.
type ShardBatch<K> = Vec<(usize, Vec<usize>, Vec<K>)>;

/// Commands a worker consumes from its SPSC channel.
enum WorkerMsg<T> {
    /// Apply a batch of pre-validated tuples to the shard.  The buffers
    /// return through the recycle channel.
    Apply(TupleBuf<T>),
    /// Complete the shard's outstanding cascades.
    Flush,
    /// Acknowledge once every prior message has been applied.
    Barrier(SyncSender<BarrierAck>),
    /// Answer a read query from the owned shard — the query push-down.
    /// Rides the same FIFO channel as `Apply`, so by the time the worker
    /// answers it has applied every previously queued batch (the drain
    /// barrier and the query are one message).
    Query(ReaderQuery, SyncSender<ReaderReply<T>>),
}

/// A read query pushed down to a shard worker.  Row-targeted queries go to
/// the single owning shard; whole-matrix queries fan out to every worker,
/// which answer *in parallel* from their own hierarchies via the merged
/// level cursors — no materialised matrix is built or shipped anywhere.
enum ReaderQuery {
    /// Point get `A(row, col)`.
    Get(Index, Index),
    /// Extract one merged row.
    Row(Index),
    /// Distinct columns in one row.
    RowDegree(Index),
    /// Reduce one row under `+`.
    RowReduce(Index),
    /// The shard's local top-`k` rows by degree.
    TopK(usize),
    /// Distinct cells stored in the shard.
    Nnz,
    /// The shard's sorted entry list.
    Entries,
    /// The shard's sorted entries within a row range (half-open).
    RowRange(Index, Index),
    /// The shard's degree histogram.
    Histogram,
    /// A consistent point-in-time snapshot of the shard (Arc'd levels +
    /// degree-index view): the analytics-while-ingest handoff — the
    /// producer sweeps the snapshot while this worker's channel keeps
    /// draining.
    Snapshot,
    /// Extract one merged column (the shard's slice of it — every shard
    /// may own rows intersecting any column, so column queries always fan
    /// out to the whole pool).
    Col(Index),
    /// Distinct rows in one column of this shard.
    ColDegree(Index),
    /// Reduce one column of this shard under `+`.
    ColReduce(Index),
    /// The shard's **complete** column→in-degree list.  Unlike the row
    /// top-k, a per-shard in-degree *top-k* cannot be re-ranked by the
    /// producer — a column's degree splits across the row-partitioned
    /// shards — so workers ship the full per-column stats and the producer
    /// sums per column before ranking or histogramming.
    InDegrees,
    /// The shard's entries within a column range (half-open), column-major.
    ColRange(Index, Index),
    /// Extract a batch of merged rows (one settle shard-side, row-disjoint
    /// partials reassembled by the producer).
    Rows(Vec<Index>),
    /// Batched point gets.
    GetMany(Vec<(Index, Index)>),
    /// The frontier pattern push `w(j) = ⊕ u(i)` over this shard's slice
    /// of the frontier: the worker runs the reader-native kernel over its
    /// own level DCSRs and ships the partial product back; the producer
    /// folds overlapping output columns under the same monoid.  This is
    /// the distributed `mxv` step of BFS (`min`) and pagerank (`plus`).
    VxmPattern(Vec<(Index, f64)>, PatternAdd),
    /// The shard's complete row → out-degree list (distinct cells per
    /// row, served from the shard's degree index).
    OutDegrees,
}

/// A worker's answer to a [`ReaderQuery`] (disjoint-row partials the
/// producer concatenates or k-way merges).  Replies travel once per query
/// over a rendezvous channel, so the size spread between variants is
/// irrelevant.
#[allow(clippy::large_enum_variant)]
enum ReaderReply<T> {
    Value(Option<T>),
    Row(Vec<(Index, T)>),
    Count(usize),
    TopK(Vec<(Index, usize)>),
    Entries(Vec<(Index, Index, T)>),
    Hist(std::collections::BTreeMap<u64, u64>),
    Snapshot(MatrixSnapshot<T>),
    Rows(Vec<Vec<(Index, T)>>),
    Values(Vec<Option<T>>),
    Push(Vec<(Index, f64)>),
    Degrees(Vec<(Index, u64)>),
}

/// A worker's answer to a drain barrier.
struct BarrierAck {
    /// Index of the acknowledging shard.
    shard: usize,
    /// OS thread identity — round-tripped by the thread-reuse tests to
    /// prove the pool is persistent.
    worker: ThreadId,
    /// First error since the previous barrier, if any — a failed shard
    /// flush or a failed batch apply is latched worker-side and surfaces
    /// here rather than being lost.
    result: GrbResult<()>,
}

/// The producer-side handle of one persistent worker.
#[derive(Debug)]
struct ShardWorker<T> {
    /// Command channel (bounded: provides ingest backpressure).
    tx: SyncSender<WorkerMsg<T>>,
    /// Emptied tuple buffers coming back from the worker.
    recycled: Receiver<TupleBuf<T>>,
    /// The worker thread, joined on drop.
    handle: JoinHandle<()>,
    /// Liveness flag and captured panic payload.
    shared: Arc<WorkerShared>,
}

/// One batch apply inside the worker, behind the fallible
/// `worker-apply-error` fault site — a failure is latched worker-side and
/// surfaces in the next barrier ack.
#[cfg_attr(not(feature = "failpoints"), allow(unused_variables))]
fn apply_batch<T: ScalarType>(
    shard_idx: usize,
    shard: &Mutex<HierMatrix<T>>,
    rows: &[Index],
    cols: &[Index],
    vals: &[T],
) -> GrbResult<()> {
    crate::failpoint!("worker-apply-error", shard_idx);
    shard.lock().update_batch(rows, cols, vals)
}

/// The worker thread body: park on the channel, apply batches to the owned
/// shard, answer barriers.  Exits when the engine drops its sender.
fn worker_loop<T: ScalarType>(
    shard_idx: usize,
    shard: Arc<Mutex<HierMatrix<T>>>,
    rx: Receiver<WorkerMsg<T>>,
    recycle: Sender<TupleBuf<T>>,
) {
    let mut error: GrbResult<()> = Ok(());
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Apply((mut rows, mut cols, mut vals)) => {
                crate::failpoint_panic!("worker-apply", shard_idx);
                if error.is_ok() {
                    error = apply_batch(shard_idx, &shard, &rows, &cols, &vals);
                }
                rows.clear();
                cols.clear();
                vals.clear();
                // The engine may already be shutting down; dropping the
                // buffers then is fine.
                let _ = recycle.send((rows, cols, vals));
            }
            WorkerMsg::Flush => {
                // Latch a failed flush: the next barrier ack reports it
                // instead of the outcome silently vanishing.
                let result = shard.lock().flush();
                if error.is_ok() {
                    error = result;
                }
            }
            WorkerMsg::Barrier(ack) => {
                crate::failpoint_panic!("worker-barrier", shard_idx);
                let _ = ack.send(BarrierAck {
                    shard: shard_idx,
                    worker: std::thread::current().id(),
                    result: std::mem::replace(&mut error, Ok(())),
                });
            }
            WorkerMsg::Query(query, reply) => {
                crate::failpoint_panic!("worker-query", shard_idx);
                let mut shard = shard.lock();
                let answer = match query {
                    ReaderQuery::Get(r, c) => ReaderReply::Value(shard.read_get(r, c)),
                    ReaderQuery::Row(r) => {
                        let mut out = Vec::new();
                        shard.read_row(r, &mut out);
                        ReaderReply::Row(out)
                    }
                    ReaderQuery::RowDegree(r) => ReaderReply::Count(shard.read_row_degree(r)),
                    ReaderQuery::RowReduce(r) => ReaderReply::Value(shard.read_row_reduce(r)),
                    ReaderQuery::TopK(k) => ReaderReply::TopK(shard.read_top_k(k)),
                    ReaderQuery::Nnz => ReaderReply::Count(shard.read_nnz()),
                    ReaderQuery::Entries => {
                        let mut out = Vec::new();
                        shard.read_entries(&mut |r, c, v| out.push((r, c, v)));
                        ReaderReply::Entries(out)
                    }
                    ReaderQuery::RowRange(lo, hi) => {
                        let mut out = Vec::new();
                        shard.read_row_range(lo, hi, &mut |r, c, v| out.push((r, c, v)));
                        ReaderReply::Entries(out)
                    }
                    ReaderQuery::Histogram => ReaderReply::Hist(shard.read_degree_histogram()),
                    ReaderQuery::Snapshot => ReaderReply::Snapshot(shard.snapshot()),
                    ReaderQuery::Col(c) => {
                        let mut out = Vec::new();
                        shard.read_col(c, &mut out);
                        ReaderReply::Row(out)
                    }
                    ReaderQuery::ColDegree(c) => ReaderReply::Count(shard.read_col_degree(c)),
                    ReaderQuery::ColReduce(c) => ReaderReply::Value(shard.read_col_reduce(c)),
                    ReaderQuery::InDegrees => {
                        // nnz bounds the number of distinct columns, so
                        // this is the shard's complete column stat list.
                        let bound = shard.read_nnz();
                        ReaderReply::TopK(shard.read_in_top_k(bound))
                    }
                    ReaderQuery::ColRange(lo, hi) => {
                        let mut out = Vec::new();
                        shard.read_col_range(lo, hi, &mut |r, c, v| out.push((r, c, v)));
                        ReaderReply::Entries(out)
                    }
                    ReaderQuery::Rows(rows) => ReaderReply::Rows(shard.read_rows(&rows)),
                    ReaderQuery::GetMany(keys) => ReaderReply::Values(shard.read_get_many(&keys)),
                    ReaderQuery::VxmPattern(u, add) => {
                        let mut spa = SpaScratch::new();
                        let mut out = Vec::new();
                        shard.with_level_dcsrs(&mut |lv| {
                            vxm_pattern_levels_f64(&u, lv, add, &mut spa, &mut out);
                        });
                        ReaderReply::Push(out)
                    }
                    ReaderQuery::OutDegrees => ReaderReply::Degrees(
                        shard
                            .out_degrees()
                            .expect("hier shards always serve out-degrees"),
                    ),
                };
                let _ = reply.send(answer);
            }
        }
    }
}

/// An N-way sharded hierarchical hypersparse matrix with parallel ingest
/// over a persistent worker pool.
///
/// See the [module documentation](self) for the design.  The engine
/// implements [`StreamingSink`], so the existing `make_sink`/`drive_sink`
/// measurement harness drives it unchanged.
#[derive(Debug)]
pub struct ShardedHierMatrix<T> {
    nrows: Index,
    ncols: Index,
    config: ShardedConfig,
    /// The shard hierarchies.  A worker locks its own shard only while
    /// applying a batch; the engine locks a shard only after a drain
    /// barrier, so the mutexes are uncontended by construction.
    shards: Vec<Arc<Mutex<HierMatrix<T>>>>,
    workers: Vec<ShardWorker<T>>,
    staging: PartitionBuffers<T>,
    /// Exact sum of all successfully ingested weight (staged, in flight,
    /// or applied) — kept producer-side so [`StreamingSink::total_weight`]
    /// needs no barrier.
    ingested_weight: f64,
    /// Staged tuples since the last completed round.
    since_round: usize,
    rounds: u64,
    chunks_sent: u64,
    /// Read queries answered by the worker pool (never through a
    /// materialised matrix) — the counter the no-materialisation tests
    /// assert against.
    pushdown_queries: u64,
    /// Workers consulted by the most recent pushed-down query — the
    /// range-dispatch tests assert a narrow `read_row_range` on a
    /// RowRange-partitioned engine touches only the overlapping workers.
    last_fanout: usize,
    /// Producer-side cache of the summed column → in-degree map.  Unlike
    /// row rankings (disjoint rows, rerank per query), the in-degree
    /// ranking needs every shard's full column stats shipped and summed —
    /// expensive enough that a query burst must not repeat it.  Any staged
    /// tuple invalidates the cache; flushes and settles don't (they never
    /// change the represented union).
    in_degrees_cache: Option<std::collections::BTreeMap<Index, usize>>,
    /// Per-shard replay retention (empty vectors when
    /// [`ShardedConfig::replay_limit_tuples`] is 0).
    replay: Vec<ReplayBuffer<T>>,
    /// Shard cut schedule, kept so [`Self::respawn_shard`] can build a
    /// fresh hierarchy identical to the lost one's.
    hier_config: HierConfig,
    /// Durable backing for the whole engine: shard `i` persists to
    /// `dir/shard-i` ([`DurableConfig::shard`]).  `None` for in-memory
    /// engines.  Kept so [`Self::respawn_shard`] can reopen a lost
    /// shard's store instead of rebuilding from the replay buffer.
    durable: Option<DurableConfig>,
    /// First error swallowed by an infallible [`MatrixReader`] method since
    /// the last [`Self::take_read_error`] — the trait's signatures cannot
    /// carry it, so it is latched here instead of vanishing.  Mutexed so
    /// `&self` paths (e.g. [`StreamingSink::nvals`]) can latch too.
    last_error: Mutex<Option<GrbError>>,
    /// Shards skipped by the most recent degraded read (empty when the
    /// answer was complete).
    last_answer_lost: Vec<usize>,
}

/// Spawn one supervised worker thread for shard `i`: the loop runs under
/// `catch_unwind`, and any exit — panic or channel closure — clears the
/// shared liveness flag so the producer observes the death instead of
/// blocking on it.
fn spawn_worker<T: ScalarType>(
    i: usize,
    shard: Arc<Mutex<HierMatrix<T>>>,
    depth: usize,
) -> ShardWorker<T> {
    let (tx, rx) = sync_channel::<WorkerMsg<T>>(depth);
    let (recycle_tx, recycle_rx) = channel::<TupleBuf<T>>();
    let shared = Arc::new(WorkerShared::new());
    let worker_shared = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name(format!("shard-worker-{i}"))
        .spawn(move || {
            // AssertUnwindSafe: on panic the shard hierarchy may be
            // mid-mutation; the engine treats a lost shard's contents as
            // unreliable and rebuilds from scratch on respawn, so the
            // broken invariants never escape.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                worker_loop(i, shard, rx, recycle_tx)
            }));
            if let Err(payload) = outcome {
                let msg = panic_message(payload.as_ref());
                *worker_shared.panic_msg.lock() = Some(msg);
            }
            worker_shared.alive.store(false, Ordering::Release);
        })
        .expect("spawn shard worker");
    ShardWorker {
        tx,
        recycled: recycle_rx,
        handle,
        shared,
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

impl<T: ScalarType> ShardedHierMatrix<T> {
    /// Create an engine whose shards are `nrows x ncols` hierarchies with
    /// the cut schedule `hier_config`, spawning one persistent worker
    /// thread per shard.
    pub fn new(
        nrows: Index,
        ncols: Index,
        hier_config: HierConfig,
        config: ShardedConfig,
    ) -> GrbResult<Self> {
        Self::build(nrows, ncols, hier_config, config, None)
    }

    /// Create a *durable* engine: shard `i` persists to `durable.dir/shard-i`
    /// with the configured fsync policy.  If the per-shard directories
    /// already hold initialised stores they are reopened (crash recovery
    /// included); otherwise fresh stores are created.  Inspect what each
    /// shard's recovery observed via [`Self::shard_recovery_reports`].
    ///
    /// The shard count, dimensions, and cut schedule must match the ones
    /// the stores were created with ([`GrbError::InvalidValue`] otherwise) —
    /// re-sharding an existing store is not supported, because rows would
    /// migrate between shard directories.
    pub fn new_durable(
        nrows: Index,
        ncols: Index,
        hier_config: HierConfig,
        config: ShardedConfig,
        durable: DurableConfig,
    ) -> GrbResult<Self> {
        Self::build(nrows, ncols, hier_config, config, Some(durable))
    }

    fn build(
        nrows: Index,
        ncols: Index,
        hier_config: HierConfig,
        config: ShardedConfig,
        durable: Option<DurableConfig>,
    ) -> GrbResult<Self> {
        let nshards = config.shards.max(1);
        let depth = config.channel_depth.max(1);
        let mut shards = Vec::with_capacity(nshards);
        let mut workers = Vec::with_capacity(nshards);
        let mut replay = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let hier = match &durable {
                Some(dcfg) => {
                    HierMatrix::open_or_create(nrows, ncols, hier_config.clone(), dcfg.shard(i))?
                }
                None => HierMatrix::new(nrows, ncols, hier_config.clone())?,
            };
            let shard = Arc::new(Mutex::new(hier));
            workers.push(spawn_worker(i, Arc::clone(&shard), depth));
            shards.push(shard);
            replay.push(ReplayBuffer::default());
        }
        Ok(Self {
            nrows,
            ncols,
            config: ShardedConfig {
                shards: nshards,
                ..config
            },
            staging: PartitionBuffers::new(nshards),
            shards,
            workers,
            ingested_weight: 0.0,
            since_round: 0,
            rounds: 0,
            chunks_sent: 0,
            pushdown_queries: 0,
            last_fanout: 0,
            in_degrees_cache: None,
            replay,
            hier_config,
            durable,
            last_error: Mutex::new(None),
            last_answer_lost: Vec::new(),
        })
    }

    /// Per-shard recovery reports from a durable open: `reports[i]` is
    /// what reopening shard `i`'s store observed, `None` when the shard
    /// was freshly created (or the engine is in-memory, in which case
    /// every entry is `None`).
    pub fn shard_recovery_reports(&self) -> Vec<Option<RecoveryReport>> {
        self.shards
            .iter()
            .map(|s| s.lock().recovery_report().cloned())
            .collect()
    }

    /// Whether this engine persists its shards to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Convenience constructor: `shards` shards with the paper-default cut
    /// schedule and default engine knobs.
    pub fn with_shards(nrows: Index, ncols: Index, shards: usize) -> GrbResult<Self> {
        Self::new(
            nrows,
            ncols,
            HierConfig::paper_default(),
            ShardedConfig::with_shards(shards),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of shards (= persistent workers).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Whether shard `i`'s worker thread is alive.
    fn is_alive(&self, i: usize) -> bool {
        self.workers[i].shared.alive.load(Ordering::Acquire)
    }

    /// Indices of the lost shards, ascending.
    pub fn lost_shards(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| !self.is_alive(i))
            .collect()
    }

    /// Current supervision state of the worker pool.
    pub fn health(&self) -> EngineHealth {
        let lost = self.lost_shards();
        if lost.is_empty() {
            EngineHealth::Healthy
        } else if lost.len() == self.workers.len() {
            EngineHealth::Failed
        } else {
            EngineHealth::Degraded { lost }
        }
    }

    /// Shards skipped by the most recent degraded read (empty when the
    /// last answer was complete).  Only meaningful with
    /// [`ShardedConfig::degraded_reads`] enabled.
    pub fn last_answer_lost(&self) -> &[usize] {
        &self.last_answer_lost
    }

    /// Take (and clear) the first error swallowed by an infallible
    /// [`MatrixReader`] method since the previous call.  The fallible
    /// `try_*` duals never latch — prefer them on supervised engines.
    pub fn take_read_error(&self) -> Option<GrbError> {
        self.last_error.lock().take()
    }

    /// The typed error describing the given lost shards, carrying the
    /// first captured panic payload as detail.
    fn lost_error(&self, shards: Vec<usize>) -> GrbError {
        let detail = shards
            .iter()
            .find_map(|&i| self.workers[i].shared.panic_msg.lock().clone())
            .unwrap_or_else(|| "worker channel closed".to_string());
        GrbError::ShardsLost { shards, detail }
    }

    /// Record shard `i`'s worker as dead after a disconnected channel and
    /// return the typed error.
    fn mark_lost(&self, i: usize) -> GrbError {
        self.workers[i].shared.alive.store(false, Ordering::Release);
        self.lost_error(vec![i])
    }

    /// Send one command to shard `i`'s worker.  The send blocks only while
    /// the bounded channel is full of a *live* worker's backlog
    /// (backpressure); a dead worker's channel is disconnected, which
    /// returns immediately — so this cannot hang.  Returns the message on
    /// failure so callers can salvage its payload.
    fn send_msg(&self, i: usize, msg: WorkerMsg<T>) -> Result<(), WorkerMsg<T>> {
        self.workers[i].tx.send(msg).map_err(|e| e.0)
    }

    /// Bounded wait for one reply from shard `i`: a disconnect marks the
    /// worker lost; exceeding [`ShardedConfig::wait_timeout`] returns a
    /// typed timeout *without* declaring the worker dead.
    fn recv_bounded<R>(&self, i: usize, what: &'static str, rx: &Receiver<R>) -> GrbResult<R> {
        match rx.recv_timeout(self.config.wait_timeout) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Disconnected) => Err(self.mark_lost(i)),
            Err(RecvTimeoutError::Timeout) => Err(GrbError::Timeout {
                what,
                after_ms: self.config.wait_timeout.as_millis() as u64,
            }),
        }
    }

    /// Fail fast when any worker is already known lost, unless degraded
    /// reads are enabled — then report the survivors the caller should
    /// target and record the skipped shards.
    fn surviving_targets(&mut self, targets: &[usize]) -> GrbResult<Vec<usize>> {
        let lost: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&i| !self.is_alive(i))
            .collect();
        if lost.is_empty() {
            self.last_answer_lost.clear();
            return Ok(targets.to_vec());
        }
        if !self.config.degraded_reads {
            return Err(self.lost_error(lost));
        }
        let alive: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&i| self.is_alive(i))
            .collect();
        self.last_answer_lost = lost;
        Ok(alive)
    }

    /// A snapshot of one shard's hierarchy statistics (drains that shard's
    /// worker first so in-flight batches are counted).
    pub fn shard_stats(&self, i: usize) -> GrbResult<HierStats> {
        self.barrier_shard(i)?;
        Ok(self.shards[i].lock().stats().clone())
    }

    /// Ingest rounds completed so far.  Rounds meter the stream into
    /// [`ShardedConfig::round_tuples`] slices; since the worker pool is
    /// persistent they no longer imply any thread spawns.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Tuple batches handed to workers so far.
    pub fn chunks_sent(&self) -> u64 {
        self.chunks_sent
    }

    /// Read queries answered through the worker pool so far.  The
    /// no-materialisation tests pair this with
    /// [`HierStats::materializations`] staying zero: every pushed-down
    /// query is served from shard-local level cursors.
    pub fn pushdown_queries(&self) -> u64 {
        self.pushdown_queries
    }

    /// The OS thread ids of the worker pool, obtained through a drain
    /// barrier.  Repeated calls on a live engine return the same ids —
    /// the property the thread-reuse tests assert.
    pub fn worker_ids(&self) -> GrbResult<Vec<ThreadId>> {
        let mut acks = Vec::with_capacity(self.workers.len());
        for (shard, ack) in self.collect_barrier_acks() {
            let ack = ack?;
            debug_assert_eq!(ack.shard, shard);
            ack.result?;
            acks.push((ack.shard, ack.worker));
        }
        acks.sort_by_key(|&(shard, _)| shard);
        Ok(acks.into_iter().map(|(_, worker)| worker).collect())
    }

    /// Total updates applied across all shards (drains in-flight batches
    /// first; staged tuples are excluded).  A degraded engine with
    /// [`ShardedConfig::degraded_reads`] sums the surviving shards.
    pub fn total_updates(&self) -> GrbResult<u64> {
        let lost = self.barrier_live()?;
        Ok(self
            .shards
            .iter()
            .enumerate()
            .filter(|(i, _)| !lost.contains(i))
            .map(|(_, s)| s.lock().stats().updates)
            .sum())
    }

    /// Aggregate hierarchy statistics (sums over shards, after a drain).
    /// A degraded engine with [`ShardedConfig::degraded_reads`] sums the
    /// surviving shards.
    pub fn aggregate_stats(&self) -> GrbResult<HierStats> {
        let lost = self.barrier_live()?;
        let levels = self.shards.first().map(|m| m.lock().levels()).unwrap_or(1);
        let mut agg = HierStats::new(levels);
        for (i, m) in self.shards.iter().enumerate() {
            if lost.contains(&i) {
                continue;
            }
            let m = m.lock();
            let s = m.stats();
            agg.updates += s.updates;
            agg.materializations += s.materializations;
            for l in 0..levels {
                agg.cascades[l] += s.cascades_from_level(l);
                agg.entries_moved[l] += s.entries_moved_from_level(l);
            }
        }
        Ok(agg)
    }

    /// Apply one streaming update `A(row, col) += val`.
    pub fn update(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        let shard = self
            .config
            .partitioner
            .shard(row, self.nrows, self.shards.len());
        self.staging.push(shard, row, col, val);
        self.ingested_weight += val.to_f64();
        self.since_round += 1;
        self.in_degrees_cache = None;
        if self.staging.staged(shard) >= self.config.chunk_tuples.max(1) {
            self.dispatch_shard(shard)?;
        }
        self.maybe_complete_round()
    }

    /// Apply a batch of updates given as parallel slices.  The batch is
    /// validated up front and applies atomically.
    pub fn update_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        check_tuple_lengths(rows, cols, vals)?;
        for i in 0..rows.len() {
            validate_index(rows[i], self.nrows)?;
            validate_index(cols[i], self.ncols)?;
        }
        let nshards = self.shards.len();
        for i in 0..rows.len() {
            let shard = self.config.partitioner.shard(rows[i], self.nrows, nshards);
            self.staging.push(shard, rows[i], cols[i], vals[i]);
            self.ingested_weight += vals[i].to_f64();
        }
        self.since_round += rows.len();
        if !rows.is_empty() {
            self.in_degrees_cache = None;
        }
        let chunk = self.config.chunk_tuples.max(1);
        for shard in 0..nshards {
            if self.staging.staged(shard) >= chunk {
                self.dispatch_shard(shard)?;
            }
        }
        self.maybe_complete_round()
    }

    /// Hand `shard`'s staged tuples to its worker: swap the staging vectors
    /// out (replaced by recycled buffers when the worker has returned any),
    /// and send them whole over the bounded channel.  Blocks when the
    /// worker is `channel_depth` batches behind — the engine's
    /// backpressure (a *dead* worker's channel is disconnected and fails
    /// immediately instead).  On a send failure the batch is re-staged, so
    /// a later [`Self::respawn_shard`] can still dispatch it.
    fn dispatch_shard(&mut self, shard: usize) -> GrbResult<()> {
        if self.staging.staged(shard) == 0 {
            return Ok(());
        }
        if !self.is_alive(shard) {
            return Err(self.lost_error(vec![shard]));
        }
        // Retain a replay copy before the buffers travel (rolled back if
        // the send fails — the tuples then live in staging, not both).
        let batch_len = self.staging.staged(shard);
        let retained_before = self.replay_retain(shard);
        let replacement = self.workers[shard].recycled.try_recv().unwrap_or_default();
        let buf = self.staging.take_shard(shard, replacement);
        match self.send_msg(shard, WorkerMsg::Apply(buf)) {
            Ok(()) => {
                self.chunks_sent += 1;
                Ok(())
            }
            Err(WorkerMsg::Apply((rows, cols, vals))) => {
                // The worker died between the liveness check and the send:
                // salvage the batch back into staging and undo the replay
                // append so the tuples are counted exactly once.
                for i in 0..rows.len() {
                    self.staging.push(shard, rows[i], cols[i], vals[i]);
                }
                self.replay_rollback(shard, retained_before, batch_len);
                Err(self.mark_lost(shard))
            }
            Err(_) => unreachable!("send returned a different message than it was given"),
        }
    }

    /// Append `shard`'s currently staged tuples to its replay buffer
    /// (bounded; overflow is recorded, not silently dropped).  Returns the
    /// buffer's prior retained length for rollback.
    fn replay_retain(&mut self, shard: usize) -> usize {
        let staged = self.staging.staged(shard);
        let rb = &mut self.replay[shard];
        let before = rb.retained();
        let limit = self.config.replay_limit_tuples;
        if limit == 0 || before + staged > limit {
            rb.dropped += staged as u64;
            return before;
        }
        let (r, c, v) = self.staging.shard_slices(shard);
        rb.rows.extend_from_slice(r);
        rb.cols.extend_from_slice(c);
        rb.vals.extend_from_slice(v);
        before
    }

    /// Undo a [`Self::replay_retain`] after a failed dispatch.
    fn replay_rollback(&mut self, shard: usize, retained_before: usize, batch_len: usize) {
        let rb = &mut self.replay[shard];
        if rb.retained() > retained_before {
            rb.rows.truncate(retained_before);
            rb.cols.truncate(retained_before);
            rb.vals.truncate(retained_before);
        } else {
            // The batch was never retained — it was counted as dropped.
            rb.dropped = rb.dropped.saturating_sub(batch_len as u64);
        }
    }

    /// Dispatch every live shard's staged remainder, surfacing the first
    /// failure after trying them all.
    fn dispatch_all(&mut self) -> GrbResult<()> {
        let mut result = Ok(());
        for shard in 0..self.shards.len() {
            if self.staging.staged(shard) == 0 {
                continue;
            }
            if !self.is_alive(shard) {
                // Leave the staged tuples in place for a future respawn.
                if result.is_ok() {
                    result = Err(self.lost_error(vec![shard]));
                }
                continue;
            }
            let r = self.dispatch_shard(shard);
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// Count a round once `round_tuples` have been staged since the last
    /// one, force-dispatching all remainders so the round is fully in
    /// flight.
    fn maybe_complete_round(&mut self) -> GrbResult<()> {
        if self.since_round >= self.config.round_tuples.max(1) {
            let r = self.dispatch_all();
            self.since_round = 0;
            self.rounds += 1;
            return r;
        }
        Ok(())
    }

    /// Push one read query down to `shard`'s worker: drain that shard's
    /// staging into its channel, enqueue the query (FIFO ⇒ it acts as its
    /// own drain barrier) and wait for the answer.  Only the owning shard
    /// does any work; the other workers keep ingesting.
    ///
    /// Returns `Ok(None)` when the owning shard is lost and degraded reads
    /// are enabled: the caller substitutes the empty answer and the skipped
    /// shard is recorded in [`Self::last_answer_lost`].
    fn query_shard(
        &mut self,
        shard: usize,
        query: ReaderQuery,
    ) -> GrbResult<Option<ReaderReply<T>>> {
        if !self.is_alive(shard) {
            if self.config.degraded_reads {
                self.last_answer_lost = vec![shard];
                return Ok(None);
            }
            return Err(self.lost_error(vec![shard]));
        }
        self.last_answer_lost.clear();
        self.dispatch_shard(shard)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        if self
            .send_msg(shard, WorkerMsg::Query(query, reply_tx))
            .is_err()
        {
            return Err(self.mark_lost(shard));
        }
        self.pushdown_queries += 1;
        self.last_fanout = 1;
        self.recv_bounded(shard, "query reply", &reply_rx).map(Some)
    }

    /// Push one read query down to a *subset* of workers and collect their
    /// partial answers.  The range dispatch uses this to consult only the
    /// workers whose row bands overlap a scan.  One reply channel per
    /// worker keeps loss attribution exact; all targeted workers still
    /// compute concurrently.
    fn query_shards(
        &mut self,
        shards: &[usize],
        mk: impl Fn() -> ReaderQuery,
    ) -> GrbResult<Vec<ReaderReply<T>>> {
        let targets = self.surviving_targets(shards)?;
        for &s in &targets {
            self.dispatch_shard(s)?;
        }
        let mut receivers = Vec::with_capacity(targets.len());
        for &s in &targets {
            let (reply_tx, reply_rx) = sync_channel(1);
            if self.send_msg(s, WorkerMsg::Query(mk(), reply_tx)).is_err() {
                return Err(self.mark_lost(s));
            }
            receivers.push((s, reply_rx));
        }
        self.pushdown_queries += 1;
        self.last_fanout = targets.len();
        receivers
            .iter()
            .map(|(s, rx)| self.recv_bounded(*s, "query reply", rx))
            .collect()
    }

    /// Push one read query down to *every* worker and collect the partial
    /// answers.  All shards compute concurrently; because shards own
    /// disjoint row sets the producer only concatenates or k-way merges
    /// the partials — no materialised matrices travel through the
    /// channels.
    fn query_all(&mut self, mk: impl Fn() -> ReaderQuery) -> GrbResult<Vec<ReaderReply<T>>> {
        let all: Vec<usize> = (0..self.workers.len()).collect();
        self.query_shards(&all, mk)
    }

    /// Push a *distinct* query down to each listed worker (the batched-read
    /// dispatch: each shard gets exactly the keys it owns) and collect the
    /// replies in the same order as `queries`.  One reply channel per query
    /// keeps the pairing; all targeted workers still compute concurrently.
    /// A `None` slot stands for a lost shard skipped by a degraded read.
    fn query_each(
        &mut self,
        queries: Vec<(usize, ReaderQuery)>,
    ) -> GrbResult<Vec<Option<ReaderReply<T>>>> {
        let targets: Vec<usize> = queries.iter().map(|&(s, _)| s).collect();
        let live = self.surviving_targets(&targets)?;
        for &s in &live {
            self.dispatch_shard(s)?;
        }
        let mut pending = Vec::with_capacity(queries.len());
        for (s, q) in queries {
            if !live.contains(&s) {
                pending.push((s, None));
                continue;
            }
            let (reply_tx, reply_rx) = sync_channel(1);
            if self.send_msg(s, WorkerMsg::Query(q, reply_tx)).is_err() {
                return Err(self.mark_lost(s));
            }
            pending.push((s, Some(reply_rx)));
        }
        self.pushdown_queries += 1;
        self.last_fanout = pending.iter().filter(|(_, rx)| rx.is_some()).count();
        pending
            .into_iter()
            .map(|(s, rx)| match rx {
                None => Ok(None),
                Some(rx) => self.recv_bounded(s, "query reply", &rx).map(Some),
            })
            .collect()
    }

    /// The shards whose row sets can intersect `lo..hi`: a contiguous band
    /// range under the RowRange partitioner, every shard under RowHash.
    fn range_shards(&self, lo: Index, hi: Index) -> Vec<usize> {
        let n = self.shards.len();
        match self.config.partitioner {
            ShardPartitioner::RowRange => {
                let band = self.nrows.div_ceil(n as u64).max(1);
                let first = ((lo / band) as usize).min(n - 1);
                let last =
                    (((hi - 1).min(self.nrows.saturating_sub(1)) / band) as usize).min(n - 1);
                (first..=last).collect()
            }
            ShardPartitioner::RowHash => (0..n).collect(),
        }
    }

    /// Workers consulted by the most recent pushed-down query.
    pub fn last_query_fanout(&self) -> usize {
        self.last_fanout
    }

    /// Take a consistent engine-wide snapshot: staged tuples dispatch,
    /// every worker snapshots its shard at its drain barrier (O(levels)
    /// Arc bumps — no entries are copied or shipped), and the producer
    /// receives one [`MatrixSnapshot`] per shard.  The returned
    /// [`ShardedSnapshot`] answers every [`MatrixReader`] query from the
    /// captured state while the workers keep draining their channels —
    /// the analytics-while-ingest overlap the roadmap parked here.
    pub fn snapshot(&mut self) -> GrbResult<ShardedSnapshot<T>> {
        let shards = self
            .query_all(|| ReaderQuery::Snapshot)?
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Snapshot(s) => s,
                _ => unreachable!("worker answered Snapshot with a non-Snapshot reply"),
            })
            .collect();
        Ok(ShardedSnapshot {
            nrows: self.nrows,
            ncols: self.ncols,
            shards,
            lost: self.last_answer_lost.clone(),
        })
    }

    /// The distributed frontier pattern push `w(j) = ⊕ u(i)` over the
    /// stored cells `(i, j)`: the frontier is sliced by owning shard, each
    /// slice ships over the drain-barrier query channel (so every worker
    /// answers after applying everything queued before the query), the
    /// workers run the reader-native kernel over their own level DCSRs in
    /// parallel, and the partial products are summed producer-side under
    /// `add` — output columns overlap across shards even though rows are
    /// disjoint.  `u` must be sorted by index; the result is sorted by
    /// index.  Under degraded reads a lost shard's slice is skipped and
    /// recorded in [`Self::last_answer_lost`].
    pub fn try_vxm_pattern(
        &mut self,
        u: &[(Index, f64)],
        add: PatternAdd,
    ) -> GrbResult<Vec<(Index, f64)>> {
        if u.is_empty() {
            return Ok(Vec::new());
        }
        let nshards = self.shards.len();
        let mut slices: Vec<Vec<(Index, f64)>> = vec![Vec::new(); nshards];
        for &(r, m) in u {
            slices[self.owner(r)].push((r, m));
        }
        let queries: Vec<(usize, ReaderQuery)> = slices
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(s, part)| (s, ReaderQuery::VxmPattern(part, add)))
            .collect();
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let mut all: Vec<(Index, f64)> = Vec::new();
        for reply in self.query_each(queries)? {
            match reply {
                Some(ReaderReply::Push(part)) => all.extend(part),
                Some(_) => unreachable!("worker answered VxmPattern with a wrong reply"),
                // Lost shard under degraded reads: its slice of the push
                // is simply absent from the (degraded) product.
                None => {}
            }
        }
        all.sort_unstable_by_key(|&(j, _)| j);
        let mut out: Vec<(Index, f64)> = Vec::with_capacity(all.len());
        for (j, v) in all {
            match out.last_mut() {
                Some(last) if last.0 == j => {
                    last.1 = match add {
                        PatternAdd::Plus => last.1 + v,
                        PatternAdd::Min => last.1.min(v),
                    };
                }
                _ => out.push((j, v)),
            }
        }
        Ok(out)
    }

    /// Row → out-degree list for the whole engine, served from each
    /// shard's degree index over the query channel.  Rows are disjoint
    /// across shards, so the partials concatenate; one sort restores
    /// global row order.
    pub fn try_out_degrees(&mut self) -> GrbResult<Vec<(Index, u64)>> {
        let mut all: Vec<(Index, u64)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::OutDegrees)? {
            match reply {
                ReaderReply::Degrees(part) => all.extend(part),
                _ => unreachable!("worker answered OutDegrees with a wrong reply"),
            }
        }
        all.sort_unstable_by_key(|&(r, _)| r);
        Ok(all)
    }

    /// PageRank with every `mxv` iteration pushed down to the shard pool:
    /// out-degrees come from the per-shard degree indexes
    /// ([`Self::try_out_degrees`]), and each iteration is one distributed
    /// pattern push of `rank(i)/outdeg(i)` under `plus`
    /// ([`Self::try_vxm_pattern`]) — no transition matrix and no
    /// materialised `Σ shards Σ levels` are ever formed, and the shards
    /// multiply their slices in parallel.
    ///
    /// Same contract as [`hyperstream_graphblas::algo::pagerank`]: ranks
    /// for every vertex with at least one in- or out-edge.
    pub fn pagerank(
        &mut self,
        damping: f64,
        max_iters: usize,
        tol: f64,
    ) -> GrbResult<SparseVector<f64>> {
        let degrees = self.try_out_degrees()?;
        let mut active: Vec<Index> = self.ensure_in_degrees()?.keys().copied().collect();
        active.extend(degrees.iter().map(|&(r, _)| r));
        active.sort_unstable();
        active.dedup();
        let n = active.len();
        let mut rank = SparseVector::<f64>::new(self.nrows.max(self.ncols));
        if n == 0 {
            return Ok(rank);
        }
        for &v in &active {
            rank.set(v, 1.0 / n as f64)?;
        }
        let teleport = (1.0 - damping) / n as f64;
        let mut push: Vec<(Index, f64)> = Vec::with_capacity(degrees.len());
        for _ in 0..max_iters {
            push.clear();
            for &(r, d) in &degrees {
                if let Some(rv) = rank.get(r) {
                    push.push((r, rv / d as f64));
                }
            }
            let spread = self.try_vxm_pattern(&push, PatternAdd::Plus)?;
            let mut next = SparseVector::<f64>::new(rank.size());
            let mut delta = 0.0;
            let mut sp = spread.iter().peekable();
            for &v in &active {
                let mut mass = 0.0;
                while let Some(&&(j, m)) = sp.peek() {
                    if j < v {
                        sp.next();
                    } else {
                        if j == v {
                            mass = m;
                        }
                        break;
                    }
                }
                let val = teleport + damping * mass;
                delta += (val - rank.get(v).unwrap_or(0.0)).abs();
                next.set(v, val)?;
            }
            rank = next;
            if delta < tol {
                break;
            }
        }
        Ok(rank)
    }

    /// Level-synchronous BFS with each wave's frontier sliced to its
    /// owning shards ([`Self::try_vxm_pattern`] under `min`); the visited
    /// mask is applied producer-side, where the level vector lives.
    ///
    /// Same contract as [`hyperstream_graphblas::algo::bfs_levels`]:
    /// `v(j)` is the BFS level of vertex `j`, source at level 1.
    pub fn bfs_levels(&mut self, source: Index) -> GrbResult<SparseVector<u64>> {
        let mut levels = SparseVector::<u64>::new(self.nrows.max(self.ncols));
        if source >= self.nrows {
            return Ok(levels);
        }
        levels.set(source, 1)?;
        let mut frontier: Vec<(Index, f64)> = vec![(source, 1.0)];
        let mut level = 1u64;
        while !frontier.is_empty() {
            level += 1;
            let reached = self.try_vxm_pattern(&frontier, PatternAdd::Min)?;
            frontier.clear();
            for (j, _) in reached {
                if levels.get(j).is_none() {
                    levels.set(j, level)?;
                    frontier.push((j, 1.0));
                }
            }
        }
        Ok(levels)
    }

    /// Full column → in-degree map summed across every shard.  A column's
    /// degree splits across the row-partitioned shards, so per-shard top-k
    /// lists cannot be re-ranked; workers ship their complete column stats
    /// and the producer sums them before ranking or binning.
    ///
    /// A degraded (survivors-only) sum is cached like any other: every
    /// staged tuple already invalidates the cache, and
    /// [`Self::respawn_shard`] clears it when a lost band comes back.
    fn ensure_in_degrees(&mut self) -> GrbResult<&std::collections::BTreeMap<Index, usize>> {
        if self.in_degrees_cache.is_none() {
            let parts: Vec<Vec<(Index, usize)>> = self
                .query_all(|| ReaderQuery::InDegrees)?
                .into_iter()
                .map(|reply| match reply {
                    ReaderReply::TopK(part) => part,
                    _ => unreachable!("worker answered InDegrees with a non-TopK reply"),
                })
                .collect();
            self.in_degrees_cache = Some(sum_col_degrees(parts));
        }
        Ok(self.in_degrees_cache.as_ref().expect("just filled"))
    }

    /// The shard owning `row` under the configured partitioner.
    fn owner(&self, row: Index) -> usize {
        self.config
            .partitioner
            .shard(row, self.nrows, self.shards.len())
    }

    /// Block until `shard`'s worker has applied everything queued so far,
    /// surfacing any worker error (a failed apply or flush latched since
    /// the previous barrier) — never swallowed.
    fn barrier_shard(&self, shard: usize) -> GrbResult<()> {
        if !self.is_alive(shard) {
            return Err(self.lost_error(vec![shard]));
        }
        let (ack_tx, ack_rx) = sync_channel(1);
        if self.send_msg(shard, WorkerMsg::Barrier(ack_tx)).is_err() {
            return Err(self.mark_lost(shard));
        }
        let ack = self.recv_bounded(shard, "barrier ack", &ack_rx)?;
        debug_assert_eq!(ack.shard, shard);
        ack.result
    }

    /// Send a drain barrier to every *live* worker and collect the
    /// acknowledgements, one entry per shard.  A known-lost or
    /// newly-disconnected shard yields a typed error entry; the rest are
    /// still drained (all barriers are sent before any ack is awaited, so
    /// live workers drain concurrently).
    fn collect_barrier_acks(&self) -> Vec<(usize, GrbResult<BarrierAck>)> {
        let mut pending: Vec<(usize, Result<Receiver<BarrierAck>, GrbError>)> =
            Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            if !self.is_alive(i) {
                pending.push((i, Err(self.lost_error(vec![i]))));
                continue;
            }
            let (ack_tx, ack_rx) = sync_channel(1);
            match self.send_msg(i, WorkerMsg::Barrier(ack_tx)) {
                Ok(()) => pending.push((i, Ok(ack_rx))),
                Err(_) => pending.push((i, Err(self.mark_lost(i)))),
            }
        }
        pending
            .into_iter()
            .map(|(i, rx)| {
                let ack = rx.and_then(|rx| self.recv_bounded(i, "barrier ack", &rx));
                (i, ack)
            })
            .collect()
    }

    /// Drain every live worker, tolerating already-lost shards when
    /// degraded reads are enabled.  Returns the lost shards the caller
    /// must exclude from producer-side sums (a dead worker's hierarchy may
    /// be mid-mutation and is never read).
    fn barrier_live(&self) -> GrbResult<Vec<usize>> {
        let known_lost = self.lost_shards();
        if !known_lost.is_empty() && !self.config.degraded_reads {
            return Err(self.lost_error(known_lost));
        }
        let mut result = Ok(());
        for (_, ack) in self.collect_barrier_acks() {
            let r = match ack {
                Ok(a) => a.result,
                Err(GrbError::ShardsLost { .. }) if self.config.degraded_reads => Ok(()),
                Err(e) => Err(e),
            };
            if result.is_ok() {
                result = r;
            }
        }
        result?;
        Ok(self.lost_shards())
    }

    /// [`Self::barrier_all`] plus replay retirement: a shard whose ack came
    /// back clean has provably applied every retained batch, so its replay
    /// buffer empties (this is what bounds the buffer on a healthy engine).
    fn settle_barrier(&mut self) -> GrbResult<()> {
        let acks = self.collect_barrier_acks();
        let mut result = Ok(());
        for (shard, ack) in acks {
            match ack {
                Ok(a) if a.result.is_ok() => self.replay[shard].on_barrier_ack(),
                Ok(a) => {
                    if result.is_ok() {
                        result = a.result;
                    }
                }
                Err(e) => {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
            }
        }
        result
    }

    /// Complete all deferred work: dispatch staged tuples, wait for the
    /// workers to apply them, and finish every shard's outstanding
    /// cascades.  The workers stay parked on their channels afterwards.
    /// On a degraded engine the surviving shards are still flushed and the
    /// first loss is reported.
    pub fn flush(&mut self) -> GrbResult<()> {
        let mut result = Ok(());
        if self.since_round > 0 || self.staging.total() > 0 {
            result = self.dispatch_all();
            self.since_round = 0;
            self.rounds += 1;
        }
        for i in 0..self.workers.len() {
            if !self.is_alive(i) {
                if result.is_ok() {
                    result = Err(self.lost_error(vec![i]));
                }
                continue;
            }
            if self.send_msg(i, WorkerMsg::Flush).is_err() {
                let e = self.mark_lost(i);
                if result.is_ok() {
                    result = Err(e);
                }
            }
        }
        let settled = self.settle_barrier();
        if result.is_ok() {
            result = settled;
        }
        result
    }

    /// Materialise the full matrix `A = Σ_shards Σ_levels` (staged and
    /// in-flight tuples are applied first; streaming can continue
    /// afterwards).  With [`ShardedConfig::degraded_reads`], a degraded
    /// engine materialises the surviving shards and records the skipped
    /// bands in [`Self::last_answer_lost`].
    pub fn materialize(&mut self) -> GrbResult<Matrix<T>> {
        let known_lost = self.lost_shards();
        if !known_lost.is_empty() && !self.config.degraded_reads {
            return Err(self.lost_error(known_lost));
        }
        for s in 0..self.shards.len() {
            if self.is_alive(s) {
                self.dispatch_shard(s)?;
            }
        }
        let lost = self.barrier_live()?;
        self.last_answer_lost = lost.clone();
        Ok(self.shard_sum(&lost))
    }

    /// `Σ_shards Σ_levels` of the shards' contents, excluding `skip` (lost
    /// shards, whose hierarchies may be mid-mutation).  Callers must have
    /// drained the live workers; tuples still staged producer-side are
    /// folded in by the caller where required.  This is the *snapshot*
    /// path — it counts one materialisation per shard, which is how the
    /// tests verify that the query push-down never comes through here.
    fn shard_sum(&self, skip: &[usize]) -> Matrix<T> {
        let mut acc = Matrix::new(self.nrows, self.ncols);
        for (i, shard) in self.shards.iter().enumerate() {
            if skip.contains(&i) {
                continue;
            }
            let level_sum = shard.lock().materialize();
            ewise_add_into(&mut acc, &level_sum, Plus).expect("shards share dimensions");
        }
        acc
    }

    /// Rebuild shard `i` after a worker loss: fresh hierarchy, fresh
    /// channels, a fresh supervised thread, then replay of the retained
    /// batches ([`ShardedConfig::replay_limit_tuples`]).  Tuples that were
    /// dropped by the bound, or retired by a pre-loss barrier, cannot be
    /// recovered — the returned [`ShardRecovery`] reports them, so data
    /// loss is always explicit.  A no-op on a live worker.
    pub fn respawn_shard(&mut self, i: usize) -> GrbResult<ShardRecovery> {
        assert!(i < self.workers.len(), "shard index out of range");
        if self.is_alive(i) {
            return Ok(ShardRecovery {
                shard: i,
                replayed_tuples: 0,
                lost_tuples: 0,
                disk: None,
            });
        }
        // Durable shards recover from their on-disk store: checkpointed
        // levels plus the WAL tail the dead worker logged before each
        // in-memory apply.  The old worker's file handles are harmless —
        // the thread has already exited, so nothing writes through them.
        let mut disk = None;
        let fresh = match &self.durable {
            Some(dcfg) => {
                let reopened = HierMatrix::open_or_create(
                    self.nrows,
                    self.ncols,
                    self.hier_config.clone(),
                    dcfg.shard(i),
                )?;
                disk = reopened.recovery_report().cloned();
                Arc::new(Mutex::new(reopened))
            }
            None => Arc::new(Mutex::new(HierMatrix::new(
                self.nrows,
                self.ncols,
                self.hier_config.clone(),
            )?)),
        };
        let depth = self.config.channel_depth.max(1);
        let old = std::mem::replace(
            &mut self.workers[i],
            spawn_worker(i, Arc::clone(&fresh), depth),
        );
        self.shards[i] = fresh;
        drop(old.tx);
        drop(old.recycled);
        // The old thread already exited (that is what being lost means);
        // join just reaps it.
        let _ = old.handle.join();
        // Answers derived from the dead shard's contents are stale now.
        self.in_degrees_cache = None;
        if self.durable.is_some() {
            // The store is authoritative: re-dispatching retained tuples
            // would double-apply everything the dead worker both logged
            // and applied (⊕ is not idempotent).  The retained count is
            // instead the honest at-risk bound — see [`ShardRecovery`].
            let rb = &mut self.replay[i];
            let lost_tuples = rb.retained() as u64;
            rb.reset();
            // Tuples still staged for the shard were never sent anywhere;
            // they remain valid and flow to the fresh worker now.
            self.dispatch_shard(i)?;
            return Ok(ShardRecovery {
                shard: i,
                replayed_tuples: 0,
                lost_tuples,
                disk,
            });
        }
        let rb = &mut self.replay[i];
        let lost_tuples = rb.dropped + rb.retired;
        let replayed_tuples = rb.retained();
        let rows = std::mem::take(&mut rb.rows);
        let cols = std::mem::take(&mut rb.cols);
        let vals = std::mem::take(&mut rb.vals);
        rb.reset();
        // Re-dispatch through the normal path: the replayed tuples join
        // whatever is still staged for the shard (⊕ is commutative, order
        // is irrelevant) and are themselves retained until the next
        // acknowledged barrier.  Weight totals were counted at original
        // ingest and are not recounted.
        for j in 0..rows.len() {
            self.staging.push(i, rows[j], cols[j], vals[j]);
        }
        self.dispatch_shard(i)?;
        Ok(ShardRecovery {
            shard: i,
            replayed_tuples,
            lost_tuples,
            disk: None,
        })
    }

    /// Value of the represented matrix at `(row, col)` — answered by the
    /// single shard that owns the row.  The row partitioner routes the
    /// query: only that shard's staging is dispatched and only its worker
    /// does any work (no producer-side locks, no scan of other shards).
    ///
    /// Infallible legacy signature: an error (lost shard, timeout) latches
    /// into [`Self::take_read_error`] and answers `None`.  Prefer
    /// [`Self::try_get`] on supervised engines.
    pub fn get(&mut self, row: Index, col: Index) -> Option<T> {
        match self.try_get(row, col) {
            Ok(v) => v,
            Err(e) => {
                self.latch_err(e);
                None
            }
        }
    }

    /// Fallible dual of [`Self::get`].  `Ok(None)` is also the degraded
    /// answer when the owning shard is lost and degraded reads are on
    /// (recorded in [`Self::last_answer_lost`]).
    pub fn try_get(&mut self, row: Index, col: Index) -> GrbResult<Option<T>> {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::Get(row, col))? {
            None => Ok(None),
            Some(ReaderReply::Value(v)) => Ok(v),
            Some(_) => unreachable!("worker answered Get with a non-Value reply"),
        }
    }

    /// Latch an error swallowed by an infallible signature (never
    /// overwrites an earlier unretrieved one).
    fn latch_err(&self, e: GrbError) {
        let mut slot = self.last_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Sum of all weight currently represented — staged, in flight, or
    /// applied.  Maintained producer-side, so this is exact at any moment
    /// and never blocks on the workers.
    pub fn total_weight_f64(&self) -> f64 {
        self.ingested_weight
    }
}

/// Join the pool on drop: closing the command channels unparks every
/// worker, which then exits its loop.  Dead workers are reaped the same
/// way (their channels are already disconnected), so dropping an engine
/// with lost shards or in-flight tuples never hangs: every live worker
/// exits as soon as it drains, and `join` on an exited thread returns
/// immediately.
impl<T> Drop for ShardedHierMatrix<T> {
    fn drop(&mut self) {
        for w in self.workers.drain(..) {
            drop(w.tx);
            drop(w.recycled);
            // Panics were captured by the supervision wrapper, so this
            // join cannot propagate one (propagating out of drop would
            // abort).
            let _ = w.handle.join();
        }
    }
}

/// The harness-facing interface: identical contract to every other sink in
/// the workspace, so `make_sink`/`drive_sink` measure the parallel engine
/// with the same loop that measures the single-instance systems.
impl<T: ScalarType> StreamingSink<T> for ShardedHierMatrix<T> {
    fn sink_name(&self) -> &str {
        "sharded-hier-graphblas"
    }

    fn insert(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        self.update(row, col, val)
    }

    fn insert_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        self.update_batch(rows, cols, vals)
    }

    fn flush(&mut self) -> GrbResult<()> {
        ShardedHierMatrix::flush(self)
    }

    fn nvals(&self) -> usize {
        // Infallible legacy signature: drain what can be drained, latch
        // any error into `take_read_error`, and count the surviving
        // shards (a lost hierarchy may be mid-mutation and is never
        // read).  Bounded like every other wait — this cannot hang.
        for (_, ack) in self.collect_barrier_acks() {
            if let Err(e) = ack.and_then(|a| a.result) {
                self.latch_err(e);
            }
        }
        let lost = self.lost_shards();
        if self.staging.total() == 0 {
            // Shards own disjoint row sets: distinct cells simply add up.
            self.shards
                .iter()
                .enumerate()
                .filter(|(i, _)| !lost.contains(i))
                .map(|(_, s)| s.lock().nvals_exact())
                .sum()
        } else {
            // Staged tuples may collide with stored cells; settle a snapshot.
            let mut acc = self.shard_sum(&lost);
            for s in 0..self.staging.shards() {
                if lost.contains(&s) {
                    continue;
                }
                let (r, c, v) = self.staging.shard_slices(s);
                acc.accum_tuples(r, c, v).expect("staged tuples validated");
            }
            acc.nvals()
        }
    }

    fn total_weight(&self) -> f64 {
        self.total_weight_f64()
    }
}

/// Merge per-shard sorted entry lists into one row-major stream.  Shards
/// own disjoint row sets, so all entries of a row sit contiguously in one
/// list: after picking the list with the smallest head row the whole run
/// of that row is emitted before re-scanning heads.
fn merge_disjoint_entries<T: ScalarType>(
    parts: Vec<Vec<(Index, Index, T)>>,
    f: &mut dyn FnMut(Index, Index, T),
) {
    let mut pos = vec![0usize; parts.len()];
    loop {
        let mut best: Option<(usize, Index)> = None;
        for (i, p) in parts.iter().enumerate() {
            if let Some(&(r, _, _)) = p.get(pos[i]) {
                if best.map_or(true, |(_, br)| r < br) {
                    best = Some((i, r));
                }
            }
        }
        let Some((i, row)) = best else { break };
        while let Some(&(r, c, v)) = parts[i].get(pos[i]) {
            if r != row {
                break;
            }
            f(r, c, v);
            pos[i] += 1;
        }
    }
}

/// Fallible duals of the [`MatrixReader`] surface.  These carry the
/// supervision semantics exactly: a lost shard or a timed-out wait is a
/// typed error (or, with [`ShardedConfig::degraded_reads`], a
/// survivors-only answer with the skipped shards recorded in
/// [`ShardedHierMatrix::last_answer_lost`]).  The infallible trait
/// methods below wrap these, latching errors into
/// [`ShardedHierMatrix::take_read_error`].
impl<T: ScalarType> ShardedHierMatrix<T> {
    /// Fallible dual of [`MatrixReader::read_nnz`].
    pub fn try_read_nnz(&mut self) -> GrbResult<usize> {
        // Shards own disjoint rows: distinct cells simply add up.
        Ok(self
            .query_all(|| ReaderQuery::Nnz)?
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Count(n) => n,
                _ => unreachable!("worker answered Nnz with a non-Count reply"),
            })
            .sum())
    }

    /// Fallible dual of [`MatrixReader::read_row`].
    pub fn try_read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) -> GrbResult<()> {
        let shard = self.owner(row);
        out.clear();
        match self.query_shard(shard, ReaderQuery::Row(row))? {
            None => {}
            Some(ReaderReply::Row(r)) => out.extend(r),
            Some(_) => unreachable!("worker answered Row with a non-Row reply"),
        }
        Ok(())
    }

    /// Fallible dual of [`MatrixReader::read_row_degree`].
    pub fn try_read_row_degree(&mut self, row: Index) -> GrbResult<usize> {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::RowDegree(row))? {
            None => Ok(0),
            Some(ReaderReply::Count(n)) => Ok(n),
            Some(_) => unreachable!("worker answered RowDegree with a non-Count reply"),
        }
    }

    /// Fallible dual of [`MatrixReader::read_row_reduce`].
    pub fn try_read_row_reduce(&mut self, row: Index) -> GrbResult<Option<T>> {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::RowReduce(row))? {
            None => Ok(None),
            Some(ReaderReply::Value(v)) => Ok(v),
            Some(_) => unreachable!("worker answered RowReduce with a non-Value reply"),
        }
    }

    /// Fallible dual of [`MatrixReader::read_top_k`].
    pub fn try_read_top_k(&mut self, k: usize) -> GrbResult<Vec<(Index, usize)>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        // Every worker returns its local top-k; rows are disjoint, so the
        // global top-k is the top-k of the concatenated partials.
        let mut all: Vec<(Index, usize)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::TopK(k))? {
            match reply {
                ReaderReply::TopK(part) => all.extend(part),
                _ => unreachable!("worker answered TopK with a non-TopK reply"),
            }
        }
        Ok(rerank_top_k(all, k))
    }

    /// Fallible dual of [`MatrixReader::read_entries`].
    pub fn try_read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) -> GrbResult<()> {
        let parts: Vec<Vec<(Index, Index, T)>> = self
            .query_all(|| ReaderQuery::Entries)?
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Entries(e) => e,
                _ => unreachable!("worker answered Entries with a non-Entries reply"),
            })
            .collect();
        merge_disjoint_entries(parts, f);
        Ok(())
    }

    /// Fallible dual of [`MatrixReader::read_row_range`].
    pub fn try_read_row_range(
        &mut self,
        lo: Index,
        hi: Index,
        f: &mut dyn FnMut(Index, Index, T),
    ) -> GrbResult<()> {
        if lo >= hi {
            return Ok(());
        }
        // Only the workers whose row bands can overlap the range are
        // consulted: a RowRange-partitioned engine serves a narrow scan
        // from one worker while the rest keep ingesting.
        let targets = self.range_shards(lo, hi);
        let parts: Vec<Vec<(Index, Index, T)>> = self
            .query_shards(&targets, || ReaderQuery::RowRange(lo, hi))?
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Entries(e) => e,
                _ => unreachable!("worker answered RowRange with a non-Entries reply"),
            })
            .collect();
        merge_disjoint_entries(parts, f);
        Ok(())
    }

    /// Fallible dual of [`MatrixReader::read_degree_histogram`].
    pub fn try_read_degree_histogram(&mut self) -> GrbResult<std::collections::BTreeMap<u64, u64>> {
        // Shards own disjoint rows: per-shard histograms sum exactly.
        Ok(sum_histograms(
            self.query_all(|| ReaderQuery::Histogram)?
                .into_iter()
                .map(|reply| match reply {
                    ReaderReply::Hist(part) => part,
                    _ => unreachable!("worker answered Histogram with a non-Hist reply"),
                }),
        ))
    }

    /// Fallible dual of [`MatrixReader::read_col`].
    pub fn try_read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) -> GrbResult<()> {
        // A column intersects every row partition, so the query fans out to
        // all workers (each answering O(k) off its shard's column twins);
        // the partials hold disjoint row sets, so one sort merges them.
        let mut all: Vec<(Index, T)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::Col(col))? {
            match reply {
                ReaderReply::Row(part) => all.extend(part),
                _ => unreachable!("worker answered Col with a non-Row reply"),
            }
        }
        all.sort_unstable_by_key(|&(r, _)| r);
        out.clear();
        out.extend(all);
        Ok(())
    }

    /// Fallible dual of [`MatrixReader::read_col_degree`].
    pub fn try_read_col_degree(&mut self, col: Index) -> GrbResult<usize> {
        // Disjoint rows: per-shard distinct-row counts of one column add.
        Ok(self
            .query_all(|| ReaderQuery::ColDegree(col))?
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Count(n) => n,
                _ => unreachable!("worker answered ColDegree with a non-Count reply"),
            })
            .sum())
    }

    /// Fallible dual of [`MatrixReader::read_col_reduce`].
    pub fn try_read_col_reduce(&mut self, col: Index) -> GrbResult<Option<T>> {
        Ok(self
            .query_all(|| ReaderQuery::ColReduce(col))?
            .into_iter()
            .filter_map(|reply| match reply {
                ReaderReply::Value(v) => v,
                _ => unreachable!("worker answered ColReduce with a non-Value reply"),
            })
            .reduce(|a, b| a.add(b)))
    }

    /// Fallible dual of [`MatrixReader::read_in_top_k`].
    pub fn try_read_in_top_k(&mut self, k: usize) -> GrbResult<Vec<(Index, usize)>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        // Per-shard in-degree top-k lists can NOT be re-ranked like the row
        // side: a column's degree splits across the row-partitioned shards.
        // Workers ship their complete column stats; sum, then rank.
        Ok(rank_col_degrees(self.ensure_in_degrees()?, k))
    }

    /// Fallible dual of [`MatrixReader::read_in_degree_histogram`].
    pub fn try_read_in_degree_histogram(
        &mut self,
    ) -> GrbResult<std::collections::BTreeMap<u64, u64>> {
        Ok(col_degree_histogram(self.ensure_in_degrees()?))
    }

    /// Fallible dual of [`MatrixReader::read_col_range`].
    pub fn try_read_col_range(
        &mut self,
        lo: Index,
        hi: Index,
        f: &mut dyn FnMut(Index, Index, T),
    ) -> GrbResult<()> {
        if lo >= hi {
            return Ok(());
        }
        // Column bands cannot be bounded by the row partitioner: full
        // fan-out, then one (col, row) sort over the disjoint-row partials.
        let mut all: Vec<(Index, Index, T)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::ColRange(lo, hi))? {
            match reply {
                ReaderReply::Entries(part) => all.extend(part),
                _ => unreachable!("worker answered ColRange with a non-Entries reply"),
            }
        }
        all.sort_unstable_by_key(|&(r, c, _)| (c, r));
        for (r, c, v) in all {
            f(r, c, v);
        }
        Ok(())
    }

    /// Fallible dual of [`MatrixReader::read_rows`].  Rows owned by a lost
    /// shard come back empty under degraded reads.
    pub fn try_read_rows(&mut self, rows: &[Index]) -> GrbResult<Vec<Vec<(Index, T)>>> {
        // Group the keys by owning shard, push one batched query per
        // involved worker, and scatter the per-shard answers back into
        // request order.
        let mut per_shard: ShardBatch<Index> = Vec::new();
        for (i, &row) in rows.iter().enumerate() {
            let owner = self.owner(row);
            match per_shard.iter_mut().find(|(s, _, _)| *s == owner) {
                Some((_, idxs, keys)) => {
                    idxs.push(i);
                    keys.push(row);
                }
                None => per_shard.push((owner, vec![i], vec![row])),
            }
        }
        let queries: Vec<(usize, ReaderQuery)> = per_shard
            .iter()
            .map(|(s, _, keys)| (*s, ReaderQuery::Rows(keys.clone())))
            .collect();
        let mut out: Vec<Vec<(Index, T)>> = vec![Vec::new(); rows.len()];
        for ((_, idxs, _), reply) in per_shard.iter().zip(self.query_each(queries)?) {
            match reply {
                None => {}
                Some(ReaderReply::Rows(parts)) => {
                    for (&i, part) in idxs.iter().zip(parts) {
                        out[i] = part;
                    }
                }
                Some(_) => unreachable!("worker answered Rows with a non-Rows reply"),
            }
        }
        Ok(out)
    }

    /// Fallible dual of [`MatrixReader::read_get_many`].  Keys owned by a
    /// lost shard come back `None` under degraded reads.
    pub fn try_read_get_many(&mut self, keys: &[(Index, Index)]) -> GrbResult<Vec<Option<T>>> {
        let mut per_shard: ShardBatch<(Index, Index)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let owner = self.owner(key.0);
            match per_shard.iter_mut().find(|(s, _, _)| *s == owner) {
                Some((_, idxs, ks)) => {
                    idxs.push(i);
                    ks.push(key);
                }
                None => per_shard.push((owner, vec![i], vec![key])),
            }
        }
        let queries: Vec<(usize, ReaderQuery)> = per_shard
            .iter()
            .map(|(s, _, ks)| (*s, ReaderQuery::GetMany(ks.clone())))
            .collect();
        let mut out: Vec<Option<T>> = vec![None; keys.len()];
        for ((_, idxs, _), reply) in per_shard.iter().zip(self.query_each(queries)?) {
            match reply {
                None => {}
                Some(ReaderReply::Values(vals)) => {
                    for (&i, v) in idxs.iter().zip(vals) {
                        out[i] = v;
                    }
                }
                Some(_) => unreachable!("worker answered GetMany with a non-Values reply"),
            }
        }
        Ok(out)
    }

    /// Unwrap an infallible reader answer: latch the error and hand back
    /// the empty default so the legacy [`MatrixReader`] signatures keep
    /// working on supervised engines.
    fn latch<R>(&self, r: GrbResult<R>, default: R) -> R {
        match r {
            Ok(v) => v,
            Err(e) => {
                self.latch_err(e);
                default
            }
        }
    }
}

/// The read path pushed down the drain-barrier protocol: row-targeted
/// queries go to the one owning worker; whole-matrix queries fan out and
/// every worker answers *in parallel* from its own shard's merged level
/// cursors.  The producer only sums counts, k-way merges disjoint-row
/// entry runs, or re-ranks partial top-k lists — it never receives (or
/// builds) a materialised matrix.
///
/// These signatures are infallible, so a supervision error (lost shard,
/// timeout) answers with the empty default and latches into
/// [`ShardedHierMatrix::take_read_error`]; the `try_*` duals above carry
/// the typed errors directly.
impl<T: ScalarType> MatrixReader<T> for ShardedHierMatrix<T> {
    fn reader_name(&self) -> &str {
        "sharded-hier-graphblas"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        let r = self.try_read_nnz();
        self.latch(r, 0)
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        ShardedHierMatrix::get(self, row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        let r = self.try_read_row(row, out);
        self.latch(r, ());
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        let r = self.try_read_row_degree(row);
        self.latch(r, 0)
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        let r = self.try_read_row_reduce(row);
        self.latch(r, None)
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let r = self.try_read_top_k(k);
        self.latch(r, Vec::new())
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        let r = self.try_read_entries(f);
        self.latch(r, ());
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let r = self.try_read_row_range(lo, hi, f);
        self.latch(r, ());
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let r = self.try_read_degree_histogram();
        self.latch(r, std::collections::BTreeMap::new())
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        let r = self.try_read_col(col, out);
        self.latch(r, ());
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        let r = self.try_read_col_degree(col);
        self.latch(r, 0)
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        let r = self.try_read_col_reduce(col);
        self.latch(r, None)
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let r = self.try_read_in_top_k(k);
        self.latch(r, Vec::new())
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let r = self.try_read_in_degree_histogram();
        self.latch(r, std::collections::BTreeMap::new())
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let r = self.try_read_col_range(lo, hi, f);
        self.latch(r, ());
    }

    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        let r = self.try_read_rows(rows);
        self.latch(r, vec![Vec::new(); rows.len()])
    }

    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        let r = self.try_read_get_many(keys);
        self.latch(r, vec![None; keys.len()])
    }
}

impl<T: ScalarType> CursorReader<T> for ShardedHierMatrix<T> {
    fn with_level_dcsrs(&mut self, f: &mut dyn FnMut(&[&Dcsr<T>])) {
        // A consistent engine-wide capture: every worker snapshots its
        // shard at its drain barrier (O(levels) Arc bumps, no copies),
        // and the Arc'd level structures stay alive for the duration of
        // the callback while the workers keep draining.  Shards own
        // disjoint rows, so the concatenated level list is a valid level
        // decomposition of the whole engine.
        match self.snapshot() {
            Ok(mut snap) => snap.with_level_dcsrs(f),
            Err(e) => {
                self.latch_err(e);
                f(&[]);
            }
        }
    }

    fn out_degrees(&mut self) -> Option<Vec<(Index, u64)>> {
        match self.try_out_degrees() {
            Ok(d) => Some(d),
            Err(e) => {
                self.latch_err(e);
                None
            }
        }
    }
}

/// One consistent point-in-time view of the whole sharded engine: a
/// [`MatrixSnapshot`] per shard, captured at each worker's drain barrier.
/// Shards own disjoint row sets, so cross-shard combination is pure
/// concatenation / summation / re-ranking — and because every per-shard
/// snapshot holds Arc'd level structures, the engine keeps ingesting (and
/// its workers keep draining) while this view answers long sweeps.
#[derive(Debug)]
pub struct ShardedSnapshot<T> {
    nrows: Index,
    ncols: Index,
    shards: Vec<MatrixSnapshot<T>>,
    /// Shards missing from the capture (degraded snapshot of a degraded
    /// engine); empty for a complete capture.
    lost: Vec<usize>,
}

impl<T: ScalarType> ShardedSnapshot<T> {
    /// Number of captured shard snapshots.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards missing from the capture (only non-empty when the snapshot
    /// was taken from a degraded engine with degraded reads enabled).
    pub fn lost_shards(&self) -> &[usize] {
        &self.lost
    }

    /// Every captured level structure across all shards (for k-way merged
    /// sweeps).
    fn all_levels(&self) -> Vec<&Dcsr<T>> {
        self.shards.iter().flat_map(|s| s.level_dcsrs()).collect()
    }

    /// Column → in-degree over the whole capture: per-shard stats summed
    /// (a column's degree splits across the row-partitioned shards).
    fn summed_in_degrees(&mut self) -> std::collections::BTreeMap<Index, usize> {
        let parts: Vec<Vec<(Index, usize)>> = self
            .shards
            .iter_mut()
            .map(|s| {
                let bound = s.read_nnz();
                s.read_in_top_k(bound)
            })
            .collect();
        sum_col_degrees(parts)
    }
}

impl<T: ScalarType> MatrixReader<T> for ShardedSnapshot<T> {
    fn reader_name(&self) -> &str {
        "sharded-hier-graphblas-snapshot"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.read_nnz()).sum()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        hyperstream_graphblas::cursor::merged_point(&self.all_levels(), row, col, Plus)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        hyperstream_graphblas::cursor::merged_row_into(&self.all_levels(), row, Plus, out);
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        // Disjoint rows: exactly one shard can own the row.
        self.shards.iter_mut().map(|s| s.read_row_degree(row)).sum()
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.read_row_reduce(row))
            .reduce(|a, b| a.add(b))
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(Index, usize)> = Vec::new();
        for s in &mut self.shards {
            all.extend(s.read_top_k(k));
        }
        rerank_top_k(all, k)
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        hyperstream_graphblas::cursor::for_each_merged(&self.all_levels(), Plus, f);
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        hyperstream_graphblas::cursor::merged_row_range(&self.all_levels(), lo, hi, Plus, f);
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        sum_histograms(self.shards.iter_mut().map(|s| s.read_degree_histogram()))
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        // Every shard snapshot may hold a slice of the column (disjoint
        // rows): concatenate the per-shard partials and sort once.
        let mut all: Vec<(Index, T)> = Vec::new();
        let mut part = Vec::new();
        for s in &mut self.shards {
            s.read_col(col, &mut part);
            all.append(&mut part);
        }
        all.sort_unstable_by_key(|&(r, _)| r);
        out.clear();
        out.extend(all);
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        self.shards.iter_mut().map(|s| s.read_col_degree(col)).sum()
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.read_col_reduce(col))
            .reduce(|a, b| a.add(b))
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        rank_col_degrees(&self.summed_in_degrees(), k)
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        col_degree_histogram(&self.summed_in_degrees())
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        if lo >= hi {
            return;
        }
        let mut all: Vec<(Index, Index, T)> = Vec::new();
        for s in &mut self.shards {
            s.read_col_range(lo, hi, &mut |r, c, v| all.push((r, c, v)));
        }
        all.sort_unstable_by_key(|&(r, c, _)| (c, r));
        for (r, c, v) in all {
            f(r, c, v);
        }
    }

    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        let levels = self.all_levels();
        rows.iter()
            .map(|&row| {
                let mut out = Vec::new();
                hyperstream_graphblas::cursor::merged_row_into(&levels, row, Plus, &mut out);
                out
            })
            .collect()
    }

    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        let levels = self.all_levels();
        keys.iter()
            .map(|&(r, c)| hyperstream_graphblas::cursor::merged_point(&levels, r, c, Plus))
            .collect()
    }
}

impl<T: ScalarType> CursorReader<T> for ShardedSnapshot<T> {
    fn with_level_dcsrs(&mut self, f: &mut dyn FnMut(&[&Dcsr<T>])) {
        // Shards hold disjoint rows, so their captured levels concatenate
        // into one valid level decomposition of the whole engine.
        f(&self.all_levels());
    }

    fn out_degrees(&mut self) -> Option<Vec<(Index, u64)>> {
        // Disjoint rows: concatenate the per-shard index answers and
        // restore global row order.  `None` as soon as any shard capture
        // lacks its index view (e.g. it carried a pending tail).
        let mut all: Vec<(Index, u64)> = Vec::new();
        for s in &mut self.shards {
            all.extend(s.out_degrees()?);
        }
        all.sort_unstable_by_key(|&(r, _)| r);
        Some(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIM: u64 = 1 << 32;

    fn small_cfg() -> HierConfig {
        HierConfig::from_cuts(vec![16, 128, 1024]).unwrap()
    }

    fn tiny_engine(shards: usize, partitioner: ShardPartitioner) -> ShardedHierMatrix<u64> {
        ShardedHierMatrix::new(
            DIM,
            DIM,
            small_cfg(),
            ShardedConfig {
                shards,
                partitioner,
                chunk_tuples: 64,
                channel_depth: 2,
                round_tuples: 256,
                ..ShardedConfig::with_shards(shards)
            },
        )
        .unwrap()
    }

    fn stream(n: u64) -> Vec<(u64, u64, u64)> {
        (0..n)
            .map(|i| ((i * 7919) % 5000 * 797_003, (i * 104_729) % 3000, i % 4 + 1))
            .collect()
    }

    #[test]
    fn matches_flat_accumulation_for_both_partitioners() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(4, partitioner);
            let mut flat = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &stream(3000) {
                engine.update(r, c, v).unwrap();
                flat.accum_element(r, c, v).unwrap();
            }
            flat.wait();
            let snap = engine.materialize().unwrap();
            assert_eq!(
                snap.extract_tuples(),
                flat.extract_tuples(),
                "{partitioner:?}"
            );
            assert!(engine.rounds() > 1, "expected multiple ingest rounds");
            assert!(engine.chunks_sent() > engine.rounds());
        }
    }

    #[test]
    fn batch_and_single_update_agree() {
        let updates = stream(2000);
        let rows: Vec<u64> = updates.iter().map(|u| u.0).collect();
        let cols: Vec<u64> = updates.iter().map(|u| u.1).collect();
        let vals: Vec<u64> = updates.iter().map(|u| u.2).collect();

        let mut singles = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &updates {
            singles.update(r, c, v).unwrap();
        }
        let mut batched = tiny_engine(3, ShardPartitioner::RowHash);
        batched.update_batch(&rows, &cols, &vals).unwrap();
        assert_eq!(
            singles.materialize().unwrap().extract_tuples(),
            batched.materialize().unwrap().extract_tuples()
        );
    }

    #[test]
    fn mid_stream_query_and_flush_do_not_disturb() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        let updates = stream(1500);
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            engine.update(r, c, v).unwrap();
            if i == 700 {
                let _ = engine.materialize().unwrap();
                engine.flush().unwrap();
            }
        }
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
    }

    #[test]
    fn weight_exact_with_staged_tuples() {
        let mut engine = tiny_engine(4, ShardPartitioner::RowHash);
        engine.update(1, 1, 10).unwrap();
        engine.update(2, 2, 5).unwrap();
        // Nothing dispatched yet (chunk_tuples = 64), weight still exact.
        assert_eq!(engine.rounds(), 0);
        assert_eq!(engine.total_weight_f64(), 15.0);
        assert_eq!(engine.get(1, 1), Some(10));
        assert_eq!(StreamingSink::nvals(&engine), 2);
        engine.flush().unwrap();
        assert_eq!(engine.total_weight_f64(), 15.0);
        assert_eq!(engine.get(1, 1), Some(10));
        assert_eq!(engine.total_updates().unwrap(), 2);
    }

    #[test]
    fn bounds_rejected_and_batches_atomic() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        assert!(engine.update(DIM, 0, 1).is_err());
        assert!(engine.update(0, DIM, 1).is_err());
        assert!(engine.update_batch(&[1, DIM], &[1, 1], &[1, 1]).is_err());
        assert!(engine.update_batch(&[1], &[1, 2], &[1]).is_err());
        assert_eq!(engine.total_weight_f64(), 0.0);
        assert_eq!(StreamingSink::nvals(&engine), 0);
    }

    #[test]
    fn single_shard_works() {
        let mut engine = tiny_engine(1, ShardPartitioner::RowRange);
        for &(r, c, v) in &stream(500) {
            engine.update(r, c, v).unwrap();
        }
        engine.flush().unwrap();
        assert_eq!(engine.num_shards(), 1);
        assert!(engine.total_updates().unwrap() == 500);
        // Zero shards clamps to one.
        let clamped = ShardedHierMatrix::<u64>::with_shards(100, 100, 0).unwrap();
        assert_eq!(clamped.num_shards(), 1);
    }

    #[test]
    fn sink_interface_round_trip() {
        let mut sink: Box<dyn StreamingSink<u64>> =
            Box::new(tiny_engine(3, ShardPartitioner::RowHash));
        for &(r, c, v) in &stream(800) {
            sink.insert(r, c, v).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "sharded-hier-graphblas");
        let expected: u64 = stream(800).iter().map(|u| u.2).sum();
        assert_eq!(sink.total_weight(), expected as f64);
        assert!(sink.nvals() > 0);
    }

    #[test]
    fn partitioners_cover_all_shards() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut seen = [false; 8];
            for r in 0..10_000u64 {
                // Spread rows over the whole index space for RowRange.
                let row = r * (DIM / 10_000);
                seen[partitioner.shard(row, DIM, 8)] = true;
            }
            assert!(seen.iter().all(|&s| s), "{partitioner:?} starves shards");
        }
        // Rows at the very top of the space stay in range.
        assert!(ShardPartitioner::RowRange.shard(DIM - 1, DIM, 7) < 7);
        assert!(ShardPartitioner::RowHash.shard(DIM - 1, DIM, 7) < 7);
    }

    #[test]
    fn shard_stats_aggregate() {
        let mut engine = tiny_engine(4, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        engine.flush().unwrap();
        let agg = engine.aggregate_stats().unwrap();
        assert_eq!(agg.updates, 2000);
        assert!(agg.total_cascades() > 0, "small cuts must cascade");
        assert!((0..engine.num_shards()).all(|i| engine.shard_stats(i).unwrap().updates > 0));
    }

    #[test]
    fn workers_persist_across_rounds_and_flushes() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let ids_start = engine.worker_ids().unwrap();
        assert_eq!(ids_start.len(), 3);
        // All workers are distinct threads, none of them this one.
        let me = std::thread::current().id();
        assert!(ids_start.iter().all(|&id| id != me));
        for i in 0..3 {
            for j in 0..3 {
                assert!(i == j || ids_start[i] != ids_start[j]);
            }
        }
        for round in 0..5 {
            for &(r, c, v) in &stream(700) {
                engine.update(r, c, v).unwrap();
            }
            engine.flush().unwrap();
            let _ = engine.materialize().unwrap();
            assert_eq!(
                engine.worker_ids().unwrap(),
                ids_start,
                "worker set changed in round {round}"
            );
        }
        assert!(engine.rounds() >= 5);
    }

    #[test]
    fn reader_pushdown_matches_flat_reference() {
        for shards in [1usize, 3] {
            let mut engine = tiny_engine(shards, ShardPartitioner::RowHash);
            let mut flat = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &stream(2500) {
                engine.update(r, c, v).unwrap();
                flat.accum_element(r, c, v).unwrap();
            }
            flat.wait();
            // Mid-ingest (staged + in-flight tuples): every reader answer
            // must equal the flat reference.
            assert_eq!(engine.read_nnz(), flat.nvals(), "{shards} shards");
            let d = flat.dcsr();
            let probe_row = d.row_ids()[0];
            let (cols, vals) = d.row(probe_row).unwrap();
            let expect_row: Vec<(u64, u64)> =
                cols.iter().copied().zip(vals.iter().copied()).collect();
            let mut got_row = Vec::new();
            engine.read_row(probe_row, &mut got_row);
            assert_eq!(got_row, expect_row);
            assert_eq!(engine.read_row_degree(probe_row), expect_row.len());
            assert_eq!(
                engine.read_row_reduce(probe_row),
                Some(expect_row.iter().map(|&(_, v)| v).sum())
            );
            assert_eq!(
                engine.read_get(probe_row, expect_row[0].0),
                Some(expect_row[0].1)
            );
            assert_eq!(engine.read_get(DIM - 1, DIM - 1), None);
            // Entries stream row-major sorted and identical to flat.
            let mut got = Vec::new();
            engine.read_entries(&mut |r, c, v| got.push((r, c, v)));
            let expect: Vec<_> = flat.iter_settled().collect();
            assert_eq!(got, expect);
            // Top-k equals the reference ranking (degree desc, row asc).
            let mut ranking: Vec<(u64, usize)> = (0..d.nrows_nonempty())
                .map(|k| (d.row_ids()[k], d.row_slot(k).0.len()))
                .collect();
            ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranking.truncate(7);
            assert_eq!(engine.read_top_k(7), ranking);
        }
    }

    #[test]
    fn reader_pushdown_never_materializes() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        let before = engine.pushdown_queries();
        let _ = engine.read_nnz();
        let _ = engine.read_top_k(5);
        let mut row = Vec::new();
        engine.read_row(797_003, &mut row);
        let _ = engine.read_get(797_003, 1);
        let _ = engine.read_row_degree(797_003);
        let mut n = 0usize;
        engine.read_entries(&mut |_, _, _| n += 1);
        assert!(n > 0);
        assert!(engine.pushdown_queries() >= before + 6);
        // The whole query battery ran through the worker pool's cursors:
        // no shard ever materialised `Σ levels`.
        assert_eq!(engine.aggregate_stats().unwrap().materializations, 0);
        // The snapshot path, by contrast, is counted — proving the counter
        // would have caught a materialising query path.
        let _ = engine.materialize().unwrap();
        assert_eq!(engine.aggregate_stats().unwrap().materializations, 3);
    }

    /// A column-dense stream: 60 columns, ~42 distinct rows each, so
    /// in-degree rankings are non-degenerate.
    fn col_stream(n: u64) -> Vec<(u64, u64, u64)> {
        (0..n)
            .map(|i| ((i * 7919) % 5000 * 797_003, (i * 104_729) % 60, i % 4 + 1))
            .collect()
    }

    #[test]
    fn column_pushdown_matches_transposed_flat_reference() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(3, partitioner);
            let mut transposed = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &col_stream(2500) {
                engine.update(r, c, v).unwrap();
                transposed.accum_element(c, r, v).unwrap();
            }
            transposed.wait();
            // Mid-ingest: staged and in-flight tuples must be visible.
            let probe_col = 7u64;
            let mut got = Vec::new();
            engine.read_col(probe_col, &mut got);
            let mut expect = Vec::new();
            transposed.read_row(probe_col, &mut expect);
            assert!(!expect.is_empty());
            assert_eq!(got, expect, "{partitioner:?}");
            assert_eq!(
                engine.read_col_degree(probe_col),
                transposed.read_row_degree(probe_col),
                "{partitioner:?}"
            );
            assert_eq!(
                engine.read_col_reduce(probe_col),
                transposed.read_row_reduce(probe_col)
            );
            assert_eq!(engine.read_col_degree(DIM - 1), 0);
            assert_eq!(engine.read_col_reduce(DIM - 1), None);
            // In-degree ranking: per-shard partial degrees must sum before
            // ranking — the transposed flat matrix is the oracle.
            assert_eq!(engine.read_in_top_k(7), transposed.read_top_k(7));
            assert_eq!(
                engine.read_in_degree_histogram(),
                transposed.read_degree_histogram()
            );
            // Column band: (col, row)-sorted and identical to a transposed
            // row band with coordinates swapped back.
            let mut got_band = Vec::new();
            engine.read_col_range(0, 30, &mut |r, c, v| got_band.push((r, c, v)));
            let mut expect_band = Vec::new();
            transposed.read_row_range(0, 30, &mut |c, r, v| expect_band.push((r, c, v)));
            assert!(!expect_band.is_empty());
            assert_eq!(got_band, expect_band, "{partitioner:?}");
        }
    }

    #[test]
    fn column_battery_never_materializes() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &col_stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        let before = engine.pushdown_queries();
        let mut col = Vec::new();
        engine.read_col(7, &mut col);
        assert!(!col.is_empty());
        let _ = engine.read_col_degree(7);
        let _ = engine.read_col_reduce(7);
        let _ = engine.read_in_top_k(5);
        let _ = engine.read_in_degree_histogram();
        let mut n = 0usize;
        engine.read_col_range(0, 30, &mut |_, _, _| n += 1);
        assert!(n > 0);
        let _ = engine.read_rows(&[0, 797_003]);
        let _ = engine.read_get_many(&[(797_003, 7)]);
        // 7 push-down rounds, not 8: the histogram right after top-k reuses
        // the producer-side summed in-degree cache instead of re-shipping
        // every shard's column stats.
        assert!(engine.pushdown_queries() >= before + 7);
        let warm = engine.pushdown_queries();
        let _ = engine.read_in_top_k(5);
        assert_eq!(engine.pushdown_queries(), warm, "cache hit expected");
        engine.update(1, 1, 1).unwrap();
        let _ = engine.read_in_top_k(5);
        assert!(
            engine.pushdown_queries() > warm,
            "ingest must invalidate the in-degree cache"
        );
        // The whole column battery ran off worker-side twins and cursors:
        // no shard ever materialised `Σ levels`.
        assert_eq!(engine.aggregate_stats().unwrap().materializations, 0);
    }

    #[test]
    fn batched_pushdown_matches_singles() {
        // RowRange spreads consecutive probe rows across different owners,
        // exercising the group-by-shard dispatch and request-order
        // reassembly.
        let mut engine = tiny_engine(4, ShardPartitioner::RowRange);
        let updates = col_stream(2000);
        for &(r, c, v) in &updates {
            engine.update(r, c, v).unwrap();
        }
        let mut probe_rows: Vec<u64> = updates.iter().take(9).map(|u| u.0).collect();
        probe_rows.push(DIM - 1); // absent row
        let batched = engine.read_rows(&probe_rows);
        assert_eq!(batched.len(), probe_rows.len());
        for (&row, got) in probe_rows.iter().zip(&batched) {
            let mut single = Vec::new();
            engine.read_row(row, &mut single);
            assert_eq!(*got, single, "row {row}");
        }
        let mut keys: Vec<(u64, u64)> = updates.iter().take(9).map(|u| (u.0, u.1)).collect();
        keys.push((DIM - 1, DIM - 1)); // absent cell
        let values = engine.read_get_many(&keys);
        assert_eq!(values.len(), keys.len());
        for (&(r, c), got) in keys.iter().zip(&values) {
            assert_eq!(*got, engine.read_get(r, c), "key ({r}, {c})");
        }
        // One batched call is a single push-down round, fanning out to at
        // most one query per owning shard.
        let before = engine.pushdown_queries();
        let _ = engine.read_rows(&probe_rows);
        assert_eq!(engine.pushdown_queries(), before + 1);
        assert!(engine.last_query_fanout() <= 4);
    }

    #[test]
    fn snapshot_column_answers_survive_continued_ingest() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let updates = col_stream(2400);
        let (first, second) = updates.split_at(1200);
        let mut transposed = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in first {
            engine.update(r, c, v).unwrap();
            transposed.accum_element(c, r, v).unwrap();
        }
        transposed.wait();
        let mut snap = engine.snapshot().unwrap();
        // Keep ingesting after the capture: the snapshot must stay pinned
        // to the barrier state.
        for &(r, c, v) in second {
            engine.update(r, c, v).unwrap();
        }
        assert_eq!(snap.read_in_top_k(5), transposed.read_top_k(5));
        assert_eq!(
            snap.read_in_degree_histogram(),
            transposed.read_degree_histogram()
        );
        let mut got = Vec::new();
        snap.read_col(7, &mut got);
        let mut expect = Vec::new();
        transposed.read_row(7, &mut expect);
        assert_eq!(got, expect);
        assert_eq!(snap.read_col_degree(7), transposed.read_row_degree(7));
        let mut got_band = Vec::new();
        snap.read_col_range(0, 30, &mut |r, c, v| got_band.push((r, c, v)));
        let mut expect_band = Vec::new();
        transposed.read_row_range(0, 30, &mut |c, r, v| expect_band.push((r, c, v)));
        assert_eq!(got_band, expect_band);
        // Batched snapshot reads agree with their single-key counterparts.
        let rows: Vec<u64> = first.iter().take(5).map(|u| u.0).collect();
        let singles: Vec<Vec<(u64, u64)>> = rows
            .iter()
            .map(|&r| {
                let mut out = Vec::new();
                snap.read_row(r, &mut out);
                out
            })
            .collect();
        assert_eq!(snap.read_rows(&rows), singles);
        let keys: Vec<(u64, u64)> = first.iter().take(5).map(|u| (u.0, u.1)).collect();
        let point_singles: Vec<Option<u64>> =
            keys.iter().map(|&(r, c)| snap.read_get(r, c)).collect();
        assert_eq!(snap.read_get_many(&keys), point_singles);
        // The engine itself has since moved past the capture.
        assert!(engine.read_nnz() > snap.read_nnz());
    }

    #[test]
    fn snapshot_answers_capture_while_ingest_continues() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let updates = stream(2000);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        let mut snap = engine.snapshot().unwrap();
        assert_eq!(snap.num_shards(), 3);
        // The engine keeps ingesting *after* the capture...
        for &(r, c, v) in &stream(1000) {
            engine.update(r.wrapping_add(1), c, v).unwrap();
        }
        // ...while the snapshot still answers exactly the captured state.
        assert_eq!(snap.read_nnz(), flat.nvals());
        let probe = flat.dcsr().row_ids()[0];
        let (cols, vals) = flat.dcsr().row(probe).unwrap();
        assert_eq!(snap.read_row_degree(probe), cols.len());
        assert_eq!(snap.read_row_reduce(probe), Some(vals.iter().sum::<u64>()));
        assert_eq!(snap.read_get(probe, cols[0]), Some(vals[0]));
        let mut got = Vec::new();
        snap.read_entries(&mut |r, c, v| got.push((r, c, v)));
        let expect: Vec<_> = flat.iter_settled().collect();
        assert_eq!(got, expect);
        // Top-k re-ranks the per-shard index answers.
        let mut ranking: Vec<(u64, usize)> = (0..flat.dcsr().nrows_nonempty())
            .map(|k| (flat.dcsr().row_ids()[k], flat.dcsr().row_slot(k).0.len()))
            .collect();
        ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranking.truncate(5);
        assert_eq!(snap.read_top_k(5), ranking);
        // The capture never materialised any shard.
        assert_eq!(engine.aggregate_stats().unwrap().materializations, 0);
    }

    #[test]
    fn row_range_dispatches_only_overlapping_workers() {
        let mut range_engine = tiny_engine(4, ShardPartitioner::RowRange);
        let mut hash_engine = tiny_engine(4, ShardPartitioner::RowHash);
        let updates = stream(2000);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            range_engine.update(r, c, v).unwrap();
            hash_engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        // A band well inside the first shard's range (rows < DIM / 4).
        let (lo, hi) = (0u64, 1u64 << 26);
        let expect: Vec<(u64, u64, u64)> = flat
            .iter_settled()
            .filter(|&(r, _, _)| r >= lo && r < hi)
            .collect();
        let mut got = Vec::new();
        range_engine.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got, expect);
        assert_eq!(
            range_engine.last_query_fanout(),
            1,
            "narrow range should visit one RowRange worker"
        );
        // The hash partitioner cannot bound the scan: full fan-out.
        got.clear();
        hash_engine.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got, expect);
        assert_eq!(hash_engine.last_query_fanout(), 4);
        // Wide ranges visit every band worker and agree too.
        got.clear();
        range_engine.read_row_range(0, DIM, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got.len(), flat.nvals());
        assert_eq!(range_engine.last_query_fanout(), 4);
        // Empty range is free.
        got.clear();
        range_engine.read_row_range(5, 5, &mut |r, c, v| got.push((r, c, v)));
        assert!(got.is_empty());
    }

    #[test]
    fn histogram_pushdown_sums_disjoint_shards() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &stream(1500) {
            engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        assert_eq!(engine.read_degree_histogram(), flat.read_degree_histogram());
        assert_eq!(engine.aggregate_stats().unwrap().materializations, 0);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(300) {
            engine.update(r, c, v).unwrap();
        }
        // Dropping with staged + in-flight tuples must not hang or panic.
        drop(engine);
    }

    #[test]
    fn pattern_push_folds_partials_across_shards() {
        // Edges 1->5, 2->5, 3->5 land on different shards under RowHash;
        // column 5's partial products must sum producer-side.
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(4, partitioner);
            let big = 3 * (DIM / 4) + 9; // lands in a high RowRange band
            for (r, c) in [(1u64, 5u64), (2, 5), (3, 5), (3, 7), (big, 5)] {
                engine.update(r, c, 1).unwrap();
            }
            let u: Vec<(u64, f64)> = vec![(1, 0.25), (2, 0.5), (3, 1.0), (big, 2.0)];
            let before = engine.pushdown_queries();
            let got = engine.try_vxm_pattern(&u, PatternAdd::Plus).unwrap();
            assert_eq!(got, vec![(5, 3.75), (7, 1.0)], "{partitioner:?}");
            assert!(engine.pushdown_queries() > before);
            let got = engine.try_vxm_pattern(&u, PatternAdd::Min).unwrap();
            assert_eq!(got, vec![(5, 0.25), (7, 1.0)], "{partitioner:?}");
        }
    }

    #[test]
    fn out_degrees_concatenate_disjoint_shards() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &stream(1200) {
            engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        let got = engine.try_out_degrees().unwrap();
        let want = CursorReader::out_degrees(&mut flat).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn pushdown_pagerank_and_bfs_match_flat_oracle() {
        let edges: &[(u64, u64)] = &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 0),
            (3, 4),
            (4, 3),
            (9, 2),
            (1 << 30, 0),
        ];
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(4, partitioner);
            let mut flat = Matrix::<u64>::new(DIM, DIM);
            for &(r, c) in edges {
                engine.update(r, c, 1).unwrap();
                flat.accum_element(r, c, 1).unwrap();
            }
            let pr = engine.pagerank(0.85, 60, 1e-12).unwrap();
            let oracle = hyperstream_graphblas::algo::pagerank(&mut flat, 0.85, 60, 1e-12);
            assert_eq!(pr.nvals(), oracle.nvals(), "{partitioner:?}");
            for (v, r) in pr.iter() {
                let s = oracle.get(v).expect("same active set");
                assert!((r - s).abs() < 1e-9, "{partitioner:?} v={v}: {r} vs {s}");
            }
            for src in [0u64, 3, 9, 77] {
                let got = engine.bfs_levels(src).unwrap();
                let want = hyperstream_graphblas::algo::bfs_levels(&mut flat, src);
                assert_eq!(
                    got.iter().collect::<Vec<_>>(),
                    want.iter().collect::<Vec<_>>(),
                    "{partitioner:?} src={src}"
                );
            }
        }
    }

    #[test]
    fn engine_and_snapshot_serve_cursor_algorithms() {
        // A symmetric triangle plus stragglers, counted straight off the
        // engine (snapshot-backed CursorReader) and off an explicit
        // snapshot while ingest continues.
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        for (a, b) in [(1u64, 2u64), (2, 3), (1, 3), (3, 900)] {
            engine.update(a, b, 1).unwrap();
            engine.update(b, a, 1).unwrap();
        }
        assert_eq!(hyperstream_graphblas::algo::triangle_count(&mut engine), 1);
        let mut snap = engine.snapshot().unwrap();
        engine.update(5, 6, 1).unwrap(); // ingest continues past the capture
        assert_eq!(hyperstream_graphblas::algo::triangle_count(&mut snap), 1);
        assert_eq!(
            hyperstream_graphblas::algo::triangle_count_tuples(&mut snap),
            1
        );
    }
}
