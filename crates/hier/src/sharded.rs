//! The sharded parallel ingest engine: N worker threads, each owning a
//! private [`HierMatrix`] shard, fed through bounded SPSC tuple-batch
//! channels.
//!
//! The paper's 75 G-updates/s headline is the *sum* of many independent
//! hierarchical hypersparse matrices, one per process.  Within one process
//! the same structure is a [`ShardedHierMatrix`]: a row partitioner routes
//! every update to the shard that owns its row, each shard is an ordinary
//! [`HierMatrix`] maintained by its own worker thread, and a query
//! materialises `Σ_shards Σ_levels` — valid because the shards hold disjoint
//! row sets and ⊕ is associative and commutative.
//!
//! Two effects make sharding pay:
//!
//! * **parallelism** — shards never communicate, so N cores stream N times
//!   as fast (the paper's process-level scaling, here at thread level); and
//! * **working-set reduction** — each shard's levels hold ~1/N of the
//!   entries, so every cascade merge rewrites ~1/N of the data.  This is
//!   measurable even on a single core once a stream outgrows one
//!   hierarchy's cut schedule (see the `parallel_rate` benchmark).
//!
//! Threading model: workers are *scoped* threads
//! ([`std::thread::scope`]) spawned per ingest round, so the engine owns no
//! long-lived threads, needs no `unsafe`, and the borrow checker proves the
//! shards outlive their workers.  Inserts are staged into per-shard
//! partition buffers ([`PartitionBuffers`]); when
//! [`ShardedConfig::round_tuples`] are staged (or on flush/query) a round
//! runs: one bounded SPSC channel per shard carries zero-copy tuple-slice
//! chunks from the caller's thread to the workers.

use crate::config::HierConfig;
use crate::matrix::HierMatrix;
use crate::pool::{row_hash, PartitionBuffers};
use crate::stats::HierStats;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add_into;
use hyperstream_graphblas::sink::check_tuple_lengths;
use hyperstream_graphblas::{validate_index, GrbResult, Index, Matrix, ScalarType, StreamingSink};
use std::sync::mpsc::{sync_channel, SyncSender};

/// How updates are routed to shards.  Both strategies depend only on the
/// row, so every `(row, col)` cell lives in exactly one shard and per-shard
/// results sum without overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPartitioner {
    /// Multiplicative row hash (default): spreads adjacent rows across
    /// shards, robust to skewed row spaces.
    RowHash,
    /// Contiguous row bands: shard `k` owns rows
    /// `[k·ceil(nrows/N), (k+1)·ceil(nrows/N))`.  Preserves row locality
    /// within a shard (useful when queries are row-range scans).
    RowRange,
}

impl ShardPartitioner {
    /// The shard that owns `row` in an `nshards`-way partition of `nrows`.
    pub fn shard(&self, row: Index, nrows: Index, nshards: usize) -> usize {
        match self {
            ShardPartitioner::RowHash => (row_hash(row) % nshards.max(1) as u64) as usize,
            ShardPartitioner::RowRange => {
                let band = nrows.div_ceil(nshards.max(1) as u64).max(1);
                ((row / band) as usize).min(nshards.max(1) - 1)
            }
        }
    }
}

/// Tuning knobs of the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of shards (= worker threads per ingest round).  Clamped to at
    /// least 1.
    pub shards: usize,
    /// Row partitioning strategy.
    pub partitioner: ShardPartitioner,
    /// Tuples per SPSC channel message.  Larger chunks amortise channel
    /// synchronisation; smaller chunks smooth load across workers.
    pub chunk_tuples: usize,
    /// Bounded channel capacity in chunks — the producer blocks when a
    /// worker falls this far behind (backpressure).
    pub channel_depth: usize,
    /// Staged tuples that trigger an ingest round.  Rounds also run on
    /// flush and before queries.
    pub round_tuples: usize,
}

impl ShardedConfig {
    /// Default knobs for `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            partitioner: ShardPartitioner::RowHash,
            chunk_tuples: 8192,
            channel_depth: 4,
            round_tuples: 1 << 19,
        }
    }
}

impl Default for ShardedConfig {
    /// One shard per available core.
    fn default() -> Self {
        Self::with_shards(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

/// An N-way sharded hierarchical hypersparse matrix with parallel ingest.
///
/// See the [module documentation](self) for the design.  The engine
/// implements [`StreamingSink`], so the existing `make_sink`/`drive_sink`
/// measurement harness drives it unchanged.
#[derive(Debug, Clone)]
pub struct ShardedHierMatrix<T> {
    nrows: Index,
    ncols: Index,
    config: ShardedConfig,
    shards: Vec<HierMatrix<T>>,
    staging: PartitionBuffers<T>,
    /// Weight staged but not yet handed to a shard (keeps
    /// [`StreamingSink::total_weight`] exact at any moment).
    staged_weight: f64,
    rounds: u64,
    chunks_sent: u64,
}

impl<T: ScalarType> ShardedHierMatrix<T> {
    /// Create an engine whose shards are `nrows x ncols` hierarchies with
    /// the cut schedule `hier_config`.
    pub fn new(
        nrows: Index,
        ncols: Index,
        hier_config: HierConfig,
        config: ShardedConfig,
    ) -> GrbResult<Self> {
        let nshards = config.shards.max(1);
        let mut shards = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            shards.push(HierMatrix::new(nrows, ncols, hier_config.clone())?);
        }
        Ok(Self {
            nrows,
            ncols,
            config: ShardedConfig {
                shards: nshards,
                ..config
            },
            staging: PartitionBuffers::new(nshards),
            shards,
            staged_weight: 0.0,
            rounds: 0,
            chunks_sent: 0,
        })
    }

    /// Convenience constructor: `shards` shards with the paper-default cut
    /// schedule and default engine knobs.
    pub fn with_shards(nrows: Index, ncols: Index, shards: usize) -> GrbResult<Self> {
        Self::new(
            nrows,
            ncols,
            HierConfig::paper_default(),
            ShardedConfig::with_shards(shards),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Direct access to a shard's hierarchy.
    pub fn shard(&self, i: usize) -> &HierMatrix<T> {
        &self.shards[i]
    }

    /// Ingest rounds executed so far (each spawns one scoped worker set).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// SPSC chunks sent to workers so far.
    pub fn chunks_sent(&self) -> u64 {
        self.chunks_sent
    }

    /// Total updates applied across all shards (excluding staged tuples).
    pub fn total_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.stats().updates).sum()
    }

    /// Aggregate hierarchy statistics (sums over shards).
    pub fn aggregate_stats(&self) -> HierStats {
        let levels = self.shards.first().map(|m| m.levels()).unwrap_or(1);
        let mut agg = HierStats::new(levels);
        for m in &self.shards {
            let s = m.stats();
            agg.updates += s.updates;
            agg.materializations += s.materializations;
            for l in 0..levels {
                agg.cascades[l] += s.cascades_from_level(l);
                agg.entries_moved[l] += s.entries_moved_from_level(l);
            }
        }
        agg
    }

    /// Apply one streaming update `A(row, col) += val`.
    pub fn update(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        let shard = self
            .config
            .partitioner
            .shard(row, self.nrows, self.shards.len());
        self.staging.push(shard, row, col, val);
        self.staged_weight += val.to_f64();
        if self.staging.total() >= self.config.round_tuples {
            self.process_round()?;
        }
        Ok(())
    }

    /// Apply a batch of updates given as parallel slices.  The batch is
    /// validated up front and applies atomically.
    pub fn update_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        check_tuple_lengths(rows, cols, vals)?;
        for i in 0..rows.len() {
            validate_index(rows[i], self.nrows)?;
            validate_index(cols[i], self.ncols)?;
        }
        let nshards = self.shards.len();
        for i in 0..rows.len() {
            let shard = self.config.partitioner.shard(rows[i], self.nrows, nshards);
            self.staging.push(shard, rows[i], cols[i], vals[i]);
            self.staged_weight += vals[i].to_f64();
        }
        if self.staging.total() >= self.config.round_tuples {
            self.process_round()?;
        }
        Ok(())
    }

    /// Hand every staged tuple to its shard's worker and wait for the
    /// workers to apply them.  One bounded SPSC channel per shard carries
    /// zero-copy slice chunks; the scope joins all workers before
    /// returning, so the borrows are safe without `unsafe`.
    fn process_round(&mut self) -> GrbResult<()> {
        if self.staging.total() == 0 {
            return Ok(());
        }
        let chunk = self.config.chunk_tuples.max(1);
        let depth = self.config.channel_depth.max(1);
        let nshards = self.shards.len();
        let staging = &self.staging;
        let shards = &mut self.shards;
        let mut chunks_sent = 0u64;

        type Msg<'a, T> = (&'a [Index], &'a [Index], &'a [T]);
        let result: GrbResult<()> = std::thread::scope(|scope| {
            let mut senders: Vec<SyncSender<Msg<'_, T>>> = Vec::with_capacity(nshards);
            let mut handles = Vec::with_capacity(nshards);
            for shard in shards.iter_mut() {
                let (tx, rx) = sync_channel::<Msg<'_, T>>(depth);
                senders.push(tx);
                handles.push(scope.spawn(move || -> GrbResult<()> {
                    while let Ok((r, c, v)) = rx.recv() {
                        shard.update_batch(r, c, v)?;
                    }
                    Ok(())
                }));
            }
            // Producer: round-robin chunks across shards so every worker
            // stays busy; `send` blocks when a bounded channel is full.
            let mut offsets = vec![0usize; nshards];
            loop {
                let mut progressed = false;
                for (s, sender) in senders.iter().enumerate() {
                    let (r, c, v) = staging.shard_slices(s);
                    let off = offsets[s];
                    if off >= r.len() {
                        continue;
                    }
                    let end = (off + chunk).min(r.len());
                    // A send error means the worker exited early; its error
                    // surfaces at join.
                    if sender
                        .send((&r[off..end], &c[off..end], &v[off..end]))
                        .is_ok()
                    {
                        chunks_sent += 1;
                    }
                    offsets[s] = end;
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            drop(senders);
            let mut res = Ok(());
            for h in handles {
                let joined = h.join().expect("shard worker panicked");
                if res.is_ok() {
                    res = joined;
                }
            }
            res
        });
        // Reset the staging even when a worker reported an error (today
        // unreachable: every tuple is bounds-validated before staging).
        // Keeping the staged tuples would re-send chunks that other workers
        // already applied on the next round — double-application is worse
        // than dropping the failed round's remainder.
        self.staging.reset();
        self.staged_weight = 0.0;
        result?;
        self.rounds += 1;
        self.chunks_sent += chunks_sent;
        Ok(())
    }

    /// Complete all deferred work: apply staged tuples and finish every
    /// shard's outstanding cascades.
    pub fn flush(&mut self) -> GrbResult<()> {
        self.process_round()?;
        for shard in &mut self.shards {
            shard.flush();
        }
        Ok(())
    }

    /// Materialise the full matrix `A = Σ_shards Σ_levels` (staged tuples
    /// are applied first; streaming can continue afterwards).
    pub fn materialize(&mut self) -> GrbResult<Matrix<T>> {
        self.process_round()?;
        Ok(self.shard_sum())
    }

    /// `Σ_shards Σ_levels` of the *processed* entries (staged tuples
    /// excluded — callers that need them fold `staging` in themselves).
    fn shard_sum(&self) -> Matrix<T> {
        let mut acc = Matrix::new(self.nrows, self.ncols);
        for shard in &self.shards {
            let level_sum = shard.materialize_ref();
            ewise_add_into(&mut acc, &level_sum, Plus).expect("shards share dimensions");
        }
        acc
    }

    /// Value of the represented matrix at `(row, col)` — answered by the
    /// single shard that owns the row, plus any staged tuples.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        let shard = self
            .config
            .partitioner
            .shard(row, self.nrows, self.shards.len());
        let mut acc = self.shards[shard].get(row, col);
        let (r, c, v) = self.staging.shard_slices(shard);
        for i in 0..r.len() {
            if r[i] == row && c[i] == col {
                acc = Some(match acc {
                    Some(a) => a.add(v[i]),
                    None => v[i],
                });
            }
        }
        acc
    }

    /// Sum of all weight currently represented, staged tuples included.
    pub fn total_weight_f64(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.total_weight_f64())
            .sum::<f64>()
            + self.staged_weight
    }
}

/// The harness-facing interface: identical contract to every other sink in
/// the workspace, so `make_sink`/`drive_sink` measure the parallel engine
/// with the same loop that measures the single-instance systems.
impl<T: ScalarType> StreamingSink<T> for ShardedHierMatrix<T> {
    fn sink_name(&self) -> &str {
        "sharded-hier-graphblas"
    }

    fn insert(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        self.update(row, col, val)
    }

    fn insert_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        self.update_batch(rows, cols, vals)
    }

    fn flush(&mut self) -> GrbResult<()> {
        ShardedHierMatrix::flush(self)
    }

    fn nvals(&self) -> usize {
        if self.staging.total() == 0 {
            // Shards own disjoint row sets: distinct cells simply add up.
            self.shards.iter().map(|s| s.nvals_exact()).sum()
        } else {
            // Staged tuples may collide with stored cells; settle a snapshot.
            let mut acc = self.shard_sum();
            for s in 0..self.staging.shards() {
                let (r, c, v) = self.staging.shard_slices(s);
                acc.accum_tuples(r, c, v).expect("staged tuples validated");
            }
            acc.nvals()
        }
    }

    fn total_weight(&self) -> f64 {
        self.total_weight_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIM: u64 = 1 << 32;

    fn small_cfg() -> HierConfig {
        HierConfig::from_cuts(vec![16, 128, 1024]).unwrap()
    }

    fn tiny_engine(shards: usize, partitioner: ShardPartitioner) -> ShardedHierMatrix<u64> {
        ShardedHierMatrix::new(
            DIM,
            DIM,
            small_cfg(),
            ShardedConfig {
                shards,
                partitioner,
                chunk_tuples: 64,
                channel_depth: 2,
                round_tuples: 256,
            },
        )
        .unwrap()
    }

    fn stream(n: u64) -> Vec<(u64, u64, u64)> {
        (0..n)
            .map(|i| ((i * 7919) % 5000 * 797_003, (i * 104_729) % 3000, i % 4 + 1))
            .collect()
    }

    #[test]
    fn matches_flat_accumulation_for_both_partitioners() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(4, partitioner);
            let mut flat = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &stream(3000) {
                engine.update(r, c, v).unwrap();
                flat.accum_element(r, c, v).unwrap();
            }
            flat.wait();
            let snap = engine.materialize().unwrap();
            assert_eq!(
                snap.extract_tuples(),
                flat.extract_tuples(),
                "{partitioner:?}"
            );
            assert!(engine.rounds() > 1, "expected multiple ingest rounds");
            assert!(engine.chunks_sent() > engine.rounds());
        }
    }

    #[test]
    fn batch_and_single_update_agree() {
        let updates = stream(2000);
        let rows: Vec<u64> = updates.iter().map(|u| u.0).collect();
        let cols: Vec<u64> = updates.iter().map(|u| u.1).collect();
        let vals: Vec<u64> = updates.iter().map(|u| u.2).collect();

        let mut singles = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &updates {
            singles.update(r, c, v).unwrap();
        }
        let mut batched = tiny_engine(3, ShardPartitioner::RowHash);
        batched.update_batch(&rows, &cols, &vals).unwrap();
        assert_eq!(
            singles.materialize().unwrap().extract_tuples(),
            batched.materialize().unwrap().extract_tuples()
        );
    }

    #[test]
    fn mid_stream_query_and_flush_do_not_disturb() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        let updates = stream(1500);
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            engine.update(r, c, v).unwrap();
            if i == 700 {
                let _ = engine.materialize().unwrap();
                engine.flush().unwrap();
            }
        }
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
    }

    #[test]
    fn weight_exact_with_staged_tuples() {
        let mut engine = tiny_engine(4, ShardPartitioner::RowHash);
        engine.update(1, 1, 10).unwrap();
        engine.update(2, 2, 5).unwrap();
        // Nothing processed yet (round_tuples = 256), weight still exact.
        assert_eq!(engine.rounds(), 0);
        assert_eq!(engine.total_weight_f64(), 15.0);
        assert_eq!(engine.get(1, 1), Some(10));
        assert_eq!(StreamingSink::nvals(&engine), 2);
        engine.flush().unwrap();
        assert_eq!(engine.total_weight_f64(), 15.0);
        assert_eq!(engine.get(1, 1), Some(10));
        assert_eq!(engine.total_updates(), 2);
    }

    #[test]
    fn bounds_rejected_and_batches_atomic() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        assert!(engine.update(DIM, 0, 1).is_err());
        assert!(engine.update(0, DIM, 1).is_err());
        assert!(engine.update_batch(&[1, DIM], &[1, 1], &[1, 1]).is_err());
        assert!(engine.update_batch(&[1], &[1, 2], &[1]).is_err());
        assert_eq!(engine.total_weight_f64(), 0.0);
        assert_eq!(StreamingSink::nvals(&engine), 0);
    }

    #[test]
    fn single_shard_works() {
        let mut engine = tiny_engine(1, ShardPartitioner::RowRange);
        for &(r, c, v) in &stream(500) {
            engine.update(r, c, v).unwrap();
        }
        engine.flush().unwrap();
        assert_eq!(engine.num_shards(), 1);
        assert!(engine.total_updates() == 500);
        // Zero shards clamps to one.
        let clamped = ShardedHierMatrix::<u64>::with_shards(100, 100, 0).unwrap();
        assert_eq!(clamped.num_shards(), 1);
    }

    #[test]
    fn sink_interface_round_trip() {
        let mut sink: Box<dyn StreamingSink<u64>> =
            Box::new(tiny_engine(3, ShardPartitioner::RowHash));
        for &(r, c, v) in &stream(800) {
            sink.insert(r, c, v).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "sharded-hier-graphblas");
        let expected: u64 = stream(800).iter().map(|u| u.2).sum();
        assert_eq!(sink.total_weight(), expected as f64);
        assert!(sink.nvals() > 0);
    }

    #[test]
    fn partitioners_cover_all_shards() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut seen = [false; 8];
            for r in 0..10_000u64 {
                // Spread rows over the whole index space for RowRange.
                let row = r * (DIM / 10_000);
                seen[partitioner.shard(row, DIM, 8)] = true;
            }
            assert!(seen.iter().all(|&s| s), "{partitioner:?} starves shards");
        }
        // Rows at the very top of the space stay in range.
        assert!(ShardPartitioner::RowRange.shard(DIM - 1, DIM, 7) < 7);
        assert!(ShardPartitioner::RowHash.shard(DIM - 1, DIM, 7) < 7);
    }

    #[test]
    fn shard_stats_aggregate() {
        let mut engine = tiny_engine(4, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        engine.flush().unwrap();
        let agg = engine.aggregate_stats();
        assert_eq!(agg.updates, 2000);
        assert!(agg.total_cascades() > 0, "small cuts must cascade");
        assert!((0..engine.num_shards()).all(|i| engine.shard(i).stats().updates > 0));
    }
}
