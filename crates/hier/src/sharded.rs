//! The sharded parallel ingest engine: a **persistent pool** of N worker
//! threads, each owning a private [`HierMatrix`] shard, fed through
//! long-lived bounded SPSC tuple-batch channels.
//!
//! The paper's 75 G-updates/s headline is the *sum* of many independent
//! hierarchical hypersparse matrices, one per process.  Within one process
//! the same structure is a [`ShardedHierMatrix`]: a row partitioner routes
//! every update to the shard that owns its row, each shard is an ordinary
//! [`HierMatrix`] maintained by its own worker thread, and a query
//! materialises `Σ_shards Σ_levels` — valid because the shards hold disjoint
//! row sets and ⊕ is associative and commutative.
//!
//! Two effects make sharding pay:
//!
//! * **parallelism** — shards never communicate, so N cores stream N times
//!   as fast (the paper's process-level scaling, here at thread level); and
//! * **working-set reduction** — each shard's levels hold ~1/N of the
//!   entries, so every cascade merge rewrites ~1/N of the data.  This is
//!   measurable even on a single core once a stream outgrows one
//!   hierarchy's cut schedule (see the `parallel_rate` benchmark).
//!
//! # Threading model
//!
//! Workers are **persistent threads** spawned once at construction.  Each
//! worker owns its shard (behind an uncontended mutex that queries take
//! after a drain barrier), parks on its SPSC command channel when idle, and
//! lives until the engine is dropped — there are no per-round spawns or
//! joins.  The long-lived threads are also the parking spot the roadmap's
//! NUMA/affinity follow-on needs: a worker is a stable OS thread that can
//! be pinned once, not a scoped thread that vanishes every round.
//!
//! Inserts are staged into per-shard partition buffers
//! ([`PartitionBuffers`]); a shard's staging is handed to its worker
//! *whole* (a zero-copy `Vec` handoff, with emptied buffers recycled back
//! through a return channel) as soon as [`ShardedConfig::chunk_tuples`]
//! accumulate, so partitioning overlaps worker application continuously.
//! Every [`ShardedConfig::round_tuples`] staged updates the engine counts
//! one ingest *round* and force-dispatches all remainders.  The bounded
//! command channels provide backpressure: the producer blocks when a shard
//! falls [`ShardedConfig::channel_depth`] batches behind.
//!
//! Queries and [`ShardedHierMatrix::flush`] use a **drain barrier**: a
//! barrier message per worker, acknowledged only after every previously
//! queued batch has been applied (workers also report their thread id,
//! which the thread-reuse tests round-trip).

use crate::config::HierConfig;
use crate::matrix::HierMatrix;
use crate::pool::{
    col_degree_histogram, rank_col_degrees, rerank_top_k, row_hash, sum_col_degrees,
    sum_histograms, PartitionBuffers,
};
use crate::stats::HierStats;
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add_into;
use hyperstream_graphblas::sink::check_tuple_lengths;
use hyperstream_graphblas::{
    validate_index, GrbResult, Index, Matrix, MatrixReader, MatrixSnapshot, ScalarType,
    StreamingSink,
};
use parking_lot::Mutex;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::{JoinHandle, ThreadId};

/// How updates are routed to shards.  Both strategies depend only on the
/// row, so every `(row, col)` cell lives in exactly one shard and per-shard
/// results sum without overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPartitioner {
    /// Multiplicative row hash (default): spreads adjacent rows across
    /// shards, robust to skewed row spaces.
    RowHash,
    /// Contiguous row bands: shard `k` owns rows
    /// `[k·ceil(nrows/N), (k+1)·ceil(nrows/N))`.  Preserves row locality
    /// within a shard (useful when queries are row-range scans).
    RowRange,
}

impl ShardPartitioner {
    /// The shard that owns `row` in an `nshards`-way partition of `nrows`.
    pub fn shard(&self, row: Index, nrows: Index, nshards: usize) -> usize {
        match self {
            ShardPartitioner::RowHash => (row_hash(row) % nshards.max(1) as u64) as usize,
            ShardPartitioner::RowRange => {
                let band = nrows.div_ceil(nshards.max(1) as u64).max(1);
                ((row / band) as usize).min(nshards.max(1) - 1)
            }
        }
    }
}

/// Tuning knobs of the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Number of shards (= persistent worker threads).  Clamped to at
    /// least 1.
    pub shards: usize,
    /// Row partitioning strategy.
    pub partitioner: ShardPartitioner,
    /// Staged tuples at which a shard's buffer is handed to its worker.
    /// Larger batches amortise channel synchronisation; smaller batches
    /// start workers sooner.
    pub chunk_tuples: usize,
    /// Bounded channel capacity in batches — the producer blocks when a
    /// worker falls this far behind (backpressure).
    pub channel_depth: usize,
    /// Staged tuples that count one ingest round (all remainders are
    /// force-dispatched).  Rounds also complete on flush and queries.
    pub round_tuples: usize,
}

impl ShardedConfig {
    /// Default knobs for `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
            partitioner: ShardPartitioner::RowHash,
            chunk_tuples: 8192,
            channel_depth: 4,
            round_tuples: 1 << 19,
        }
    }
}

impl Default for ShardedConfig {
    /// One shard per available core.
    fn default() -> Self {
        Self::with_shards(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

/// A tuple batch travelling to a worker (and, emptied, back).
type TupleBuf<T> = (Vec<Index>, Vec<Index>, Vec<T>);

/// Batched-read routing: per shard, the original request indices and the
/// keys that shard owns, so replies scatter back into request order.
type ShardBatch<K> = Vec<(usize, Vec<usize>, Vec<K>)>;

/// Commands a worker consumes from its SPSC channel.
enum WorkerMsg<T> {
    /// Apply a batch of pre-validated tuples to the shard.  The buffers
    /// return through the recycle channel.
    Apply(TupleBuf<T>),
    /// Complete the shard's outstanding cascades.
    Flush,
    /// Acknowledge once every prior message has been applied.
    Barrier(SyncSender<BarrierAck>),
    /// Answer a read query from the owned shard — the query push-down.
    /// Rides the same FIFO channel as `Apply`, so by the time the worker
    /// answers it has applied every previously queued batch (the drain
    /// barrier and the query are one message).
    Query(ReaderQuery, SyncSender<ReaderReply<T>>),
}

/// A read query pushed down to a shard worker.  Row-targeted queries go to
/// the single owning shard; whole-matrix queries fan out to every worker,
/// which answer *in parallel* from their own hierarchies via the merged
/// level cursors — no materialised matrix is built or shipped anywhere.
enum ReaderQuery {
    /// Point get `A(row, col)`.
    Get(Index, Index),
    /// Extract one merged row.
    Row(Index),
    /// Distinct columns in one row.
    RowDegree(Index),
    /// Reduce one row under `+`.
    RowReduce(Index),
    /// The shard's local top-`k` rows by degree.
    TopK(usize),
    /// Distinct cells stored in the shard.
    Nnz,
    /// The shard's sorted entry list.
    Entries,
    /// The shard's sorted entries within a row range (half-open).
    RowRange(Index, Index),
    /// The shard's degree histogram.
    Histogram,
    /// A consistent point-in-time snapshot of the shard (Arc'd levels +
    /// degree-index view): the analytics-while-ingest handoff — the
    /// producer sweeps the snapshot while this worker's channel keeps
    /// draining.
    Snapshot,
    /// Extract one merged column (the shard's slice of it — every shard
    /// may own rows intersecting any column, so column queries always fan
    /// out to the whole pool).
    Col(Index),
    /// Distinct rows in one column of this shard.
    ColDegree(Index),
    /// Reduce one column of this shard under `+`.
    ColReduce(Index),
    /// The shard's **complete** column→in-degree list.  Unlike the row
    /// top-k, a per-shard in-degree *top-k* cannot be re-ranked by the
    /// producer — a column's degree splits across the row-partitioned
    /// shards — so workers ship the full per-column stats and the producer
    /// sums per column before ranking or histogramming.
    InDegrees,
    /// The shard's entries within a column range (half-open), column-major.
    ColRange(Index, Index),
    /// Extract a batch of merged rows (one settle shard-side, row-disjoint
    /// partials reassembled by the producer).
    Rows(Vec<Index>),
    /// Batched point gets.
    GetMany(Vec<(Index, Index)>),
}

/// A worker's answer to a [`ReaderQuery`] (disjoint-row partials the
/// producer concatenates or k-way merges).  Replies travel once per query
/// over a rendezvous channel, so the size spread between variants is
/// irrelevant.
#[allow(clippy::large_enum_variant)]
enum ReaderReply<T> {
    Value(Option<T>),
    Row(Vec<(Index, T)>),
    Count(usize),
    TopK(Vec<(Index, usize)>),
    Entries(Vec<(Index, Index, T)>),
    Hist(std::collections::BTreeMap<u64, u64>),
    Snapshot(MatrixSnapshot<T>),
    Rows(Vec<Vec<(Index, T)>>),
    Values(Vec<Option<T>>),
}

/// A worker's answer to a drain barrier.
struct BarrierAck {
    /// Index of the acknowledging shard.
    shard: usize,
    /// OS thread identity — round-tripped by the thread-reuse tests to
    /// prove the pool is persistent.
    worker: ThreadId,
    /// First error since the previous barrier, if any (unreachable today:
    /// every tuple is bounds-validated before staging).
    result: GrbResult<()>,
}

/// The producer-side handle of one persistent worker.
#[derive(Debug)]
struct ShardWorker<T> {
    /// Command channel (bounded: provides ingest backpressure).
    tx: SyncSender<WorkerMsg<T>>,
    /// Emptied tuple buffers coming back from the worker.
    recycled: Receiver<TupleBuf<T>>,
    /// The worker thread, joined on drop.
    handle: JoinHandle<()>,
}

/// The worker thread body: park on the channel, apply batches to the owned
/// shard, answer barriers.  Exits when the engine drops its sender.
fn worker_loop<T: ScalarType>(
    shard_idx: usize,
    shard: Arc<Mutex<HierMatrix<T>>>,
    rx: Receiver<WorkerMsg<T>>,
    recycle: Sender<TupleBuf<T>>,
) {
    let mut error: GrbResult<()> = Ok(());
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Apply((mut rows, mut cols, mut vals)) => {
                if error.is_ok() {
                    error = shard.lock().update_batch(&rows, &cols, &vals);
                }
                rows.clear();
                cols.clear();
                vals.clear();
                // The engine may already be shutting down; dropping the
                // buffers then is fine.
                let _ = recycle.send((rows, cols, vals));
            }
            WorkerMsg::Flush => {
                shard.lock().flush();
            }
            WorkerMsg::Barrier(ack) => {
                let _ = ack.send(BarrierAck {
                    shard: shard_idx,
                    worker: std::thread::current().id(),
                    result: std::mem::replace(&mut error, Ok(())),
                });
            }
            WorkerMsg::Query(query, reply) => {
                let mut shard = shard.lock();
                let answer = match query {
                    ReaderQuery::Get(r, c) => ReaderReply::Value(shard.read_get(r, c)),
                    ReaderQuery::Row(r) => {
                        let mut out = Vec::new();
                        shard.read_row(r, &mut out);
                        ReaderReply::Row(out)
                    }
                    ReaderQuery::RowDegree(r) => ReaderReply::Count(shard.read_row_degree(r)),
                    ReaderQuery::RowReduce(r) => ReaderReply::Value(shard.read_row_reduce(r)),
                    ReaderQuery::TopK(k) => ReaderReply::TopK(shard.read_top_k(k)),
                    ReaderQuery::Nnz => ReaderReply::Count(shard.read_nnz()),
                    ReaderQuery::Entries => {
                        let mut out = Vec::new();
                        shard.read_entries(&mut |r, c, v| out.push((r, c, v)));
                        ReaderReply::Entries(out)
                    }
                    ReaderQuery::RowRange(lo, hi) => {
                        let mut out = Vec::new();
                        shard.read_row_range(lo, hi, &mut |r, c, v| out.push((r, c, v)));
                        ReaderReply::Entries(out)
                    }
                    ReaderQuery::Histogram => ReaderReply::Hist(shard.read_degree_histogram()),
                    ReaderQuery::Snapshot => ReaderReply::Snapshot(shard.snapshot()),
                    ReaderQuery::Col(c) => {
                        let mut out = Vec::new();
                        shard.read_col(c, &mut out);
                        ReaderReply::Row(out)
                    }
                    ReaderQuery::ColDegree(c) => ReaderReply::Count(shard.read_col_degree(c)),
                    ReaderQuery::ColReduce(c) => ReaderReply::Value(shard.read_col_reduce(c)),
                    ReaderQuery::InDegrees => {
                        // nnz bounds the number of distinct columns, so
                        // this is the shard's complete column stat list.
                        let bound = shard.read_nnz();
                        ReaderReply::TopK(shard.read_in_top_k(bound))
                    }
                    ReaderQuery::ColRange(lo, hi) => {
                        let mut out = Vec::new();
                        shard.read_col_range(lo, hi, &mut |r, c, v| out.push((r, c, v)));
                        ReaderReply::Entries(out)
                    }
                    ReaderQuery::Rows(rows) => ReaderReply::Rows(shard.read_rows(&rows)),
                    ReaderQuery::GetMany(keys) => ReaderReply::Values(shard.read_get_many(&keys)),
                };
                let _ = reply.send(answer);
            }
        }
    }
}

/// An N-way sharded hierarchical hypersparse matrix with parallel ingest
/// over a persistent worker pool.
///
/// See the [module documentation](self) for the design.  The engine
/// implements [`StreamingSink`], so the existing `make_sink`/`drive_sink`
/// measurement harness drives it unchanged.
#[derive(Debug)]
pub struct ShardedHierMatrix<T> {
    nrows: Index,
    ncols: Index,
    config: ShardedConfig,
    /// The shard hierarchies.  A worker locks its own shard only while
    /// applying a batch; the engine locks a shard only after a drain
    /// barrier, so the mutexes are uncontended by construction.
    shards: Vec<Arc<Mutex<HierMatrix<T>>>>,
    workers: Vec<ShardWorker<T>>,
    staging: PartitionBuffers<T>,
    /// Exact sum of all successfully ingested weight (staged, in flight,
    /// or applied) — kept producer-side so [`StreamingSink::total_weight`]
    /// needs no barrier.
    ingested_weight: f64,
    /// Staged tuples since the last completed round.
    since_round: usize,
    rounds: u64,
    chunks_sent: u64,
    /// Read queries answered by the worker pool (never through a
    /// materialised matrix) — the counter the no-materialisation tests
    /// assert against.
    pushdown_queries: u64,
    /// Workers consulted by the most recent pushed-down query — the
    /// range-dispatch tests assert a narrow `read_row_range` on a
    /// RowRange-partitioned engine touches only the overlapping workers.
    last_fanout: usize,
    /// Producer-side cache of the summed column → in-degree map.  Unlike
    /// row rankings (disjoint rows, rerank per query), the in-degree
    /// ranking needs every shard's full column stats shipped and summed —
    /// expensive enough that a query burst must not repeat it.  Any staged
    /// tuple invalidates the cache; flushes and settles don't (they never
    /// change the represented union).
    in_degrees_cache: Option<std::collections::BTreeMap<Index, usize>>,
}

impl<T: ScalarType> ShardedHierMatrix<T> {
    /// Create an engine whose shards are `nrows x ncols` hierarchies with
    /// the cut schedule `hier_config`, spawning one persistent worker
    /// thread per shard.
    pub fn new(
        nrows: Index,
        ncols: Index,
        hier_config: HierConfig,
        config: ShardedConfig,
    ) -> GrbResult<Self> {
        let nshards = config.shards.max(1);
        let depth = config.channel_depth.max(1);
        let mut shards = Vec::with_capacity(nshards);
        let mut workers = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let shard = Arc::new(Mutex::new(HierMatrix::new(
                nrows,
                ncols,
                hier_config.clone(),
            )?));
            let (tx, rx) = sync_channel::<WorkerMsg<T>>(depth);
            let (recycle_tx, recycle_rx) = channel::<TupleBuf<T>>();
            let worker_shard = Arc::clone(&shard);
            let handle = std::thread::Builder::new()
                .name(format!("shard-worker-{i}"))
                .spawn(move || worker_loop(i, worker_shard, rx, recycle_tx))
                .expect("spawn shard worker");
            shards.push(shard);
            workers.push(ShardWorker {
                tx,
                recycled: recycle_rx,
                handle,
            });
        }
        Ok(Self {
            nrows,
            ncols,
            config: ShardedConfig {
                shards: nshards,
                ..config
            },
            staging: PartitionBuffers::new(nshards),
            shards,
            workers,
            ingested_weight: 0.0,
            since_round: 0,
            rounds: 0,
            chunks_sent: 0,
            pushdown_queries: 0,
            last_fanout: 0,
            in_degrees_cache: None,
        })
    }

    /// Convenience constructor: `shards` shards with the paper-default cut
    /// schedule and default engine knobs.
    pub fn with_shards(nrows: Index, ncols: Index, shards: usize) -> GrbResult<Self> {
        Self::new(
            nrows,
            ncols,
            HierConfig::paper_default(),
            ShardedConfig::with_shards(shards),
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of shards (= persistent workers).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// A snapshot of one shard's hierarchy statistics (drains that shard's
    /// worker first so in-flight batches are counted).
    pub fn shard_stats(&self, i: usize) -> HierStats {
        self.barrier_shard(i)
            .expect("shard worker reported an error");
        self.shards[i].lock().stats().clone()
    }

    /// Ingest rounds completed so far.  Rounds meter the stream into
    /// [`ShardedConfig::round_tuples`] slices; since the worker pool is
    /// persistent they no longer imply any thread spawns.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Tuple batches handed to workers so far.
    pub fn chunks_sent(&self) -> u64 {
        self.chunks_sent
    }

    /// Read queries answered through the worker pool so far.  The
    /// no-materialisation tests pair this with
    /// [`HierStats::materializations`] staying zero: every pushed-down
    /// query is served from shard-local level cursors.
    pub fn pushdown_queries(&self) -> u64 {
        self.pushdown_queries
    }

    /// The OS thread ids of the worker pool, obtained through a drain
    /// barrier.  Repeated calls on a live engine return the same ids —
    /// the property the thread-reuse tests assert.
    pub fn worker_ids(&self) -> Vec<ThreadId> {
        let mut acks = self.collect_barrier_acks();
        acks.sort_by_key(|a| a.shard);
        acks.into_iter()
            .map(|a| {
                a.result.expect("shard worker reported an error");
                a.worker
            })
            .collect()
    }

    /// Total updates applied across all shards (drains in-flight batches
    /// first; staged tuples are excluded).
    pub fn total_updates(&self) -> u64 {
        self.barrier_all().expect("worker pool alive");
        self.shards.iter().map(|s| s.lock().stats().updates).sum()
    }

    /// Aggregate hierarchy statistics (sums over shards, after a drain).
    pub fn aggregate_stats(&self) -> HierStats {
        self.barrier_all().expect("worker pool alive");
        let levels = self.shards.first().map(|m| m.lock().levels()).unwrap_or(1);
        let mut agg = HierStats::new(levels);
        for m in &self.shards {
            let m = m.lock();
            let s = m.stats();
            agg.updates += s.updates;
            agg.materializations += s.materializations;
            for l in 0..levels {
                agg.cascades[l] += s.cascades_from_level(l);
                agg.entries_moved[l] += s.entries_moved_from_level(l);
            }
        }
        agg
    }

    /// Apply one streaming update `A(row, col) += val`.
    pub fn update(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        let shard = self
            .config
            .partitioner
            .shard(row, self.nrows, self.shards.len());
        self.staging.push(shard, row, col, val);
        self.ingested_weight += val.to_f64();
        self.since_round += 1;
        self.in_degrees_cache = None;
        if self.staging.staged(shard) >= self.config.chunk_tuples.max(1) {
            self.dispatch_shard(shard);
        }
        self.maybe_complete_round();
        Ok(())
    }

    /// Apply a batch of updates given as parallel slices.  The batch is
    /// validated up front and applies atomically.
    pub fn update_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        check_tuple_lengths(rows, cols, vals)?;
        for i in 0..rows.len() {
            validate_index(rows[i], self.nrows)?;
            validate_index(cols[i], self.ncols)?;
        }
        let nshards = self.shards.len();
        for i in 0..rows.len() {
            let shard = self.config.partitioner.shard(rows[i], self.nrows, nshards);
            self.staging.push(shard, rows[i], cols[i], vals[i]);
            self.ingested_weight += vals[i].to_f64();
        }
        self.since_round += rows.len();
        if !rows.is_empty() {
            self.in_degrees_cache = None;
        }
        let chunk = self.config.chunk_tuples.max(1);
        for shard in 0..nshards {
            if self.staging.staged(shard) >= chunk {
                self.dispatch_shard(shard);
            }
        }
        self.maybe_complete_round();
        Ok(())
    }

    /// Hand `shard`'s staged tuples to its worker: swap the staging vectors
    /// out (replaced by recycled buffers when the worker has returned any),
    /// and send them whole over the bounded channel.  Blocks when the
    /// worker is `channel_depth` batches behind — the engine's
    /// backpressure.
    fn dispatch_shard(&mut self, shard: usize) {
        if self.staging.staged(shard) == 0 {
            return;
        }
        let replacement = self.workers[shard].recycled.try_recv().unwrap_or_default();
        let buf = self.staging.take_shard(shard, replacement);
        self.workers[shard]
            .tx
            .send(WorkerMsg::Apply(buf))
            .expect("shard worker exited");
        self.chunks_sent += 1;
    }

    /// Dispatch every shard's staged remainder.
    fn dispatch_all(&mut self) {
        for shard in 0..self.shards.len() {
            self.dispatch_shard(shard);
        }
    }

    /// Count a round once `round_tuples` have been staged since the last
    /// one, force-dispatching all remainders so the round is fully in
    /// flight.
    fn maybe_complete_round(&mut self) {
        if self.since_round >= self.config.round_tuples.max(1) {
            self.dispatch_all();
            self.since_round = 0;
            self.rounds += 1;
        }
    }

    /// Push one read query down to `shard`'s worker: drain that shard's
    /// staging into its channel, enqueue the query (FIFO ⇒ it acts as its
    /// own drain barrier) and wait for the answer.  Only the owning shard
    /// does any work; the other workers keep ingesting.
    fn query_shard(&mut self, shard: usize, query: ReaderQuery) -> ReaderReply<T> {
        self.dispatch_shard(shard);
        let (reply_tx, reply_rx) = sync_channel(1);
        self.workers[shard]
            .tx
            .send(WorkerMsg::Query(query, reply_tx))
            .expect("shard worker exited");
        self.pushdown_queries += 1;
        self.last_fanout = 1;
        reply_rx.recv().expect("shard worker exited")
    }

    /// Push one read query down to a *subset* of workers and collect their
    /// partial answers (arrival order).  The range dispatch uses this to
    /// consult only the workers whose row bands overlap a scan.
    fn query_shards(
        &mut self,
        shards: &[usize],
        mk: impl Fn() -> ReaderQuery,
    ) -> Vec<ReaderReply<T>> {
        for &s in shards {
            self.dispatch_shard(s);
        }
        let (reply_tx, reply_rx) = sync_channel(shards.len());
        for &s in shards {
            self.workers[s]
                .tx
                .send(WorkerMsg::Query(mk(), reply_tx.clone()))
                .expect("shard worker exited");
        }
        drop(reply_tx);
        self.pushdown_queries += 1;
        self.last_fanout = shards.len();
        (0..shards.len())
            .map(|_| reply_rx.recv().expect("shard worker exited"))
            .collect()
    }

    /// Push one read query down to *every* worker and collect the partial
    /// answers (arrival order).  All shards compute concurrently; because
    /// shards own disjoint row sets the producer only concatenates or
    /// k-way merges the partials — no materialised matrices travel through
    /// the channels.
    fn query_all(&mut self, mk: impl Fn() -> ReaderQuery) -> Vec<ReaderReply<T>> {
        let all: Vec<usize> = (0..self.workers.len()).collect();
        self.query_shards(&all, mk)
    }

    /// Push a *distinct* query down to each listed worker (the batched-read
    /// dispatch: each shard gets exactly the keys it owns) and collect the
    /// replies in the same order as `queries`.  One reply channel per query
    /// keeps the pairing; all targeted workers still compute concurrently.
    fn query_each(&mut self, queries: Vec<(usize, ReaderQuery)>) -> Vec<ReaderReply<T>> {
        for &(s, _) in &queries {
            self.dispatch_shard(s);
        }
        let receivers: Vec<Receiver<ReaderReply<T>>> = queries
            .into_iter()
            .map(|(s, q)| {
                let (reply_tx, reply_rx) = sync_channel(1);
                self.workers[s]
                    .tx
                    .send(WorkerMsg::Query(q, reply_tx))
                    .expect("shard worker exited");
                reply_rx
            })
            .collect();
        self.pushdown_queries += 1;
        self.last_fanout = receivers.len();
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker exited"))
            .collect()
    }

    /// The shards whose row sets can intersect `lo..hi`: a contiguous band
    /// range under the RowRange partitioner, every shard under RowHash.
    fn range_shards(&self, lo: Index, hi: Index) -> Vec<usize> {
        let n = self.shards.len();
        match self.config.partitioner {
            ShardPartitioner::RowRange => {
                let band = self.nrows.div_ceil(n as u64).max(1);
                let first = ((lo / band) as usize).min(n - 1);
                let last =
                    (((hi - 1).min(self.nrows.saturating_sub(1)) / band) as usize).min(n - 1);
                (first..=last).collect()
            }
            ShardPartitioner::RowHash => (0..n).collect(),
        }
    }

    /// Workers consulted by the most recent pushed-down query.
    pub fn last_query_fanout(&self) -> usize {
        self.last_fanout
    }

    /// Take a consistent engine-wide snapshot: staged tuples dispatch,
    /// every worker snapshots its shard at its drain barrier (O(levels)
    /// Arc bumps — no entries are copied or shipped), and the producer
    /// receives one [`MatrixSnapshot`] per shard.  The returned
    /// [`ShardedSnapshot`] answers every [`MatrixReader`] query from the
    /// captured state while the workers keep draining their channels —
    /// the analytics-while-ingest overlap the roadmap parked here.
    pub fn snapshot(&mut self) -> ShardedSnapshot<T> {
        let shards = self
            .query_all(|| ReaderQuery::Snapshot)
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Snapshot(s) => s,
                _ => unreachable!("worker answered Snapshot with a non-Snapshot reply"),
            })
            .collect();
        ShardedSnapshot {
            nrows: self.nrows,
            ncols: self.ncols,
            shards,
        }
    }

    /// Full column → in-degree map summed across every shard.  A column's
    /// degree splits across the row-partitioned shards, so per-shard top-k
    /// lists cannot be re-ranked; workers ship their complete column stats
    /// and the producer sums them before ranking or binning.
    fn ensure_in_degrees(&mut self) -> &std::collections::BTreeMap<Index, usize> {
        if self.in_degrees_cache.is_none() {
            let parts: Vec<Vec<(Index, usize)>> = self
                .query_all(|| ReaderQuery::InDegrees)
                .into_iter()
                .map(|reply| match reply {
                    ReaderReply::TopK(part) => part,
                    _ => unreachable!("worker answered InDegrees with a non-TopK reply"),
                })
                .collect();
            self.in_degrees_cache = Some(sum_col_degrees(parts));
        }
        self.in_degrees_cache.as_ref().expect("just filled")
    }

    /// The shard owning `row` under the configured partitioner.
    fn owner(&self, row: Index) -> usize {
        self.config
            .partitioner
            .shard(row, self.nrows, self.shards.len())
    }

    /// Block until `shard`'s worker has applied everything queued so far,
    /// surfacing any worker error (unreachable today — tuples validate
    /// before staging — but never swallowed).
    fn barrier_shard(&self, shard: usize) -> GrbResult<()> {
        let (ack_tx, ack_rx) = sync_channel(1);
        self.workers[shard]
            .tx
            .send(WorkerMsg::Barrier(ack_tx))
            .expect("shard worker exited");
        let ack = ack_rx.recv().expect("shard worker exited");
        debug_assert_eq!(ack.shard, shard);
        ack.result
    }

    /// Send a drain barrier to every worker and collect the raw
    /// acknowledgements (one per worker, arrival order).
    fn collect_barrier_acks(&self) -> Vec<BarrierAck> {
        let (ack_tx, ack_rx) = sync_channel(self.workers.len());
        for w in &self.workers {
            w.tx.send(WorkerMsg::Barrier(ack_tx.clone()))
                .expect("shard worker exited");
        }
        drop(ack_tx);
        (0..self.workers.len())
            .map(|_| ack_rx.recv().expect("shard worker exited"))
            .collect()
    }

    /// Block until every worker has applied everything queued so far,
    /// surfacing the first worker error.
    fn barrier_all(&self) -> GrbResult<()> {
        let mut result = Ok(());
        for ack in self.collect_barrier_acks() {
            if result.is_ok() {
                result = ack.result;
            }
        }
        result
    }

    /// Complete all deferred work: dispatch staged tuples, wait for the
    /// workers to apply them, and finish every shard's outstanding
    /// cascades.  The workers stay parked on their channels afterwards.
    pub fn flush(&mut self) -> GrbResult<()> {
        if self.since_round > 0 || self.staging.total() > 0 {
            self.dispatch_all();
            self.since_round = 0;
            self.rounds += 1;
        }
        for w in &self.workers {
            w.tx.send(WorkerMsg::Flush).expect("shard worker exited");
        }
        self.barrier_all()
    }

    /// Materialise the full matrix `A = Σ_shards Σ_levels` (staged and
    /// in-flight tuples are applied first; streaming can continue
    /// afterwards).
    pub fn materialize(&mut self) -> GrbResult<Matrix<T>> {
        self.dispatch_all();
        self.barrier_all()?;
        Ok(self.shard_sum())
    }

    /// `Σ_shards Σ_levels` of the shards' contents.  Callers must have
    /// drained the workers; tuples still staged producer-side are folded
    /// in by the caller where required.  This is the *snapshot* path — it
    /// counts one materialisation per shard, which is how the tests verify
    /// that the query push-down never comes through here.
    fn shard_sum(&self) -> Matrix<T> {
        let mut acc = Matrix::new(self.nrows, self.ncols);
        for shard in &self.shards {
            let level_sum = shard.lock().materialize();
            ewise_add_into(&mut acc, &level_sum, Plus).expect("shards share dimensions");
        }
        acc
    }

    /// Value of the represented matrix at `(row, col)` — answered by the
    /// single shard that owns the row.  The row partitioner routes the
    /// query: only that shard's staging is dispatched and only its worker
    /// does any work (no producer-side locks, no scan of other shards).
    pub fn get(&mut self, row: Index, col: Index) -> Option<T> {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::Get(row, col)) {
            ReaderReply::Value(v) => v,
            _ => unreachable!("worker answered Get with a non-Value reply"),
        }
    }

    /// Sum of all weight currently represented — staged, in flight, or
    /// applied.  Maintained producer-side, so this is exact at any moment
    /// and never blocks on the workers.
    pub fn total_weight_f64(&self) -> f64 {
        self.ingested_weight
    }
}

/// Join the pool on drop: closing the command channels unparks every
/// worker, which then exits its loop.
impl<T> Drop for ShardedHierMatrix<T> {
    fn drop(&mut self) {
        for w in self.workers.drain(..) {
            drop(w.tx);
            drop(w.recycled);
            // A worker that panicked already delivered its panic message;
            // propagating out of drop would abort instead.
            let _ = w.handle.join();
        }
    }
}

/// The harness-facing interface: identical contract to every other sink in
/// the workspace, so `make_sink`/`drive_sink` measure the parallel engine
/// with the same loop that measures the single-instance systems.
impl<T: ScalarType> StreamingSink<T> for ShardedHierMatrix<T> {
    fn sink_name(&self) -> &str {
        "sharded-hier-graphblas"
    }

    fn insert(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        self.update(row, col, val)
    }

    fn insert_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        self.update_batch(rows, cols, vals)
    }

    fn flush(&mut self) -> GrbResult<()> {
        ShardedHierMatrix::flush(self)
    }

    fn nvals(&self) -> usize {
        self.barrier_all().expect("worker pool alive");
        if self.staging.total() == 0 {
            // Shards own disjoint row sets: distinct cells simply add up.
            self.shards.iter().map(|s| s.lock().nvals_exact()).sum()
        } else {
            // Staged tuples may collide with stored cells; settle a snapshot.
            let mut acc = self.shard_sum();
            for s in 0..self.staging.shards() {
                let (r, c, v) = self.staging.shard_slices(s);
                acc.accum_tuples(r, c, v).expect("staged tuples validated");
            }
            acc.nvals()
        }
    }

    fn total_weight(&self) -> f64 {
        self.total_weight_f64()
    }
}

/// Merge per-shard sorted entry lists into one row-major stream.  Shards
/// own disjoint row sets, so all entries of a row sit contiguously in one
/// list: after picking the list with the smallest head row the whole run
/// of that row is emitted before re-scanning heads.
fn merge_disjoint_entries<T: ScalarType>(
    parts: Vec<Vec<(Index, Index, T)>>,
    f: &mut dyn FnMut(Index, Index, T),
) {
    let mut pos = vec![0usize; parts.len()];
    loop {
        let mut best: Option<(usize, Index)> = None;
        for (i, p) in parts.iter().enumerate() {
            if let Some(&(r, _, _)) = p.get(pos[i]) {
                if best.map_or(true, |(_, br)| r < br) {
                    best = Some((i, r));
                }
            }
        }
        let Some((i, row)) = best else { break };
        while let Some(&(r, c, v)) = parts[i].get(pos[i]) {
            if r != row {
                break;
            }
            f(r, c, v);
            pos[i] += 1;
        }
    }
}

/// The read path pushed down the drain-barrier protocol: row-targeted
/// queries go to the one owning worker; whole-matrix queries fan out and
/// every worker answers *in parallel* from its own shard's merged level
/// cursors.  The producer only sums counts, k-way merges disjoint-row
/// entry runs, or re-ranks partial top-k lists — it never receives (or
/// builds) a materialised matrix.
impl<T: ScalarType> MatrixReader<T> for ShardedHierMatrix<T> {
    fn reader_name(&self) -> &str {
        "sharded-hier-graphblas"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        // Shards own disjoint rows: distinct cells simply add up.
        self.query_all(|| ReaderQuery::Nnz)
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Count(n) => n,
                _ => unreachable!("worker answered Nnz with a non-Count reply"),
            })
            .sum()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        ShardedHierMatrix::get(self, row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::Row(row)) {
            ReaderReply::Row(r) => {
                out.clear();
                out.extend(r);
            }
            _ => unreachable!("worker answered Row with a non-Row reply"),
        }
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::RowDegree(row)) {
            ReaderReply::Count(n) => n,
            _ => unreachable!("worker answered RowDegree with a non-Count reply"),
        }
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        let shard = self.owner(row);
        match self.query_shard(shard, ReaderQuery::RowReduce(row)) {
            ReaderReply::Value(v) => v,
            _ => unreachable!("worker answered RowReduce with a non-Value reply"),
        }
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        // Every worker returns its local top-k; rows are disjoint, so the
        // global top-k is the top-k of the concatenated partials.
        let mut all: Vec<(Index, usize)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::TopK(k)) {
            match reply {
                ReaderReply::TopK(part) => all.extend(part),
                _ => unreachable!("worker answered TopK with a non-TopK reply"),
            }
        }
        rerank_top_k(all, k)
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        let parts: Vec<Vec<(Index, Index, T)>> = self
            .query_all(|| ReaderQuery::Entries)
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Entries(e) => e,
                _ => unreachable!("worker answered Entries with a non-Entries reply"),
            })
            .collect();
        merge_disjoint_entries(parts, f);
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        if lo >= hi {
            return;
        }
        // Only the workers whose row bands can overlap the range are
        // consulted: a RowRange-partitioned engine serves a narrow scan
        // from one worker while the rest keep ingesting.
        let targets = self.range_shards(lo, hi);
        let parts: Vec<Vec<(Index, Index, T)>> = self
            .query_shards(&targets, || ReaderQuery::RowRange(lo, hi))
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Entries(e) => e,
                _ => unreachable!("worker answered RowRange with a non-Entries reply"),
            })
            .collect();
        merge_disjoint_entries(parts, f);
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        // Shards own disjoint rows: per-shard histograms sum exactly.
        sum_histograms(self.query_all(|| ReaderQuery::Histogram).into_iter().map(
            |reply| match reply {
                ReaderReply::Hist(part) => part,
                _ => unreachable!("worker answered Histogram with a non-Hist reply"),
            },
        ))
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        // A column intersects every row partition, so the query fans out to
        // all workers (each answering O(k) off its shard's column twins);
        // the partials hold disjoint row sets, so one sort merges them.
        let mut all: Vec<(Index, T)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::Col(col)) {
            match reply {
                ReaderReply::Row(part) => all.extend(part),
                _ => unreachable!("worker answered Col with a non-Row reply"),
            }
        }
        all.sort_unstable_by_key(|&(r, _)| r);
        out.clear();
        out.extend(all);
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        // Disjoint rows: per-shard distinct-row counts of one column add.
        self.query_all(|| ReaderQuery::ColDegree(col))
            .into_iter()
            .map(|reply| match reply {
                ReaderReply::Count(n) => n,
                _ => unreachable!("worker answered ColDegree with a non-Count reply"),
            })
            .sum()
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        self.query_all(|| ReaderQuery::ColReduce(col))
            .into_iter()
            .filter_map(|reply| match reply {
                ReaderReply::Value(v) => v,
                _ => unreachable!("worker answered ColReduce with a non-Value reply"),
            })
            .reduce(|a, b| a.add(b))
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        // Per-shard in-degree top-k lists can NOT be re-ranked like the row
        // side: a column's degree splits across the row-partitioned shards.
        // Workers ship their complete column stats; sum, then rank.
        rank_col_degrees(self.ensure_in_degrees(), k)
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        col_degree_histogram(self.ensure_in_degrees())
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        if lo >= hi {
            return;
        }
        // Column bands cannot be bounded by the row partitioner: full
        // fan-out, then one (col, row) sort over the disjoint-row partials.
        let mut all: Vec<(Index, Index, T)> = Vec::new();
        for reply in self.query_all(|| ReaderQuery::ColRange(lo, hi)) {
            match reply {
                ReaderReply::Entries(part) => all.extend(part),
                _ => unreachable!("worker answered ColRange with a non-Entries reply"),
            }
        }
        all.sort_unstable_by_key(|&(r, c, _)| (c, r));
        for (r, c, v) in all {
            f(r, c, v);
        }
    }

    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        // Group the keys by owning shard, push one batched query per
        // involved worker, and scatter the per-shard answers back into
        // request order.
        let mut per_shard: ShardBatch<Index> = Vec::new();
        for (i, &row) in rows.iter().enumerate() {
            let owner = self.owner(row);
            match per_shard.iter_mut().find(|(s, _, _)| *s == owner) {
                Some((_, idxs, keys)) => {
                    idxs.push(i);
                    keys.push(row);
                }
                None => per_shard.push((owner, vec![i], vec![row])),
            }
        }
        let queries: Vec<(usize, ReaderQuery)> = per_shard
            .iter()
            .map(|(s, _, keys)| (*s, ReaderQuery::Rows(keys.clone())))
            .collect();
        let mut out: Vec<Vec<(Index, T)>> = vec![Vec::new(); rows.len()];
        for ((_, idxs, _), reply) in per_shard.iter().zip(self.query_each(queries)) {
            match reply {
                ReaderReply::Rows(parts) => {
                    for (&i, part) in idxs.iter().zip(parts) {
                        out[i] = part;
                    }
                }
                _ => unreachable!("worker answered Rows with a non-Rows reply"),
            }
        }
        out
    }

    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        let mut per_shard: ShardBatch<(Index, Index)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let owner = self.owner(key.0);
            match per_shard.iter_mut().find(|(s, _, _)| *s == owner) {
                Some((_, idxs, ks)) => {
                    idxs.push(i);
                    ks.push(key);
                }
                None => per_shard.push((owner, vec![i], vec![key])),
            }
        }
        let queries: Vec<(usize, ReaderQuery)> = per_shard
            .iter()
            .map(|(s, _, ks)| (*s, ReaderQuery::GetMany(ks.clone())))
            .collect();
        let mut out: Vec<Option<T>> = vec![None; keys.len()];
        for ((_, idxs, _), reply) in per_shard.iter().zip(self.query_each(queries)) {
            match reply {
                ReaderReply::Values(vals) => {
                    for (&i, v) in idxs.iter().zip(vals) {
                        out[i] = v;
                    }
                }
                _ => unreachable!("worker answered GetMany with a non-Values reply"),
            }
        }
        out
    }
}

/// One consistent point-in-time view of the whole sharded engine: a
/// [`MatrixSnapshot`] per shard, captured at each worker's drain barrier.
/// Shards own disjoint row sets, so cross-shard combination is pure
/// concatenation / summation / re-ranking — and because every per-shard
/// snapshot holds Arc'd level structures, the engine keeps ingesting (and
/// its workers keep draining) while this view answers long sweeps.
#[derive(Debug)]
pub struct ShardedSnapshot<T> {
    nrows: Index,
    ncols: Index,
    shards: Vec<MatrixSnapshot<T>>,
}

impl<T: ScalarType> ShardedSnapshot<T> {
    /// Number of captured shard snapshots.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Every captured level structure across all shards (for k-way merged
    /// sweeps).
    fn all_levels(&self) -> Vec<&Dcsr<T>> {
        self.shards.iter().flat_map(|s| s.level_dcsrs()).collect()
    }

    /// Column → in-degree over the whole capture: per-shard stats summed
    /// (a column's degree splits across the row-partitioned shards).
    fn summed_in_degrees(&mut self) -> std::collections::BTreeMap<Index, usize> {
        let parts: Vec<Vec<(Index, usize)>> = self
            .shards
            .iter_mut()
            .map(|s| {
                let bound = s.read_nnz();
                s.read_in_top_k(bound)
            })
            .collect();
        sum_col_degrees(parts)
    }
}

impl<T: ScalarType> MatrixReader<T> for ShardedSnapshot<T> {
    fn reader_name(&self) -> &str {
        "sharded-hier-graphblas-snapshot"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.read_nnz()).sum()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        hyperstream_graphblas::cursor::merged_point(&self.all_levels(), row, col, Plus)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        hyperstream_graphblas::cursor::merged_row_into(&self.all_levels(), row, Plus, out);
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        // Disjoint rows: exactly one shard can own the row.
        self.shards.iter_mut().map(|s| s.read_row_degree(row)).sum()
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.read_row_reduce(row))
            .reduce(|a, b| a.add(b))
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        let mut all: Vec<(Index, usize)> = Vec::new();
        for s in &mut self.shards {
            all.extend(s.read_top_k(k));
        }
        rerank_top_k(all, k)
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        hyperstream_graphblas::cursor::for_each_merged(&self.all_levels(), Plus, f);
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        hyperstream_graphblas::cursor::merged_row_range(&self.all_levels(), lo, hi, Plus, f);
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        sum_histograms(self.shards.iter_mut().map(|s| s.read_degree_histogram()))
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        // Every shard snapshot may hold a slice of the column (disjoint
        // rows): concatenate the per-shard partials and sort once.
        let mut all: Vec<(Index, T)> = Vec::new();
        let mut part = Vec::new();
        for s in &mut self.shards {
            s.read_col(col, &mut part);
            all.append(&mut part);
        }
        all.sort_unstable_by_key(|&(r, _)| r);
        out.clear();
        out.extend(all);
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        self.shards.iter_mut().map(|s| s.read_col_degree(col)).sum()
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.read_col_reduce(col))
            .reduce(|a, b| a.add(b))
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        rank_col_degrees(&self.summed_in_degrees(), k)
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        col_degree_histogram(&self.summed_in_degrees())
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        if lo >= hi {
            return;
        }
        let mut all: Vec<(Index, Index, T)> = Vec::new();
        for s in &mut self.shards {
            s.read_col_range(lo, hi, &mut |r, c, v| all.push((r, c, v)));
        }
        all.sort_unstable_by_key(|&(r, c, _)| (c, r));
        for (r, c, v) in all {
            f(r, c, v);
        }
    }

    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        let levels = self.all_levels();
        rows.iter()
            .map(|&row| {
                let mut out = Vec::new();
                hyperstream_graphblas::cursor::merged_row_into(&levels, row, Plus, &mut out);
                out
            })
            .collect()
    }

    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        let levels = self.all_levels();
        keys.iter()
            .map(|&(r, c)| hyperstream_graphblas::cursor::merged_point(&levels, r, c, Plus))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIM: u64 = 1 << 32;

    fn small_cfg() -> HierConfig {
        HierConfig::from_cuts(vec![16, 128, 1024]).unwrap()
    }

    fn tiny_engine(shards: usize, partitioner: ShardPartitioner) -> ShardedHierMatrix<u64> {
        ShardedHierMatrix::new(
            DIM,
            DIM,
            small_cfg(),
            ShardedConfig {
                shards,
                partitioner,
                chunk_tuples: 64,
                channel_depth: 2,
                round_tuples: 256,
            },
        )
        .unwrap()
    }

    fn stream(n: u64) -> Vec<(u64, u64, u64)> {
        (0..n)
            .map(|i| ((i * 7919) % 5000 * 797_003, (i * 104_729) % 3000, i % 4 + 1))
            .collect()
    }

    #[test]
    fn matches_flat_accumulation_for_both_partitioners() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(4, partitioner);
            let mut flat = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &stream(3000) {
                engine.update(r, c, v).unwrap();
                flat.accum_element(r, c, v).unwrap();
            }
            flat.wait();
            let snap = engine.materialize().unwrap();
            assert_eq!(
                snap.extract_tuples(),
                flat.extract_tuples(),
                "{partitioner:?}"
            );
            assert!(engine.rounds() > 1, "expected multiple ingest rounds");
            assert!(engine.chunks_sent() > engine.rounds());
        }
    }

    #[test]
    fn batch_and_single_update_agree() {
        let updates = stream(2000);
        let rows: Vec<u64> = updates.iter().map(|u| u.0).collect();
        let cols: Vec<u64> = updates.iter().map(|u| u.1).collect();
        let vals: Vec<u64> = updates.iter().map(|u| u.2).collect();

        let mut singles = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &updates {
            singles.update(r, c, v).unwrap();
        }
        let mut batched = tiny_engine(3, ShardPartitioner::RowHash);
        batched.update_batch(&rows, &cols, &vals).unwrap();
        assert_eq!(
            singles.materialize().unwrap().extract_tuples(),
            batched.materialize().unwrap().extract_tuples()
        );
    }

    #[test]
    fn mid_stream_query_and_flush_do_not_disturb() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        let updates = stream(1500);
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            engine.update(r, c, v).unwrap();
            if i == 700 {
                let _ = engine.materialize().unwrap();
                engine.flush().unwrap();
            }
        }
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
    }

    #[test]
    fn weight_exact_with_staged_tuples() {
        let mut engine = tiny_engine(4, ShardPartitioner::RowHash);
        engine.update(1, 1, 10).unwrap();
        engine.update(2, 2, 5).unwrap();
        // Nothing dispatched yet (chunk_tuples = 64), weight still exact.
        assert_eq!(engine.rounds(), 0);
        assert_eq!(engine.total_weight_f64(), 15.0);
        assert_eq!(engine.get(1, 1), Some(10));
        assert_eq!(StreamingSink::nvals(&engine), 2);
        engine.flush().unwrap();
        assert_eq!(engine.total_weight_f64(), 15.0);
        assert_eq!(engine.get(1, 1), Some(10));
        assert_eq!(engine.total_updates(), 2);
    }

    #[test]
    fn bounds_rejected_and_batches_atomic() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        assert!(engine.update(DIM, 0, 1).is_err());
        assert!(engine.update(0, DIM, 1).is_err());
        assert!(engine.update_batch(&[1, DIM], &[1, 1], &[1, 1]).is_err());
        assert!(engine.update_batch(&[1], &[1, 2], &[1]).is_err());
        assert_eq!(engine.total_weight_f64(), 0.0);
        assert_eq!(StreamingSink::nvals(&engine), 0);
    }

    #[test]
    fn single_shard_works() {
        let mut engine = tiny_engine(1, ShardPartitioner::RowRange);
        for &(r, c, v) in &stream(500) {
            engine.update(r, c, v).unwrap();
        }
        engine.flush().unwrap();
        assert_eq!(engine.num_shards(), 1);
        assert!(engine.total_updates() == 500);
        // Zero shards clamps to one.
        let clamped = ShardedHierMatrix::<u64>::with_shards(100, 100, 0).unwrap();
        assert_eq!(clamped.num_shards(), 1);
    }

    #[test]
    fn sink_interface_round_trip() {
        let mut sink: Box<dyn StreamingSink<u64>> =
            Box::new(tiny_engine(3, ShardPartitioner::RowHash));
        for &(r, c, v) in &stream(800) {
            sink.insert(r, c, v).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "sharded-hier-graphblas");
        let expected: u64 = stream(800).iter().map(|u| u.2).sum();
        assert_eq!(sink.total_weight(), expected as f64);
        assert!(sink.nvals() > 0);
    }

    #[test]
    fn partitioners_cover_all_shards() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut seen = [false; 8];
            for r in 0..10_000u64 {
                // Spread rows over the whole index space for RowRange.
                let row = r * (DIM / 10_000);
                seen[partitioner.shard(row, DIM, 8)] = true;
            }
            assert!(seen.iter().all(|&s| s), "{partitioner:?} starves shards");
        }
        // Rows at the very top of the space stay in range.
        assert!(ShardPartitioner::RowRange.shard(DIM - 1, DIM, 7) < 7);
        assert!(ShardPartitioner::RowHash.shard(DIM - 1, DIM, 7) < 7);
    }

    #[test]
    fn shard_stats_aggregate() {
        let mut engine = tiny_engine(4, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        engine.flush().unwrap();
        let agg = engine.aggregate_stats();
        assert_eq!(agg.updates, 2000);
        assert!(agg.total_cascades() > 0, "small cuts must cascade");
        assert!((0..engine.num_shards()).all(|i| engine.shard_stats(i).updates > 0));
    }

    #[test]
    fn workers_persist_across_rounds_and_flushes() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let ids_start = engine.worker_ids();
        assert_eq!(ids_start.len(), 3);
        // All workers are distinct threads, none of them this one.
        let me = std::thread::current().id();
        assert!(ids_start.iter().all(|&id| id != me));
        for i in 0..3 {
            for j in 0..3 {
                assert!(i == j || ids_start[i] != ids_start[j]);
            }
        }
        for round in 0..5 {
            for &(r, c, v) in &stream(700) {
                engine.update(r, c, v).unwrap();
            }
            engine.flush().unwrap();
            let _ = engine.materialize().unwrap();
            assert_eq!(
                engine.worker_ids(),
                ids_start,
                "worker set changed in round {round}"
            );
        }
        assert!(engine.rounds() >= 5);
    }

    #[test]
    fn reader_pushdown_matches_flat_reference() {
        for shards in [1usize, 3] {
            let mut engine = tiny_engine(shards, ShardPartitioner::RowHash);
            let mut flat = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &stream(2500) {
                engine.update(r, c, v).unwrap();
                flat.accum_element(r, c, v).unwrap();
            }
            flat.wait();
            // Mid-ingest (staged + in-flight tuples): every reader answer
            // must equal the flat reference.
            assert_eq!(engine.read_nnz(), flat.nvals(), "{shards} shards");
            let d = flat.dcsr();
            let probe_row = d.row_ids()[0];
            let (cols, vals) = d.row(probe_row).unwrap();
            let expect_row: Vec<(u64, u64)> =
                cols.iter().copied().zip(vals.iter().copied()).collect();
            let mut got_row = Vec::new();
            engine.read_row(probe_row, &mut got_row);
            assert_eq!(got_row, expect_row);
            assert_eq!(engine.read_row_degree(probe_row), expect_row.len());
            assert_eq!(
                engine.read_row_reduce(probe_row),
                Some(expect_row.iter().map(|&(_, v)| v).sum())
            );
            assert_eq!(
                engine.read_get(probe_row, expect_row[0].0),
                Some(expect_row[0].1)
            );
            assert_eq!(engine.read_get(DIM - 1, DIM - 1), None);
            // Entries stream row-major sorted and identical to flat.
            let mut got = Vec::new();
            engine.read_entries(&mut |r, c, v| got.push((r, c, v)));
            let expect: Vec<_> = flat.iter_settled().collect();
            assert_eq!(got, expect);
            // Top-k equals the reference ranking (degree desc, row asc).
            let mut ranking: Vec<(u64, usize)> = (0..d.nrows_nonempty())
                .map(|k| (d.row_ids()[k], d.row_slot(k).0.len()))
                .collect();
            ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            ranking.truncate(7);
            assert_eq!(engine.read_top_k(7), ranking);
        }
    }

    #[test]
    fn reader_pushdown_never_materializes() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        let before = engine.pushdown_queries();
        let _ = engine.read_nnz();
        let _ = engine.read_top_k(5);
        let mut row = Vec::new();
        engine.read_row(797_003, &mut row);
        let _ = engine.read_get(797_003, 1);
        let _ = engine.read_row_degree(797_003);
        let mut n = 0usize;
        engine.read_entries(&mut |_, _, _| n += 1);
        assert!(n > 0);
        assert!(engine.pushdown_queries() >= before + 6);
        // The whole query battery ran through the worker pool's cursors:
        // no shard ever materialised `Σ levels`.
        assert_eq!(engine.aggregate_stats().materializations, 0);
        // The snapshot path, by contrast, is counted — proving the counter
        // would have caught a materialising query path.
        let _ = engine.materialize().unwrap();
        assert_eq!(engine.aggregate_stats().materializations, 3);
    }

    /// A column-dense stream: 60 columns, ~42 distinct rows each, so
    /// in-degree rankings are non-degenerate.
    fn col_stream(n: u64) -> Vec<(u64, u64, u64)> {
        (0..n)
            .map(|i| ((i * 7919) % 5000 * 797_003, (i * 104_729) % 60, i % 4 + 1))
            .collect()
    }

    #[test]
    fn column_pushdown_matches_transposed_flat_reference() {
        for partitioner in [ShardPartitioner::RowHash, ShardPartitioner::RowRange] {
            let mut engine = tiny_engine(3, partitioner);
            let mut transposed = Matrix::<u64>::new(DIM, DIM);
            for &(r, c, v) in &col_stream(2500) {
                engine.update(r, c, v).unwrap();
                transposed.accum_element(c, r, v).unwrap();
            }
            transposed.wait();
            // Mid-ingest: staged and in-flight tuples must be visible.
            let probe_col = 7u64;
            let mut got = Vec::new();
            engine.read_col(probe_col, &mut got);
            let mut expect = Vec::new();
            transposed.read_row(probe_col, &mut expect);
            assert!(!expect.is_empty());
            assert_eq!(got, expect, "{partitioner:?}");
            assert_eq!(
                engine.read_col_degree(probe_col),
                transposed.read_row_degree(probe_col),
                "{partitioner:?}"
            );
            assert_eq!(
                engine.read_col_reduce(probe_col),
                transposed.read_row_reduce(probe_col)
            );
            assert_eq!(engine.read_col_degree(DIM - 1), 0);
            assert_eq!(engine.read_col_reduce(DIM - 1), None);
            // In-degree ranking: per-shard partial degrees must sum before
            // ranking — the transposed flat matrix is the oracle.
            assert_eq!(engine.read_in_top_k(7), transposed.read_top_k(7));
            assert_eq!(
                engine.read_in_degree_histogram(),
                transposed.read_degree_histogram()
            );
            // Column band: (col, row)-sorted and identical to a transposed
            // row band with coordinates swapped back.
            let mut got_band = Vec::new();
            engine.read_col_range(0, 30, &mut |r, c, v| got_band.push((r, c, v)));
            let mut expect_band = Vec::new();
            transposed.read_row_range(0, 30, &mut |c, r, v| expect_band.push((r, c, v)));
            assert!(!expect_band.is_empty());
            assert_eq!(got_band, expect_band, "{partitioner:?}");
        }
    }

    #[test]
    fn column_battery_never_materializes() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        for &(r, c, v) in &col_stream(2000) {
            engine.update(r, c, v).unwrap();
        }
        let before = engine.pushdown_queries();
        let mut col = Vec::new();
        engine.read_col(7, &mut col);
        assert!(!col.is_empty());
        let _ = engine.read_col_degree(7);
        let _ = engine.read_col_reduce(7);
        let _ = engine.read_in_top_k(5);
        let _ = engine.read_in_degree_histogram();
        let mut n = 0usize;
        engine.read_col_range(0, 30, &mut |_, _, _| n += 1);
        assert!(n > 0);
        let _ = engine.read_rows(&[0, 797_003]);
        let _ = engine.read_get_many(&[(797_003, 7)]);
        // 7 push-down rounds, not 8: the histogram right after top-k reuses
        // the producer-side summed in-degree cache instead of re-shipping
        // every shard's column stats.
        assert!(engine.pushdown_queries() >= before + 7);
        let warm = engine.pushdown_queries();
        let _ = engine.read_in_top_k(5);
        assert_eq!(engine.pushdown_queries(), warm, "cache hit expected");
        engine.update(1, 1, 1).unwrap();
        let _ = engine.read_in_top_k(5);
        assert!(
            engine.pushdown_queries() > warm,
            "ingest must invalidate the in-degree cache"
        );
        // The whole column battery ran off worker-side twins and cursors:
        // no shard ever materialised `Σ levels`.
        assert_eq!(engine.aggregate_stats().materializations, 0);
    }

    #[test]
    fn batched_pushdown_matches_singles() {
        // RowRange spreads consecutive probe rows across different owners,
        // exercising the group-by-shard dispatch and request-order
        // reassembly.
        let mut engine = tiny_engine(4, ShardPartitioner::RowRange);
        let updates = col_stream(2000);
        for &(r, c, v) in &updates {
            engine.update(r, c, v).unwrap();
        }
        let mut probe_rows: Vec<u64> = updates.iter().take(9).map(|u| u.0).collect();
        probe_rows.push(DIM - 1); // absent row
        let batched = engine.read_rows(&probe_rows);
        assert_eq!(batched.len(), probe_rows.len());
        for (&row, got) in probe_rows.iter().zip(&batched) {
            let mut single = Vec::new();
            engine.read_row(row, &mut single);
            assert_eq!(*got, single, "row {row}");
        }
        let mut keys: Vec<(u64, u64)> = updates.iter().take(9).map(|u| (u.0, u.1)).collect();
        keys.push((DIM - 1, DIM - 1)); // absent cell
        let values = engine.read_get_many(&keys);
        assert_eq!(values.len(), keys.len());
        for (&(r, c), got) in keys.iter().zip(&values) {
            assert_eq!(*got, engine.read_get(r, c), "key ({r}, {c})");
        }
        // One batched call is a single push-down round, fanning out to at
        // most one query per owning shard.
        let before = engine.pushdown_queries();
        let _ = engine.read_rows(&probe_rows);
        assert_eq!(engine.pushdown_queries(), before + 1);
        assert!(engine.last_query_fanout() <= 4);
    }

    #[test]
    fn snapshot_column_answers_survive_continued_ingest() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let updates = col_stream(2400);
        let (first, second) = updates.split_at(1200);
        let mut transposed = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in first {
            engine.update(r, c, v).unwrap();
            transposed.accum_element(c, r, v).unwrap();
        }
        transposed.wait();
        let mut snap = engine.snapshot();
        // Keep ingesting after the capture: the snapshot must stay pinned
        // to the barrier state.
        for &(r, c, v) in second {
            engine.update(r, c, v).unwrap();
        }
        assert_eq!(snap.read_in_top_k(5), transposed.read_top_k(5));
        assert_eq!(
            snap.read_in_degree_histogram(),
            transposed.read_degree_histogram()
        );
        let mut got = Vec::new();
        snap.read_col(7, &mut got);
        let mut expect = Vec::new();
        transposed.read_row(7, &mut expect);
        assert_eq!(got, expect);
        assert_eq!(snap.read_col_degree(7), transposed.read_row_degree(7));
        let mut got_band = Vec::new();
        snap.read_col_range(0, 30, &mut |r, c, v| got_band.push((r, c, v)));
        let mut expect_band = Vec::new();
        transposed.read_row_range(0, 30, &mut |c, r, v| expect_band.push((r, c, v)));
        assert_eq!(got_band, expect_band);
        // Batched snapshot reads agree with their single-key counterparts.
        let rows: Vec<u64> = first.iter().take(5).map(|u| u.0).collect();
        let singles: Vec<Vec<(u64, u64)>> = rows
            .iter()
            .map(|&r| {
                let mut out = Vec::new();
                snap.read_row(r, &mut out);
                out
            })
            .collect();
        assert_eq!(snap.read_rows(&rows), singles);
        let keys: Vec<(u64, u64)> = first.iter().take(5).map(|u| (u.0, u.1)).collect();
        let point_singles: Vec<Option<u64>> =
            keys.iter().map(|&(r, c)| snap.read_get(r, c)).collect();
        assert_eq!(snap.read_get_many(&keys), point_singles);
        // The engine itself has since moved past the capture.
        assert!(engine.read_nnz() > snap.read_nnz());
    }

    #[test]
    fn snapshot_answers_capture_while_ingest_continues() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let updates = stream(2000);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        let mut snap = engine.snapshot();
        assert_eq!(snap.num_shards(), 3);
        // The engine keeps ingesting *after* the capture...
        for &(r, c, v) in &stream(1000) {
            engine.update(r.wrapping_add(1), c, v).unwrap();
        }
        // ...while the snapshot still answers exactly the captured state.
        assert_eq!(snap.read_nnz(), flat.nvals());
        let probe = flat.dcsr().row_ids()[0];
        let (cols, vals) = flat.dcsr().row(probe).unwrap();
        assert_eq!(snap.read_row_degree(probe), cols.len());
        assert_eq!(snap.read_row_reduce(probe), Some(vals.iter().sum::<u64>()));
        assert_eq!(snap.read_get(probe, cols[0]), Some(vals[0]));
        let mut got = Vec::new();
        snap.read_entries(&mut |r, c, v| got.push((r, c, v)));
        let expect: Vec<_> = flat.iter_settled().collect();
        assert_eq!(got, expect);
        // Top-k re-ranks the per-shard index answers.
        let mut ranking: Vec<(u64, usize)> = (0..flat.dcsr().nrows_nonempty())
            .map(|k| (flat.dcsr().row_ids()[k], flat.dcsr().row_slot(k).0.len()))
            .collect();
        ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranking.truncate(5);
        assert_eq!(snap.read_top_k(5), ranking);
        // The capture never materialised any shard.
        assert_eq!(engine.aggregate_stats().materializations, 0);
    }

    #[test]
    fn row_range_dispatches_only_overlapping_workers() {
        let mut range_engine = tiny_engine(4, ShardPartitioner::RowRange);
        let mut hash_engine = tiny_engine(4, ShardPartitioner::RowHash);
        let updates = stream(2000);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &updates {
            range_engine.update(r, c, v).unwrap();
            hash_engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        flat.wait();
        // A band well inside the first shard's range (rows < DIM / 4).
        let (lo, hi) = (0u64, 1u64 << 26);
        let expect: Vec<(u64, u64, u64)> = flat
            .iter_settled()
            .filter(|&(r, _, _)| r >= lo && r < hi)
            .collect();
        let mut got = Vec::new();
        range_engine.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got, expect);
        assert_eq!(
            range_engine.last_query_fanout(),
            1,
            "narrow range should visit one RowRange worker"
        );
        // The hash partitioner cannot bound the scan: full fan-out.
        got.clear();
        hash_engine.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got, expect);
        assert_eq!(hash_engine.last_query_fanout(), 4);
        // Wide ranges visit every band worker and agree too.
        got.clear();
        range_engine.read_row_range(0, DIM, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got.len(), flat.nvals());
        assert_eq!(range_engine.last_query_fanout(), 4);
        // Empty range is free.
        got.clear();
        range_engine.read_row_range(5, 5, &mut |r, c, v| got.push((r, c, v)));
        assert!(got.is_empty());
    }

    #[test]
    fn histogram_pushdown_sums_disjoint_shards() {
        let mut engine = tiny_engine(3, ShardPartitioner::RowHash);
        let mut flat = Matrix::<u64>::new(DIM, DIM);
        for &(r, c, v) in &stream(1500) {
            engine.update(r, c, v).unwrap();
            flat.accum_element(r, c, v).unwrap();
        }
        assert_eq!(engine.read_degree_histogram(), flat.read_degree_histogram());
        assert_eq!(engine.aggregate_stats().materializations, 0);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let mut engine = tiny_engine(2, ShardPartitioner::RowHash);
        for &(r, c, v) in &stream(300) {
            engine.update(r, c, v).unwrap();
        }
        // Dropping with staged + in-flight tuples must not hang or panic.
        drop(engine);
    }
}
