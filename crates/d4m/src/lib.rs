//! # hyperstream-d4m
//!
//! D4M-style associative arrays: sparse matrices whose rows and columns are
//! identified by arbitrary *strings* rather than integers.
//!
//! The paper positions associative arrays as the flexible precursor to
//! integer-keyed hypersparse GraphBLAS matrices: "D4M associative arrays
//! provide maximum flexibility … for IP traffic matrices, the row and column
//! labels can be constrained to integers allowing additional performance to
//! be achieved" (§I).  This crate provides
//!
//! * [`Assoc`] — an associative array over `f64` values with string keys,
//!   supporting element-wise addition (the D4M `+`), sub-array extraction,
//!   transpose and reductions; and
//! * [`HierAssoc`] — the *hierarchical* associative array of the earlier
//!   Kepner et al. HPEC 2019 paper ("Streaming 1.9 billion hypersparse
//!   network updates per second with D4M"), which is the "Hierarchical D4M"
//!   baseline curve of Fig. 2.
//!
//! Both are deliberately faithful to the D4M data model (string keys, sorted
//! key maps) so the benchmark comparison against integer-keyed GraphBLAS
//! matrices reflects the same representation overheads the paper describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod hier_assoc;

pub use assoc::Assoc;
pub use hier_assoc::{HierAssoc, HierAssocConfig};
