//! The D4M associative array.

use hyperstream_graphblas::ops::binary::Plus;
use hyperstream_graphblas::ops::ewise_add::ewise_add;
use hyperstream_graphblas::ops::monoid::PlusMonoid;
use hyperstream_graphblas::ops::reduce::{reduce_cols, reduce_rows};
use hyperstream_graphblas::Matrix;
use std::collections::BTreeMap;

/// Internal dimension of the backing sparse matrix.  Key indices are
/// allocated densely, so this only needs to exceed the number of *distinct*
/// keys ever seen by one array.
const BACKING_DIM: u64 = 1 << 40;

/// An associative array: a sparse matrix of `f64` values whose rows and
/// columns are identified by strings.
///
/// The representation mirrors D4M: two sorted key maps (row keys and column
/// keys, each mapping a string to a dense integer index) and an underlying
/// sparse matrix holding the values.  The cost of maintaining the sorted
/// string maps on every update is precisely the overhead the paper removes
/// by constraining traffic-matrix labels to integers.
#[derive(Debug, Clone)]
pub struct Assoc {
    row_keys: BTreeMap<String, u64>,
    col_keys: BTreeMap<String, u64>,
    row_names: Vec<String>,
    col_names: Vec<String>,
    values: Matrix<f64>,
}

impl Default for Assoc {
    fn default() -> Self {
        Self::new()
    }
}

impl Assoc {
    /// An empty associative array.
    pub fn new() -> Self {
        Self {
            row_keys: BTreeMap::new(),
            col_keys: BTreeMap::new(),
            row_names: Vec::new(),
            col_names: Vec::new(),
            values: Matrix::new(BACKING_DIM, BACKING_DIM),
        }
    }

    /// Build from `(row_key, col_key, value)` triples, accumulating
    /// duplicates with `+` (the D4M constructor semantics).
    pub fn from_triples<R, C>(triples: &[(R, C, f64)]) -> Self
    where
        R: AsRef<str>,
        C: AsRef<str>,
    {
        let mut a = Self::new();
        for (r, c, v) in triples {
            a.accum(r.as_ref(), c.as_ref(), *v);
        }
        a
    }

    fn row_index(&mut self, key: &str) -> u64 {
        if let Some(&i) = self.row_keys.get(key) {
            return i;
        }
        let i = self.row_names.len() as u64;
        self.row_keys.insert(key.to_string(), i);
        self.row_names.push(key.to_string());
        i
    }

    fn col_index(&mut self, key: &str) -> u64 {
        if let Some(&i) = self.col_keys.get(key) {
            return i;
        }
        let i = self.col_names.len() as u64;
        self.col_keys.insert(key.to_string(), i);
        self.col_names.push(key.to_string());
        i
    }

    /// Number of stored entries.
    ///
    /// When pending (unsettled) updates exist this settles a clone, which is
    /// expensive — on hot paths prefer [`Assoc::nnz_bound`] and settle
    /// explicitly with [`Assoc::settle`] before reading the exact count.
    pub fn nnz(&self) -> usize {
        self.values.nvals()
    }

    /// Upper bound on [`Assoc::nnz`] computable in `O(1)`: counts pending
    /// updates before duplicate collapse.
    pub fn nnz_bound(&self) -> usize {
        self.values.nvals_settled() + self.values.npending()
    }

    /// Fold all pending updates into the compressed structure, making
    /// [`Assoc::nnz`] exact and cheap.
    pub fn settle(&mut self) {
        self.values.wait();
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// Number of distinct row keys seen.
    pub fn nrows(&self) -> usize {
        self.row_names.len()
    }

    /// Number of distinct column keys seen.
    pub fn ncols(&self) -> usize {
        self.col_names.len()
    }

    /// The sorted row keys.
    pub fn row_keys(&self) -> Vec<&str> {
        self.row_keys.keys().map(|s| s.as_str()).collect()
    }

    /// The dense backing-matrix row index of `key`, if seen.
    pub fn row_index_of(&self, key: &str) -> Option<u64> {
        self.row_keys.get(key).copied()
    }

    /// The dense backing-matrix column index of `key`, if seen.
    pub fn col_index_of(&self, key: &str) -> Option<u64> {
        self.col_keys.get(key).copied()
    }

    /// The row key behind dense index `idx` (insertion order).
    pub fn row_name(&self, idx: u64) -> Option<&str> {
        self.row_names.get(idx as usize).map(|s| s.as_str())
    }

    /// The column key behind dense index `idx` (insertion order).
    pub fn col_name(&self, idx: u64) -> Option<&str> {
        self.col_names.get(idx as usize).map(|s| s.as_str())
    }

    /// The sorted column keys.
    pub fn col_keys(&self) -> Vec<&str> {
        self.col_keys.keys().map(|s| s.as_str()).collect()
    }

    /// Accumulate `value` into entry `(row_key, col_key)` under `+`
    /// (the D4M streaming-update operation).
    pub fn accum(&mut self, row_key: &str, col_key: &str, value: f64) {
        let r = self.row_index(row_key);
        let c = self.col_index(col_key);
        self.values
            .accum_element(r, c, value)
            .expect("indices are allocated densely within the backing dimension");
    }

    /// Overwrite entry `(row_key, col_key)`.
    pub fn set(&mut self, row_key: &str, col_key: &str, value: f64) {
        let r = self.row_index(row_key);
        let c = self.col_index(col_key);
        self.values
            .set_element(r, c, value)
            .expect("indices are allocated densely within the backing dimension");
        self.values
            .wait_with(hyperstream_graphblas::ops::binary::Second);
    }

    /// Value stored at `(row_key, col_key)`, if any.
    pub fn get(&self, row_key: &str, col_key: &str) -> Option<f64> {
        let r = *self.row_keys.get(row_key)?;
        let c = *self.col_keys.get(col_key)?;
        self.values.get(r, c)
    }

    /// All stored triples, sorted by row key then column key.
    pub fn triples(&self) -> Vec<(String, String, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        let settled = self.values.to_settled();
        for (r, c, v) in settled.iter_settled() {
            out.push((
                self.row_names[r as usize].clone(),
                self.col_names[c as usize].clone(),
                v,
            ));
        }
        out.sort_by(|a, b| (a.0.as_str(), a.1.as_str()).cmp(&(b.0.as_str(), b.1.as_str())));
        out
    }

    /// Element-wise addition (the D4M `A + B`): union of keys, values added.
    pub fn add(&self, other: &Assoc) -> Assoc {
        let mut out = self.clone();
        for (r, c, v) in other.triples() {
            out.accum(&r, &c, v);
        }
        out
    }

    /// Extract the sub-array whose row keys start with `row_prefix`
    /// (the D4M `A('prefix*', :)` idiom used to pull out a subnet).
    pub fn rows_with_prefix(&self, row_prefix: &str) -> Assoc {
        let mut out = Assoc::new();
        for (r, c, v) in self.triples() {
            if r.starts_with(row_prefix) {
                out.accum(&r, &c, v);
            }
        }
        out
    }

    /// Transpose: swap row and column keys.
    pub fn transpose(&self) -> Assoc {
        let mut out = Assoc::new();
        for (r, c, v) in self.triples() {
            out.accum(&c, &r, v);
        }
        out
    }

    /// Sum of values per row key.
    pub fn sum_rows(&self) -> Vec<(String, f64)> {
        let sums = reduce_rows(&self.values, PlusMonoid);
        sums.iter()
            .map(|(i, v)| (self.row_names[i as usize].clone(), v))
            .collect()
    }

    /// Sum of values per column key.
    pub fn sum_cols(&self) -> Vec<(String, f64)> {
        let sums = reduce_cols(&self.values, PlusMonoid);
        sums.iter()
            .map(|(j, v)| (self.col_names[j as usize].clone(), v))
            .collect()
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        hyperstream_graphblas::ops::reduce::reduce_scalar(&self.values, PlusMonoid)
    }

    /// The underlying integer-indexed sparse matrix (row/column indices are
    /// the dense key indices in insertion order).
    pub fn matrix(&self) -> &Matrix<f64> {
        &self.values
    }

    /// Merge another array into this one *reusing this array's key maps*
    /// (the in-place `A += B` used by the hierarchical cascade).
    pub fn merge_in(&mut self, other: &Assoc) {
        for (r, c, v) in other.triples() {
            self.accum(&r, &c, v);
        }
    }

    /// Remove all entries and keys.
    pub fn clear(&mut self) {
        self.row_keys.clear();
        self.col_keys.clear();
        self.row_names.clear();
        self.col_names.clear();
        self.values = Matrix::new(BACKING_DIM, BACKING_DIM);
    }

    /// Internal helper for ewise union via the GraphBLAS kernel when both
    /// arrays share identical key maps (fast path used by tests).
    #[doc(hidden)]
    pub fn add_same_keyspace(&self, other: &Assoc) -> Option<Matrix<f64>> {
        if self.row_keys == other.row_keys && self.col_keys == other.col_keys {
            Some(ewise_add(&self.values, &other.values, Plus))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_and_get() {
        let mut a = Assoc::new();
        a.accum("10.0.0.1", "192.168.1.5", 1.0);
        a.accum("10.0.0.1", "192.168.1.5", 2.0);
        a.accum("10.0.0.2", "192.168.1.9", 5.0);
        assert_eq!(a.get("10.0.0.1", "192.168.1.5"), Some(3.0));
        assert_eq!(a.get("10.0.0.2", "192.168.1.9"), Some(5.0));
        assert_eq!(a.get("10.0.0.3", "192.168.1.9"), None);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 2);
    }

    #[test]
    fn set_overwrites() {
        let mut a = Assoc::new();
        a.set("r", "c", 1.0);
        a.set("r", "c", 9.0);
        assert_eq!(a.get("r", "c"), Some(9.0));
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn from_triples_and_triples_round_trip() {
        let a = Assoc::from_triples(&[("b", "x", 1.0), ("a", "y", 2.0), ("b", "x", 3.0)]);
        let t = a.triples();
        assert_eq!(
            t,
            vec![
                ("a".to_string(), "y".to_string(), 2.0),
                ("b".to_string(), "x".to_string(), 4.0)
            ]
        );
    }

    #[test]
    fn keys_are_sorted() {
        let a = Assoc::from_triples(&[("zebra", "2", 1.0), ("ant", "1", 1.0), ("mole", "3", 1.0)]);
        assert_eq!(a.row_keys(), vec!["ant", "mole", "zebra"]);
        assert_eq!(a.col_keys(), vec!["1", "2", "3"]);
    }

    #[test]
    fn add_is_union_with_sum() {
        let a = Assoc::from_triples(&[("r1", "c1", 1.0), ("r2", "c2", 2.0)]);
        let b = Assoc::from_triples(&[("r2", "c2", 10.0), ("r3", "c3", 3.0)]);
        let c = a.add(&b);
        assert_eq!(c.get("r1", "c1"), Some(1.0));
        assert_eq!(c.get("r2", "c2"), Some(12.0));
        assert_eq!(c.get("r3", "c3"), Some(3.0));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn prefix_extraction() {
        let a = Assoc::from_triples(&[
            ("10.0.0.1", "x", 1.0),
            ("10.0.0.2", "y", 2.0),
            ("192.168.0.1", "z", 3.0),
        ]);
        let sub = a.rows_with_prefix("10.0.");
        assert_eq!(sub.nnz(), 2);
        assert!(sub.get("192.168.0.1", "z").is_none());
    }

    #[test]
    fn transpose_swaps_keys() {
        let a = Assoc::from_triples(&[("r", "c", 7.0)]);
        let t = a.transpose();
        assert_eq!(t.get("c", "r"), Some(7.0));
        assert_eq!(t.get("r", "c"), None);
    }

    #[test]
    fn reductions() {
        let a = Assoc::from_triples(&[
            ("src1", "dst1", 2.0),
            ("src1", "dst2", 3.0),
            ("src2", "dst1", 4.0),
        ]);
        let rows: BTreeMap<String, f64> = a.sum_rows().into_iter().collect();
        assert_eq!(rows["src1"], 5.0);
        assert_eq!(rows["src2"], 4.0);
        let cols: BTreeMap<String, f64> = a.sum_cols().into_iter().collect();
        assert_eq!(cols["dst1"], 6.0);
        assert_eq!(a.total(), 9.0);
    }

    #[test]
    fn merge_in_accumulates() {
        let mut a = Assoc::from_triples(&[("r", "c", 1.0)]);
        let b = Assoc::from_triples(&[("r", "c", 2.0), ("s", "d", 3.0)]);
        a.merge_in(&b);
        assert_eq!(a.get("r", "c"), Some(3.0));
        assert_eq!(a.get("s", "d"), Some(3.0));
    }

    #[test]
    fn clear_and_empty() {
        let mut a = Assoc::from_triples(&[("r", "c", 1.0)]);
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.nrows(), 0);
    }

    #[test]
    fn same_keyspace_fast_path() {
        let a = Assoc::from_triples(&[("r", "c", 1.0)]);
        let b = Assoc::from_triples(&[("r", "c", 2.0)]);
        let m = a.add_same_keyspace(&b).unwrap();
        assert_eq!(m.nvals(), 1);
        let c = Assoc::from_triples(&[("other", "c", 2.0)]);
        assert!(a.add_same_keyspace(&c).is_none());
    }
}
