//! Hierarchical associative arrays — the "Hierarchical D4M" baseline.
//!
//! This is the data structure of Kepner et al., HPEC 2019 ("Streaming 1.9
//! billion hypersparse network updates per second with D4M"): the same
//! N-level cut-and-cascade design as the hierarchical GraphBLAS matrix, but
//! with D4M associative arrays (string keys) at every level.  The Fig. 2
//! comparison between the "Hierarchical D4M" and "Hierarchical GraphBLAS"
//! curves isolates the cost of string keys versus integer keys, so this
//! implementation intentionally keeps the string machinery on the update
//! path.

use crate::assoc::Assoc;
use hyperstream_graphblas::{GrbError, GrbResult, Index, ScalarType, StreamingSink};

/// Cut schedule for a hierarchical associative array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierAssocConfig {
    cuts: Vec<u64>,
}

impl HierAssocConfig {
    /// Build from explicit cuts (strictly increasing, non-zero); the
    /// hierarchy has `cuts.len() + 1` levels.
    pub fn from_cuts(cuts: Vec<u64>) -> GrbResult<Self> {
        if cuts.is_empty() {
            return Err(GrbError::EmptyObject("cut list"));
        }
        if cuts.contains(&0) {
            return Err(GrbError::InvalidValue("cuts must be non-zero".into()));
        }
        for w in cuts.windows(2) {
            if w[0] >= w[1] {
                return Err(GrbError::InvalidValue(
                    "cuts must be strictly increasing".into(),
                ));
            }
        }
        Ok(Self { cuts })
    }

    /// The default schedule used by the D4M baseline benchmarks.
    pub fn default_schedule() -> Self {
        Self::from_cuts(vec![1 << 14, 1 << 17, 1 << 20]).expect("static schedule is valid")
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Cut for level `i` (none for the top level).
    pub fn cut(&self, level: usize) -> Option<u64> {
        self.cuts.get(level).copied()
    }
}

impl Default for HierAssocConfig {
    fn default() -> Self {
        Self::default_schedule()
    }
}

/// An N-level hierarchical associative array accumulating under `+`.
#[derive(Debug, Clone)]
pub struct HierAssoc {
    config: HierAssocConfig,
    levels: Vec<Assoc>,
    updates: u64,
    cascades: Vec<u64>,
}

impl HierAssoc {
    /// Create an empty hierarchical associative array.
    pub fn new(config: HierAssocConfig) -> Self {
        let n = config.levels();
        Self {
            config,
            levels: (0..n).map(|_| Assoc::new()).collect(),
            updates: 0,
            cascades: vec![0; n],
        }
    }

    /// Create with the default cut schedule.
    pub fn with_default_config() -> Self {
        Self::new(HierAssocConfig::default())
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Total updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Cascades out of each level.
    pub fn cascades(&self) -> &[u64] {
        &self.cascades
    }

    /// Apply one streaming update `A(row_key, col_key) += value`.
    pub fn update(&mut self, row_key: &str, col_key: &str, value: f64) {
        self.levels[0].accum(row_key, col_key, value);
        self.updates += 1;
        self.maybe_cascade();
    }

    /// Apply a batch of updates.
    pub fn update_batch(&mut self, triples: &[(String, String, f64)]) {
        for (r, c, v) in triples {
            self.levels[0].accum(r, c, *v);
        }
        self.updates += triples.len() as u64;
        self.maybe_cascade();
    }

    /// Value of the represented array at `(row_key, col_key)`.
    pub fn get(&self, row_key: &str, col_key: &str) -> Option<f64> {
        let mut acc: Option<f64> = None;
        for level in &self.levels {
            if let Some(v) = level.get(row_key, col_key) {
                acc = Some(acc.unwrap_or(0.0) + v);
            }
        }
        acc
    }

    /// Materialise the full array `A = Σ_i A_i`.
    pub fn materialize(&self) -> Assoc {
        let mut acc = Assoc::new();
        for level in &self.levels {
            acc.merge_in(level);
        }
        acc
    }

    /// Sum of all stored values (linear across levels, so no
    /// materialisation is needed).
    pub fn total(&self) -> f64 {
        self.levels.iter().map(|l| l.total()).sum()
    }

    /// Per-level entry counts.
    pub fn entries_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.nnz()).collect()
    }

    fn maybe_cascade(&mut self) {
        let mut i = 0;
        while i + 1 < self.levels.len() {
            let cut = self.config.cut(i).expect("non-top level has a cut");
            // Cheap O(1) fill proxy first: counting the exact nnz of an
            // unsettled level clones and settles it, which made every update
            // O(level size).  The proxy over-counts duplicates, so when it
            // trips we settle (cheap — the level is cache resident by
            // construction) and let the exact count decide, exactly like
            // `HierMatrix::maybe_cascade`.  Decisions are unchanged because
            // bound >= exact.
            if (self.levels[i].nnz_bound() as u64) <= cut {
                break;
            }
            self.levels[i].settle();
            if (self.levels[i].nnz() as u64) <= cut {
                break;
            }
            let lower = std::mem::take(&mut self.levels[i]);
            self.levels[i + 1].merge_in(&lower);
            self.cascades[i] += 1;
            i += 1;
        }
    }
}

impl Default for HierAssoc {
    fn default() -> Self {
        Self::with_default_config()
    }
}

/// The D4M insert path driven by integer indices: keys are the decimal
/// strings of `row` / `col`, exactly how the Fig. 2 harness has always fed
/// this baseline.  Keeping the string formatting *inside* the sink keeps the
/// string-machinery cost on the measured path, which is the point of the
/// "Hierarchical D4M vs Hierarchical GraphBLAS" comparison.  One generic
/// impl covers every weight type: the array stores `f64` natively, so
/// weights go through [`ScalarType::to_f64`].
impl<V: ScalarType> StreamingSink<V> for HierAssoc {
    fn sink_name(&self) -> &str {
        "hier-d4m"
    }

    fn insert(&mut self, row: Index, col: Index, val: V) -> GrbResult<()> {
        self.update(&row.to_string(), &col.to_string(), val.to_f64());
        Ok(())
    }

    fn flush(&mut self) -> GrbResult<()> {
        // Cascades run eagerly on update; nothing is deferred.
        Ok(())
    }

    fn nvals(&self) -> usize {
        self.materialize().nnz()
    }

    fn total_weight(&self) -> f64 {
        self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HierAssoc {
        HierAssoc::new(HierAssocConfig::from_cuts(vec![8, 64]).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(HierAssocConfig::from_cuts(vec![]).is_err());
        assert!(HierAssocConfig::from_cuts(vec![0]).is_err());
        assert!(HierAssocConfig::from_cuts(vec![10, 5]).is_err());
        assert_eq!(HierAssocConfig::from_cuts(vec![4, 8]).unwrap().levels(), 3);
        assert_eq!(HierAssocConfig::default().levels(), 4);
    }

    #[test]
    fn updates_accumulate_across_levels() {
        let mut h = small();
        for i in 0..200u32 {
            h.update(&format!("src{}", i % 37), &format!("dst{}", i % 23), 1.0);
        }
        assert_eq!(h.updates(), 200);
        assert!(h.cascades()[0] > 0, "expected level-0 cascades");
        assert_eq!(h.total(), 200.0);
        // Content equals a flat associative array built from the same stream.
        let mut flat = Assoc::new();
        for i in 0..200u32 {
            flat.accum(&format!("src{}", i % 37), &format!("dst{}", i % 23), 1.0);
        }
        let m = h.materialize();
        assert_eq!(m.triples(), flat.triples());
    }

    #[test]
    fn streaming_sink_uses_decimal_string_keys() {
        let mut h = small();
        let sink: &mut dyn StreamingSink<u64> = &mut h;
        sink.insert(17, 23, 2).unwrap();
        sink.insert(17, 23, 3).unwrap();
        sink.insert_batch(&[4, 5], &[4, 5], &[1, 1]).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "hier-d4m");
        assert_eq!(sink.nvals(), 3);
        assert_eq!(sink.total_weight(), 7.0);
        assert_eq!(h.get("17", "23"), Some(5.0));
    }

    #[test]
    fn streaming_sink_f64_weights() {
        let mut h = small();
        let sink: &mut dyn StreamingSink<f64> = &mut h;
        sink.insert(1, 1, 0.25).unwrap();
        sink.insert(1, 1, 0.5).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.total_weight(), 0.75);
        assert_eq!(h.get("1", "1"), Some(0.75));
    }

    #[test]
    fn get_sums_across_levels() {
        let mut h = small();
        // Push enough distinct keys to force a cascade, then update one of
        // the cascaded keys again so it exists in two levels.
        for i in 0..20u32 {
            h.update(&format!("k{i}"), "c", 1.0);
        }
        h.update("k0", "c", 5.0);
        assert_eq!(h.get("k0", "c"), Some(6.0));
        assert_eq!(h.get("missing", "c"), None);
    }

    #[test]
    fn batch_equivalent_to_singles() {
        let triples: Vec<(String, String, f64)> = (0..50)
            .map(|i| (format!("r{}", i % 7), format!("c{}", i % 5), 1.0))
            .collect();
        let mut a = small();
        a.update_batch(&triples);
        let mut b = small();
        for (r, c, v) in &triples {
            b.update(r, c, *v);
        }
        assert_eq!(a.materialize().triples(), b.materialize().triples());
        assert_eq!(a.updates(), b.updates());
    }

    #[test]
    fn duplicate_heavy_stream_stays_in_level_zero() {
        let mut h = small();
        for _ in 0..1000 {
            h.update("hot_src", "hot_dst", 1.0);
        }
        assert_eq!(h.cascades().iter().sum::<u64>(), 0);
        assert_eq!(h.entries_per_level()[0], 1);
        assert_eq!(h.get("hot_src", "hot_dst"), Some(1000.0));
    }
}
