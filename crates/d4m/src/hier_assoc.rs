//! Hierarchical associative arrays — the "Hierarchical D4M" baseline.
//!
//! This is the data structure of Kepner et al., HPEC 2019 ("Streaming 1.9
//! billion hypersparse network updates per second with D4M"): the same
//! N-level cut-and-cascade design as the hierarchical GraphBLAS matrix, but
//! with D4M associative arrays (string keys) at every level.  The Fig. 2
//! comparison between the "Hierarchical D4M" and "Hierarchical GraphBLAS"
//! curves isolates the cost of string keys versus integer keys, so this
//! implementation intentionally keeps the string machinery on the update
//! path.

use crate::assoc::Assoc;
use hyperstream_graphblas::index::MAX_DIM;
use hyperstream_graphblas::{GrbError, GrbResult, Index, MatrixReader, ScalarType, StreamingSink};
use std::collections::BTreeMap;

/// Cut schedule for a hierarchical associative array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierAssocConfig {
    cuts: Vec<u64>,
}

impl HierAssocConfig {
    /// Build from explicit cuts (strictly increasing, non-zero); the
    /// hierarchy has `cuts.len() + 1` levels.
    pub fn from_cuts(cuts: Vec<u64>) -> GrbResult<Self> {
        if cuts.is_empty() {
            return Err(GrbError::EmptyObject("cut list"));
        }
        if cuts.contains(&0) {
            return Err(GrbError::InvalidValue("cuts must be non-zero".into()));
        }
        for w in cuts.windows(2) {
            if w[0] >= w[1] {
                return Err(GrbError::InvalidValue(
                    "cuts must be strictly increasing".into(),
                ));
            }
        }
        Ok(Self { cuts })
    }

    /// The default schedule used by the D4M baseline benchmarks.
    pub fn default_schedule() -> Self {
        Self::from_cuts(vec![1 << 14, 1 << 17, 1 << 20]).expect("static schedule is valid")
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Cut for level `i` (none for the top level).
    pub fn cut(&self, level: usize) -> Option<u64> {
        self.cuts.get(level).copied()
    }
}

impl Default for HierAssocConfig {
    fn default() -> Self {
        Self::default_schedule()
    }
}

/// An N-level hierarchical associative array accumulating under `+`.
#[derive(Debug, Clone)]
pub struct HierAssoc {
    config: HierAssocConfig,
    levels: Vec<Assoc>,
    updates: u64,
    cascades: Vec<u64>,
}

impl HierAssoc {
    /// Create an empty hierarchical associative array.
    pub fn new(config: HierAssocConfig) -> Self {
        let n = config.levels();
        Self {
            config,
            levels: (0..n).map(|_| Assoc::new()).collect(),
            updates: 0,
            cascades: vec![0; n],
        }
    }

    /// Create with the default cut schedule.
    pub fn with_default_config() -> Self {
        Self::new(HierAssocConfig::default())
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Total updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Cascades out of each level.
    pub fn cascades(&self) -> &[u64] {
        &self.cascades
    }

    /// Apply one streaming update `A(row_key, col_key) += value`.
    pub fn update(&mut self, row_key: &str, col_key: &str, value: f64) {
        self.levels[0].accum(row_key, col_key, value);
        self.updates += 1;
        self.maybe_cascade();
    }

    /// Apply a batch of updates.
    pub fn update_batch(&mut self, triples: &[(String, String, f64)]) {
        for (r, c, v) in triples {
            self.levels[0].accum(r, c, *v);
        }
        self.updates += triples.len() as u64;
        self.maybe_cascade();
    }

    /// Value of the represented array at `(row_key, col_key)`.
    pub fn get(&self, row_key: &str, col_key: &str) -> Option<f64> {
        let mut acc: Option<f64> = None;
        for level in &self.levels {
            if let Some(v) = level.get(row_key, col_key) {
                acc = Some(acc.unwrap_or(0.0) + v);
            }
        }
        acc
    }

    /// Materialise the full array `A = Σ_i A_i`.
    pub fn materialize(&self) -> Assoc {
        let mut acc = Assoc::new();
        for level in &self.levels {
            acc.merge_in(level);
        }
        acc
    }

    /// Sum of all stored values (linear across levels, so no
    /// materialisation is needed).
    pub fn total(&self) -> f64 {
        self.levels.iter().map(|l| l.total()).sum()
    }

    /// Per-level entry counts.
    pub fn entries_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.nnz()).collect()
    }

    fn maybe_cascade(&mut self) {
        let mut i = 0;
        while i + 1 < self.levels.len() {
            let cut = self.config.cut(i).expect("non-top level has a cut");
            // Cheap O(1) fill proxy first: counting the exact nnz of an
            // unsettled level clones and settles it, which made every update
            // O(level size).  The proxy over-counts duplicates, so when it
            // trips we settle (cheap — the level is cache resident by
            // construction) and let the exact count decide, exactly like
            // `HierMatrix::maybe_cascade`.  Decisions are unchanged because
            // bound >= exact.
            if (self.levels[i].nnz_bound() as u64) <= cut {
                break;
            }
            self.levels[i].settle();
            if (self.levels[i].nnz() as u64) <= cut {
                break;
            }
            let lower = std::mem::take(&mut self.levels[i]);
            self.levels[i + 1].merge_in(&lower);
            self.cascades[i] += 1;
            i += 1;
        }
    }
}

impl Default for HierAssoc {
    fn default() -> Self {
        Self::with_default_config()
    }
}

/// The D4M insert path driven by integer indices: keys are the decimal
/// strings of `row` / `col`, exactly how the Fig. 2 harness has always fed
/// this baseline.  Keeping the string formatting *inside* the sink keeps the
/// string-machinery cost on the measured path, which is the point of the
/// "Hierarchical D4M vs Hierarchical GraphBLAS" comparison.  One generic
/// impl covers every weight type: the array stores `f64` natively, so
/// weights go through [`ScalarType::to_f64`].
impl<V: ScalarType> StreamingSink<V> for HierAssoc {
    fn sink_name(&self) -> &str {
        "hier-d4m"
    }

    fn insert(&mut self, row: Index, col: Index, val: V) -> GrbResult<()> {
        self.update(&row.to_string(), &col.to_string(), val.to_f64());
        Ok(())
    }

    fn flush(&mut self) -> GrbResult<()> {
        // Cascades run eagerly on update; nothing is deferred.
        Ok(())
    }

    fn nvals(&self) -> usize {
        self.materialize().nnz()
    }

    fn total_weight(&self) -> f64 {
        self.total()
    }
}

impl HierAssoc {
    /// Settle every level so the backing matrices expose their complete
    /// content to the read paths.
    fn settle_levels(&mut self) {
        for level in &mut self.levels {
            level.settle();
        }
    }

    /// Accumulate one level's row (identified by its decimal string key)
    /// into a numeric column accumulator.  Non-numeric keys (possible only
    /// when the array was fed strings directly, outside the integer-keyed
    /// harness) are skipped.
    fn fold_level_row(level: &Assoc, key: &str, acc: &mut BTreeMap<u64, f64>) {
        let Some(ri) = level.row_index_of(key) else {
            return;
        };
        let Some((cols, vals)) = level.matrix().dcsr().row(ri) else {
            return;
        };
        for (j, &cj) in cols.iter().enumerate() {
            if let Some(c) = level.col_name(cj).and_then(|n| n.parse::<u64>().ok()) {
                *acc.entry(c).or_insert(0.0) += vals[j];
            }
        }
    }
}

/// The D4M read path driven by integer indices, mirroring the sink: keys
/// are the decimal strings of `row` / `col`, and the string machinery
/// (key-map lookups, name decoding) stays *inside* every query — the cost
/// the "Hierarchical D4M vs Hierarchical GraphBLAS" comparison measures.
/// Answers merge the per-level associative arrays numerically, so they are
/// byte-identical to the GraphBLAS systems' answers for the same stream.
impl<V: ScalarType> MatrixReader<V> for HierAssoc {
    fn reader_name(&self) -> &str {
        "hier-d4m"
    }

    fn read_dims(&self) -> (Index, Index) {
        // Associative arrays are unbounded; report the workspace dimension
        // cap so rebuilt pattern matrices stay valid.
        (MAX_DIM, MAX_DIM)
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<V> {
        self.get(&row.to_string(), &col.to_string())
            .map(V::from_f64)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, V)>) {
        self.settle_levels();
        let key = row.to_string();
        let mut acc: BTreeMap<u64, f64> = BTreeMap::new();
        for level in &self.levels {
            Self::fold_level_row(level, &key, &mut acc);
        }
        out.clear();
        out.extend(acc.into_iter().map(|(c, v)| (c, V::from_f64(v))));
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, V)) {
        self.settle_levels();
        let mut acc: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for level in &self.levels {
            for (ri, ci, v) in level.matrix().dcsr().iter() {
                let row = level.row_name(ri).and_then(|n| n.parse::<u64>().ok());
                let col = level.col_name(ci).and_then(|n| n.parse::<u64>().ok());
                if let (Some(r), Some(c)) = (row, col) {
                    *acc.entry((r, c)).or_insert(0.0) += v;
                }
            }
        }
        for ((r, c), v) in acc {
            f(r, c, V::from_f64(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HierAssoc {
        HierAssoc::new(HierAssocConfig::from_cuts(vec![8, 64]).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(HierAssocConfig::from_cuts(vec![]).is_err());
        assert!(HierAssocConfig::from_cuts(vec![0]).is_err());
        assert!(HierAssocConfig::from_cuts(vec![10, 5]).is_err());
        assert_eq!(HierAssocConfig::from_cuts(vec![4, 8]).unwrap().levels(), 3);
        assert_eq!(HierAssocConfig::default().levels(), 4);
    }

    #[test]
    fn updates_accumulate_across_levels() {
        let mut h = small();
        for i in 0..200u32 {
            h.update(&format!("src{}", i % 37), &format!("dst{}", i % 23), 1.0);
        }
        assert_eq!(h.updates(), 200);
        assert!(h.cascades()[0] > 0, "expected level-0 cascades");
        assert_eq!(h.total(), 200.0);
        // Content equals a flat associative array built from the same stream.
        let mut flat = Assoc::new();
        for i in 0..200u32 {
            flat.accum(&format!("src{}", i % 37), &format!("dst{}", i % 23), 1.0);
        }
        let m = h.materialize();
        assert_eq!(m.triples(), flat.triples());
    }

    #[test]
    fn streaming_sink_uses_decimal_string_keys() {
        let mut h = small();
        let sink: &mut dyn StreamingSink<u64> = &mut h;
        sink.insert(17, 23, 2).unwrap();
        sink.insert(17, 23, 3).unwrap();
        sink.insert_batch(&[4, 5], &[4, 5], &[1, 1]).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.sink_name(), "hier-d4m");
        assert_eq!(sink.nvals(), 3);
        assert_eq!(sink.total_weight(), 7.0);
        assert_eq!(h.get("17", "23"), Some(5.0));
    }

    #[test]
    fn streaming_sink_f64_weights() {
        let mut h = small();
        let sink: &mut dyn StreamingSink<f64> = &mut h;
        sink.insert(1, 1, 0.25).unwrap();
        sink.insert(1, 1, 0.5).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.total_weight(), 0.75);
        assert_eq!(h.get("1", "1"), Some(0.75));
    }

    #[test]
    fn get_sums_across_levels() {
        let mut h = small();
        // Push enough distinct keys to force a cascade, then update one of
        // the cascaded keys again so it exists in two levels.
        for i in 0..20u32 {
            h.update(&format!("k{i}"), "c", 1.0);
        }
        h.update("k0", "c", 5.0);
        assert_eq!(h.get("k0", "c"), Some(6.0));
        assert_eq!(h.get("missing", "c"), None);
    }

    #[test]
    fn batch_equivalent_to_singles() {
        let triples: Vec<(String, String, f64)> = (0..50)
            .map(|i| (format!("r{}", i % 7), format!("c{}", i % 5), 1.0))
            .collect();
        let mut a = small();
        a.update_batch(&triples);
        let mut b = small();
        for (r, c, v) in &triples {
            b.update(r, c, *v);
        }
        assert_eq!(a.materialize().triples(), b.materialize().triples());
        assert_eq!(a.updates(), b.updates());
    }

    #[test]
    fn reader_merges_levels_numerically() {
        let mut h = small();
        let sink: &mut dyn StreamingSink<u64> = &mut h;
        // Enough distinct cells to cascade (cuts 8/64), plus duplicates.
        for i in 0..40u64 {
            sink.insert(i % 13, (i * 3) % 11, i % 4 + 1).unwrap();
        }
        let reader: &mut dyn MatrixReader<u64> = &mut h;
        let mut total = 0u64;
        let mut entries = Vec::new();
        reader.read_entries(&mut |r, c, v| {
            total += v;
            entries.push((r, c, v));
        });
        let mut sorted = entries.clone();
        sorted.sort();
        assert_eq!(entries, sorted, "entries must arrive row-major sorted");
        assert_eq!(total as f64, h.total());
        let reader: &mut dyn MatrixReader<u64> = &mut h;
        assert_eq!(reader.read_nnz(), h.materialize().nnz());
        // Row extract equals the per-cell gets.
        let reader: &mut dyn MatrixReader<u64> = &mut h;
        let mut row = Vec::new();
        reader.read_row(3, &mut row);
        assert!(!row.is_empty());
        for &(c, v) in &row {
            assert_eq!(h.get("3", &c.to_string()), Some(v as f64));
        }
        let reader: &mut dyn MatrixReader<u64> = &mut h;
        assert_eq!(reader.read_row_degree(3), row.len());
        assert_eq!(
            reader.read_row_reduce(3),
            Some(row.iter().map(|&(_, v)| v).sum())
        );
        reader.read_row(999, &mut row);
        assert!(row.is_empty());
        assert_eq!(reader.read_get(999, 0), None);
        assert!(!reader.read_top_k(3).is_empty());
    }

    #[test]
    fn duplicate_heavy_stream_stays_in_level_zero() {
        let mut h = small();
        for _ in 0..1000 {
            h.update("hot_src", "hot_dst", 1.0);
        }
        assert_eq!(h.cascades().iter().sum::<u64>(), 0);
        assert_eq!(h.entries_per_level()[0], 1);
        assert_eq!(h.get("hot_src", "hot_dst"), Some(1000.0));
    }
}
