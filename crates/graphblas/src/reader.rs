//! The [`MatrixReader`] trait: one materialisation-free query interface for
//! every system under test — the read-side dual of [`StreamingSink`].
//!
//! The paper's motivation for sustaining extreme ingest rates is to
//! *analyse* network traffic while it arrives: row extracts ("who does this
//! source talk to?"), degree counts ("how many distinct destinations?"),
//! top-k fan-out scans ("scanner candidates"), point gets and full sorted
//! sweeps — all interleaved with the update stream.  `MatrixReader` is that
//! contract.  Implementations answer from their native structures (merged
//! level cursors for the hierarchies, the worker pool for the sharded
//! engine, LSM runs / posting lists / B-trees for the database analogues)
//! without building a merged copy of the matrix first.
//!
//! Query methods take `&mut self`: a reader may complete cheap deferred
//! work (settle a pending-tuple buffer, refresh an index segment, drain an
//! ingest channel) before answering, exactly as the real systems do.  None
//! of that changes the represented matrix — only the cost of reading it.
//!
//! [`StreamingSink`]: crate::sink::StreamingSink

use crate::cursor;
use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::binary::Plus;
use crate::sink::StreamingSink;
use crate::types::ScalarType;

/// A queryable matrix of `V` values: point get, row extract, per-row
/// degree/reduce, top-k rows by degree, nnz and sorted entry iteration.
///
/// ## Contract
///
/// * Answers reflect every update accepted so far (staged, pending, in
///   flight or settled) — a reader must not require an explicit
///   [`flush`](StreamingSink::flush) first.
/// * [`read_entries`](MatrixReader::read_entries) visits entries in
///   row-major `(row, col)` ascending order with duplicates already
///   combined — the order the provided defaults rely on.
/// * [`read_top_k`](MatrixReader::read_top_k) orders by degree descending,
///   ties broken by ascending row id, so answers are byte-identical across
///   systems.
/// * Column-side answers mirror the row-side ones through the transpose:
///   [`read_col`](MatrixReader::read_col) visits rows ascending,
///   [`read_in_top_k`](MatrixReader::read_in_top_k) orders by in-degree
///   descending then column ascending, and
///   [`read_col_range`](MatrixReader::read_col_range) visits column-major.
/// * Values accumulate under the `+` monoid of `V` (the paper's update
///   model); [`read_row_reduce`](MatrixReader::read_row_reduce) reduces
///   with the same monoid.
///
/// The trait is object-safe: the measurement harness queries every system
/// through `Box<dyn StreamingSystem<u64>>`.
pub trait MatrixReader<V: ScalarType> {
    /// Short system name used in reports (matches the sink name).
    fn reader_name(&self) -> &str;

    /// Logical `(nrows, ncols)` bound of the index space.  Unbounded
    /// key–value systems report the workspace dimension cap
    /// ([`crate::index::MAX_DIM`]).
    fn read_dims(&self) -> (Index, Index);

    /// Value at `(row, col)`, duplicates combined, or `None`.
    fn read_get(&mut self, row: Index, col: Index) -> Option<V>;

    /// Extract row `row` into `out` (cleared first): `(col, value)` pairs
    /// sorted by column, duplicates combined.
    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, V)>);

    /// Visit every stored entry in row-major sorted order, duplicates
    /// combined.
    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, V));

    /// Visit the stored entries of rows `lo..hi` (half-open) in row-major
    /// sorted order, duplicates combined — the subnet-style range scan.
    ///
    /// The default filters a full [`read_entries`](MatrixReader::read_entries)
    /// sweep; indexed readers override with a cursor range-skip (cost
    /// proportional to the range's content) and the sharded engine
    /// dispatches only to the workers whose row bands overlap the range.
    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, V)) {
        if lo >= hi {
            return;
        }
        self.read_entries(&mut |r, c, v| {
            if r >= lo && r < hi {
                f(r, c, v);
            }
        });
    }

    /// The degree histogram of the stored pattern: `degree -> number of
    /// rows with that many distinct columns`.
    ///
    /// The default run-counts a full entry sweep (valid because entries
    /// arrive row-major sorted); index-backed readers answer in
    /// O(distinct degrees).
    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let mut counts = std::collections::BTreeMap::new();
        let mut run: Option<(Index, u64)> = None;
        self.read_entries(&mut |r, _, _| match &mut run {
            Some((cr, n)) if *cr == r => *n += 1,
            _ => {
                if let Some((_, n)) = run.take() {
                    *counts.entry(n).or_insert(0u64) += 1;
                }
                run = Some((r, 1));
            }
        });
        if let Some((_, n)) = run {
            *counts.entry(n).or_insert(0u64) += 1;
        }
        counts
    }

    /// Number of distinct `(row, col)` cells stored.
    fn read_nnz(&mut self) -> usize {
        let mut n = 0;
        self.read_entries(&mut |_, _, _| n += 1);
        n
    }

    /// Number of distinct columns stored in row `row`.
    fn read_row_degree(&mut self, row: Index) -> usize {
        let mut out = Vec::new();
        self.read_row(row, &mut out);
        out.len()
    }

    /// Reduce row `row` to a scalar under `+` (`None` when empty).
    fn read_row_reduce(&mut self, row: Index) -> Option<V> {
        let mut out = Vec::new();
        self.read_row(row, &mut out);
        out.into_iter().map(|(_, v)| v).reduce(|a, b| a.add(b))
    }

    /// The `k` rows with the most distinct columns, sorted by degree
    /// descending then row ascending.
    ///
    /// The default sweeps [`read_entries`](MatrixReader::read_entries)
    /// counting row runs (valid because entries arrive row-major sorted)
    /// through a size-`k` min-heap.
    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        use std::cmp::Reverse;
        let mut heap: std::collections::BinaryHeap<Reverse<(usize, Reverse<Index>)>> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        let mut run: Option<(Index, usize)> = None;
        self.read_entries(&mut |r, _, _| match &mut run {
            Some((cr, n)) if *cr == r => *n += 1,
            _ => {
                if let Some((cr, n)) = run.take() {
                    heap.push(Reverse((n, Reverse(cr))));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
                run = Some((r, 1));
            }
        });
        if let Some((cr, n)) = run {
            heap.push(Reverse((n, Reverse(cr))));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<(Index, usize)> = heap
            .into_iter()
            .map(|Reverse((n, Reverse(r)))| (r, n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Extract column `col` into `out` (cleared first): `(row, value)`
    /// pairs sorted by row, duplicates combined — the transpose of
    /// [`read_row`](MatrixReader::read_row), "who talks *to* this host?".
    ///
    /// The default filters a full entry sweep (O(nnz)); twin-backed
    /// readers override with an O(k) row lookup on their column shadow.
    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, V)>) {
        out.clear();
        self.read_entries(&mut |r, c, v| {
            if c == col {
                out.push((r, v));
            }
        });
    }

    /// Number of distinct rows stored in column `col` (the in-degree).
    fn read_col_degree(&mut self, col: Index) -> usize {
        let mut out = Vec::new();
        self.read_col(col, &mut out);
        out.len()
    }

    /// Reduce column `col` to a scalar under `+` (`None` when empty).
    fn read_col_reduce(&mut self, col: Index) -> Option<V> {
        let mut out = Vec::new();
        self.read_col(col, &mut out);
        out.into_iter().map(|(_, v)| v).reduce(|a, b| a.add(b))
    }

    /// The `k` columns with the most distinct rows (highest in-degree),
    /// sorted by degree descending then column ascending — the
    /// destination-centric dual of [`read_top_k`](MatrixReader::read_top_k)
    /// (DDoS-victim candidates instead of scanner candidates).
    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        let mut degs: std::collections::BTreeMap<Index, usize> = Default::default();
        self.read_entries(&mut |_, c, _| *degs.entry(c).or_insert(0) += 1);
        let mut out: Vec<(Index, usize)> = degs.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// The in-degree histogram of the stored pattern: `in-degree -> number
    /// of columns with that many distinct rows`.
    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let mut degs: std::collections::BTreeMap<Index, u64> = Default::default();
        self.read_entries(&mut |_, c, _| *degs.entry(c).or_insert(0) += 1);
        let mut counts = std::collections::BTreeMap::new();
        for d in degs.into_values() {
            *counts.entry(d).or_insert(0u64) += 1;
        }
        counts
    }

    /// Visit the stored entries of columns `lo..hi` (half-open) in
    /// **column-major** `(col, row)` ascending order, duplicates combined —
    /// the destination-subnet range scan.  The callback still receives
    /// `(row, col, value)` like every other visitor.
    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, V)) {
        if lo >= hi {
            return;
        }
        let mut hits: Vec<(Index, Index, V)> = Vec::new();
        self.read_entries(&mut |r, c, v| {
            if c >= lo && c < hi {
                hits.push((c, r, v));
            }
        });
        hits.sort_unstable_by_key(|&(c, r, _)| (c, r));
        for (c, r, v) in hits {
            f(r, c, v);
        }
    }

    /// Extract many rows in one call: one `(col, value)` vector per
    /// requested row, in the order given (duplicate keys allowed).
    ///
    /// The default loops [`read_row`](MatrixReader::read_row); batching
    /// readers amortise the per-query setup across keys — one settle and
    /// one cursor walk for the hierarchies, one barrier round-trip per
    /// shard (instead of per key) for the sharded engine.
    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, V)>> {
        let mut out = Vec::new();
        rows.iter()
            .map(|&r| {
                self.read_row(r, &mut out);
                std::mem::take(&mut out)
            })
            .collect()
    }

    /// Point-get many cells in one call, answers in key order.
    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<V>> {
        keys.iter().map(|&(r, c)| self.read_get(r, c)).collect()
    }
}

/// Extract every entry of a reader into parallel tuple vectors (row-major
/// sorted) — the bridge the graph algorithms use to rebuild pattern
/// matrices from any reader.
pub fn read_tuples<V: ScalarType, R: MatrixReader<V> + ?Sized>(
    r: &mut R,
) -> (Vec<Index>, Vec<Index>, Vec<V>) {
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    r.read_entries(&mut |i, j, v| {
        rows.push(i);
        cols.push(j);
        vals.push(v);
    });
    (rows, cols, vals)
}

/// A reader whose settled content is reachable as DCSR level slices — the
/// contract the reader-native semiring kernels
/// ([`crate::ops::reader_mx`]) build on.
///
/// The represented matrix is `Σ levels` under the `+` monoid of `V` (the
/// flat matrix is the single-level case, a hierarchy exposes one slice per
/// level, a snapshot adds its pending tail as an extra level).  Handing the
/// slices to a callback lets every implementation complete its cheap
/// deferred work (settle, drain, index refresh) first and keep borrowing
/// local — products over a live structure never materialize `Σ levels`.
pub trait CursorReader<V: ScalarType>: MatrixReader<V> {
    /// Complete deferred work, then call `f` once with the settled level
    /// slices.  Row ids and in-row columns are sorted within each level;
    /// the same cell may appear in several levels and combines under `+`.
    fn with_level_dcsrs(&mut self, f: &mut dyn FnMut(&[&crate::formats::dcsr::Dcsr<V>]));

    /// `(row, distinct stored columns)` for every non-empty row, sorted by
    /// row — served from a degree index when the reader keeps one.  `None`
    /// means the caller should sweep the level slices itself.
    fn out_degrees(&mut self) -> Option<Vec<(Index, u64)>> {
        None
    }
}

/// A full system under test: ingests a stream *and* answers queries — the
/// combined contract the mixed-workload harness drives through one
/// `Box<dyn StreamingSystem<u64>>`.
pub trait StreamingSystem<V: ScalarType>: StreamingSink<V> + MatrixReader<V> {}

impl<V: ScalarType, S: StreamingSink<V> + MatrixReader<V> + ?Sized> StreamingSystem<V> for S {}

/// The flat matrix answers from its settled DCSR; pending tuples settle
/// first (`wait`), which is exactly the single-level form of "complete
/// cheap deferred work before reading".
impl<T: ScalarType> MatrixReader<T> for Matrix<T> {
    fn reader_name(&self) -> &str {
        "flat-graphblas"
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows(), self.ncols())
    }

    fn read_nnz(&mut self) -> usize {
        self.wait();
        self.nvals_settled()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<T> {
        self.wait();
        self.dcsr().get(row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, T)>) {
        self.wait();
        out.clear();
        if let Some((cols, vals)) = self.dcsr().row(row) {
            out.extend(cols.iter().copied().zip(vals.iter().copied()));
        }
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        self.wait();
        self.dcsr().row(row).map_or(0, |(cols, _)| cols.len())
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<T> {
        self.wait();
        cursor::merged_row_reduce(&[self.dcsr()], row, Plus)
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        self.wait();
        // The heap buffer is owned by the matrix: repeated top-k queries in
        // a mixed workload reuse one allocation (split borrow through raw
        // parts is not possible here, so take/restore the scratch).
        let mut scratch = std::mem::take(self.topk_scratch());
        let out = cursor::merged_top_k_with(&[self.dcsr()], k, &mut scratch);
        *self.topk_scratch() = scratch;
        out
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, T)) {
        self.wait();
        for (r, c, v) in self.dcsr().iter() {
            f(r, c, v);
        }
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        self.wait();
        cursor::merged_row_range(&[self.dcsr()], lo, hi, Plus, f);
    }

    /// O(non-empty rows) straight off the compressed row pointers — no
    /// entry sweep and no per-call scratch.
    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        self.wait();
        let (_, ptr, _, _) = self.dcsr().raw_parts();
        let mut counts = std::collections::BTreeMap::new();
        for w in ptr.windows(2) {
            *counts.entry((w[1] - w[0]) as u64).or_insert(0u64) += 1;
        }
        counts
    }

    /// O(k) off the column twin: a column extract is a row lookup on the
    /// transposed shadow.
    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, T)>) {
        let shadow = self.col_shadow();
        out.clear();
        if let Some((rows, vals)) = shadow.row(col) {
            out.extend(rows.iter().copied().zip(vals.iter().copied()));
        }
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        self.col_shadow().row(col).map_or(0, |(rows, _)| rows.len())
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<T> {
        let shadow = self.col_shadow();
        cursor::merged_row_reduce(&[&*shadow], col, Plus)
    }

    /// In-degree ranking off the twin's compressed row pointers — the
    /// column-side mirror of [`read_top_k`](MatrixReader::read_top_k),
    /// sharing the same reusable heap scratch.
    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        let shadow = self.col_shadow();
        let mut scratch = std::mem::take(self.topk_scratch());
        let out = cursor::merged_top_k_with(&[&*shadow], k, &mut scratch);
        *self.topk_scratch() = scratch;
        out
    }

    /// O(non-empty columns) off the twin's compressed pointers.
    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        let shadow = self.col_shadow();
        let (_, ptr, _, _) = shadow.raw_parts();
        let mut counts = std::collections::BTreeMap::new();
        for w in ptr.windows(2) {
            *counts.entry((w[1] - w[0]) as u64).or_insert(0u64) += 1;
        }
        counts
    }

    /// A row-range skip on the twin: cost proportional to the columns'
    /// content, emitted column-major with the original orientation.
    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, T)) {
        let shadow = self.col_shadow();
        cursor::merged_row_range(&[&*shadow], lo, hi, Plus, &mut |c, r, v| f(r, c, v));
    }

    /// One settle for the whole batch, then direct settled-row lookups.
    fn read_rows(&mut self, rows: &[Index]) -> Vec<Vec<(Index, T)>> {
        self.wait();
        rows.iter()
            .map(|&r| {
                self.dcsr().row(r).map_or_else(Vec::new, |(cols, vals)| {
                    cols.iter().copied().zip(vals.iter().copied()).collect()
                })
            })
            .collect()
    }

    /// One settle for the whole batch, then direct settled point gets.
    fn read_get_many(&mut self, keys: &[(Index, Index)]) -> Vec<Option<T>> {
        self.wait();
        keys.iter().map(|&(r, c)| self.dcsr().get(r, c)).collect()
    }
}

/// The flat matrix is the single-level case: settle, then the one DCSR.
impl<T: ScalarType> CursorReader<T> for Matrix<T> {
    fn with_level_dcsrs(&mut self, f: &mut dyn FnMut(&[&crate::formats::dcsr::Dcsr<T>])) {
        self.wait();
        f(&[self.dcsr()]);
    }

    /// O(non-empty rows) straight off the compressed row pointers.
    fn out_degrees(&mut self) -> Option<Vec<(Index, u64)>> {
        self.wait();
        let (row_ids, ptr, _, _) = self.dcsr().raw_parts();
        Some(
            row_ids
                .iter()
                .zip(ptr.windows(2))
                .map(|(&r, w)| (r, (w[1] - w[0]) as u64))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<u64> {
        let mut m = Matrix::<u64>::new(1 << 32, 1 << 32);
        m.accum_tuples(&[5, 5, 5, 9, 5], &[1, 2, 3, 9, 2], &[10, 20, 30, 1, 5])
            .unwrap();
        m
    }

    #[test]
    fn matrix_reader_answers_with_pending_tuples() {
        let mut m = sample();
        assert!(m.npending() > 0);
        assert_eq!(m.read_get(5, 2), Some(25));
        assert_eq!(m.read_nnz(), 4);
        let mut row = Vec::new();
        m.read_row(5, &mut row);
        assert_eq!(row, vec![(1, 10), (2, 25), (3, 30)]);
        m.read_row(7, &mut row);
        assert!(row.is_empty());
        assert_eq!(m.read_row_degree(5), 3);
        assert_eq!(m.read_row_degree(7), 0);
        assert_eq!(m.read_row_reduce(5), Some(65));
        assert_eq!(m.read_row_reduce(7), None);
        assert_eq!(m.read_top_k(1), vec![(5, 3)]);
        assert_eq!(m.read_top_k(5), vec![(5, 3), (9, 1)]);
    }

    #[test]
    fn read_entries_sorted_row_major() {
        let mut m = sample();
        let (r, c, v) = read_tuples(&mut m);
        assert_eq!(r, vec![5, 5, 5, 9]);
        assert_eq!(c, vec![1, 2, 3, 9]);
        assert_eq!(v, vec![10, 25, 30, 1]);
    }

    #[test]
    fn reader_is_object_safe_combined_with_sink() {
        let mut sys: Box<dyn StreamingSystem<u64>> = Box::new(Matrix::<u64>::new(100, 100));
        sys.insert(1, 2, 3).unwrap();
        sys.insert(1, 2, 4).unwrap();
        sys.flush().unwrap();
        assert_eq!(sys.sink_name(), "flat-graphblas");
        assert_eq!(sys.reader_name(), "flat-graphblas");
        assert_eq!(sys.read_get(1, 2), Some(7));
        assert_eq!(sys.read_nnz(), 1);
        assert_eq!(sys.read_dims(), (100, 100));
    }

    #[test]
    fn default_top_k_matches_cursor_top_k() {
        // Exercise the provided default through a thin wrapper that only
        // supplies the required methods.
        struct Wrap(Matrix<u64>);
        impl MatrixReader<u64> for Wrap {
            fn reader_name(&self) -> &str {
                "wrap"
            }
            fn read_dims(&self) -> (Index, Index) {
                self.0.read_dims()
            }
            fn read_get(&mut self, r: Index, c: Index) -> Option<u64> {
                self.0.read_get(r, c)
            }
            fn read_row(&mut self, r: Index, out: &mut Vec<(Index, u64)>) {
                self.0.read_row(r, out)
            }
            fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, u64)) {
                self.0.read_entries(f)
            }
        }
        let mut w = Wrap(sample());
        let mut m = sample();
        assert_eq!(w.read_top_k(2), m.read_top_k(2));
        assert_eq!(w.read_nnz(), m.read_nnz());
        assert_eq!(w.read_row_degree(5), 3);
        assert_eq!(w.read_row_reduce(5), Some(65));
        assert!(w.read_top_k(0).is_empty());
        // Column-side defaults (entry sweeps) equal the shadow-served
        // overrides on the same content.
        let mut dw = Vec::new();
        let mut dm = Vec::new();
        for col in [1u64, 2, 3, 9, 77] {
            w.read_col(col, &mut dw);
            m.read_col(col, &mut dm);
            assert_eq!(dw, dm, "col {col}");
            assert_eq!(w.read_col_degree(col), m.read_col_degree(col));
            assert_eq!(w.read_col_reduce(col), m.read_col_reduce(col));
        }
        assert_eq!(w.read_in_top_k(3), m.read_in_top_k(3));
        assert!(w.read_in_top_k(0).is_empty());
        assert!(m.read_in_top_k(0).is_empty());
        assert_eq!(w.read_in_degree_histogram(), m.read_in_degree_histogram());
        let (mut gw, mut gm) = (Vec::new(), Vec::new());
        w.read_col_range(2, 10, &mut |r, c, v| gw.push((r, c, v)));
        m.read_col_range(2, 10, &mut |r, c, v| gm.push((r, c, v)));
        assert_eq!(gw, gm);
        // Batched defaults equal the amortised overrides.
        let rows = [5u64, 7, 9, 5];
        assert_eq!(w.read_rows(&rows), m.read_rows(&rows));
        let keys = [(5u64, 2u64), (9, 9), (0, 0)];
        assert_eq!(w.read_get_many(&keys), m.read_get_many(&keys));
    }

    #[test]
    fn column_reads_mirror_rows_through_the_twin() {
        let mut m = sample();
        // Entries: (5,1,10) (5,2,25) (5,3,30) (9,9,1).
        let mut col = Vec::new();
        m.read_col(2, &mut col);
        assert_eq!(col, vec![(5, 25)]);
        m.read_col(9, &mut col);
        assert_eq!(col, vec![(9, 1)]);
        m.read_col(4, &mut col);
        assert!(col.is_empty());
        assert_eq!(m.read_col_degree(2), 1);
        assert_eq!(m.read_col_degree(4), 0);
        assert_eq!(m.read_col_reduce(3), Some(30));
        assert_eq!(m.read_col_reduce(4), None);
        assert_eq!(m.read_in_top_k(2), vec![(1, 1), (2, 1)]);
        assert_eq!(
            m.read_in_degree_histogram(),
            std::collections::BTreeMap::from([(1, 4)])
        );
        let mut got = Vec::new();
        m.read_col_range(2, 4, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got, vec![(5, 2, 25), (5, 3, 30)]);
        // The twin tracks later updates.
        m.accum_element(7, 2, 2).unwrap();
        m.read_col(2, &mut col);
        assert_eq!(col, vec![(5, 25), (7, 2)]);
        assert_eq!(m.read_in_top_k(1), vec![(2, 2)]);
    }

    #[test]
    fn cursor_reader_exposes_single_level_and_degrees() {
        let mut m = sample();
        let mut nnz = 0;
        m.with_level_dcsrs(&mut |levels| {
            assert_eq!(levels.len(), 1);
            nnz = levels[0].nvals();
        });
        assert_eq!(nnz, 4);
        assert_eq!(m.out_degrees(), Some(vec![(5, 3), (9, 1)]));
    }

    #[test]
    fn batched_reads_answer_in_key_order() {
        let mut m = sample();
        let rows = m.read_rows(&[9, 5, 7]);
        assert_eq!(rows[0], vec![(9, 1)]);
        assert_eq!(rows[1], vec![(1, 10), (2, 25), (3, 30)]);
        assert!(rows[2].is_empty());
        assert_eq!(
            m.read_get_many(&[(5, 3), (0, 0), (5, 2)]),
            vec![Some(30), None, Some(25)]
        );
    }
}
