//! Scalar value types storable in GraphBLAS matrices and vectors.
//!
//! The GraphBLAS C API predefines a small set of numeric types
//! (`GrB_BOOL`, `GrB_INT8` … `GrB_FP64`).  Here the same role is played by
//! the [`ScalarType`] trait, which every kernel is generic over.  The trait
//! deliberately carries the handful of arithmetic primitives the predefined
//! operators need, so the crate has no dependency on `num-traits`.

/// A scalar type storable in a sparse matrix.
///
/// The trait provides the primitive operations out of which the predefined
/// [binary operators](crate::ops::binary), [monoids](crate::ops::monoid) and
/// [semirings](crate::ops::semiring) are built.
pub trait ScalarType:
    Copy + PartialEq + PartialOrd + std::fmt::Debug + Default + Send + Sync + 'static
{
    /// Stable one-byte discriminant of the concrete type, recorded in
    /// on-disk headers so a file written as one type is never silently
    /// reinterpreted as another (e.g. `u64` bits read back as `f64`).
    /// Tags are part of the durable format and must never be reassigned.
    const TYPE_TAG: u8;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Identity of the `Min` monoid (the largest representable value).
    fn max_value() -> Self;
    /// Identity of the `Max` monoid (the smallest representable value).
    fn min_value() -> Self;

    /// Wrapping / saturating-free addition as used by the `Plus` operator.
    fn add(self, rhs: Self) -> Self;
    /// Subtraction as used by the `Minus` operator.
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication as used by the `Times` operator.
    fn mul(self, rhs: Self) -> Self;
    /// Division as used by the `Div` operator (integer division for integer
    /// types; division by zero yields `zero()` as in SuiteSparse).
    fn div(self, rhs: Self) -> Self;
    /// Pairwise minimum.
    fn min_val(self, rhs: Self) -> Self;
    /// Pairwise maximum.
    fn max_val(self, rhs: Self) -> Self;
    /// Absolute value (identity for unsigned types).
    fn abs_val(self) -> Self;

    /// Lossy conversion to `f64`, used for reporting and rate computations.
    fn to_f64(self) -> f64;
    /// Lossy conversion from `f64`, used by generators and tests.
    fn from_f64(v: f64) -> Self;
    /// Conversion from a `u64` count (used when values are edge weights/counts).
    fn from_u64(v: u64) -> Self;

    /// Exact 64-bit encoding for on-disk storage: bit-preserving for
    /// floats (`to_bits`), sign-extending for signed integers, zero-
    /// extending otherwise.  [`Self::decode_bits`] is its exact inverse
    /// for every value of `Self` (including float NaNs, bit for bit).
    fn encode_bits(self) -> u64;
    /// Inverse of [`Self::encode_bits`].
    fn decode_bits(bits: u64) -> Self;

    /// True when the value is exactly the additive identity.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }
}

macro_rules! impl_scalar_float {
    ($($t:ty => $tag:expr),*) => {$(
        impl ScalarType for $t {
            const TYPE_TAG: u8 = $tag;
            fn zero() -> Self { 0.0 }
            fn one() -> Self { 1.0 }
            fn max_value() -> Self { <$t>::INFINITY }
            fn min_value() -> Self { <$t>::NEG_INFINITY }
            fn add(self, rhs: Self) -> Self { self + rhs }
            fn sub(self, rhs: Self) -> Self { self - rhs }
            fn mul(self, rhs: Self) -> Self { self * rhs }
            fn div(self, rhs: Self) -> Self { self / rhs }
            fn min_val(self, rhs: Self) -> Self { if self < rhs { self } else { rhs } }
            fn max_val(self, rhs: Self) -> Self { if self > rhs { self } else { rhs } }
            fn abs_val(self) -> Self { self.abs() }
            fn to_f64(self) -> f64 { self as f64 }
            fn from_f64(v: f64) -> Self { v as $t }
            fn from_u64(v: u64) -> Self { v as $t }
            fn encode_bits(self) -> u64 { self.to_bits() as u64 }
            fn decode_bits(bits: u64) -> Self { <$t>::from_bits(bits as _) }
        }
    )*};
}

macro_rules! impl_scalar_int {
    ($($t:ty => $tag:expr),*) => {$(
        impl ScalarType for $t {
            const TYPE_TAG: u8 = $tag;
            fn zero() -> Self { 0 }
            fn one() -> Self { 1 }
            fn max_value() -> Self { <$t>::MAX }
            fn min_value() -> Self { <$t>::MIN }
            fn add(self, rhs: Self) -> Self { self.wrapping_add(rhs) }
            fn sub(self, rhs: Self) -> Self { self.wrapping_sub(rhs) }
            fn mul(self, rhs: Self) -> Self { self.wrapping_mul(rhs) }
            fn div(self, rhs: Self) -> Self {
                if rhs == 0 { 0 } else { self.wrapping_div(rhs) }
            }
            fn min_val(self, rhs: Self) -> Self { std::cmp::min(self, rhs) }
            fn max_val(self, rhs: Self) -> Self { std::cmp::max(self, rhs) }
            fn abs_val(self) -> Self {
                #[allow(unused_comparisons)]
                if self < 0 { self.wrapping_neg() } else { self }
            }
            fn to_f64(self) -> f64 { self as f64 }
            fn from_f64(v: f64) -> Self { v as $t }
            fn from_u64(v: u64) -> Self { v as $t }
            // `as u64` sign-extends signed types, so truncating back with
            // `as $t` round-trips every value exactly.
            fn encode_bits(self) -> u64 { self as u64 }
            fn decode_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}

impl_scalar_float!(f32 => 10, f64 => 11);
impl_scalar_int!(
    i8 => 2, i16 => 3, i32 => 4, i64 => 5,
    u8 => 6, u16 => 7, u32 => 8, u64 => 9,
    usize => 12, isize => 13
);

impl ScalarType for bool {
    const TYPE_TAG: u8 = 1;
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn max_value() -> Self {
        true
    }
    fn min_value() -> Self {
        false
    }
    fn add(self, rhs: Self) -> Self {
        self || rhs
    }
    fn sub(self, rhs: Self) -> Self {
        self && !rhs
    }
    fn mul(self, rhs: Self) -> Self {
        self && rhs
    }
    fn div(self, rhs: Self) -> Self {
        if rhs {
            self
        } else {
            false
        }
    }
    fn min_val(self, rhs: Self) -> Self {
        self && rhs
    }
    fn max_val(self, rhs: Self) -> Self {
        self || rhs
    }
    fn abs_val(self) -> Self {
        self
    }
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
    fn from_f64(v: f64) -> Self {
        v != 0.0
    }
    fn from_u64(v: u64) -> Self {
        v != 0
    }
    fn encode_bits(self) -> u64 {
        self as u64
    }
    fn decode_bits(bits: u64) -> Self {
        bits != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_identities() {
        assert_eq!(f64::zero(), 0.0);
        assert_eq!(f64::one(), 1.0);
        assert_eq!(f64::max_value(), f64::INFINITY);
        assert_eq!(f64::min_value(), f64::NEG_INFINITY);
        assert!(f64::zero().is_zero());
        assert!(!f64::one().is_zero());
    }

    #[test]
    fn integer_arithmetic_wraps() {
        assert_eq!(u8::MAX.add(1), 0);
        assert_eq!(0u8.sub(1), u8::MAX);
        assert_eq!(200u8.mul(2), 144); // wrapping
        assert_eq!(10u32.div(0), 0); // div-by-zero policy
        assert_eq!((-5i32).abs_val(), 5);
        assert_eq!(5u32.abs_val(), 5);
    }

    #[test]
    fn min_max_values() {
        assert_eq!(3i64.min_val(-7), -7);
        assert_eq!(3i64.max_val(-7), 3);
        assert_eq!(3.5f64.min_val(2.5), 2.5);
        assert_eq!(3.5f64.max_val(2.5), 3.5);
        assert_eq!(<i32 as ScalarType>::max_value(), i32::MAX);
        assert_eq!(<u16 as ScalarType>::min_value(), 0);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(u64::from_f64(42.9), 42);
        assert_eq!(f64::from_u64(7), 7.0);
        assert_eq!(i32::from_u64(9), 9);
        assert_eq!(255u8.to_f64(), 255.0);
    }

    #[test]
    fn bool_algebra_is_or_and() {
        assert!(true.add(false));
        assert!(!false.add(false));
        assert!(!true.mul(false));
        assert!(true.mul(true));
        assert!(!true.sub(true));
        assert!(bool::from_u64(3));
        assert!(!bool::from_f64(0.0));
        assert_eq!(true.to_f64(), 1.0);
    }

    #[test]
    fn encode_bits_round_trips_exactly() {
        for v in [0i8, 1, -1, i8::MIN, i8::MAX] {
            assert_eq!(i8::decode_bits(v.encode_bits()), v);
        }
        for v in [0i64, -1, i64::MIN, i64::MAX, 42] {
            assert_eq!(i64::decode_bits(v.encode_bits()), v);
        }
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::decode_bits(v.encode_bits()), v);
        }
        for v in [
            0.0f64,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(f64::decode_bits(v.encode_bits()).to_bits(), v.to_bits());
        }
        // NaN payload bits survive the round trip.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(f64::decode_bits(nan.encode_bits()).to_bits(), nan.to_bits());
        for v in [0.25f32, -3.5, f32::NAN] {
            assert_eq!(f32::decode_bits(v.encode_bits()).to_bits(), v.to_bits());
        }
        assert!(bool::decode_bits(true.encode_bits()));
        assert!(!bool::decode_bits(false.encode_bits()));
    }

    #[test]
    fn type_tags_are_distinct_and_stable() {
        let tags = [
            bool::TYPE_TAG,
            i8::TYPE_TAG,
            i16::TYPE_TAG,
            i32::TYPE_TAG,
            i64::TYPE_TAG,
            u8::TYPE_TAG,
            u16::TYPE_TAG,
            u32::TYPE_TAG,
            u64::TYPE_TAG,
            f32::TYPE_TAG,
            f64::TYPE_TAG,
            usize::TYPE_TAG,
            isize::TYPE_TAG,
        ];
        let mut sorted = tags.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tags.len(), "type tags must be unique");
        // Pin the values: they are part of the on-disk format.
        assert_eq!(u64::TYPE_TAG, 9);
        assert_eq!(f64::TYPE_TAG, 11);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(f64::default(), f64::zero());
        assert_eq!(u64::default(), u64::zero());
        assert_eq!(bool::default(), bool::zero());
    }
}
