//! Write masks.
//!
//! GraphBLAS operations optionally take a mask controlling which output
//! positions may be written.  The mask here is *structural*: a position is
//! allowed if the mask matrix stores an entry there (or does not, when
//! complemented), regardless of the stored value — this matches how masks
//! are used in the traffic-analysis pipelines (e.g. "only update counts for
//! flows we are already tracking").

use crate::formats::dcsr::Dcsr;
use crate::index::Index;
use crate::matrix::Matrix;
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// A structural write mask borrowed from a mask matrix.
#[derive(Debug, Clone, Copy)]
pub struct Mask<'a, M> {
    pattern: &'a Dcsr<M>,
    complement: bool,
}

impl<'a, M: ScalarType> Mask<'a, M> {
    /// Mask allowing positions where `pattern` has a stored entry.
    ///
    /// The mask matrix must be settled (no pending tuples); use
    /// [`Matrix::to_settled`] or [`Matrix::wait`] first if needed.
    pub fn structural(pattern: &'a Matrix<M>) -> Self {
        Self {
            pattern: pattern.dcsr(),
            complement: false,
        }
    }

    /// Mask allowing positions where `pattern` has **no** stored entry.
    pub fn complement(pattern: &'a Matrix<M>) -> Self {
        Self {
            pattern: pattern.dcsr(),
            complement: true,
        }
    }

    /// True when output position `(row, col)` may be written.
    pub fn allows(&self, row: Index, col: Index) -> bool {
        let present = self.pattern.get(row, col).is_some();
        present != self.complement
    }

    /// Filter a settled matrix, keeping only the allowed positions.
    pub fn filter<T: ScalarType>(&self, m: &Matrix<T>) -> Matrix<T> {
        let src = m.to_settled();
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (r, c, v) in src.iter_settled() {
            if self.allows(r, c) {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            }
        }
        Matrix::from_tuples(
            m.nrows(),
            m.ncols(),
            &rows,
            &cols,
            &vals,
            crate::ops::binary::Second,
        )
        .expect("filtered entries are in bounds")
    }
}

/// The vector-side dual of [`Mask`]: a structural mask over a
/// [`SparseVector`] pattern, used by the masked `mxv`/`vxm` duals — a BFS
/// wave pushes its frontier under the *complement* of the visited vector so
/// already-levelled vertices are never rewritten.
#[derive(Debug, Clone, Copy)]
pub struct VectorMask<'a, M> {
    pattern: &'a SparseVector<M>,
    complement: bool,
}

impl<'a, M: ScalarType> VectorMask<'a, M> {
    /// Mask allowing positions where `pattern` has a stored entry.
    pub fn structural(pattern: &'a SparseVector<M>) -> Self {
        Self {
            pattern,
            complement: false,
        }
    }

    /// Mask allowing positions where `pattern` has **no** stored entry.
    pub fn complement(pattern: &'a SparseVector<M>) -> Self {
        Self {
            pattern,
            complement: true,
        }
    }

    /// True when output position `i` may be written.
    pub fn allows(&self, i: Index) -> bool {
        let present = self.pattern.get(i).is_some();
        present != self.complement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn mask_matrix() -> Matrix<bool> {
        Matrix::from_tuples(10, 10, &[1, 2], &[1, 2], &[true, true], Plus).unwrap()
    }

    #[test]
    fn structural_mask_allows_stored_positions() {
        let mm = mask_matrix();
        let mask = Mask::structural(&mm);
        assert!(mask.allows(1, 1));
        assert!(mask.allows(2, 2));
        assert!(!mask.allows(3, 3));
    }

    #[test]
    fn complement_mask_inverts() {
        let mm = mask_matrix();
        let mask = Mask::complement(&mm);
        assert!(!mask.allows(1, 1));
        assert!(mask.allows(3, 3));
    }

    #[test]
    fn filter_keeps_only_allowed() {
        let mm = mask_matrix();
        let mask = Mask::structural(&mm);
        let data =
            Matrix::from_tuples(10, 10, &[1, 2, 3], &[1, 2, 3], &[10u64, 20, 30], Plus).unwrap();
        let filtered = mask.filter(&data);
        assert_eq!(filtered.nvals(), 2);
        assert_eq!(filtered.get(1, 1), Some(10));
        assert_eq!(filtered.get(3, 3), None);

        let complement_filtered = Mask::complement(&mm).filter(&data);
        assert_eq!(complement_filtered.nvals(), 1);
        assert_eq!(complement_filtered.get(3, 3), Some(30));
    }

    #[test]
    fn vector_mask_mirrors_matrix_mask() {
        let visited = SparseVector::from_tuples(10, &[1, 4], &[1u64, 2], Plus).unwrap();
        let m = VectorMask::structural(&visited);
        assert!(m.allows(1));
        assert!(!m.allows(2));
        let c = VectorMask::complement(&visited);
        assert!(!c.allows(1));
        assert!(c.allows(2));
    }
}
