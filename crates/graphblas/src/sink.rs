//! The [`StreamingSink`] trait: one streaming-insert interface for every
//! system under test.
//!
//! The paper's Fig. 2 compares hierarchical hypersparse GraphBLAS matrices
//! against flat GraphBLAS matrices, hierarchical D4M associative arrays and
//! four database analogues — all ingesting the *same* stream of
//! `(row, col, value)` updates.  `StreamingSink` is that common contract:
//! anything that can absorb accumulate-updates and report what it stored can
//! be driven by one generic harness (`hyperstream_cluster::measure::drive_sink`)
//! instead of a hand-rolled call site per system.
//!
//! Implementations in this workspace:
//!
//! * [`Matrix`] — the flat pending-tuple path (this crate);
//! * `HierMatrix`, `WindowedHierMatrix` — the hierarchical cascade
//!   (`hyperstream-hier`);
//! * `HierAssoc` — hierarchical D4M associative arrays (`hyperstream-d4m`);
//! * `TabletStore`, `ArrayStore`, `RowStore`, `DocStore` — the database
//!   analogues (`hyperstream-baselines`).

use crate::error::{GrbError, GrbResult};
use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::monoid::PlusMonoid;
use crate::ops::reduce::reduce_scalar;
use crate::types::ScalarType;

/// Validate that three parallel tuple slices have equal lengths.
pub fn check_tuple_lengths<A, B, C>(rows: &[A], cols: &[B], vals: &[C]) -> GrbResult<()> {
    if rows.len() != cols.len() || rows.len() != vals.len() {
        return Err(GrbError::DimensionMismatch {
            detail: "tuple slice lengths differ".into(),
        });
    }
    Ok(())
}

/// A system that ingests a stream of `(row, col, value)` accumulate-updates.
///
/// The contract mirrors the paper's update model: [`insert`] performs
/// `A(row, col) ⊕= val` under the `+` monoid of `V`; duplicates accumulate,
/// never overwrite.  Implementations may defer work (pending tuples,
/// memtables, cascades) — [`flush`] completes all of it, and callers should
/// flush before reading [`nvals`].  [`total_weight`] must be exact at any
/// time, because `+` is linear across any deferral structure — the property
/// the harness uses to verify that no system silently drops updates.
///
/// The trait is object-safe: the measurement harness drives every system
/// through `Box<dyn StreamingSink<u64>>`.
///
/// [`insert`]: StreamingSink::insert
/// [`flush`]: StreamingSink::flush
/// [`nvals`]: StreamingSink::nvals
/// [`total_weight`]: StreamingSink::total_weight
pub trait StreamingSink<V> {
    /// Short system name used in reports ("hier-graphblas", "tablet-store", …).
    fn sink_name(&self) -> &str;

    /// Apply one streaming update `A(row, col) += val`.
    fn insert(&mut self, row: Index, col: Index, val: V) -> GrbResult<()>;

    /// Apply a batch of updates given as parallel slices.
    ///
    /// The default loops over [`insert`](StreamingSink::insert);
    /// implementations with a cheaper bulk path (e.g. one cascade check per
    /// batch) should override it.
    fn insert_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[V]) -> GrbResult<()>
    where
        V: Copy,
    {
        check_tuple_lengths(rows, cols, vals)?;
        for i in 0..rows.len() {
            self.insert(rows[i], cols[i], vals[i])?;
        }
        Ok(())
    }

    /// Complete all deferred work (merge pending tuples, run outstanding
    /// cascades, flush memtables, refresh indexes).
    fn flush(&mut self) -> GrbResult<()>;

    /// Number of distinct `(row, col)` cells stored.
    ///
    /// Exact after a [`flush`](StreamingSink::flush); before one,
    /// implementations may have to do the settling work internally to
    /// answer, so the harness always flushes first.
    fn nvals(&self) -> usize;

    /// Sum of all weight the sink currently represents, as `f64`.
    ///
    /// Exact at any time (no flush required): accumulation under `+` is
    /// linear across pending buffers and hierarchy levels alike.  For
    /// non-evicting sinks this equals everything ever inserted, which is
    /// how the measurement harness verifies that no system silently drops
    /// updates.  Sinks that evict by design (e.g. a time-windowed hierarchy
    /// past its retention horizon) report only what they retain and must
    /// say so in their impl docs; they are not driven through the
    /// no-drop check.
    fn total_weight(&self) -> f64;
}

/// The flat pending-tuple path: `insert` appends to the pending buffer,
/// `flush` is [`Matrix::wait`] — the single-level ancestor of the paper's
/// hierarchy.
impl<T: ScalarType> StreamingSink<T> for Matrix<T> {
    fn sink_name(&self) -> &str {
        "flat-graphblas"
    }

    fn insert(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        self.accum_element(row, col, val)
    }

    fn insert_batch(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        self.accum_tuples(rows, cols, vals)
    }

    fn flush(&mut self) -> GrbResult<()> {
        self.wait();
        Ok(())
    }

    fn nvals(&self) -> usize {
        Matrix::nvals(self)
    }

    fn total_weight(&self) -> f64 {
        reduce_scalar(self, PlusMonoid).to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<S: StreamingSink<u64> + ?Sized>(sink: &mut S) {
        sink.insert(1, 2, 10).unwrap();
        sink.insert(1, 2, 5).unwrap();
        sink.insert_batch(&[3, 4], &[3, 4], &[7, 8]).unwrap();
        sink.flush().unwrap();
    }

    #[test]
    fn matrix_implements_sink() {
        let mut m = Matrix::<u64>::new(100, 100);
        drive(&mut m);
        assert_eq!(m.sink_name(), "flat-graphblas");
        assert_eq!(StreamingSink::nvals(&m), 3);
        assert_eq!(m.total_weight(), 30.0);
        assert_eq!(m.get(1, 2), Some(15));
    }

    #[test]
    fn sink_is_object_safe() {
        let mut sink: Box<dyn StreamingSink<u64>> = Box::new(Matrix::<u64>::new(10, 10));
        drive(&mut *sink);
        assert_eq!(sink.nvals(), 3);
        assert_eq!(sink.total_weight(), 30.0);
    }

    #[test]
    fn insert_validates_bounds() {
        let mut m = Matrix::<u64>::new(10, 10);
        assert!(StreamingSink::insert(&mut m, 10, 0, 1).is_err());
        assert!(StreamingSink::insert_batch(&mut m, &[1], &[1, 2], &[1]).is_err());
    }

    #[test]
    fn total_weight_sees_pending_tuples() {
        let mut m = Matrix::<u64>::new(10, 10);
        StreamingSink::insert(&mut m, 1, 1, 4).unwrap();
        // No flush yet: the weight must still be visible (linearity).
        assert_eq!(m.total_weight(), 4.0);
    }

    #[test]
    fn check_tuple_lengths_helper() {
        assert!(check_tuple_lengths(&[1u64], &[1u64], &[1u64]).is_ok());
        assert!(check_tuple_lengths(&[1u64], &[1u64, 2], &[1u64]).is_err());
    }
}
