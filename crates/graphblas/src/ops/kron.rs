//! Kronecker product (`GrB_kronecker`).
//!
//! Besides completing the GraphBLAS operation set, the Kronecker product is
//! the generator underlying Graph500/R-MAT power-law graphs, which is why a
//! hypersparse-safe implementation lives here and the workload crate builds
//! its synthetic streams on the same mathematics.

use crate::error::{GrbError, GrbResult};
use crate::matrix::Matrix;
use crate::ops::binary::Second;
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// `C = A ⊗_K B` with element-wise combination `op`:
/// `C(i_a * nrows(B) + i_b, j_a * ncols(B) + j_b) = op(A(i_a, j_a), B(i_b, j_b))`.
///
/// # Errors
/// Fails when the output dimensions would overflow the dimension cap.
pub fn kron<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    let nrows = a
        .nrows()
        .checked_mul(b.nrows())
        .ok_or_else(|| GrbError::InvalidValue("kron row dimension overflow".into()))?;
    let ncols = a
        .ncols()
        .checked_mul(b.ncols())
        .ok_or_else(|| GrbError::InvalidValue("kron col dimension overflow".into()))?;

    let (ar, ac, av) = a.extract_tuples();
    let (br, bc, bv) = b.extract_tuples();

    let mut rows = Vec::with_capacity(ar.len() * br.len());
    let mut cols = Vec::with_capacity(ar.len() * br.len());
    let mut vals = Vec::with_capacity(ar.len() * br.len());
    for i in 0..ar.len() {
        for j in 0..br.len() {
            rows.push(ar[i] * b.nrows() + br[j]);
            cols.push(ac[i] * b.ncols() + bc[j]);
            vals.push(op.apply(av[i], bv[j]));
        }
    }
    Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Plus, Times};

    fn m(nrows: u64, ncols: u64, entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn kron_identity_blocks() {
        // I2 (x) B places B on the two diagonal blocks.
        let i2 = m(2, 2, &[(0, 0, 1), (1, 1, 1)]);
        let b = m(2, 2, &[(0, 1, 5), (1, 0, 7)]);
        let c = kron(&i2, &b, Times).unwrap();
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.nvals(), 4);
        assert_eq!(c.get(0, 1), Some(5));
        assert_eq!(c.get(1, 0), Some(7));
        assert_eq!(c.get(2, 3), Some(5));
        assert_eq!(c.get(3, 2), Some(7));
        assert_eq!(c.get(0, 3), None);
    }

    #[test]
    fn kron_nvals_is_product() {
        let a = m(3, 3, &[(0, 0, 1), (1, 2, 2), (2, 1, 3)]);
        let b = m(2, 2, &[(0, 1, 10), (1, 1, 20)]);
        let c = kron(&a, &b, Times).unwrap();
        assert_eq!(c.nvals(), a.nvals() * b.nvals());
        // Spot check one entry: A(1,2)=2, B(1,1)=20 -> C(1*2+1, 2*2+1) = 40
        assert_eq!(c.get(3, 5), Some(40));
    }

    #[test]
    fn kron_dimension_overflow() {
        let a = Matrix::<i64>::new(1 << 40, 1 << 40);
        let b = Matrix::<i64>::new(1 << 40, 1 << 40);
        assert!(kron(&a, &b, Times).is_err());
    }

    #[test]
    fn repeated_kron_grows_power_law_structure() {
        // The R-MAT idea: repeated Kronecker powers of a small seed matrix
        // produce a skewed degree distribution.  Verify sizes stay exact.
        let seed = m(2, 2, &[(0, 0, 1), (0, 1, 1), (1, 0, 1)]);
        let k2 = kron(&seed, &seed, Times).unwrap();
        let k3 = kron(&k2, &seed, Times).unwrap();
        assert_eq!(k2.nrows(), 4);
        assert_eq!(k3.nrows(), 8);
        assert_eq!(k2.nvals(), 9);
        assert_eq!(k3.nvals(), 27);
    }
}
