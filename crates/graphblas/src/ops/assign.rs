//! Sub-matrix assignment (`GrB_assign`): write a small matrix into a region
//! of a larger one.

use crate::error::{GrbError, GrbResult};
use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// Assign `B` into `A` at offset `(row_offset, col_offset)`, combining with
/// existing entries using `accum` (`A(i0+i, j0+j) = accum(A(..), B(i, j))`).
///
/// Entries of `A` outside the assigned region are untouched.  This is the
/// building block for placing per-subnet matrices into a global traffic
/// matrix.
pub fn assign<T, Op>(
    a: &mut Matrix<T>,
    b: &Matrix<T>,
    row_offset: Index,
    col_offset: Index,
    accum: Op,
) -> GrbResult<()>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    let last_row = row_offset
        .checked_add(b.nrows())
        .ok_or_else(|| GrbError::InvalidValue("row offset overflow".into()))?;
    let last_col = col_offset
        .checked_add(b.ncols())
        .ok_or_else(|| GrbError::InvalidValue("col offset overflow".into()))?;
    if last_row > a.nrows() || last_col > a.ncols() {
        return Err(GrbError::DimensionMismatch {
            detail: format!(
                "assigning {}x{} at ({}, {}) exceeds target {}x{}",
                b.nrows(),
                b.ncols(),
                row_offset,
                col_offset,
                a.nrows(),
                a.ncols()
            ),
        });
    }
    let (rows, cols, vals) = b.extract_tuples();
    for i in 0..rows.len() {
        let r = rows[i] + row_offset;
        let c = cols[i] + col_offset;
        match a.get(r, c) {
            Some(existing) => {
                // Rebuild the single element with the accumulated value.
                // set_element is last-write-wins, so apply accum explicitly.
                let newv = accum.apply(existing, vals[i]);
                a.set_element(r, c, newv)?;
            }
            None => a.set_element(r, c, vals[i])?,
        }
    }
    a.wait_with(crate::ops::binary::Second);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Plus, Second};

    fn block() -> Matrix<u64> {
        Matrix::from_tuples(2, 2, &[0, 1], &[1, 0], &[7, 9], Plus).unwrap()
    }

    #[test]
    fn assign_into_empty_region() {
        let mut a = Matrix::<u64>::new(10, 10);
        assign(&mut a, &block(), 4, 4, Plus).unwrap();
        assert_eq!(a.get(4, 5), Some(7));
        assert_eq!(a.get(5, 4), Some(9));
        assert_eq!(a.nvals(), 2);
    }

    #[test]
    fn assign_accumulates_with_existing() {
        let mut a = Matrix::from_tuples(10, 10, &[4], &[5], &[100u64], Plus).unwrap();
        assign(&mut a, &block(), 4, 4, Plus).unwrap();
        assert_eq!(a.get(4, 5), Some(107));
        let mut a2 = Matrix::from_tuples(10, 10, &[4], &[5], &[100u64], Plus).unwrap();
        assign(&mut a2, &block(), 4, 4, Second).unwrap();
        assert_eq!(a2.get(4, 5), Some(7));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut a = Matrix::<u64>::new(3, 3);
        assert!(assign(&mut a, &block(), 2, 0, Plus).is_err());
        assert!(assign(&mut a, &block(), 0, 2, Plus).is_err());
        assert!(assign(&mut a, &block(), u64::MAX, 0, Plus).is_err());
    }

    #[test]
    fn untouched_entries_survive() {
        let mut a = Matrix::from_tuples(10, 10, &[0], &[0], &[55u64], Plus).unwrap();
        assign(&mut a, &block(), 4, 4, Plus).unwrap();
        assert_eq!(a.get(0, 0), Some(55));
        assert_eq!(a.nvals(), 3);
    }
}
