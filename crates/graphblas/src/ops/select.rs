//! Entry selection (the `GxB_select` extension): keep a subset of entries
//! chosen by position or value.

use crate::matrix::Matrix;
use crate::ops::binary::Second;
use crate::types::ScalarType;

/// Predicates understood by [`select`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectOp<T> {
    /// Keep entries strictly below the diagonal offset by `k` (`j - i < k`).
    Tril(i64),
    /// Keep entries strictly above the diagonal offset by `k` (`j - i > k`).
    Triu(i64),
    /// Keep diagonal entries (`j == i`).
    Diag,
    /// Drop diagonal entries (`j != i`).
    OffDiag,
    /// Keep entries whose value is not the additive identity.
    NonZero,
    /// Keep entries whose value equals the threshold.
    ValueEq(T),
    /// Keep entries whose value is strictly greater than the threshold.
    ValueGt(T),
    /// Keep entries whose value is strictly less than the threshold.
    ValueLt(T),
    /// Keep entries whose value is greater than or equal to the threshold.
    ValueGe(T),
}

impl<T: ScalarType> SelectOp<T> {
    /// Evaluate the predicate for entry `(row, col, value)`.
    pub fn keep(&self, row: u64, col: u64, val: T) -> bool {
        match *self {
            SelectOp::Tril(k) => (col as i128 - row as i128) < k as i128,
            SelectOp::Triu(k) => (col as i128 - row as i128) > k as i128,
            SelectOp::Diag => row == col,
            SelectOp::OffDiag => row != col,
            SelectOp::NonZero => !val.is_zero(),
            SelectOp::ValueEq(t) => val == t,
            SelectOp::ValueGt(t) => val > t,
            SelectOp::ValueLt(t) => val < t,
            SelectOp::ValueGe(t) => val >= t,
        }
    }
}

/// Keep only the entries of `A` satisfying the predicate.
pub fn select<T: ScalarType>(a: &Matrix<T>, op: SelectOp<T>) -> Matrix<T> {
    let (rows, cols, vals) = a.extract_tuples();
    let mut out_r = Vec::new();
    let mut out_c = Vec::new();
    let mut out_v = Vec::new();
    for i in 0..rows.len() {
        if op.keep(rows[i], cols[i], vals[i]) {
            out_r.push(rows[i]);
            out_c.push(cols[i]);
            out_v.push(vals[i]);
        }
    }
    Matrix::from_tuples(a.nrows(), a.ncols(), &out_r, &out_c, &out_v, Second)
        .expect("selected entries remain in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn m() -> Matrix<i64> {
        Matrix::from_tuples(
            10,
            10,
            &[0, 1, 2, 3, 5],
            &[0, 3, 2, 1, 5],
            &[0, 4, -2, 9, 7],
            Plus,
        )
        .unwrap()
    }

    #[test]
    fn triangular_selection() {
        let lower = select(&m(), SelectOp::Tril(0));
        assert_eq!(lower.nvals(), 1); // only (3,1)
        assert_eq!(lower.get(3, 1), Some(9));
        let upper = select(&m(), SelectOp::Triu(0));
        assert_eq!(upper.nvals(), 1); // only (1,3)
        assert_eq!(upper.get(1, 3), Some(4));
    }

    #[test]
    fn diagonal_selection() {
        let d = select(&m(), SelectOp::Diag);
        assert_eq!(d.nvals(), 3);
        assert_eq!(d.get(0, 0), Some(0));
        assert_eq!(d.get(2, 2), Some(-2));
        assert_eq!(d.get(5, 5), Some(7));
        let od = select(&m(), SelectOp::OffDiag);
        assert_eq!(od.nvals(), 2);
    }

    #[test]
    fn value_selection() {
        let nz = select(&m(), SelectOp::NonZero);
        assert_eq!(nz.nvals(), 4);
        let gt = select(&m(), SelectOp::ValueGt(4));
        assert_eq!(gt.nvals(), 2);
        let lt = select(&m(), SelectOp::ValueLt(0));
        assert_eq!(lt.nvals(), 1);
        let ge = select(&m(), SelectOp::ValueGe(4));
        assert_eq!(ge.nvals(), 3);
        let eq = select(&m(), SelectOp::ValueEq(9));
        assert_eq!(eq.nvals(), 1);
    }

    #[test]
    fn heavy_hitter_thresholding_workflow() {
        // Typical traffic-analysis use: keep only flows with >= 5 packets.
        let heavy = select(&m(), SelectOp::ValueGe(5));
        assert_eq!(heavy.nvals(), 2);
        assert!(heavy.get(3, 1).is_some());
        assert!(heavy.get(5, 5).is_some());
    }

    #[test]
    fn select_on_empty_and_offsets() {
        let e = Matrix::<i64>::new(4, 4);
        assert!(select(&e, SelectOp::Diag).is_empty());
        // Offset triangles: k=2 keeps entries with j-i > 2.
        let t = select(&m(), SelectOp::Triu(1));
        assert_eq!(t.nvals(), 1);
        assert_eq!(t.get(1, 3), Some(4));
        let t = select(&m(), SelectOp::Triu(2));
        assert!(t.is_empty());
    }
}
