//! Predefined commutative monoids.
//!
//! A monoid pairs an associative, commutative binary operator with its
//! identity.  The `Plus` monoid is the one the hierarchical hypersparse
//! matrix relies on: the cascade `A_{i+1} = A_{i+1} ⊕ A_i` only represents
//! the same object as the flat sum because `⊕` is associative and
//! commutative and because clearing a level corresponds to resetting it to
//! the identity-annihilated (empty) matrix.

use super::binary::{Land, Lor, Lxor, Max, Min, Plus, Times};
use super::{BinaryOp, Monoid};
use crate::types::ScalarType;

/// The `(+, 0)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlusMonoid;

/// The `(*, 1)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimesMonoid;

/// The `(min, +inf)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinMonoid;

/// The `(max, -inf)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxMonoid;

/// The `(logical-or, 0)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LorMonoid;

/// The `(logical-and, 1)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LandMonoid;

/// The `(logical-xor, 0)` monoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LxorMonoid;

impl<T: ScalarType> BinaryOp<T> for PlusMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Plus.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for PlusMonoid {
    fn identity(&self) -> T {
        T::zero()
    }
}

impl<T: ScalarType> BinaryOp<T> for TimesMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Times.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for TimesMonoid {
    fn identity(&self) -> T {
        T::one()
    }
}

impl<T: ScalarType> BinaryOp<T> for MinMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Min.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for MinMonoid {
    fn identity(&self) -> T {
        T::max_value()
    }
}

impl<T: ScalarType> BinaryOp<T> for MaxMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Max.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for MaxMonoid {
    fn identity(&self) -> T {
        T::min_value()
    }
}

impl<T: ScalarType> BinaryOp<T> for LorMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Lor.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for LorMonoid {
    fn identity(&self) -> T {
        T::zero()
    }
}

impl<T: ScalarType> BinaryOp<T> for LandMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Land.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for LandMonoid {
    fn identity(&self) -> T {
        T::one()
    }
}

impl<T: ScalarType> BinaryOp<T> for LxorMonoid {
    fn apply(&self, x: T, y: T) -> T {
        Lxor.apply(x, y)
    }
}
impl<T: ScalarType> Monoid<T> for LxorMonoid {
    fn identity(&self) -> T {
        T::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identity<M: Monoid<i64>>(m: M, samples: &[i64]) {
        for &x in samples {
            assert_eq!(m.apply(m.identity(), x), x, "left identity failed");
            assert_eq!(m.apply(x, m.identity()), x, "right identity failed");
        }
    }

    fn check_assoc_comm<M: Monoid<i64>>(m: M, samples: &[i64]) {
        for &a in samples {
            for &b in samples {
                assert_eq!(m.apply(a, b), m.apply(b, a), "commutativity failed");
                for &c in samples {
                    assert_eq!(
                        m.apply(m.apply(a, b), c),
                        m.apply(a, m.apply(b, c)),
                        "associativity failed"
                    );
                }
            }
        }
    }

    const SAMPLES: &[i64] = &[-7, -1, 0, 1, 2, 13, 1000];

    #[test]
    fn plus_monoid_laws() {
        check_identity(PlusMonoid, SAMPLES);
        check_assoc_comm(PlusMonoid, SAMPLES);
    }

    #[test]
    fn times_monoid_laws() {
        check_identity(TimesMonoid, SAMPLES);
        check_assoc_comm(TimesMonoid, SAMPLES);
    }

    #[test]
    fn min_max_monoid_laws() {
        check_identity(MinMonoid, SAMPLES);
        check_assoc_comm(MinMonoid, SAMPLES);
        check_identity(MaxMonoid, SAMPLES);
        check_assoc_comm(MaxMonoid, SAMPLES);
    }

    #[test]
    fn logical_monoid_laws() {
        // logical monoids operate on truthiness; use 0/1 samples
        let bits: &[i64] = &[0, 1];
        check_identity(LorMonoid, bits);
        check_assoc_comm(LorMonoid, bits);
        check_identity(LandMonoid, bits);
        check_assoc_comm(LandMonoid, bits);
        check_identity(LxorMonoid, bits);
        check_assoc_comm(LxorMonoid, bits);
    }

    #[test]
    fn float_identities() {
        let m = MinMonoid;
        assert_eq!(Monoid::<f64>::identity(&m), f64::INFINITY);
        let m = MaxMonoid;
        assert_eq!(Monoid::<f64>::identity(&m), f64::NEG_INFINITY);
        let m = PlusMonoid;
        assert_eq!(Monoid::<f64>::identity(&m), 0.0);
    }
}
