//! Apply a unary operator to every stored entry — `C = f(A)`.

use crate::matrix::Matrix;
use crate::ops::binary::Second;
use crate::ops::UnaryOp;
use crate::types::ScalarType;

/// `C(i,j) = f(A(i,j))` for every stored entry of `A`.
///
/// The output pattern equals the input pattern even if `f` maps a value to
/// zero (GraphBLAS keeps explicit zeros); use
/// [`select`](crate::ops::select::select) to drop entries.
pub fn apply<T, Op>(a: &Matrix<T>, op: Op) -> Matrix<T>
where
    T: ScalarType,
    Op: UnaryOp<T>,
{
    let (rows, cols, vals) = a.extract_tuples();
    let mapped: Vec<T> = vals.into_iter().map(|v| op.apply(v)).collect();
    Matrix::from_tuples(a.nrows(), a.ncols(), &rows, &cols, &mapped, Second)
        .expect("apply preserves coordinates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::unary::{AInv, Abs, FnUnaryOp, One};

    fn m() -> Matrix<i64> {
        Matrix::from_tuples(16, 16, &[0, 3, 5], &[1, 2, 3], &[-4, 9, 0], Plus).unwrap()
    }

    #[test]
    fn one_builds_pattern_matrix() {
        let p = apply(&m(), One);
        assert_eq!(p.nvals(), 3);
        assert_eq!(p.get(0, 1), Some(1));
        assert_eq!(p.get(3, 2), Some(1));
        assert_eq!(p.get(5, 3), Some(1));
    }

    #[test]
    fn abs_and_ainv() {
        let a = apply(&m(), Abs);
        assert_eq!(a.get(0, 1), Some(4));
        let n = apply(&m(), AInv);
        assert_eq!(n.get(3, 2), Some(-9));
    }

    #[test]
    fn zero_results_are_kept_in_pattern() {
        let z = apply(&m(), FnUnaryOp::new(|_x: i64| 0));
        assert_eq!(z.nvals(), 3);
        assert_eq!(z.get(0, 1), Some(0));
    }

    #[test]
    fn apply_to_empty() {
        let e = Matrix::<i64>::new(4, 4);
        assert!(apply(&e, One).is_empty());
    }

    #[test]
    fn apply_includes_pending() {
        let mut a = Matrix::<i64>::new(4, 4);
        a.accum_element(1, 1, -3).unwrap();
        assert_eq!(apply(&a, Abs).get(1, 1), Some(3));
    }
}
