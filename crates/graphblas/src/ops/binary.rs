//! Predefined binary operators (the `GrB_*` built-in operator set).

use super::BinaryOp;
use crate::types::ScalarType;

/// `z = x + y` (logical OR for `bool`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Plus;

/// `z = x - y`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Minus;

/// `z = x * y` (logical AND for `bool`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Times;

/// `z = x / y` (division by zero yields zero, matching SuiteSparse integer
/// semantics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Div;

/// `z = min(x, y)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

/// `z = max(x, y)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

/// `z = x` — keep the first operand.  Useful as a "no accumulate, last write
/// does not win" policy and as the multiplicative op of structural semirings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct First;

/// `z = y` — keep the second operand ("last write wins").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Second;

/// Logical AND of the truthiness of both operands, returned as `one()`/`zero()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Land;

/// Logical OR of the truthiness of both operands, returned as `one()`/`zero()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lor;

/// Logical XOR of the truthiness of both operands, returned as `one()`/`zero()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lxor;

/// `z = 1` if `x == y` else `0` (ISEQ).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsEq;

/// `z = 1` if `x != y` else `0` (ISNE).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsNe;

impl<T: ScalarType> BinaryOp<T> for Plus {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        x.add(y)
    }
}

impl<T: ScalarType> BinaryOp<T> for Minus {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        x.sub(y)
    }
}

impl<T: ScalarType> BinaryOp<T> for Times {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        x.mul(y)
    }
}

impl<T: ScalarType> BinaryOp<T> for Div {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        x.div(y)
    }
}

impl<T: ScalarType> BinaryOp<T> for Min {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        x.min_val(y)
    }
}

impl<T: ScalarType> BinaryOp<T> for Max {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        x.max_val(y)
    }
}

impl<T: ScalarType> BinaryOp<T> for First {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, _y: T) -> T {
        x
    }
}

impl<T: ScalarType> BinaryOp<T> for Second {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, _x: T, y: T) -> T {
        y
    }
}

impl<T: ScalarType> BinaryOp<T> for Land {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        if !x.is_zero() && !y.is_zero() {
            T::one()
        } else {
            T::zero()
        }
    }
}

impl<T: ScalarType> BinaryOp<T> for Lor {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        if !x.is_zero() || !y.is_zero() {
            T::one()
        } else {
            T::zero()
        }
    }
}

impl<T: ScalarType> BinaryOp<T> for Lxor {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        if x.is_zero() != y.is_zero() {
            T::one()
        } else {
            T::zero()
        }
    }
}

impl<T: ScalarType> BinaryOp<T> for IsEq {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        if x == y {
            T::one()
        } else {
            T::zero()
        }
    }
}

impl<T: ScalarType> BinaryOp<T> for IsNe {
    const SPECULATION_SAFE: bool = true;
    fn apply(&self, x: T, y: T) -> T {
        if x != y {
            T::one()
        } else {
            T::zero()
        }
    }
}

/// A binary operator defined by an arbitrary function, for user-defined
/// algebra (the GraphBLAS `GrB_BinaryOp_new` equivalent).
#[derive(Clone, Copy)]
pub struct FnBinaryOp<T> {
    f: fn(T, T) -> T,
}

impl<T> FnBinaryOp<T> {
    /// Wrap a plain function pointer as a binary operator.
    pub fn new(f: fn(T, T) -> T) -> Self {
        Self { f }
    }
}

impl<T: ScalarType> BinaryOp<T> for FnBinaryOp<T> {
    fn apply(&self, x: T, y: T) -> T {
        (self.f)(x, y)
    }
}

impl<T> std::fmt::Debug for FnBinaryOp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnBinaryOp")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        assert_eq!(BinaryOp::<i64>::apply(&Plus, 3, 4), 7);
        assert_eq!(BinaryOp::<i64>::apply(&Minus, 3, 4), -1);
        assert_eq!(BinaryOp::<i64>::apply(&Times, 3, 4), 12);
        assert_eq!(BinaryOp::<i64>::apply(&Div, 12, 4), 3);
        assert_eq!(BinaryOp::<i64>::apply(&Div, 12, 0), 0);
        assert_eq!(BinaryOp::<f64>::apply(&Plus, 0.5, 0.25), 0.75);
    }

    #[test]
    fn ordering_ops() {
        assert_eq!(BinaryOp::<i64>::apply(&Min, 3, -4), -4);
        assert_eq!(BinaryOp::<i64>::apply(&Max, 3, -4), 3);
        assert_eq!(BinaryOp::<f64>::apply(&Min, 1.5, 2.5), 1.5);
    }

    #[test]
    fn selection_ops() {
        assert_eq!(BinaryOp::<u32>::apply(&First, 10, 20), 10);
        assert_eq!(BinaryOp::<u32>::apply(&Second, 10, 20), 20);
    }

    #[test]
    fn logical_ops_on_numeric_values() {
        assert_eq!(BinaryOp::<u32>::apply(&Land, 5, 7), 1);
        assert_eq!(BinaryOp::<u32>::apply(&Land, 5, 0), 0);
        assert_eq!(BinaryOp::<u32>::apply(&Lor, 0, 7), 1);
        assert_eq!(BinaryOp::<u32>::apply(&Lor, 0, 0), 0);
        assert_eq!(BinaryOp::<u32>::apply(&Lxor, 5, 0), 1);
        assert_eq!(BinaryOp::<u32>::apply(&Lxor, 5, 7), 0);
    }

    #[test]
    fn comparison_ops() {
        assert_eq!(BinaryOp::<i32>::apply(&IsEq, 4, 4), 1);
        assert_eq!(BinaryOp::<i32>::apply(&IsEq, 4, 5), 0);
        assert_eq!(BinaryOp::<i32>::apply(&IsNe, 4, 5), 1);
        assert_eq!(BinaryOp::<i32>::apply(&IsNe, 4, 4), 0);
    }

    #[test]
    fn fn_binary_op() {
        let saturating = FnBinaryOp::new(|a: u8, b: u8| a.saturating_add(b));
        assert_eq!(saturating.apply(200, 100), 255);
        assert_eq!(format!("{saturating:?}"), "FnBinaryOp");
    }

    #[test]
    fn bool_specialisations() {
        assert!(BinaryOp::<bool>::apply(&Plus, true, false));
        assert!(!BinaryOp::<bool>::apply(&Times, true, false));
        assert!(!BinaryOp::<bool>::apply(&Min, true, false));
        assert!(BinaryOp::<bool>::apply(&Max, true, false));
    }
}
