//! The reusable sparse accumulator (SPA) behind the semiring kernels.
//!
//! A row-wise Gustavson product accumulates an unpredictable set of output
//! columns per row.  The previous kernels used a fresh `BTreeMap` per row —
//! one heap allocation per node plus pointer-chasing on every product.
//! [`SpaScratch`] replaces it with two allocation-reusing strategies picked
//! per row from the row's column span and flop count:
//!
//! | condition | strategy | cost per row |
//! |-----------|----------|--------------|
//! | narrow span (`span ≤ 4096`) or dense band (`span ≤ 4·flops`), span ≤ 2^18 | **dense band**: value array + epoch-stamped marks indexed by `col - lo`; collisions fold in place, drain scans the band | `O(flops + span)` |
//! | otherwise (hypersparse row at 2^64 dims) | **sorted scatter**: push every product, `sort_unstable` by `(col, seq)`, fold runs left-to-right | `O(flops · log flops)` |
//!
//! Both strategies reproduce the `BTreeMap` fold *exactly*: products for a
//! column are combined in arrival order (the `seq` tiebreak keeps the
//! unstable sort order-preserving), so results are byte-identical to the
//! retained `*_btree` kernels for any `⊕` — the equivalence proptests pin
//! this.  The scratch is allocation-free across rows and across calls when
//! held by the caller (mirroring `MergeScratch`): the band, marks and
//! scatter buffer only ever grow.
//!
//! Strategy counters (process-global, relaxed atomics, committed once per
//! kernel call) record rows and flops per strategy so the `algo_rate` bench
//! can report *why* a workload got faster — see [`spa_kernel_stats`].

use crate::index::Index;
use crate::ops::BinaryOp;
use crate::types::ScalarType;
use std::sync::atomic::{AtomicU64, Ordering};

/// Spans at or below this width always use the dense band: the drain scan
/// is cheap enough that the `O(flops · log flops)` sort can never win.
pub const SPA_DENSE_SPAN: u64 = 4096;

/// Above [`SPA_DENSE_SPAN`], the band is used while the scan cost stays
/// within this factor of the flops (band occupancy ≥ 1/4).
pub const SPA_DENSE_OCCUPANCY: u64 = 4;

/// Hard cap on the band width (2^18 entries) so a single skewed row cannot
/// balloon the scratch; wider rows fall back to sorted scatter.
pub const SPA_DENSE_SPAN_CAP: u64 = 1 << 18;

static DENSE_ROWS: AtomicU64 = AtomicU64::new(0);
static DENSE_FLOPS: AtomicU64 = AtomicU64::new(0);
static SCATTER_ROWS: AtomicU64 = AtomicU64::new(0);
static SCATTER_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global SPA strategy counters: accumulator rows
/// and multiply–add products routed through each strategy since process
/// start (or the last [`reset_spa_kernel_stats`]).
///
/// Like [`merge_kernel_stats`](crate::formats::merge::merge_kernel_stats),
/// the counters are process-wide and updated with relaxed atomics once per
/// kernel call — a reporting facility, cheap enough to stay always on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaKernelStats {
    /// Accumulator rows answered by the dense band.
    pub dense_rows: u64,
    /// Products folded through the dense band.
    pub dense_flops: u64,
    /// Accumulator rows answered by sorted scatter.
    pub scatter_rows: u64,
    /// Products folded through sorted scatter.
    pub scatter_flops: u64,
}

impl SpaKernelStats {
    /// Total products across both strategies.
    pub fn total_flops(&self) -> u64 {
        self.dense_flops + self.scatter_flops
    }

    /// Total accumulator rows across both strategies.
    pub fn total_rows(&self) -> u64 {
        self.dense_rows + self.scatter_rows
    }
}

/// Read the process-global SPA strategy counters.
pub fn spa_kernel_stats() -> SpaKernelStats {
    SpaKernelStats {
        dense_rows: DENSE_ROWS.load(Ordering::Relaxed),
        dense_flops: DENSE_FLOPS.load(Ordering::Relaxed),
        scatter_rows: SCATTER_ROWS.load(Ordering::Relaxed),
        scatter_flops: SCATTER_FLOPS.load(Ordering::Relaxed),
    }
}

/// Reset the process-global SPA strategy counters to zero (benchmark
/// harness use; concurrent kernels may land counts immediately after).
pub fn reset_spa_kernel_stats() {
    DENSE_ROWS.store(0, Ordering::Relaxed);
    DENSE_FLOPS.store(0, Ordering::Relaxed);
    SCATTER_ROWS.store(0, Ordering::Relaxed);
    SCATTER_FLOPS.store(0, Ordering::Relaxed);
}

/// Accumulation strategy chosen for one output row — see the module docs
/// for the selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaStrategy {
    /// Epoch-marked value band over the row's column span.
    DenseBand,
    /// Push-all then `sort_unstable` + fold.
    SortedScatter,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Idle,
    Dense { lo: Index, hi: Index },
    Scatter,
}

/// The reusable sparse accumulator.  One output row at a time:
/// [`begin`](SpaScratch::begin) with the strategy from
/// [`choose`](SpaScratch::choose), [`push`](SpaScratch::push) every
/// product, [`drain`](SpaScratch::drain) the combined entries in ascending
/// column order.  Call [`commit_stats`](SpaScratch::commit_stats) once per
/// kernel call to flush the local tally to the process-global counters.
#[derive(Debug)]
pub struct SpaScratch<T> {
    // Dense band: `band[col - lo]` is live when `mark[col - lo] == epoch`.
    band: Vec<T>,
    mark: Vec<u32>,
    epoch: u32,
    // Sorted scatter: `(col, arrival seq, product)`.  The seq tiebreak
    // makes the unstable sort reproduce arrival order within a column.
    pairs: Vec<(Index, u32, T)>,
    mode: Mode,
    pushed: u64,
    // Local tally, committed to the process-global atomics once per call.
    dense_rows: u64,
    dense_flops: u64,
    scatter_rows: u64,
    scatter_flops: u64,
}

impl<T: ScalarType> Default for SpaScratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ScalarType> SpaScratch<T> {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            band: Vec::new(),
            mark: Vec::new(),
            epoch: 0,
            pairs: Vec::new(),
            mode: Mode::Idle,
            pushed: 0,
            dense_rows: 0,
            dense_flops: 0,
            scatter_rows: 0,
            scatter_flops: 0,
        }
    }

    /// Pick the strategy for a row whose products fall in `lo..=hi` and
    /// number `flops`.
    pub fn choose(&self, lo: Index, hi: Index, flops: usize) -> SpaStrategy {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        if span <= SPA_DENSE_SPAN_CAP
            && (span <= SPA_DENSE_SPAN
                || span <= (flops as u64).saturating_mul(SPA_DENSE_OCCUPANCY))
        {
            SpaStrategy::DenseBand
        } else {
            SpaStrategy::SortedScatter
        }
    }

    /// Start accumulating a row under `strategy`; `lo..=hi` is only read by
    /// the dense band (and must cover every pushed column).
    pub fn begin(&mut self, strategy: SpaStrategy, lo: Index, hi: Index) {
        self.pushed = 0;
        match strategy {
            SpaStrategy::DenseBand => {
                let width = (hi - lo + 1) as usize;
                if self.mark.len() < width {
                    self.mark.resize(width, 0);
                    self.band.resize(width, T::zero());
                }
                // Epoch stamping skips the O(width) clear; on wrap, clear
                // once and restart at epoch 1.
                self.epoch = self.epoch.wrapping_add(1);
                if self.epoch == 0 {
                    self.mark.iter_mut().for_each(|m| *m = 0);
                    self.epoch = 1;
                }
                self.mode = Mode::Dense { lo, hi };
            }
            SpaStrategy::SortedScatter => {
                self.pairs.clear();
                self.mode = Mode::Scatter;
            }
        }
    }

    /// Accumulate one product into column `col` under `add`.
    #[inline]
    pub fn push<A: BinaryOp<T>>(&mut self, col: Index, val: T, add: A) {
        self.pushed += 1;
        match self.mode {
            Mode::Dense { lo, .. } => {
                let k = (col - lo) as usize;
                if self.mark[k] == self.epoch {
                    self.band[k] = add.apply(self.band[k], val);
                } else {
                    self.mark[k] = self.epoch;
                    self.band[k] = val;
                }
            }
            Mode::Scatter => {
                // Rows beyond 2^32 products would alias the seq tiebreak;
                // such a row is out of reach for this workload (hours of
                // flops) and only affects non-commutative ⊕ ordering.
                let seq = self.pairs.len() as u32;
                self.pairs.push((col, seq, val));
            }
            Mode::Idle => unreachable!("SpaScratch::push before begin"),
        }
    }

    /// Emit the combined `(col, value)` entries in ascending column order
    /// and return the scratch to idle.
    pub fn drain<A: BinaryOp<T>>(&mut self, add: A, out: &mut dyn FnMut(Index, T)) {
        match self.mode {
            Mode::Dense { lo, hi } => {
                self.dense_rows += 1;
                self.dense_flops += self.pushed;
                let width = (hi - lo + 1) as usize;
                for k in 0..width {
                    if self.mark[k] == self.epoch {
                        out(lo + k as Index, self.band[k]);
                    }
                }
            }
            Mode::Scatter => {
                self.scatter_rows += 1;
                self.scatter_flops += self.pushed;
                self.pairs.sort_unstable_by_key(|&(c, s, _)| (c, s));
                let mut it = self.pairs.iter();
                if let Some(&(first_col, _, first_val)) = it.next() {
                    let (mut col, mut acc) = (first_col, first_val);
                    for &(c, _, v) in it {
                        if c == col {
                            acc = add.apply(acc, v);
                        } else {
                            out(col, acc);
                            col = c;
                            acc = v;
                        }
                    }
                    out(col, acc);
                }
            }
            Mode::Idle => {}
        }
        self.mode = Mode::Idle;
    }

    /// Flush the per-call tally into the process-global counters.
    pub fn commit_stats(&mut self) {
        if self.dense_rows != 0 {
            DENSE_ROWS.fetch_add(self.dense_rows, Ordering::Relaxed);
            DENSE_FLOPS.fetch_add(self.dense_flops, Ordering::Relaxed);
        }
        if self.scatter_rows != 0 {
            SCATTER_ROWS.fetch_add(self.scatter_rows, Ordering::Relaxed);
            SCATTER_FLOPS.fetch_add(self.scatter_flops, Ordering::Relaxed);
        }
        self.dense_rows = 0;
        self.dense_flops = 0;
        self.scatter_rows = 0;
        self.scatter_flops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Min, Plus};

    fn run_row<T: ScalarType, A: BinaryOp<T>>(
        spa: &mut SpaScratch<T>,
        strategy: SpaStrategy,
        pushes: &[(Index, T)],
        add: A,
    ) -> Vec<(Index, T)> {
        let lo = pushes.iter().map(|p| p.0).min().unwrap();
        let hi = pushes.iter().map(|p| p.0).max().unwrap();
        spa.begin(strategy, lo, hi);
        for &(c, v) in pushes {
            spa.push(c, v, add);
        }
        let mut out = Vec::new();
        spa.drain(add, &mut |c, v| out.push((c, v)));
        out
    }

    #[test]
    fn both_strategies_fold_identically() {
        let pushes: &[(Index, u64)] = &[(9, 1), (3, 2), (9, 4), (3, 8), (7, 16), (9, 32)];
        let mut spa = SpaScratch::new();
        let dense = run_row(&mut spa, SpaStrategy::DenseBand, pushes, Plus);
        let scatter = run_row(&mut spa, SpaStrategy::SortedScatter, pushes, Plus);
        assert_eq!(dense, vec![(3, 10), (7, 16), (9, 37)]);
        assert_eq!(dense, scatter);
        let dense = run_row(&mut spa, SpaStrategy::DenseBand, pushes, Min);
        let scatter = run_row(&mut spa, SpaStrategy::SortedScatter, pushes, Min);
        assert_eq!(dense, vec![(3, 2), (7, 16), (9, 1)]);
        assert_eq!(dense, scatter);
    }

    #[test]
    fn epoch_reuse_does_not_leak_between_rows() {
        let mut spa = SpaScratch::<u64>::new();
        let a = run_row(&mut spa, SpaStrategy::DenseBand, &[(5, 1), (6, 2)], Plus);
        assert_eq!(a, vec![(5, 1), (6, 2)]);
        // Same band slots, different row: nothing from the first row shows.
        let b = run_row(&mut spa, SpaStrategy::DenseBand, &[(6, 7)], Plus);
        assert_eq!(b, vec![(6, 7)]);
    }

    #[test]
    fn hypersparse_columns_take_scatter() {
        let spa = SpaScratch::<u64>::new();
        // Two columns 2^40 apart: span blows the cap regardless of flops.
        assert_eq!(
            spa.choose(0, 1 << 40, 1_000_000),
            SpaStrategy::SortedScatter
        );
        // A tight band is dense even with few flops.
        assert_eq!(spa.choose(100, 200, 2), SpaStrategy::DenseBand);
        // Mid-width band: dense only when occupancy is high enough.
        assert_eq!(spa.choose(0, 99_999, 30_000), SpaStrategy::DenseBand);
        assert_eq!(spa.choose(0, 99_999, 10), SpaStrategy::SortedScatter);
    }

    #[test]
    fn stats_tally_commits_once() {
        reset_spa_kernel_stats();
        let mut spa = SpaScratch::<u64>::new();
        run_row(&mut spa, SpaStrategy::DenseBand, &[(1, 1), (2, 2)], Plus);
        run_row(&mut spa, SpaStrategy::SortedScatter, &[(1, 1)], Plus);
        // Nothing global until the commit (other test threads may also be
        // committing, so check deltas as lower bounds).
        let pre = spa_kernel_stats();
        spa.commit_stats();
        let post = spa_kernel_stats();
        assert!(post.dense_rows - pre.dense_rows >= 1);
        assert!(post.scatter_rows - pre.scatter_rows >= 1);
        assert!(post.total_flops() - pre.total_flops() >= 3);
    }
}
