//! Matrix transpose.

use crate::matrix::Matrix;
use crate::ops::binary::Second;
use crate::types::ScalarType;

/// `C = Aᵀ`.
///
/// Cost is `O(nnz log nnz)` (a rebuild keyed by the swapped coordinates);
/// for a traffic matrix this converts "traffic by source" into "traffic by
/// destination".
pub fn transpose<T: ScalarType>(a: &Matrix<T>) -> Matrix<T> {
    let (rows, cols, vals) = a.extract_tuples();
    Matrix::from_tuples(a.ncols(), a.nrows(), &cols, &rows, &vals, Second)
        .expect("transposed tuples are within bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::ewise_add::ewise_add;

    fn m(nrows: u64, ncols: u64, entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn transpose_swaps_coordinates_and_dims() {
        let a = m(4, 8, &[(0, 7, 1), (3, 2, 5)]);
        let t = transpose(&a);
        assert_eq!(t.nrows(), 8);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.get(7, 0), Some(1));
        assert_eq!(t.get(2, 3), Some(5));
        assert_eq!(t.get(0, 7), None);
        assert_eq!(t.nvals(), 2);
    }

    #[test]
    fn double_transpose_is_identity() {
        let a = m(100, 100, &[(1, 2, 3), (50, 60, -7), (99, 0, 4)]);
        let tt = transpose(&transpose(&a));
        assert_eq!(tt.extract_tuples(), a.extract_tuples());
        assert_eq!(tt.nrows(), a.nrows());
    }

    #[test]
    fn transpose_of_empty() {
        let a = Matrix::<i64>::new(5, 9);
        let t = transpose(&a);
        assert!(t.is_empty());
        assert_eq!(t.nrows(), 9);
        assert_eq!(t.ncols(), 5);
    }

    #[test]
    fn symmetrize_with_transpose() {
        let a = m(10, 10, &[(1, 2, 3)]);
        let sym = ewise_add(&a, &transpose(&a), Plus);
        assert_eq!(sym.get(1, 2), Some(3));
        assert_eq!(sym.get(2, 1), Some(3));
    }

    #[test]
    fn pending_tuples_transposed() {
        let mut a = Matrix::<i64>::new(10, 20);
        a.accum_element(3, 15, 9).unwrap();
        let t = transpose(&a);
        assert_eq!(t.get(15, 3), Some(9));
    }
}
