//! Reader-native semiring kernels: products driven directly off DCSR level
//! slices, so `mxm`/`mxv`/`vxm` over a live hierarchy or snapshot never
//! materialize `Σ levels`.
//!
//! A [`CursorReader`] exposes its settled content as level slices whose sum
//! under the `+` monoid of the value type is the represented matrix.  The
//! kernels here walk those slices with [`LevelCursors`]:
//!
//! * operand rows that live in a **single** level are consumed as raw
//!   slices (the common hypersparse case — level row collisions are rare);
//! * rows split across levels are first folded under `+` into a reusable
//!   buffer, because `⊗` must see the *combined* cell value (`⊗` does not
//!   distribute over `+` for e.g. min-plus), then consumed like any row.
//!
//! Accumulation reuses the same [`SpaScratch`] as the flat kernels, so a
//! reader-native product is byte-identical to the flat product over the
//! materialized sum — the `tests/algo_equivalence.rs` proptests pin this
//! across cut schedules, shard counts and snapshots.  Masked duals take the
//! structural [`Mask`]/[`VectorMask`]; the BFS frontier push uses the
//! complemented vector mask to skip visited vertices before any product is
//! formed.
//!
//! The pattern push ([`vxm_pattern_levels`]) is the frontier kernel shared
//! by BFS (add = min) and pagerank (add = plus): `w(j) = ⊕ u(i)` over the
//! *distinct* stored cells `(i, j)`, values ignored.  [`PatternAdd`] names
//! the two monoids in non-generic form so the sharded engine can ship the
//! push over its query channel.

use crate::cursor::{merged_row_into, LevelCursors};
use crate::error::{GrbError, GrbResult};
use crate::formats::dcsr::Dcsr;
use crate::index::Index;
use crate::mask::{Mask, VectorMask};
use crate::matrix::Matrix;
use crate::ops::binary::Plus;
use crate::ops::spa::{SpaScratch, SpaStrategy};
use crate::ops::{BinaryOp, Semiring};
use crate::reader::CursorReader;
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// Validate that every level matches the claimed logical dimensions.
fn check_levels<T: ScalarType>(
    dims: (Index, Index),
    levels: &[&Dcsr<T>],
    what: &str,
) -> GrbResult<()> {
    for d in levels {
        if d.nrows() != dims.0 || d.ncols() != dims.1 {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "{what} level is {}x{} but reader claims {}x{}",
                    d.nrows(),
                    d.ncols(),
                    dims.0,
                    dims.1
                ),
            });
        }
    }
    Ok(())
}

/// One gathered operand row: a raw slice pair when a single level holds the
/// row, or a range of the fold arena when levels collide.
enum Hit<'a, T> {
    Slice(T, &'a [Index], &'a [T]),
    Arena(T, usize, usize),
}

/// Gather row `row` of `levels` (combined under `+`) and record it as a
/// [`Hit`] scaled by `coeff`; returns `(first_col, last_col, nnz)` or
/// `None` when the row is empty everywhere.
#[allow(clippy::too_many_arguments)]
fn gather_row<'a, T: ScalarType>(
    levels: &[&'a Dcsr<T>],
    row: Index,
    coeff: T,
    hits: &mut Vec<Hit<'a, T>>,
    arena: &mut Vec<(Index, T)>,
    tmp: &mut Vec<(Index, T)>,
) -> Option<(Index, Index, usize)> {
    let mut single: Option<(&'a [Index], &'a [T])> = None;
    let mut n_parts = 0usize;
    for d in levels {
        if let Some(part) = d.row(row) {
            n_parts += 1;
            single = Some(part);
        }
    }
    match n_parts {
        0 => None,
        1 => {
            let (cols, vals) = single.expect("one part recorded");
            hits.push(Hit::Slice(coeff, cols, vals));
            Some((cols[0], *cols.last().expect("non-empty row"), cols.len()))
        }
        _ => {
            merged_row_into(levels, row, Plus, tmp);
            let start = arena.len();
            arena.extend_from_slice(tmp);
            hits.push(Hit::Arena(coeff, start, arena.len()));
            let lo = tmp.first().expect("colliding row is non-empty").0;
            let hi = tmp.last().expect("colliding row is non-empty").0;
            Some((lo, hi, tmp.len()))
        }
    }
}

/// `C = A ⊕.⊗ B` with both operands given as level slices.  `adims`/`bdims`
/// are the logical `(nrows, ncols)` the readers claim (needed because a
/// slice list may be empty).
pub fn mxm_levels<T, S>(
    adims: (Index, Index),
    bdims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    b_levels: &[&Dcsr<T>],
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    mxm_levels_core(
        adims,
        bdims,
        a_levels,
        b_levels,
        semiring,
        None::<&Mask<'_, T>>,
        spa,
    )
}

/// Masked [`mxm_levels`]: only output positions the structural mask allows
/// are kept (checked at drain time, after accumulation).
pub fn mxm_levels_masked<T, S, M>(
    adims: (Index, Index),
    bdims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    b_levels: &[&Dcsr<T>],
    semiring: S,
    mask: &Mask<'_, M>,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
{
    mxm_levels_core(adims, bdims, a_levels, b_levels, semiring, Some(mask), spa)
}

fn mxm_levels_core<T, S, M>(
    adims: (Index, Index),
    bdims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    b_levels: &[&Dcsr<T>],
    semiring: S,
    mask: Option<&Mask<'_, M>>,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
{
    if adims.1 != bdims.0 {
        return Err(GrbError::DimensionMismatch {
            detail: format!(
                "inner dimensions differ: A is {}x{}, B is {}x{}",
                adims.0, adims.1, bdims.0, bdims.1
            ),
        });
    }
    check_levels(adims, a_levels, "A")?;
    check_levels(bdims, b_levels, "B")?;

    let add = semiring.add();
    let mul = semiring.mul();
    let mut row_ids = Vec::new();
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();

    let mut cur = LevelCursors::new(a_levels);
    let mut a_row: Vec<(Index, T)> = Vec::new();
    let mut hits: Vec<Hit<'_, T>> = Vec::new();
    let mut arena: Vec<(Index, T)> = Vec::new();
    let mut tmp: Vec<(Index, T)> = Vec::new();

    while let Some(i) = cur.next_row() {
        a_row.clear();
        cur.fold_row(Plus, &mut |k, aik| a_row.push((k, aik)));

        hits.clear();
        arena.clear();
        let (mut lo, mut hi, mut flops) = (Index::MAX, 0u64, 0usize);
        for &(k, aik) in &a_row {
            if let Some((l, h, n)) = gather_row(b_levels, k, aik, &mut hits, &mut arena, &mut tmp) {
                lo = lo.min(l);
                hi = hi.max(h);
                flops += n;
            }
        }
        if flops == 0 {
            continue;
        }
        spa.begin(spa.choose(lo, hi, flops), lo, hi);
        for hit in &hits {
            match *hit {
                Hit::Slice(aik, cols, vs) => {
                    for (j_idx, &j) in cols.iter().enumerate() {
                        spa.push(j, mul.apply(aik, vs[j_idx]), add);
                    }
                }
                Hit::Arena(aik, start, end) => {
                    for &(j, v) in &arena[start..end] {
                        spa.push(j, mul.apply(aik, v), add);
                    }
                }
            }
        }
        let before = col_idx.len();
        spa.drain(add, &mut |j, v| {
            if mask.map_or(true, |m| m.allows(i, j)) {
                col_idx.push(j);
                vals.push(v);
            }
        });
        if col_idx.len() > before {
            row_ids.push(i);
            row_ptr.push(col_idx.len());
        }
    }
    spa.commit_stats();
    let d = Dcsr::try_from_raw_parts(adims.0, bdims.1, row_ids, row_ptr, col_idx, vals)?;
    Ok(Matrix::from_dcsr(d))
}

/// `w = A ⊕.⊗ u` off level slices: one cursor sweep over A's non-empty
/// rows, each folded under `+` and probed against `u` with a scalar
/// accumulator — no scatter structure needed.
pub fn mxv_levels<T, S>(
    adims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    u: &SparseVector<T>,
    semiring: S,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    mxv_levels_core(adims, a_levels, u, semiring, None::<&VectorMask<'_, T>>)
}

/// Masked [`mxv_levels`]: rows the mask denies are skipped *before* any
/// product is formed — the masked frontier pull.
pub fn mxv_levels_masked<T, S, M>(
    adims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    u: &SparseVector<T>,
    semiring: S,
    mask: &VectorMask<'_, M>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
{
    mxv_levels_core(adims, a_levels, u, semiring, Some(mask))
}

fn mxv_levels_core<T, S, M>(
    adims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    u: &SparseVector<T>,
    semiring: S,
    mask: Option<&VectorMask<'_, M>>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
{
    if adims.1 != u.size() {
        return Err(GrbError::DimensionMismatch {
            detail: format!("A is {}x{}, u has size {}", adims.0, adims.1, u.size()),
        });
    }
    check_levels(adims, a_levels, "A")?;
    let add = semiring.add();
    let mul = semiring.mul();
    let mut out = SparseVector::new(adims.0);
    let mut cur = LevelCursors::new(a_levels);
    while let Some(i) = cur.next_row() {
        if !mask.map_or(true, |m| m.allows(i)) {
            continue;
        }
        let mut acc: Option<T> = None;
        cur.fold_row(Plus, &mut |j, aij| {
            if let Some(uj) = u.get(j) {
                let p = mul.apply(aij, uj);
                acc = Some(match acc {
                    Some(v) => add.apply(v, p),
                    None => p,
                });
            }
        });
        if let Some(v) = acc {
            out.set(i, v)?;
        }
    }
    Ok(out)
}

/// `w = u ⊕.⊗ A` off level slices, accumulated through the shared SPA.
pub fn vxm_levels<T, S>(
    u: &SparseVector<T>,
    adims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    vxm_levels_core(
        u,
        adims,
        a_levels,
        semiring,
        None::<&VectorMask<'_, T>>,
        spa,
    )
}

/// Masked [`vxm_levels`]: only output positions the vector mask allows are
/// kept (checked at drain time).
pub fn vxm_levels_masked<T, S, M>(
    u: &SparseVector<T>,
    adims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    semiring: S,
    mask: &VectorMask<'_, M>,
    spa: &mut SpaScratch<T>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
{
    vxm_levels_core(u, adims, a_levels, semiring, Some(mask), spa)
}

fn vxm_levels_core<T, S, M>(
    u: &SparseVector<T>,
    adims: (Index, Index),
    a_levels: &[&Dcsr<T>],
    semiring: S,
    mask: Option<&VectorMask<'_, M>>,
    spa: &mut SpaScratch<T>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
{
    if u.size() != adims.0 {
        return Err(GrbError::DimensionMismatch {
            detail: format!("u has size {}, A is {}x{}", u.size(), adims.0, adims.1),
        });
    }
    check_levels(adims, a_levels, "A")?;
    let add = semiring.add();
    let mul = semiring.mul();

    let mut hits: Vec<Hit<'_, T>> = Vec::new();
    let mut arena: Vec<(Index, T)> = Vec::new();
    let mut tmp: Vec<(Index, T)> = Vec::new();
    let (mut lo, mut hi, mut flops) = (Index::MAX, 0u64, 0usize);
    for (i, ui) in u.iter() {
        if let Some((l, h, n)) = gather_row(a_levels, i, ui, &mut hits, &mut arena, &mut tmp) {
            lo = lo.min(l);
            hi = hi.max(h);
            flops += n;
        }
    }
    let mut out = SparseVector::new(adims.1);
    if flops == 0 {
        return Ok(out);
    }
    spa.begin(spa.choose(lo, hi, flops), lo, hi);
    for hit in &hits {
        match *hit {
            Hit::Slice(ui, cols, vs) => {
                for (k, &j) in cols.iter().enumerate() {
                    spa.push(j, mul.apply(ui, vs[k]), add);
                }
            }
            Hit::Arena(ui, start, end) => {
                for &(j, v) in &arena[start..end] {
                    spa.push(j, mul.apply(ui, v), add);
                }
            }
        }
    }
    let mut err = None;
    spa.drain(add, &mut |j, v| {
        if mask.map_or(true, |m| m.allows(j)) {
            if let Err(e) = out.set(j, v) {
                err = Some(e);
            }
        }
    });
    spa.commit_stats();
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Add-monoid selector for the pattern push when it crosses a non-generic
/// boundary — the sharded engine's query channel ships the frontier with
/// one of these instead of a monomorphised operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternAdd {
    /// Sum contributions (pagerank mass push).
    Plus,
    /// Keep the minimum contribution (BFS level push).
    Min,
}

/// The pattern push: `w(j) = ⊕ u(i)` over the **distinct** stored cells
/// `(i, j)` of the level slices — stored values are ignored, duplicate
/// cells across levels contribute once.  `u` must be sorted by index;
/// `out` (cleared first) receives the result sorted by index.
///
/// This is the shared frontier kernel: BFS pushes a wave of ones under
/// `min` against the complement-of-visited mask; pagerank pushes
/// `rank/out-degree` under `plus` unmasked.  The mask is applied *before*
/// accumulation, so denied columns cost one check instead of a product.
pub fn vxm_pattern_levels<T, U, A, M>(
    u: &[(Index, U)],
    levels: &[&Dcsr<T>],
    add: A,
    mask: Option<&VectorMask<'_, M>>,
    spa: &mut SpaScratch<U>,
    out: &mut Vec<(Index, U)>,
) where
    T: ScalarType,
    U: ScalarType,
    A: BinaryOp<U>,
    M: ScalarType,
{
    out.clear();
    if u.is_empty() || levels.is_empty() {
        return;
    }
    // The span of the push is unknown until every row is visited, so the
    // whole product always uses sorted scatter (one strategy decision for
    // the call, counted as one accumulator row).
    spa.begin(SpaStrategy::SortedScatter, 0, 0);
    let mut cols_buf: Vec<Index> = Vec::new();
    for &(i, ui) in u {
        // Distinct columns of row i: raw slice when one level holds the
        // row, m-way column union otherwise.
        let mut single: Option<&[Index]> = None;
        let mut n_parts = 0usize;
        for d in levels {
            if d.row(i).is_some() {
                n_parts += 1;
                if n_parts == 1 {
                    single = d.row(i).map(|(c, _)| c);
                }
            }
        }
        match n_parts {
            0 => {}
            1 => {
                for &j in single.expect("one part recorded") {
                    if mask.map_or(true, |m| m.allows(j)) {
                        spa.push(j, ui, add);
                    }
                }
            }
            _ => {
                cols_buf.clear();
                merged_row_cols(levels, i, &mut cols_buf);
                for &j in &cols_buf {
                    if mask.map_or(true, |m| m.allows(j)) {
                        spa.push(j, ui, add);
                    }
                }
            }
        }
    }
    spa.drain(add, &mut |j, v| out.push((j, v)));
    spa.commit_stats();
}

/// [`vxm_pattern_levels`] with the monoid picked by a [`PatternAdd`] tag
/// and `f64` push values — the non-generic form the sharded workers run.
pub fn vxm_pattern_levels_f64<T: ScalarType>(
    u: &[(Index, f64)],
    levels: &[&Dcsr<T>],
    add: PatternAdd,
    spa: &mut SpaScratch<f64>,
    out: &mut Vec<(Index, f64)>,
) {
    match add {
        PatternAdd::Plus => vxm_pattern_levels(
            u,
            levels,
            crate::ops::binary::Plus,
            None::<&VectorMask<'_, f64>>,
            spa,
            out,
        ),
        PatternAdd::Min => vxm_pattern_levels(
            u,
            levels,
            crate::ops::binary::Min,
            None::<&VectorMask<'_, f64>>,
            spa,
            out,
        ),
    }
}

/// Distinct sorted columns of row `row` across colliding levels.
fn merged_row_cols<T: ScalarType>(levels: &[&Dcsr<T>], row: Index, out: &mut Vec<Index>) {
    let mut parts: Vec<&[Index]> = Vec::with_capacity(levels.len());
    for d in levels {
        if let Some((cols, _)) = d.row(row) {
            parts.push(cols);
        }
    }
    let mut pos = vec![0usize; parts.len()];
    loop {
        let mut min: Option<Index> = None;
        for (p, part) in parts.iter().enumerate() {
            if let Some(&c) = part.get(pos[p]) {
                min = Some(match min {
                    Some(m) if m <= c => m,
                    _ => c,
                });
            }
        }
        let Some(col) = min else { break };
        for (p, part) in parts.iter().enumerate() {
            if part.get(pos[p]) == Some(&col) {
                pos[p] += 1;
            }
        }
        out.push(col);
    }
}

/// The masked-`mxm` triangle count off level slices: for a symmetric
/// simple-graph pattern this is `Σ (A ⊕.⊗ A) .* A` over the stored cells —
/// `Σ_{(i,k) stored} |row(i) ∩ row(k)|` — without ever forming `A ⊕.⊗ A`.
/// Divide by 6 for the triangle count (each triangle is counted once per
/// ordered edge per direction); [`crate::algo::triangle_count`] does.
pub fn triangle_count_levels<T: ScalarType>(levels: &[&Dcsr<T>]) -> u64 {
    let mut total = 0u64;
    let mut cur = LevelCursors::new(levels);
    let mut row_i: Vec<Index> = Vec::new();
    let mut row_k: Vec<Index> = Vec::new();
    while let Some(_i) = cur.next_row() {
        row_i.clear();
        if let Some((cols, _)) = cur.single_part() {
            row_i.extend_from_slice(cols);
        } else {
            cur.fold_row(crate::ops::binary::First, &mut |j, _| row_i.push(j));
        }
        for &k in &row_i {
            // row(k): raw slice when one level holds it, union otherwise.
            let mut single: Option<&[Index]> = None;
            let mut n_parts = 0usize;
            for d in levels {
                if let Some((cols, _)) = d.row(k) {
                    n_parts += 1;
                    single = Some(cols);
                }
            }
            let cols_k: &[Index] = match n_parts {
                0 => continue,
                1 => single.expect("one part recorded"),
                _ => {
                    row_k.clear();
                    merged_row_cols(levels, k, &mut row_k);
                    &row_k
                }
            };
            total += sorted_intersection_count(&row_i, cols_k);
        }
    }
    total
}

/// `|a ∩ b|` for sorted index slices (two-pointer).
fn sorted_intersection_count(a: &[Index], b: &[Index]) -> u64 {
    let (mut x, mut y, mut n) = (0usize, 0usize, 0u64);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                x += 1;
                y += 1;
            }
        }
    }
    n
}

/// `C = A ⊕.⊗ B` over two cursor readers — never materializes either
/// operand's level sum.
pub fn mxm_reader<T, S, RA, RB>(
    a: &mut RA,
    b: &mut RB,
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    RA: CursorReader<T> + ?Sized,
    RB: CursorReader<T> + ?Sized,
{
    let adims = a.read_dims();
    let bdims = b.read_dims();
    let mut out = None;
    a.with_level_dcsrs(&mut |al| {
        let al: Vec<&Dcsr<T>> = al.to_vec();
        b.with_level_dcsrs(&mut |bl| {
            out = Some(mxm_levels(adims, bdims, &al, bl, semiring, spa));
        });
    });
    out.expect("with_level_dcsrs calls its callback")
}

/// Masked [`mxm_reader`].
pub fn mxm_reader_masked<T, S, M, RA, RB>(
    a: &mut RA,
    b: &mut RB,
    semiring: S,
    mask: &Mask<'_, M>,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
    RA: CursorReader<T> + ?Sized,
    RB: CursorReader<T> + ?Sized,
{
    let adims = a.read_dims();
    let bdims = b.read_dims();
    let mut out = None;
    a.with_level_dcsrs(&mut |al| {
        let al: Vec<&Dcsr<T>> = al.to_vec();
        b.with_level_dcsrs(&mut |bl| {
            out = Some(mxm_levels_masked(
                adims, bdims, &al, bl, semiring, mask, spa,
            ));
        });
    });
    out.expect("with_level_dcsrs calls its callback")
}

/// `w = A ⊕.⊗ u` over a cursor reader.
pub fn mxv_reader<T, S, R>(
    a: &mut R,
    u: &SparseVector<T>,
    semiring: S,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    R: CursorReader<T> + ?Sized,
{
    let adims = a.read_dims();
    let mut out = None;
    a.with_level_dcsrs(&mut |al| {
        out = Some(mxv_levels(adims, al, u, semiring));
    });
    out.expect("with_level_dcsrs calls its callback")
}

/// Masked [`mxv_reader`]: denied rows are skipped before any product.
pub fn mxv_reader_masked<T, S, M, R>(
    a: &mut R,
    u: &SparseVector<T>,
    semiring: S,
    mask: &VectorMask<'_, M>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
    R: CursorReader<T> + ?Sized,
{
    let adims = a.read_dims();
    let mut out = None;
    a.with_level_dcsrs(&mut |al| {
        out = Some(mxv_levels_masked(adims, al, u, semiring, mask));
    });
    out.expect("with_level_dcsrs calls its callback")
}

/// `w = u ⊕.⊗ A` over a cursor reader.
pub fn vxm_reader<T, S, R>(
    u: &SparseVector<T>,
    a: &mut R,
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    R: CursorReader<T> + ?Sized,
{
    let adims = a.read_dims();
    let mut out = None;
    a.with_level_dcsrs(&mut |al| {
        out = Some(vxm_levels(u, adims, al, semiring, spa));
    });
    out.expect("with_level_dcsrs calls its callback")
}

/// Masked [`vxm_reader`].
pub fn vxm_reader_masked<T, S, M, R>(
    u: &SparseVector<T>,
    a: &mut R,
    semiring: S,
    mask: &VectorMask<'_, M>,
    spa: &mut SpaScratch<T>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
    M: ScalarType,
    R: CursorReader<T> + ?Sized,
{
    let adims = a.read_dims();
    let mut out = None;
    a.with_level_dcsrs(&mut |al| {
        out = Some(vxm_levels_masked(u, adims, al, semiring, mask, spa));
    });
    out.expect("with_level_dcsrs calls its callback")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Min, Plus};
    use crate::ops::mxm::mxm_btree;
    use crate::ops::mxv::{mxv, vxm_btree};
    use crate::ops::semiring::{MinPlus, PlusTimes};

    fn m(nrows: u64, ncols: u64, entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Plus).unwrap()
    }

    /// Split a matrix into `k` level DCSRs by entry round-robin, so rows
    /// collide across levels — the hierarchy shape the kernels must fold.
    fn split_levels(src: &Matrix<i64>, k: usize) -> Vec<Dcsr<i64>> {
        let (rows, cols, vals) = src.extract_tuples();
        let mut parts: Vec<(Vec<u64>, Vec<u64>, Vec<i64>)> = vec![Default::default(); k];
        for (n, ((&r, &c), &v)) in rows.iter().zip(&cols).zip(&vals).enumerate() {
            let p = &mut parts[n % k];
            p.0.push(r);
            p.1.push(c);
            p.2.push(v);
        }
        parts
            .into_iter()
            .map(|(r, c, v)| Dcsr::from_tuples(src.nrows(), src.ncols(), &r, &c, &v, Plus).unwrap())
            .collect()
    }

    #[test]
    fn level_product_equals_flat_product() {
        let a = m(
            100,
            100,
            &[(0, 1, 2), (0, 2, 3), (5, 1, 1), (5, 99, -4), (7, 5, 6)],
        );
        let b = m(
            100,
            100,
            &[(1, 10, 5), (1, 11, 6), (2, 10, 7), (5, 0, 2), (99, 3, 9)],
        );
        for k in 1..=3 {
            let al = split_levels(&a, k);
            let bl = split_levels(&b, k);
            let ar: Vec<&Dcsr<i64>> = al.iter().collect();
            let br: Vec<&Dcsr<i64>> = bl.iter().collect();
            let mut spa = SpaScratch::new();
            let fast = mxm_levels((100, 100), (100, 100), &ar, &br, PlusTimes, &mut spa).unwrap();
            let slow = mxm_btree(&a, &b, PlusTimes);
            assert_eq!(fast.extract_tuples(), slow.extract_tuples(), "k={k}");
            // min-plus exercises the non-distributive fold: split cells must
            // combine under + before ⊗ sees them.
            let fast = mxm_levels((100, 100), (100, 100), &ar, &br, MinPlus, &mut spa).unwrap();
            let slow = mxm_btree(&a, &b, MinPlus);
            assert_eq!(
                fast.extract_tuples(),
                slow.extract_tuples(),
                "k={k} minplus"
            );
        }
    }

    #[test]
    fn level_mxv_and_vxm_equal_flat() {
        let a = m(64, 64, &[(3, 7, 2), (3, 9, 5), (9, 7, 1), (40, 3, 8)]);
        let u = SparseVector::from_tuples(64, &[3, 7, 9, 40], &[1, 2, 3, 4], Plus).unwrap();
        for k in 1..=3 {
            let al = split_levels(&a, k);
            let ar: Vec<&Dcsr<i64>> = al.iter().collect();
            let got = mxv_levels((64, 64), &ar, &u, PlusTimes).unwrap();
            let want = mxv(&a, &u, PlusTimes);
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                want.iter().collect::<Vec<_>>()
            );
            let mut spa = SpaScratch::new();
            let got = vxm_levels(&u, (64, 64), &ar, PlusTimes, &mut spa).unwrap();
            let want = vxm_btree(&u, &a, PlusTimes);
            assert_eq!(
                got.iter().collect::<Vec<_>>(),
                want.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn masked_duals_filter_like_oracle() {
        let a = m(32, 32, &[(1, 2, 3), (1, 5, 1), (2, 5, 7), (9, 2, 4)]);
        let b = m(32, 32, &[(2, 4, 1), (5, 4, 2), (5, 6, 3)]);
        let mm = m(32, 32, &[(1, 4, 1), (9, 9, 1)]);
        let mask = Mask::structural(&mm);
        let mut spa = SpaScratch::new();
        let al = split_levels(&a, 2);
        let bl = split_levels(&b, 2);
        let ar: Vec<&Dcsr<i64>> = al.iter().collect();
        let br: Vec<&Dcsr<i64>> = bl.iter().collect();
        let got =
            mxm_levels_masked((32, 32), (32, 32), &ar, &br, PlusTimes, &mask, &mut spa).unwrap();
        let want = mask.filter(&mxm_btree(&a, &b, PlusTimes));
        assert_eq!(got.extract_tuples(), want.extract_tuples());

        // Vector masks: keep only allowed outputs.
        let allow = SparseVector::from_tuples(32, &[4], &[1i64], Plus).unwrap();
        let vmask = VectorMask::structural(&allow);
        let u = SparseVector::from_tuples(32, &[1, 2], &[1, 1], Plus).unwrap();
        let got = vxm_levels_masked(&u, (32, 32), &ar, PlusTimes, &vmask, &mut spa).unwrap();
        let want: Vec<(u64, i64)> = vxm_btree(&u, &a, PlusTimes)
            .iter()
            .filter(|&(j, _)| vmask.allows(j))
            .collect();
        assert_eq!(got.iter().collect::<Vec<_>>(), want);

        let got = mxv_levels_masked((32, 32), &ar, &u, PlusTimes, &vmask).unwrap();
        assert!(got.is_empty()); // no allowed row is non-empty in A·u
    }

    #[test]
    fn pattern_push_deduplicates_levels() {
        // Cell (1, 5) stored in both levels: must contribute once.
        let l0 = Dcsr::from_tuples(16, 16, &[1, 1], &[5, 6], &[10i64, 20], Plus).unwrap();
        let l1 = Dcsr::from_tuples(16, 16, &[1, 2], &[5, 6], &[30i64, 40], Plus).unwrap();
        let levels: Vec<&Dcsr<i64>> = vec![&l0, &l1];
        let mut spa = SpaScratch::new();
        let mut out = Vec::new();
        let u = [(1u64, 2.0f64), (2, 5.0)];
        vxm_pattern_levels(
            &u,
            &levels,
            Plus,
            None::<&VectorMask<'_, f64>>,
            &mut spa,
            &mut out,
        );
        assert_eq!(out, vec![(5, 2.0), (6, 7.0)]);
        // Min push with a mask hiding column 6.
        let visible = SparseVector::from_tuples(16, &[5], &[1.0f64], Plus).unwrap();
        let mask = VectorMask::structural(&visible);
        vxm_pattern_levels(&u, &levels, Min, Some(&mask), &mut spa, &mut out);
        assert_eq!(out, vec![(5, 2.0)]);
    }

    #[test]
    fn triangle_kernel_counts_k4() {
        // K4: every pair connected, C(4,3) = 4 triangles => 24 ordered hits.
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..4u64 {
            for j in 0..4u64 {
                if i != j {
                    rows.push(i);
                    cols.push(j);
                    vals.push(1i64);
                }
            }
        }
        let a = Matrix::from_tuples(8, 8, &rows, &cols, &vals, Plus).unwrap();
        for k in 1..=3 {
            let al = split_levels(&a, k);
            let ar: Vec<&Dcsr<i64>> = al.iter().collect();
            assert_eq!(triangle_count_levels(&ar), 24, "k={k}");
        }
    }

    #[test]
    fn reader_wrappers_run_on_flat_matrices() {
        let mut a = m(16, 16, &[(1, 2, 3), (2, 4, 5)]);
        let mut b = m(16, 16, &[(2, 7, 2), (4, 7, 1)]);
        let mut spa = SpaScratch::new();
        let c = mxm_reader(&mut a, &mut b, PlusTimes, &mut spa).unwrap();
        assert_eq!(c.get(1, 7), Some(6));
        assert_eq!(c.get(2, 7), Some(5));
        let u = SparseVector::from_tuples(16, &[1], &[1i64], Plus).unwrap();
        let w = vxm_reader(&u, &mut a, PlusTimes, &mut spa).unwrap();
        assert_eq!(w.get(2), Some(3));
        let w = mxv_reader(&mut a, &u, PlusTimes).unwrap();
        assert!(w.is_empty());
        let u2 = SparseVector::from_tuples(16, &[2], &[1i64], Plus).unwrap();
        let w = mxv_reader(&mut a, &u2, PlusTimes).unwrap();
        assert_eq!(w.get(1), Some(3));
    }

    #[test]
    fn dimension_mismatches_are_typed_errors() {
        let a = m(4, 5, &[(0, 1, 1)]);
        let al = split_levels(&a, 1);
        let ar: Vec<&Dcsr<i64>> = al.iter().collect();
        let mut spa = SpaScratch::new();
        assert!(mxm_levels((4, 5), (4, 4), &ar, &ar, PlusTimes, &mut spa).is_err());
        let u = SparseVector::<i64>::new(3);
        assert!(mxv_levels((4, 5), &ar, &u, PlusTimes).is_err());
        assert!(vxm_levels(&u, (4, 5), &ar, PlusTimes, &mut spa).is_err());
        // Levels that disagree with the claimed dims are rejected.
        assert!(mxm_levels((9, 9), (9, 9), &ar, &ar, PlusTimes, &mut spa).is_err());
    }
}
