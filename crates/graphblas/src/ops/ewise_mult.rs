//! Element-wise multiplication (set intersection) — `C = A ⊗ B`.
//!
//! The pattern of `C` is the *intersection* of the operand patterns; values
//! are combined with the operator.  In traffic analysis this implements
//! "flows present in both windows" style joins.

use crate::error::{GrbError, GrbResult};
use crate::matrix::Matrix;
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// `C = A ⊗ B`: intersection of patterns, values combined with `op`.
///
/// # Panics
/// Panics on dimension mismatch; see [`try_ewise_mult`].
pub fn ewise_mult<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> Matrix<T>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    try_ewise_mult(a, b, op).expect("ewise_mult dimension mismatch")
}

/// Fallible version of [`ewise_mult`].
pub fn try_ewise_mult<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(GrbError::DimensionMismatch {
            detail: format!("{}x{} vs {}x{}", a.nrows(), a.ncols(), b.nrows(), b.ncols()),
        });
    }
    let (sa, sb);
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        sa = a.to_settled();
        sa.dcsr()
    };
    let db = if b.npending() == 0 {
        b.dcsr()
    } else {
        sb = b.to_settled();
        sb.dcsr()
    };

    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();

    // Intersect on the smaller operand's non-empty rows.
    let (small, large, swapped) = if da.nrows_nonempty() <= db.nrows_nonempty() {
        (da, db, false)
    } else {
        (db, da, true)
    };
    for &r in small.row_ids() {
        let (sc, sv) = small.row(r).expect("row id listed as non-empty");
        if let Some((lc, lv)) = large.row(r) {
            let (mut i, mut j) = (0usize, 0usize);
            while i < sc.len() && j < lc.len() {
                if sc[i] == lc[j] {
                    rows.push(r);
                    cols.push(sc[i]);
                    let v = if swapped {
                        op.apply(lv[j], sv[i])
                    } else {
                        op.apply(sv[i], lv[j])
                    };
                    vals.push(v);
                    i += 1;
                    j += 1;
                } else if sc[i] < lc[j] {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    Matrix::from_tuples(
        a.nrows(),
        a.ncols(),
        &rows,
        &cols,
        &vals,
        crate::ops::binary::Second,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Minus, Plus, Times};

    fn m(entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(1 << 20, 1 << 20, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn intersection_of_patterns() {
        let a = m(&[(1, 1, 2), (2, 2, 3), (4, 4, 4)]);
        let b = m(&[(2, 2, 10), (4, 4, 10), (9, 9, 10)]);
        let c = ewise_mult(&a, &b, Times);
        assert_eq!(c.nvals(), 2);
        assert_eq!(c.get(2, 2), Some(30));
        assert_eq!(c.get(4, 4), Some(40));
        assert_eq!(c.get(1, 1), None);
        assert_eq!(c.get(9, 9), None);
    }

    #[test]
    fn operand_order_respected_for_noncommutative_op() {
        let a = m(&[(1, 1, 10)]);
        let b = m(&[(1, 1, 3)]);
        assert_eq!(ewise_mult(&a, &b, Minus).get(1, 1), Some(7));
        assert_eq!(ewise_mult(&b, &a, Minus).get(1, 1), Some(-7));
        // Also exercise the swapped path (b has more non-empty rows than a).
        let a2 = m(&[(1, 1, 10)]);
        let b2 = m(&[(1, 1, 3), (2, 2, 1), (3, 3, 1)]);
        assert_eq!(ewise_mult(&a2, &b2, Minus).get(1, 1), Some(7));
        assert_eq!(ewise_mult(&b2, &a2, Minus).get(1, 1), Some(-7));
    }

    #[test]
    fn empty_intersection() {
        let a = m(&[(1, 1, 2)]);
        let b = m(&[(2, 2, 3)]);
        let c = ewise_mult(&a, &b, Times);
        assert!(c.is_empty());
    }

    #[test]
    fn dimension_mismatch() {
        let a = Matrix::<i64>::new(4, 4);
        let b = Matrix::<i64>::new(5, 4);
        assert!(try_ewise_mult(&a, &b, Times).is_err());
    }

    #[test]
    fn pending_included() {
        let mut a = Matrix::<i64>::new(10, 10);
        a.accum_element(1, 1, 6).unwrap();
        let b = m_small(&[(1, 1, 7)]);
        let c = ewise_mult(&a, &b, Times);
        assert_eq!(c.get(1, 1), Some(42));
    }

    fn m_small(entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(10, 10, &rows, &cols, &vals, Plus).unwrap()
    }
}
