//! Reductions: matrix → vector (per-row / per-column) and matrix → scalar.
//!
//! Row and column reductions of a traffic matrix are the packet counts per
//! source and per destination — the first statistics computed in the
//! streaming-analysis applications the paper motivates.

use crate::matrix::Matrix;
use crate::ops::Monoid;
use crate::types::ScalarType;
use crate::vector::SparseVector;
use std::collections::BTreeMap;

/// Reduce each row to a scalar: `w(i) = ⊕_j A(i, j)`.
pub fn reduce_rows<T, M>(a: &Matrix<T>, monoid: M) -> SparseVector<T>
where
    T: ScalarType,
    M: Monoid<T>,
{
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut out = SparseVector::new(a.nrows());
    for &i in da.row_ids() {
        let (_, vals) = da.row(i).expect("row non-empty");
        let mut acc = monoid.identity();
        for &v in vals {
            acc = monoid.apply(acc, v);
        }
        out.set(i, acc).expect("row id within bounds");
    }
    out
}

/// Reduce each column to a scalar: `w(j) = ⊕_i A(i, j)`.
pub fn reduce_cols<T, M>(a: &Matrix<T>, monoid: M) -> SparseVector<T>
where
    T: ScalarType,
    M: Monoid<T>,
{
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut acc: BTreeMap<u64, T> = BTreeMap::new();
    for (_, c, v) in da.iter() {
        acc.entry(c)
            .and_modify(|x| *x = monoid.apply(*x, v))
            .or_insert_with(|| monoid.apply(monoid.identity(), v));
    }
    let mut out = SparseVector::new(a.ncols());
    for (j, v) in acc {
        out.set(j, v).expect("col id within bounds");
    }
    out
}

/// Reduce the whole matrix to a scalar: `s = ⊕_{i,j} A(i, j)`.
///
/// Returns the monoid identity for an empty matrix.
pub fn reduce_scalar<T, M>(a: &Matrix<T>, monoid: M) -> T
where
    T: ScalarType,
    M: Monoid<T>,
{
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut acc = monoid.identity();
    for (_, _, v) in da.iter() {
        acc = monoid.apply(acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::monoid::{MaxMonoid, MinMonoid, PlusMonoid};

    fn m() -> Matrix<i64> {
        Matrix::from_tuples(
            1 << 32,
            1 << 32,
            &[1, 1, 5, 1_000_000_000],
            &[2, 7, 2, 2],
            &[10, 20, 5, 1],
            Plus,
        )
        .unwrap()
    }

    #[test]
    fn row_reduction() {
        let w = reduce_rows(&m(), PlusMonoid);
        assert_eq!(w.get(1), Some(30));
        assert_eq!(w.get(5), Some(5));
        assert_eq!(w.get(1_000_000_000), Some(1));
        assert_eq!(w.get(2), None);
        assert_eq!(w.nvals(), 3);
    }

    #[test]
    fn col_reduction() {
        let w = reduce_cols(&m(), PlusMonoid);
        assert_eq!(w.get(2), Some(16));
        assert_eq!(w.get(7), Some(20));
        assert_eq!(w.nvals(), 2);
    }

    #[test]
    fn scalar_reduction() {
        assert_eq!(reduce_scalar(&m(), PlusMonoid), 36);
        assert_eq!(reduce_scalar(&m(), MaxMonoid), 20);
        assert_eq!(reduce_scalar(&m(), MinMonoid), 1);
    }

    #[test]
    fn empty_matrix_reduces_to_identity() {
        let e = Matrix::<i64>::new(4, 4);
        assert_eq!(reduce_scalar(&e, PlusMonoid), 0);
        assert_eq!(reduce_scalar(&e, MinMonoid), i64::MAX);
        assert!(reduce_rows(&e, PlusMonoid).is_empty());
        assert!(reduce_cols(&e, PlusMonoid).is_empty());
    }

    #[test]
    fn pending_tuples_included() {
        let mut a = Matrix::<i64>::new(10, 10);
        a.accum_element(1, 1, 5).unwrap();
        a.accum_element(1, 2, 7).unwrap();
        assert_eq!(reduce_scalar(&a, PlusMonoid), 12);
        assert_eq!(reduce_rows(&a, PlusMonoid).get(1), Some(12));
        assert_eq!(reduce_cols(&a, PlusMonoid).get(2), Some(7));
    }

    #[test]
    fn row_and_col_sums_agree_with_total() {
        let a = m();
        let total = reduce_scalar(&a, PlusMonoid);
        let row_total = reduce_rows(&a, PlusMonoid).reduce(PlusMonoid);
        let col_total = reduce_cols(&a, PlusMonoid).reduce(PlusMonoid);
        assert_eq!(total, row_total);
        assert_eq!(total, col_total);
    }
}
