//! Element-wise addition (set union) — `C = A ⊕ B`.
//!
//! This is the workhorse of the hierarchical hypersparse matrix: the cascade
//! step `A_{i+1} = A_{i+1} ⊕ A_i` and the final query `A = Σ_i A_i` are both
//! `ewise_add` under the `Plus` monoid.  The kernel is a row-wise two-pointer
//! merge with cost `O(nnz(A) + nnz(B))`.

use crate::error::GrbResult;
use crate::matrix::Matrix;
use crate::ops::{BinaryOp, Monoid};
use crate::types::ScalarType;

/// `C = A ⊕ B`: the pattern of `C` is the union of the patterns of `A` and
/// `B`; where both store an entry the values are combined with `op`.
///
/// Pending tuples in either operand are folded in first (on copies; the
/// operands are not mutated).
///
/// # Panics
/// Panics if the dimensions differ; use [`try_ewise_add`] for a fallible
/// version.
pub fn ewise_add<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> Matrix<T>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    try_ewise_add(a, b, op).expect("ewise_add dimension mismatch")
}

/// Fallible version of [`ewise_add`].
pub fn try_ewise_add<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    let (sa, sb);
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        sa = a.to_settled();
        sa.dcsr()
    };
    let db = if b.npending() == 0 {
        b.dcsr()
    } else {
        sb = b.to_settled();
        sb.dcsr()
    };
    let merged = da.merge(db, op)?;
    Ok(Matrix::from_dcsr(merged))
}

/// In-place element-wise add: `acc = acc ⊕ b` without rebuilding `acc` from
/// scratch.  Delegates to [`Matrix::accum_matrix_op`], which merges through
/// `acc`'s reusable scratch buffers — the allocation-free form of the
/// cascade step and of the query-side sum `A = Σ_i A_i`.
pub fn ewise_add_into<T, Op>(acc: &mut Matrix<T>, b: &Matrix<T>, op: Op) -> GrbResult<()>
where
    T: ScalarType,
    Op: BinaryOp<T>,
{
    acc.accum_matrix_op(b, op)
}

/// `C = A ⊕ B` under a monoid (alias of [`ewise_add`]; the monoid identity is
/// not needed because absent entries are simply copied, but requiring a
/// monoid documents that the caller relies on associativity/commutativity —
/// as the hierarchical cascade does).
pub fn ewise_add_monoid<T, M>(a: &Matrix<T>, b: &Matrix<T>, monoid: M) -> Matrix<T>
where
    T: ScalarType,
    M: Monoid<T>,
{
    ewise_add(a, b, monoid)
}

/// Sum a slice of matrices: `C = Σ_i A_i` under a monoid.
///
/// This is the "complete all pending updates for analysis" step of the
/// paper (`A = Σ_{i=1}^N A_i`).  The sum is computed smallest-first to keep
/// intermediate results small.
pub fn sum_all<T, M>(mats: &[&Matrix<T>], monoid: M) -> Option<Matrix<T>>
where
    T: ScalarType,
    M: Monoid<T>,
{
    if mats.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..mats.len()).collect();
    order.sort_by_key(|&i| mats[i].nvals_settled() + mats[i].npending());
    let mut acc = mats[order[0]].to_settled();
    for &i in &order[1..] {
        ewise_add_into(&mut acc, mats[i], monoid).expect("dimensions match by construction");
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Max, Plus};
    use crate::ops::monoid::PlusMonoid;

    fn m(entries: &[(u64, u64, u64)]) -> Matrix<u64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(1 << 32, 1 << 32, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn union_of_patterns() {
        let a = m(&[(1, 1, 10), (2, 2, 20)]);
        let b = m(&[(2, 2, 5), (3, 3, 30)]);
        let c = ewise_add(&a, &b, Plus);
        assert_eq!(c.nvals(), 3);
        assert_eq!(c.get(1, 1), Some(10));
        assert_eq!(c.get(2, 2), Some(25));
        assert_eq!(c.get(3, 3), Some(30));
    }

    #[test]
    fn other_operators() {
        let a = m(&[(1, 1, 10)]);
        let b = m(&[(1, 1, 3)]);
        assert_eq!(ewise_add(&a, &b, Max).get(1, 1), Some(10));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::<u64>::new(4, 4);
        let b = Matrix::<u64>::new(4, 5);
        assert!(try_ewise_add(&a, &b, Plus).is_err());
    }

    #[test]
    fn pending_tuples_are_included() {
        let mut a = Matrix::<u64>::new(1 << 32, 1 << 32);
        a.accum_element(1, 1, 7).unwrap(); // pending only
        let b = m(&[(1, 1, 3)]);
        let c = ewise_add(&a, &b, Plus);
        assert_eq!(c.get(1, 1), Some(10));
        // a unchanged
        assert_eq!(a.npending(), 1);
    }

    #[test]
    fn add_with_empty_is_identity() {
        let a = m(&[(5, 6, 1), (7, 8, 2)]);
        let empty = Matrix::<u64>::new(a.nrows(), a.ncols());
        let c = ewise_add(&a, &empty, Plus);
        assert_eq!(c.nvals(), a.nvals());
        assert_eq!(c.get(5, 6), Some(1));
        assert_eq!(c.get(7, 8), Some(2));
    }

    #[test]
    fn commutative_under_plus() {
        let a = m(&[(1, 2, 3), (4, 5, 6)]);
        let b = m(&[(1, 2, 10), (9, 9, 1)]);
        let ab = ewise_add(&a, &b, Plus);
        let ba = ewise_add(&b, &a, Plus);
        assert_eq!(ab.extract_tuples(), ba.extract_tuples());
    }

    #[test]
    fn sum_all_matches_pairwise() {
        let a = m(&[(1, 1, 1)]);
        let b = m(&[(1, 1, 2), (2, 2, 2)]);
        let c = m(&[(3, 3, 3)]);
        let total = sum_all(&[&a, &b, &c], PlusMonoid).unwrap();
        assert_eq!(total.get(1, 1), Some(3));
        assert_eq!(total.get(2, 2), Some(2));
        assert_eq!(total.get(3, 3), Some(3));
        assert_eq!(total.nvals(), 3);
        assert!(sum_all::<u64, _>(&[], PlusMonoid).is_none());
    }

    #[test]
    fn ewise_add_into_matches_functional_form() {
        let a = m(&[(1, 1, 10), (2, 2, 20)]);
        let b = m(&[(2, 2, 5), (3, 3, 30)]);
        let expect = ewise_add(&a, &b, Plus);
        let mut acc = a.clone();
        ewise_add_into(&mut acc, &b, Plus).unwrap();
        assert_eq!(acc.extract_tuples(), expect.extract_tuples());
        let wrong = Matrix::<u64>::new(4, 4);
        assert!(ewise_add_into(&mut acc, &wrong, Plus).is_err());
    }

    #[test]
    fn ewise_add_into_matches_functional_form_for_non_plus_ops() {
        // Pending duplicates must settle under `+` in both forms; the
        // operand-combining operator applies only across the two matrices.
        let mut a = Matrix::<u64>::new(100, 100);
        a.accum_element(1, 1, 5).unwrap();
        a.accum_element(1, 1, 7).unwrap(); // pending duplicates
        let b = Matrix::from_tuples(100, 100, &[1], &[1], &[3u64], Plus).unwrap();
        let expect = ewise_add(&a, &b, Max);
        let mut acc = a.clone();
        ewise_add_into(&mut acc, &b, Max).unwrap();
        assert_eq!(acc.extract_tuples(), expect.extract_tuples());
        assert_eq!(acc.get(1, 1), Some(12)); // max(5 + 7, 3)
    }

    #[test]
    fn monoid_alias() {
        let a = m(&[(1, 1, 1)]);
        let b = m(&[(1, 1, 2)]);
        assert_eq!(ewise_add_monoid(&a, &b, PlusMonoid).get(1, 1), Some(3));
    }
}
