//! Matrix–vector and vector–matrix products over a semiring.

use crate::error::{GrbError, GrbResult};
use crate::matrix::Matrix;
use crate::ops::{BinaryOp, Semiring};
use crate::types::ScalarType;
use crate::vector::SparseVector;
use std::collections::BTreeMap;

/// `w = A ⊕.⊗ u` (matrix times column vector).
///
/// # Panics
/// Panics when `A.ncols() != u.size()`; see [`try_mxv`].
pub fn mxv<T, S>(a: &Matrix<T>, u: &SparseVector<T>, semiring: S) -> SparseVector<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_mxv(a, u, semiring).expect("mxv dimension mismatch")
}

/// Fallible version of [`mxv`].
pub fn try_mxv<T, S>(a: &Matrix<T>, u: &SparseVector<T>, semiring: S) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    if a.ncols() != u.size() {
        return Err(GrbError::DimensionMismatch {
            detail: format!("A is {}x{}, u has size {}", a.nrows(), a.ncols(), u.size()),
        });
    }
    let add = semiring.add();
    let mul = semiring.mul();
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut out = SparseVector::new(a.nrows());
    for &i in da.row_ids() {
        let (cols, vals) = da.row(i).expect("row non-empty");
        let mut acc: Option<T> = None;
        for (k, &j) in cols.iter().enumerate() {
            if let Some(uj) = u.get(j) {
                let p = mul.apply(vals[k], uj);
                acc = Some(match acc {
                    Some(v) => add.apply(v, p),
                    None => p,
                });
            }
        }
        if let Some(v) = acc {
            out.set(i, v)?;
        }
    }
    Ok(out)
}

/// `w = u ⊕.⊗ A` (row vector times matrix).
///
/// # Panics
/// Panics when `u.size() != A.nrows()`; see [`try_vxm`].
pub fn vxm<T, S>(u: &SparseVector<T>, a: &Matrix<T>, semiring: S) -> SparseVector<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_vxm(u, a, semiring).expect("vxm dimension mismatch")
}

/// Fallible version of [`vxm`].
pub fn try_vxm<T, S>(u: &SparseVector<T>, a: &Matrix<T>, semiring: S) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    if u.size() != a.nrows() {
        return Err(GrbError::DimensionMismatch {
            detail: format!("u has size {}, A is {}x{}", u.size(), a.nrows(), a.ncols()),
        });
    }
    let add = semiring.add();
    let mul = semiring.mul();
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut acc: BTreeMap<u64, T> = BTreeMap::new();
    for (i, ui) in u.iter() {
        if let Some((cols, vals)) = da.row(i) {
            for (k, &j) in cols.iter().enumerate() {
                let p = mul.apply(ui, vals[k]);
                acc.entry(j)
                    .and_modify(|v| *v = add.apply(*v, p))
                    .or_insert(p);
            }
        }
    }
    let mut out = SparseVector::new(a.ncols());
    for (j, v) in acc {
        out.set(j, v)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::semiring::PlusTimes;

    fn m(nrows: u64, ncols: u64, entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn mxv_small() {
        // A = [1 2; 3 4], u = [1, 1] => w = [3, 7]
        let a = m(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let u = SparseVector::from_tuples(2, &[0, 1], &[1, 1], Plus).unwrap();
        let w = mxv(&a, &u, PlusTimes);
        assert_eq!(w.get(0), Some(3));
        assert_eq!(w.get(1), Some(7));
    }

    #[test]
    fn mxv_sparse_vector_skips_missing() {
        let a = m(4, 4, &[(0, 0, 1), (0, 3, 5), (2, 3, 7)]);
        let u = SparseVector::from_tuples(4, &[3], &[2], Plus).unwrap();
        let w = mxv(&a, &u, PlusTimes);
        assert_eq!(w.get(0), Some(10));
        assert_eq!(w.get(2), Some(14));
        assert_eq!(w.get(1), None);
        assert_eq!(w.nvals(), 2);
    }

    #[test]
    fn vxm_small() {
        // u^T A with A = [1 2; 3 4], u = [1, 1] => [4, 6]
        let a = m(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let u = SparseVector::from_tuples(2, &[0, 1], &[1, 1], Plus).unwrap();
        let w = vxm(&u, &a, PlusTimes);
        assert_eq!(w.get(0), Some(4));
        assert_eq!(w.get(1), Some(6));
    }

    #[test]
    fn dimension_mismatches() {
        let a = Matrix::<i64>::new(3, 4);
        let u = SparseVector::<i64>::new(3);
        assert!(try_mxv(&a, &u, PlusTimes).is_err());
        let u4 = SparseVector::<i64>::new(4);
        assert!(try_vxm(&u4, &a, PlusTimes).is_err());
    }

    #[test]
    fn hypersparse_mxv() {
        let big = 1u64 << 48;
        let a = m(big, big, &[(1_000_000, 2_000_000, 3)]);
        let mut u = SparseVector::<i64>::new(big);
        u.set(2_000_000, 10).unwrap();
        let w = mxv(&a, &u, PlusTimes);
        assert_eq!(w.get(1_000_000), Some(30));
        assert_eq!(w.nvals(), 1);
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::<i64>::new(4, 4);
        let u = SparseVector::<i64>::new(4);
        assert!(mxv(&a, &u, PlusTimes).is_empty());
        assert!(vxm(&u, &a, PlusTimes).is_empty());
    }
}
