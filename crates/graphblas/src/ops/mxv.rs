//! Matrix–vector and vector–matrix products over a semiring.
//!
//! `mxv` folds each stored row against the vector with a scalar
//! accumulator (no per-row scatter is ever needed).  `vxm` accumulates one
//! logical output row — the whole product — through the reusable
//! [`SpaScratch`] (see [`crate::ops::spa`]); the previous `BTreeMap` kernel
//! is retained as [`vxm_btree`] and the equivalence proptests pin the SPA
//! path byte-identical to it.

use crate::error::{GrbError, GrbResult};
use crate::matrix::Matrix;
use crate::ops::spa::SpaScratch;
use crate::ops::{BinaryOp, Semiring};
use crate::types::ScalarType;
use crate::vector::SparseVector;
use std::collections::BTreeMap;

/// `w = A ⊕.⊗ u` (matrix times column vector).
///
/// # Panics
/// Panics when `A.ncols() != u.size()`; see [`try_mxv`].
pub fn mxv<T, S>(a: &Matrix<T>, u: &SparseVector<T>, semiring: S) -> SparseVector<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_mxv(a, u, semiring).expect("mxv dimension mismatch")
}

/// Fallible version of [`mxv`].
pub fn try_mxv<T, S>(a: &Matrix<T>, u: &SparseVector<T>, semiring: S) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    if a.ncols() != u.size() {
        return Err(GrbError::DimensionMismatch {
            detail: format!("A is {}x{}, u has size {}", a.nrows(), a.ncols(), u.size()),
        });
    }
    let add = semiring.add();
    let mul = semiring.mul();
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut out = SparseVector::new(a.nrows());
    for &i in da.row_ids() {
        let (cols, vals) = da.row(i).expect("row non-empty");
        let mut acc: Option<T> = None;
        for (k, &j) in cols.iter().enumerate() {
            if let Some(uj) = u.get(j) {
                let p = mul.apply(vals[k], uj);
                acc = Some(match acc {
                    Some(v) => add.apply(v, p),
                    None => p,
                });
            }
        }
        if let Some(v) = acc {
            out.set(i, v)?;
        }
    }
    Ok(out)
}

/// `w = u ⊕.⊗ A` (row vector times matrix).
///
/// # Panics
/// Panics when `u.size() != A.nrows()`; see [`try_vxm`].
pub fn vxm<T, S>(u: &SparseVector<T>, a: &Matrix<T>, semiring: S) -> SparseVector<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_vxm(u, a, semiring).expect("vxm dimension mismatch")
}

/// Fallible version of [`vxm`]; allocates a fresh accumulator scratch.
pub fn try_vxm<T, S>(u: &SparseVector<T>, a: &Matrix<T>, semiring: S) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    let mut spa = SpaScratch::new();
    try_vxm_with(u, a, semiring, &mut spa)
}

fn check_vxm_dims<T: ScalarType>(u: &SparseVector<T>, a: &Matrix<T>) -> GrbResult<()> {
    if u.size() != a.nrows() {
        return Err(GrbError::DimensionMismatch {
            detail: format!("u has size {}, A is {}x{}", u.size(), a.nrows(), a.ncols()),
        });
    }
    Ok(())
}

/// [`try_vxm`] with a caller-held [`SpaScratch`], so iterated products
/// (BFS waves, pagerank sweeps) reuse one allocation across calls.
pub fn try_vxm_with<T, S>(
    u: &SparseVector<T>,
    a: &Matrix<T>,
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    check_vxm_dims(u, a)?;
    let add = semiring.add();
    let mul = semiring.mul();
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    // Span pass: the whole product is one accumulator row, so gather the
    // matched rows once and size the strategy from their column bounds.
    let mut hits: Vec<(T, &[u64], &[T])> = Vec::new();
    let (mut lo, mut hi, mut flops) = (u64::MAX, 0u64, 0usize);
    for (i, ui) in u.iter() {
        if let Some((cols, vals)) = da.row(i) {
            flops += cols.len();
            lo = lo.min(cols[0]);
            hi = hi.max(*cols.last().expect("stored row is non-empty"));
            hits.push((ui, cols, vals));
        }
    }
    let mut out = SparseVector::new(a.ncols());
    if flops == 0 {
        return Ok(out);
    }
    spa.begin(spa.choose(lo, hi, flops), lo, hi);
    for &(ui, cols, vals) in &hits {
        for (k, &j) in cols.iter().enumerate() {
            spa.push(j, mul.apply(ui, vals[k]), add);
        }
    }
    let mut err = None;
    spa.drain(add, &mut |j, v| {
        // Ascending columns append at the tail: O(1) per entry.
        if let Err(e) = out.set(j, v) {
            err = Some(e);
        }
    });
    spa.commit_stats();
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// The retained `BTreeMap`-accumulator `vxm` — the verification fallback
/// the equivalence proptests and the `algo_rate` bench compare against.
///
/// # Panics
/// Panics when `u.size() != A.nrows()`; see [`try_vxm_btree`].
pub fn vxm_btree<T, S>(u: &SparseVector<T>, a: &Matrix<T>, semiring: S) -> SparseVector<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_vxm_btree(u, a, semiring).expect("vxm dimension mismatch")
}

/// Fallible version of [`vxm_btree`].
pub fn try_vxm_btree<T, S>(
    u: &SparseVector<T>,
    a: &Matrix<T>,
    semiring: S,
) -> GrbResult<SparseVector<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    check_vxm_dims(u, a)?;
    let add = semiring.add();
    let mul = semiring.mul();
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut acc: BTreeMap<u64, T> = BTreeMap::new();
    for (i, ui) in u.iter() {
        if let Some((cols, vals)) = da.row(i) {
            for (k, &j) in cols.iter().enumerate() {
                let p = mul.apply(ui, vals[k]);
                acc.entry(j)
                    .and_modify(|v| *v = add.apply(*v, p))
                    .or_insert(p);
            }
        }
    }
    let mut out = SparseVector::new(a.ncols());
    for (j, v) in acc {
        out.set(j, v)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::semiring::{MinPlus, PlusTimes};

    fn m(nrows: u64, ncols: u64, entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn mxv_small() {
        // A = [1 2; 3 4], u = [1, 1] => w = [3, 7]
        let a = m(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let u = SparseVector::from_tuples(2, &[0, 1], &[1, 1], Plus).unwrap();
        let w = mxv(&a, &u, PlusTimes);
        assert_eq!(w.get(0), Some(3));
        assert_eq!(w.get(1), Some(7));
    }

    #[test]
    fn mxv_sparse_vector_skips_missing() {
        let a = m(4, 4, &[(0, 0, 1), (0, 3, 5), (2, 3, 7)]);
        let u = SparseVector::from_tuples(4, &[3], &[2], Plus).unwrap();
        let w = mxv(&a, &u, PlusTimes);
        assert_eq!(w.get(0), Some(10));
        assert_eq!(w.get(2), Some(14));
        assert_eq!(w.get(1), None);
        assert_eq!(w.nvals(), 2);
    }

    #[test]
    fn vxm_small() {
        // u^T A with A = [1 2; 3 4], u = [1, 1] => [4, 6]
        let a = m(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let u = SparseVector::from_tuples(2, &[0, 1], &[1, 1], Plus).unwrap();
        let w = vxm(&u, &a, PlusTimes);
        assert_eq!(w.get(0), Some(4));
        assert_eq!(w.get(1), Some(6));
    }

    #[test]
    fn dimension_mismatches() {
        let a = Matrix::<i64>::new(3, 4);
        let u = SparseVector::<i64>::new(3);
        assert!(try_mxv(&a, &u, PlusTimes).is_err());
        let u4 = SparseVector::<i64>::new(4);
        assert!(try_vxm(&u4, &a, PlusTimes).is_err());
        assert!(try_vxm_btree(&u4, &a, PlusTimes).is_err());
    }

    #[test]
    fn hypersparse_mxv() {
        let big = 1u64 << 48;
        let a = m(big, big, &[(1_000_000, 2_000_000, 3)]);
        let mut u = SparseVector::<i64>::new(big);
        u.set(2_000_000, 10).unwrap();
        let w = mxv(&a, &u, PlusTimes);
        assert_eq!(w.get(1_000_000), Some(30));
        assert_eq!(w.nvals(), 1);
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::<i64>::new(4, 4);
        let u = SparseVector::<i64>::new(4);
        assert!(mxv(&a, &u, PlusTimes).is_empty());
        assert!(vxm(&u, &a, PlusTimes).is_empty());
        assert!(vxm_btree(&u, &a, PlusTimes).is_empty());
    }

    #[test]
    fn spa_vxm_matches_btree_on_wide_spans() {
        let big = 1u64 << 44;
        let a = m(
            big,
            big,
            &[
                (3, 7, 2),
                (3, big - 1, 5),
                (9, 7, -1),
                (9, 8, 4),
                (1000, 8, 11),
            ],
        );
        let u = SparseVector::from_tuples(big, &[3, 9, 1000], &[1, 2, 3], Plus).unwrap();
        for_semirings(&u, &a);
        fn for_semirings(u: &SparseVector<i64>, a: &Matrix<i64>) {
            let fast = vxm(u, a, PlusTimes);
            let slow = vxm_btree(u, a, PlusTimes);
            assert_eq!(
                fast.iter().collect::<Vec<_>>(),
                slow.iter().collect::<Vec<_>>()
            );
            let fast = vxm(u, a, MinPlus);
            let slow = vxm_btree(u, a, MinPlus);
            assert_eq!(
                fast.iter().collect::<Vec<_>>(),
                slow.iter().collect::<Vec<_>>()
            );
        }
    }
}
