//! Predefined semirings for matrix multiplication.

use super::binary::{First, Plus, Second, Times};
use super::monoid::{LorMonoid, MaxMonoid, MinMonoid, PlusMonoid};
use super::Semiring;
use crate::ops::binary::Land;
use crate::types::ScalarType;

/// The conventional arithmetic semiring `(+, *)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlusTimes;

impl<T: ScalarType> Semiring<T> for PlusTimes {
    type Add = PlusMonoid;
    type Mul = Times;
    fn add(&self) -> PlusMonoid {
        PlusMonoid
    }
    fn mul(&self) -> Times {
        Times
    }
}

/// The tropical (shortest-path) semiring `(min, +)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlus;

impl<T: ScalarType> Semiring<T> for MinPlus {
    type Add = MinMonoid;
    type Mul = Plus;
    fn add(&self) -> MinMonoid {
        MinMonoid
    }
    fn mul(&self) -> Plus {
        Plus
    }
}

/// The widest-path / critical-path semiring `(max, +)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxPlus;

impl<T: ScalarType> Semiring<T> for MaxPlus {
    type Add = MaxMonoid;
    type Mul = Plus;
    fn add(&self) -> MaxMonoid {
        MaxMonoid
    }
    fn mul(&self) -> Plus {
        Plus
    }
}

/// The boolean reachability semiring `(or, and)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LorLand;

impl<T: ScalarType> Semiring<T> for LorLand {
    type Add = LorMonoid;
    type Mul = Land;
    fn add(&self) -> LorMonoid {
        LorMonoid
    }
    fn mul(&self) -> Land {
        Land
    }
}

/// The `(plus, second)` semiring used by breadth-first-search-style
/// "propagate the value of the source" products.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlusSecond;

impl<T: ScalarType> Semiring<T> for PlusSecond {
    type Add = PlusMonoid;
    type Mul = Second;
    fn add(&self) -> PlusMonoid {
        PlusMonoid
    }
    fn mul(&self) -> Second {
        Second
    }
}

/// The `(min, second)` semiring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinSecond;

impl<T: ScalarType> Semiring<T> for MinSecond {
    type Add = MinMonoid;
    type Mul = Second;
    fn add(&self) -> MinMonoid {
        MinMonoid
    }
    fn mul(&self) -> Second {
        Second
    }
}

/// The `(min, first)` semiring, used by label-propagation algorithms
/// (connected components): `vxm` under this semiring carries the *vector*
/// value (the label) across each edge and keeps the minimum at the
/// destination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinFirst;

impl<T: ScalarType> Semiring<T> for MinFirst {
    type Add = MinMonoid;
    type Mul = First;
    fn add(&self) -> MinMonoid {
        MinMonoid
    }
    fn mul(&self) -> First {
        First
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{BinaryOp, Monoid};

    #[test]
    fn plus_times_components() {
        let s = PlusTimes;
        let add = Semiring::<i64>::add(&s);
        let mul = Semiring::<i64>::mul(&s);
        assert_eq!(Monoid::<i64>::identity(&add), 0i64);
        assert_eq!(add.apply(2, 3), 5);
        assert_eq!(mul.apply(2, 3), 6);
    }

    #[test]
    fn min_plus_components() {
        let s = MinPlus;
        let add = Semiring::<f64>::add(&s);
        let mul = Semiring::<f64>::mul(&s);
        assert_eq!(Monoid::<f64>::identity(&add), f64::INFINITY);
        assert_eq!(add.apply(2.0, 3.0), 2.0);
        assert_eq!(mul.apply(2.0, 3.0), 5.0);
    }

    #[test]
    fn max_plus_components() {
        let s = MaxPlus;
        let add = Semiring::<i64>::add(&s);
        assert_eq!(Monoid::<i64>::identity(&add), i64::MIN);
        assert_eq!(add.apply(2, 3), 3);
    }

    #[test]
    fn lor_land_components() {
        let s = LorLand;
        let add = Semiring::<u8>::add(&s);
        let mul = Semiring::<u8>::mul(&s);
        assert_eq!(Monoid::<u8>::identity(&add), 0);
        assert_eq!(add.apply(1, 0), 1);
        assert_eq!(mul.apply(1, 0), 0);
        assert_eq!(mul.apply(1, 1), 1);
    }

    #[test]
    fn second_based_semirings() {
        let s = PlusSecond;
        let mul = Semiring::<u32>::mul(&s);
        assert_eq!(mul.apply(100, 7), 7);
        let s = MinSecond;
        let add = Semiring::<u32>::add(&s);
        assert_eq!(Monoid::<u32>::identity(&add), u32::MAX);
    }
}
