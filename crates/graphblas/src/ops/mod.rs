//! Algebraic operators (binary ops, unary ops, monoids, semirings) and the
//! GraphBLAS operations built from them.
//!
//! The operator traits are deliberately tiny: an operator is a zero-sized
//! `Copy` struct whose `apply` method is monomorphised into each kernel, so
//! there is no virtual dispatch on the hot path of a streaming update.

pub mod binary;
pub mod monoid;
pub mod semiring;
pub mod unary;

pub mod apply;
pub mod assign;
pub mod ewise_add;
pub mod ewise_mult;
pub mod extract;
pub mod kron;
pub mod mxm;
pub mod mxv;
pub mod reader_mx;
pub mod reduce;
pub mod select;
pub mod spa;
pub mod transpose;

use crate::types::ScalarType;

/// A binary operator `z = f(x, y)` over a scalar type.
///
/// Corresponds to `GrB_BinaryOp` restricted to operators whose three domains
/// coincide (the only kind the hierarchical-matrix workload needs).
pub trait BinaryOp<T: ScalarType>: Copy + Send + Sync {
    /// Apply the operator.
    fn apply(&self, x: T, y: T) -> T;

    /// True when [`BinaryOp::apply`] is total and side-effect free for
    /// *every* operand pair, so a kernel may evaluate it speculatively on
    /// operands that do not actually collide and discard the result.  The
    /// branchless merge kernel uses this to replace its collision branch
    /// with conditional moves.  All built-in operators opt in (integer
    /// arithmetic wraps and division by zero yields zero, so none can
    /// panic); the default is `false` so a custom operator that may panic
    /// or observe its inputs keeps the guarded merge path.
    const SPECULATION_SAFE: bool = false;
}

/// A unary operator `z = f(x)`.
pub trait UnaryOp<T: ScalarType>: Copy + Send + Sync {
    /// Apply the operator.
    fn apply(&self, x: T) -> T;
}

/// A commutative monoid: an associative, commutative [`BinaryOp`] together
/// with an identity element.
///
/// Monoids are the algebraic backbone of the hierarchical hypersparse
/// matrix: because the reduction operator is associative and commutative,
/// entries can be accumulated level by level in any order and the final
/// `Σ A_i` is independent of the cascade schedule.
pub trait Monoid<T: ScalarType>: BinaryOp<T> {
    /// The identity element of the monoid.
    fn identity(&self) -> T;
}

/// A semiring: a [`Monoid`] used for "addition" plus a [`BinaryOp`] used for
/// "multiplication", as required by [`mxm`](crate::ops::mxm::mxm) and
/// friends.
pub trait Semiring<T: ScalarType>: Copy + Send + Sync {
    /// The additive monoid type.
    type Add: Monoid<T>;
    /// The multiplicative operator type.
    type Mul: BinaryOp<T>;

    /// The additive monoid.
    fn add(&self) -> Self::Add;
    /// The multiplicative operator.
    fn mul(&self) -> Self::Mul;
}

#[cfg(test)]
mod tests {
    use super::binary::*;
    use super::monoid::*;
    use super::*;

    // Generic helpers exercised through the traits, proving the kernels can be
    // written generically.
    fn fold<T: ScalarType, M: Monoid<T>>(m: M, xs: &[T]) -> T {
        xs.iter().fold(m.identity(), |acc, &x| m.apply(acc, x))
    }

    #[test]
    fn generic_fold_over_monoids() {
        assert_eq!(fold(PlusMonoid, &[1u64, 2, 3, 4]), 10);
        assert_eq!(fold(TimesMonoid, &[1i32, 2, 3, 4]), 24);
        assert_eq!(fold(MinMonoid, &[5.0f64, -2.0, 7.5]), -2.0);
        assert_eq!(fold(MaxMonoid, &[5i64, -2, 7]), 7);
        assert_eq!(fold(PlusMonoid, &[] as &[u32]), 0);
    }

    #[test]
    fn binary_op_object_safety_not_required() {
        // Operators are Copy zero-sized types; ensure they can be passed by value.
        fn takes_op<T: ScalarType, O: BinaryOp<T>>(op: O, a: T, b: T) -> T {
            op.apply(a, b)
        }
        assert_eq!(takes_op(Plus, 2u8, 3), 5);
        assert_eq!(takes_op(First, 2u8, 3), 2);
        assert_eq!(takes_op(Second, 2u8, 3), 3);
    }
}
