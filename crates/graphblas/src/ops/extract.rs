//! Sub-matrix extraction (`GrB_extract`).

use crate::error::{GrbError, GrbResult};
use crate::index::{Index, IndexRange};
use crate::matrix::Matrix;
use crate::ops::binary::Second;
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// Extract the sub-matrix `A[rows, cols]`, re-indexed to the origin.
///
/// `C(i - rows.start, j - cols.start) = A(i, j)` for every stored entry
/// falling inside both ranges.  Empty ranges produce an error because a
/// zero-dimension matrix cannot be represented.
pub fn extract<T: ScalarType>(
    a: &Matrix<T>,
    rows: IndexRange,
    cols: IndexRange,
) -> GrbResult<Matrix<T>> {
    if rows.is_empty() || cols.is_empty() {
        return Err(GrbError::InvalidValue(
            "extract ranges must be non-empty".into(),
        ));
    }
    if rows.end > a.nrows() || cols.end > a.ncols() {
        return Err(GrbError::DimensionMismatch {
            detail: format!(
                "range [{}, {}) x [{}, {}) exceeds matrix {}x{}",
                rows.start,
                rows.end,
                cols.start,
                cols.end,
                a.nrows(),
                a.ncols()
            ),
        });
    }
    let (r, c, v) = a.extract_tuples();
    let mut out_r = Vec::new();
    let mut out_c = Vec::new();
    let mut out_v = Vec::new();
    for i in 0..r.len() {
        if rows.contains(r[i]) && cols.contains(c[i]) {
            out_r.push(r[i] - rows.start);
            out_c.push(c[i] - cols.start);
            out_v.push(v[i]);
        }
    }
    Matrix::from_tuples(rows.len(), cols.len(), &out_r, &out_c, &out_v, Second)
}

/// Extract row `i` of `A` as a sparse vector of length `A.ncols()`.
pub fn extract_row<T: ScalarType>(a: &Matrix<T>, row: Index) -> GrbResult<SparseVector<T>> {
    if row >= a.nrows() {
        return Err(GrbError::IndexOutOfBounds {
            index: row,
            dim: a.nrows(),
        });
    }
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut out = SparseVector::new(a.ncols());
    if let Some((cols, vals)) = da.row(row) {
        for (k, &c) in cols.iter().enumerate() {
            out.set(c, vals[k])?;
        }
    }
    Ok(out)
}

/// Extract column `j` of `A` as a sparse vector of length `A.nrows()`.
pub fn extract_col<T: ScalarType>(a: &Matrix<T>, col: Index) -> GrbResult<SparseVector<T>> {
    if col >= a.ncols() {
        return Err(GrbError::IndexOutOfBounds {
            index: col,
            dim: a.ncols(),
        });
    }
    let settled;
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        settled = a.to_settled();
        settled.dcsr()
    };
    let mut out = SparseVector::new(a.nrows());
    for (r, c, v) in da.iter() {
        if c == col {
            out.set(r, v)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn m() -> Matrix<u64> {
        Matrix::from_tuples(
            100,
            100,
            &[10, 10, 20, 50, 99],
            &[10, 20, 20, 60, 99],
            &[1, 2, 3, 4, 5],
            Plus,
        )
        .unwrap()
    }

    #[test]
    fn extract_window() {
        let sub = extract(
            &m(),
            IndexRange::new(10, 30).unwrap(),
            IndexRange::new(10, 30).unwrap(),
        )
        .unwrap();
        assert_eq!(sub.nrows(), 20);
        assert_eq!(sub.ncols(), 20);
        assert_eq!(sub.nvals(), 3);
        assert_eq!(sub.get(0, 0), Some(1)); // was (10,10)
        assert_eq!(sub.get(0, 10), Some(2)); // was (10,20)
        assert_eq!(sub.get(10, 10), Some(3)); // was (20,20)
    }

    #[test]
    fn extract_out_of_bounds() {
        assert!(extract(&m(), IndexRange::new(0, 101).unwrap(), IndexRange::all(100)).is_err());
        assert!(extract(&m(), IndexRange::new(5, 5).unwrap(), IndexRange::all(100)).is_err());
    }

    #[test]
    fn extract_whole_matrix_is_identity() {
        let a = m();
        let whole = extract(&a, IndexRange::all(100), IndexRange::all(100)).unwrap();
        assert_eq!(whole.extract_tuples(), a.extract_tuples());
    }

    #[test]
    fn row_and_col_extraction() {
        let a = m();
        let r10 = extract_row(&a, 10).unwrap();
        assert_eq!(r10.nvals(), 2);
        assert_eq!(r10.get(10), Some(1));
        assert_eq!(r10.get(20), Some(2));

        let c20 = extract_col(&a, 20).unwrap();
        assert_eq!(c20.nvals(), 2);
        assert_eq!(c20.get(10), Some(2));
        assert_eq!(c20.get(20), Some(3));

        let empty_row = extract_row(&a, 0).unwrap();
        assert!(empty_row.is_empty());

        assert!(extract_row(&a, 100).is_err());
        assert!(extract_col(&a, 100).is_err());
    }

    #[test]
    fn extraction_with_pending() {
        let mut a = Matrix::<u64>::new(50, 50);
        a.accum_element(1, 2, 9).unwrap();
        let r = extract_row(&a, 1).unwrap();
        assert_eq!(r.get(2), Some(9));
        let c = extract_col(&a, 2).unwrap();
        assert_eq!(c.get(1), Some(9));
        let sub = extract(
            &a,
            IndexRange::new(0, 10).unwrap(),
            IndexRange::new(0, 10).unwrap(),
        )
        .unwrap();
        assert_eq!(sub.get(1, 2), Some(9));
    }
}
