//! Matrix–matrix multiplication over a semiring — `C = A ⊕.⊗ B`.
//!
//! The kernel is a hypersparse row-wise Gustavson: for each non-empty row
//! `i` of `A`, the rows `B(k, :)` for every stored `A(i, k)` are scaled by
//! `A(i,k)` under `⊗` and merged under `⊕` into row `C(i, :)`.  Cost is
//! proportional to the number of multiply–add operations (flops) rather
//! than to any matrix dimension — essential when dimensions are `2^64`.
//!
//! Row accumulation goes through the reusable [`SpaScratch`] (dense band or
//! sorted scatter per row — see [`crate::ops::spa`]); the previous
//! `BTreeMap` kernel is retained verbatim as [`mxm_btree`], and the
//! `tests/algo_equivalence.rs` proptests pin the SPA path byte-identical to
//! it.  Batch callers hold one scratch across calls via [`try_mxm_with`].

use crate::error::{GrbError, GrbResult};
use crate::formats::dcsr::Dcsr;
use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::spa::SpaScratch;
use crate::ops::{BinaryOp, Semiring};
use crate::types::ScalarType;
use std::collections::BTreeMap;

/// `C = A ⊕.⊗ B` over the given semiring.
///
/// # Panics
/// Panics when the inner dimensions disagree; use [`try_mxm`] instead to
/// handle the error.
pub fn mxm<T, S>(a: &Matrix<T>, b: &Matrix<T>, semiring: S) -> Matrix<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_mxm(a, b, semiring).expect("mxm dimension mismatch")
}

/// Fallible version of [`mxm`]; allocates a fresh accumulator scratch.
pub fn try_mxm<T, S>(a: &Matrix<T>, b: &Matrix<T>, semiring: S) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    let mut spa = SpaScratch::new();
    try_mxm_with(a, b, semiring, &mut spa)
}

fn check_inner_dims<T: ScalarType>(a: &Matrix<T>, b: &Matrix<T>) -> GrbResult<()> {
    if a.ncols() != b.nrows() {
        return Err(GrbError::DimensionMismatch {
            detail: format!(
                "inner dimensions differ: A is {}x{}, B is {}x{}",
                a.nrows(),
                a.ncols(),
                b.nrows(),
                b.ncols()
            ),
        });
    }
    Ok(())
}

/// [`try_mxm`] with a caller-held [`SpaScratch`], so iterated products
/// (algorithm inner loops) reuse one allocation across calls.
pub fn try_mxm_with<T, S>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    check_inner_dims(a, b)?;
    let (sa, sb);
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        sa = a.to_settled();
        sa.dcsr()
    };
    let db = if b.npending() == 0 {
        b.dcsr()
    } else {
        sb = b.to_settled();
        sb.dcsr()
    };
    mxm_dcsr(a.nrows(), b.ncols(), da, db, semiring, spa)
}

/// The SPA Gustavson core over settled DCSRs (shared with the reader-native
/// single-level fast path).
pub(crate) fn mxm_dcsr<T, S>(
    nrows: Index,
    ncols: Index,
    da: &Dcsr<T>,
    db: &Dcsr<T>,
    semiring: S,
    spa: &mut SpaScratch<T>,
) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    let add = semiring.add();
    let mul = semiring.mul();
    let mut row_ids = Vec::new();
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    // B-row hits of the current A row, gathered once so the span pass does
    // not repeat the row lookups.  Reused across rows.
    let mut hits: Vec<(T, &[Index], &[T])> = Vec::new();
    for &i in da.row_ids() {
        let (a_cols, a_vals) = da.row(i).expect("listed row is non-empty");
        hits.clear();
        let (mut lo, mut hi, mut flops) = (Index::MAX, 0u64, 0usize);
        for (idx, &k) in a_cols.iter().enumerate() {
            if let Some((b_cols, b_vals)) = db.row(k) {
                flops += b_cols.len();
                lo = lo.min(b_cols[0]);
                hi = hi.max(*b_cols.last().expect("stored row is non-empty"));
                hits.push((a_vals[idx], b_cols, b_vals));
            }
        }
        if flops == 0 {
            continue;
        }
        spa.begin(spa.choose(lo, hi, flops), lo, hi);
        for &(aik, b_cols, b_vals) in &hits {
            for (j_idx, &j) in b_cols.iter().enumerate() {
                spa.push(j, mul.apply(aik, b_vals[j_idx]), add);
            }
        }
        spa.drain(add, &mut |j, v| {
            col_idx.push(j);
            vals.push(v);
        });
        row_ids.push(i);
        row_ptr.push(col_idx.len());
    }
    spa.commit_stats();
    let d = Dcsr::try_from_raw_parts(nrows, ncols, row_ids, row_ptr, col_idx, vals)?;
    Ok(Matrix::from_dcsr(d))
}

/// The retained `BTreeMap`-accumulator kernel — the verification fallback
/// the equivalence proptests and the `algo_rate` bench compare against.
///
/// # Panics
/// Panics when the inner dimensions disagree; see [`try_mxm_btree`].
pub fn mxm_btree<T, S>(a: &Matrix<T>, b: &Matrix<T>, semiring: S) -> Matrix<T>
where
    T: ScalarType,
    S: Semiring<T>,
{
    try_mxm_btree(a, b, semiring).expect("mxm dimension mismatch")
}

/// Fallible version of [`mxm_btree`].
pub fn try_mxm_btree<T, S>(a: &Matrix<T>, b: &Matrix<T>, semiring: S) -> GrbResult<Matrix<T>>
where
    T: ScalarType,
    S: Semiring<T>,
{
    check_inner_dims(a, b)?;
    let add = semiring.add();
    let mul = semiring.mul();

    let (sa, sb);
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        sa = a.to_settled();
        sa.dcsr()
    };
    let db = if b.npending() == 0 {
        b.dcsr()
    } else {
        sb = b.to_settled();
        sb.dcsr()
    };

    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();

    for &i in da.row_ids() {
        let (a_cols, a_vals) = da.row(i).expect("listed row is non-empty");
        // Sorted accumulator for row i of C.  BTreeMap keeps columns ordered;
        // the number of distinct columns touched is bounded by the flops.
        let mut acc: BTreeMap<u64, T> = BTreeMap::new();
        for (idx, &k) in a_cols.iter().enumerate() {
            let aik = a_vals[idx];
            if let Some((b_cols, b_vals)) = db.row(k) {
                for (j_idx, &j) in b_cols.iter().enumerate() {
                    let product = mul.apply(aik, b_vals[j_idx]);
                    acc.entry(j)
                        .and_modify(|v| *v = add.apply(*v, product))
                        .or_insert(product);
                }
            }
        }
        for (j, v) in acc {
            rows.push(i);
            cols.push(j);
            vals.push(v);
        }
    }
    Matrix::from_tuples(
        a.nrows(),
        b.ncols(),
        &rows,
        &cols,
        &vals,
        crate::ops::binary::Second,
    )
}

/// Number of scalar multiplications `mxm(a, b)` would perform (the "flops"
/// measure used to size benchmark workloads).
pub fn mxm_flops<T: ScalarType>(a: &Matrix<T>, b: &Matrix<T>) -> u64 {
    let (sa, sb);
    let da = if a.npending() == 0 {
        a.dcsr()
    } else {
        sa = a.to_settled();
        sa.dcsr()
    };
    let db = if b.npending() == 0 {
        b.dcsr()
    } else {
        sb = b.to_settled();
        sb.dcsr()
    };
    let mut flops = 0u64;
    for &i in da.row_ids() {
        let (a_cols, _) = da.row(i).expect("row non-empty");
        for &k in a_cols {
            if let Some((b_cols, _)) = db.row(k) {
                flops += b_cols.len() as u64;
            }
        }
    }
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;
    use crate::ops::semiring::{LorLand, MinPlus, PlusTimes};

    fn m(nrows: u64, ncols: u64, entries: &[(u64, u64, i64)]) -> Matrix<i64> {
        let rows: Vec<_> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<_> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<_> = entries.iter().map(|e| e.2).collect();
        Matrix::from_tuples(nrows, ncols, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn small_dense_product() {
        // A = [1 2; 3 4], B = [5 6; 7 8] => C = [19 22; 43 50]
        let a = m(2, 2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let b = m(2, 2, &[(0, 0, 5), (0, 1, 6), (1, 0, 7), (1, 1, 8)]);
        let c = mxm(&a, &b, PlusTimes);
        assert_eq!(c.get(0, 0), Some(19));
        assert_eq!(c.get(0, 1), Some(22));
        assert_eq!(c.get(1, 0), Some(43));
        assert_eq!(c.get(1, 1), Some(50));
    }

    #[test]
    fn hypersparse_product() {
        let big = 1u64 << 40;
        let a = m(big, big, &[(7, 1_000_000_000, 2)]);
        let b = m(big, big, &[(1_000_000_000, 99, 3)]);
        let c = mxm(&a, &b, PlusTimes);
        assert_eq!(c.nvals(), 1);
        assert_eq!(c.get(7, 99), Some(6));
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = m(8, 8, &[(1, 1, 1)]);
        let empty = Matrix::<i64>::new(8, 8);
        assert!(mxm(&a, &empty, PlusTimes).is_empty());
        assert!(mxm(&empty, &a, PlusTimes).is_empty());
    }

    #[test]
    fn dimension_mismatch() {
        let a = Matrix::<i64>::new(4, 5);
        let b = Matrix::<i64>::new(4, 4);
        assert!(try_mxm(&a, &b, PlusTimes).is_err());
        assert!(try_mxm_btree(&a, &b, PlusTimes).is_err());
    }

    #[test]
    fn min_plus_shortest_paths_one_hop() {
        // Path weights: 0->1 (4), 1->2 (3), 0->2 (10).  One relaxation of
        // (min,+) over the adjacency gives 0->2 via 1 = 7.
        let adj = m(3, 3, &[(0, 1, 4), (1, 2, 3), (0, 2, 10)]);
        let two_hop = mxm(&adj, &adj, MinPlus);
        assert_eq!(two_hop.get(0, 2), Some(7));
    }

    #[test]
    fn boolean_reachability() {
        let a = m(4, 4, &[(0, 1, 1), (1, 2, 1)]);
        let c = mxm(&a, &a, LorLand);
        assert_eq!(c.get(0, 2), Some(1));
        assert_eq!(c.get(0, 1), None);
    }

    #[test]
    fn flops_counts_products() {
        let a = m(4, 4, &[(0, 1, 1), (0, 2, 1)]);
        let b = m(4, 4, &[(1, 0, 1), (1, 3, 1), (2, 3, 1)]);
        // row 0 of A: k=1 hits 2 entries of B, k=2 hits 1 entry => 3 flops
        assert_eq!(mxm_flops(&a, &b), 3);
    }

    #[test]
    fn pending_tuples_participate() {
        let mut a = Matrix::<i64>::new(3, 3);
        a.accum_element(0, 1, 2).unwrap();
        let b = m(3, 3, &[(1, 2, 5)]);
        let c = mxm(&a, &b, PlusTimes);
        assert_eq!(c.get(0, 2), Some(10));
    }

    #[test]
    fn square_of_triangle_counts_paths() {
        // Undirected triangle 0-1-2 stored symmetrically.
        let tri = m(
            3,
            3,
            &[
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (2, 1, 1),
                (0, 2, 1),
                (2, 0, 1),
            ],
        );
        let sq = mxm(&tri, &tri, PlusTimes);
        // diagonal = degree
        assert_eq!(sq.get(0, 0), Some(2));
        assert_eq!(sq.get(1, 1), Some(2));
        assert_eq!(sq.get(2, 2), Some(2));
        // off-diagonal = number of 2-paths = 1 for each pair
        assert_eq!(sq.get(0, 1), Some(1));
    }

    #[test]
    fn spa_matches_btree_on_mixed_spans() {
        // A narrow band (dense strategy) and a 2^40-wide scatter row in the
        // same product, against both semirings.
        let a = m(
            1 << 41,
            1 << 41,
            &[(0, 1, 2), (0, 2, 3), (5, 1, 1), (5, 2, -4)],
        );
        let b = m(
            1 << 41,
            1 << 41,
            &[(1, 10, 5), (1, 11, 6), (2, 10, 7), (2, 1 << 40, 8)],
        );
        for_both(&a, &b);
        fn for_both(a: &Matrix<i64>, b: &Matrix<i64>) {
            let fast = mxm(a, b, PlusTimes);
            let slow = mxm_btree(a, b, PlusTimes);
            assert_eq!(fast.extract_tuples(), slow.extract_tuples());
            let fast = mxm(a, b, MinPlus);
            let slow = mxm_btree(a, b, MinPlus);
            assert_eq!(fast.extract_tuples(), slow.extract_tuples());
        }
    }
}
