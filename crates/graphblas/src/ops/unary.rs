//! Predefined unary operators.

use super::UnaryOp;
use crate::types::ScalarType;

/// `z = x` (the identity operator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

/// `z = 1` for every stored entry — used to build structural (pattern-only)
/// matrices, e.g. turning a weighted traffic matrix into an adjacency
/// pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct One;

/// `z = -x` (additive inverse).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AInv;

/// `z = 1 / x` (multiplicative inverse; integer types use wrapping division,
/// zero maps to zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MInv;

/// `z = |x|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Abs;

/// `z = 1` if `x == 0` else `0` (logical NOT of truthiness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lnot;

impl<T: ScalarType> UnaryOp<T> for Identity {
    fn apply(&self, x: T) -> T {
        x
    }
}

impl<T: ScalarType> UnaryOp<T> for One {
    fn apply(&self, _x: T) -> T {
        T::one()
    }
}

impl<T: ScalarType> UnaryOp<T> for AInv {
    fn apply(&self, x: T) -> T {
        T::zero().sub(x)
    }
}

impl<T: ScalarType> UnaryOp<T> for MInv {
    fn apply(&self, x: T) -> T {
        T::one().div(x)
    }
}

impl<T: ScalarType> UnaryOp<T> for Abs {
    fn apply(&self, x: T) -> T {
        x.abs_val()
    }
}

impl<T: ScalarType> UnaryOp<T> for Lnot {
    fn apply(&self, x: T) -> T {
        if x.is_zero() {
            T::one()
        } else {
            T::zero()
        }
    }
}

/// A unary operator defined by an arbitrary function pointer.
#[derive(Clone, Copy)]
pub struct FnUnaryOp<T> {
    f: fn(T) -> T,
}

impl<T> FnUnaryOp<T> {
    /// Wrap a plain function pointer as a unary operator.
    pub fn new(f: fn(T) -> T) -> Self {
        Self { f }
    }
}

impl<T: ScalarType> UnaryOp<T> for FnUnaryOp<T> {
    fn apply(&self, x: T) -> T {
        (self.f)(x)
    }
}

impl<T> std::fmt::Debug for FnUnaryOp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnUnaryOp")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_one() {
        assert_eq!(UnaryOp::<i32>::apply(&Identity, 42), 42);
        assert_eq!(UnaryOp::<i32>::apply(&One, 42), 1);
        assert_eq!(UnaryOp::<f64>::apply(&One, 0.0), 1.0);
    }

    #[test]
    fn inverses() {
        assert_eq!(UnaryOp::<i32>::apply(&AInv, 5), -5);
        assert_eq!(UnaryOp::<f64>::apply(&MInv, 4.0), 0.25);
        assert_eq!(UnaryOp::<i32>::apply(&MInv, 0), 0);
        assert_eq!(UnaryOp::<i64>::apply(&Abs, -9), 9);
    }

    #[test]
    fn logical_not() {
        assert_eq!(UnaryOp::<u32>::apply(&Lnot, 0), 1);
        assert_eq!(UnaryOp::<u32>::apply(&Lnot, 17), 0);
    }

    #[test]
    fn fn_unary_op() {
        let double = FnUnaryOp::new(|x: u64| x * 2);
        assert_eq!(double.apply(21), 42);
        assert_eq!(format!("{double:?}"), "FnUnaryOp");
    }
}
