//! The incremental degree index: O(1)/O(k) degree-centric analytics over a
//! streaming hypersparse matrix.
//!
//! The read-path cursor layer ([`crate::cursor`]) made every query
//! materialisation-free, but `top_k`, `degree_distribution` and `nnz` were
//! still full `O(nnz)` sweeps — under a mixed ingest+query workload the
//! top-k quarter of the query mix dominated the whole run.  A
//! [`DegreeIndex`] turns those answers into cheap lookups by maintaining,
//! *incrementally on the existing hot-path events*:
//!
//! * a **cell-membership oracle** (`cells`): the set of distinct
//!   `(row, col)` cells of the represented union.  Fed from the settle
//!   dedup-unpack (the sorted, deduplicated pending batch), one hash probe
//!   per settled distinct cell decides whether the union grew.  Cascades
//!   (`merge_into` between levels) move cells without changing the union,
//!   so they need **no** index maintenance at all.
//! * **per-row counters** (`rows`): distinct-column degree and the
//!   `+`-monoid weight reduction of every non-empty row, shared with
//!   snapshots through an [`Arc`] (copy-on-write: maintaining the index
//!   while a snapshot is outstanding clones the row stats once, `O(rows)`,
//!   never the cell oracle).
//! * an exact **`nnz`** counter.
//!
//! `top_k` and the degree histogram are served from **lazily rebuilt
//! caches**: the first query after a mutation scans the row stats once
//! (`O(rows)` with a bounded min-heap — no sort of the full row set), and
//! every further query until the next mutation answers in `O(k)` /
//! `O(distinct degrees)`.  Answers are deterministic (degree descending,
//! row ascending) and byte-identical to the cursor-sweep fallback, which
//! the read paths keep as a `debug_assert` and the equivalence property
//! tests drive directly.
//!
//! Ordering caveat: per-row weights fold in *arrival* order while a cursor
//! sweep folds in level/column order.  For the integer scalar types every
//! reader uses the `+` monoid is associative and the answers are
//! byte-identical; for `f64` the two paths may differ in the last ulp.

use crate::formats::dcsr::Dcsr;
use crate::index::Index;
use crate::types::ScalarType;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A multiply-rotate hasher (FxHash-style) for the index's hot cell and row
/// probes: the default SipHash is measurably slower on the settle path and
/// the keys here are attacker-free internal coordinates.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Deterministic builder: no per-process random seed, so iteration order —
/// which never leaks into answers, all of which sort — is reproducible.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Pack a `(row, col)` coordinate into the cell-oracle key.  Dimensions are
/// capped at [`crate::index::MAX_DIM`] = 2^60, so both halves fit.
#[inline]
fn cell_key(row: Index, col: Index) -> u128 {
    ((row as u128) << 64) | col as u128
}

/// Degree and weight-reduce counters of one non-empty row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowStat<V> {
    /// Number of distinct columns stored in the row.
    pub degree: u64,
    /// `+`-monoid reduction of every value accumulated into the row.
    pub weight: V,
}

/// The shared (snapshot-visible) part of the index: per-row stats, the
/// exact distinct-cell count, and a version stamp for the lazy caches.
#[derive(Debug, Clone)]
struct RowStatsCore<V> {
    rows: HashMap<Index, RowStat<V>, FxBuildHasher>,
    nnz: usize,
    /// Bumped on every mutation; the query caches compare against it.
    version: u64,
}

impl<V> Default for RowStatsCore<V> {
    fn default() -> Self {
        Self {
            rows: HashMap::default(),
            nnz: 0,
            version: 0,
        }
    }
}

/// Lazily rebuilt query caches (not shared: snapshots rebuild their own
/// from the shared core on first use).
///
/// Version 0 is the empty core's version, so `Default` (all-empty caches
/// stamped 0) is trivially consistent with a fresh core.
#[derive(Debug, Clone, Default)]
struct QueryCache {
    /// The top `covered` rows by (degree desc, row asc); answers any
    /// `top_k(k)` with `k <= covered` (or when it holds every row).
    topk: Vec<(Index, usize)>,
    /// How many leading ranks `topk` is valid for.
    covered: usize,
    /// True when `topk` holds *every* non-empty row.
    complete: bool,
    topk_version: u64,
    /// degree -> number of rows with that degree.
    hist: BTreeMap<u64, u64>,
    hist_version: u64,
    /// Reusable min-heap buffer for rebuilds.
    heap_buf: Vec<std::cmp::Reverse<(u64, std::cmp::Reverse<Index>)>>,
}

/// Smallest top-k cache width: rebuilding for a tiny `k` would re-scan the
/// row stats again as soon as a slightly larger `k` arrives, so rebuilds
/// always cover at least this many ranks.
const TOPK_MIN_COVER: usize = 128;

/// A read-only view of a [`DegreeIndex`]: the `Arc`-shared row stats plus
/// private query caches.  This is what a [`MatrixSnapshot`] carries — the
/// writer keeps maintaining its index (copy-on-write on the shared core)
/// while the view keeps answering from the captured state.
///
/// [`MatrixSnapshot`]: crate::snapshot::MatrixSnapshot
#[derive(Debug, Clone)]
pub struct DegreeIndexView<V> {
    core: Arc<RowStatsCore<V>>,
    cache: QueryCache,
}

impl<V: ScalarType> Default for DegreeIndexView<V> {
    fn default() -> Self {
        Self {
            core: Arc::new(RowStatsCore::default()),
            cache: QueryCache::default(),
        }
    }
}

impl<V: ScalarType> DegreeIndexView<V> {
    /// Distinct `(row, col)` cells — O(1).
    pub fn nnz(&self) -> usize {
        self.core.nnz
    }

    /// Number of non-empty rows — O(1).
    pub fn nrows_nonempty(&self) -> usize {
        self.core.rows.len()
    }

    /// Distinct columns stored in `row` — O(1).
    pub fn row_degree(&self, row: Index) -> usize {
        self.core.rows.get(&row).map_or(0, |s| s.degree as usize)
    }

    /// `+`-reduction of `row`'s accumulated values — O(1), `None` when the
    /// row is empty.
    pub fn row_weight(&self, row: Index) -> Option<V> {
        self.core.rows.get(&row).map(|s| s.weight)
    }

    /// Every non-empty row's `(row, distinct-column count)`, sorted by
    /// row — the out-degree table the reader-native pagerank consumes in
    /// one O(rows) pass instead of a per-iteration entry sweep.
    pub fn row_degrees(&self) -> Vec<(Index, u64)> {
        let mut out: Vec<(Index, u64)> =
            self.core.rows.iter().map(|(&r, s)| (r, s.degree)).collect();
        out.sort_unstable_by_key(|&(r, _)| r);
        out
    }

    /// The `k` rows with the most distinct columns (degree descending, row
    /// ascending) — O(k) when the cache is warm, one O(rows) bounded-heap
    /// scan to rebuild it after a mutation.
    pub fn top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if k == 0 {
            return Vec::new();
        }
        let stale = self.cache.topk_version != self.core.version
            || (self.cache.covered < k && !self.cache.complete);
        if stale {
            self.rebuild_topk(k.max(TOPK_MIN_COVER));
        }
        let take = k.min(self.cache.topk.len());
        self.cache.topk[..take].to_vec()
    }

    /// One bounded-heap pass over the row stats: collects the top `cover`
    /// ranks exactly as a full sort would order them.
    fn rebuild_topk(&mut self, cover: usize) {
        use std::cmp::Reverse;
        // Clear before heapifying: `from` on an empty Vec is free.
        self.cache.heap_buf.clear();
        let mut heap = std::collections::BinaryHeap::from(std::mem::take(&mut self.cache.heap_buf));
        for (&row, stat) in &self.core.rows {
            heap.push(Reverse((stat.degree, Reverse(row))));
            if heap.len() > cover {
                heap.pop();
            }
        }
        self.cache.complete = heap.len() == self.core.rows.len();
        self.cache.covered = cover;
        let mut buf = heap.into_vec();
        self.cache.topk.clear();
        self.cache.topk.extend(
            buf.drain(..)
                .map(|Reverse((d, Reverse(r)))| (r, d as usize)),
        );
        self.cache.heap_buf = buf;
        self.cache
            .topk
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.cache.topk_version = self.core.version;
    }

    /// The degree histogram (`degree -> row count`) — O(distinct degrees)
    /// when warm, one O(rows) scan to rebuild after a mutation.
    pub fn degree_histogram(&mut self) -> BTreeMap<u64, u64> {
        if self.cache.hist_version != self.core.version {
            self.cache.hist.clear();
            for stat in self.core.rows.values() {
                *self.cache.hist.entry(stat.degree).or_insert(0) += 1;
            }
            self.cache.hist_version = self.core.version;
        }
        self.cache.hist.clone()
    }
}

/// The incremental degree index a hierarchical matrix maintains alongside
/// its levels.  See the [module documentation](self) for the design.
///
/// The index starts **inactive**: pure-ingest workloads never touch it
/// (the observers return immediately), so streams that are never asked a
/// degree question pay zero maintenance.  The first degree query
/// activates it ([`DegreeIndex::activate`] + one `observe`/`add` rebuild
/// sweep by the owner); from then on the settle observer maintains it
/// incrementally.
#[derive(Debug, Clone)]
pub struct DegreeIndex<V> {
    /// Membership oracle over every distinct cell of the union.  Writer
    /// private: snapshots never need it, so maintaining the index past a
    /// snapshot copies only the row stats, not this set.
    cells: HashSet<u128, FxBuildHasher>,
    /// False until the first degree query: observers are no-ops while
    /// inactive.
    active: bool,
    view: DegreeIndexView<V>,
}

impl<V: ScalarType> Default for DegreeIndex<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: ScalarType> DegreeIndex<V> {
    /// An empty, inactive index.
    pub fn new() -> Self {
        Self {
            cells: HashSet::default(),
            active: false,
            view: DegreeIndexView::default(),
        }
    }

    /// True once a degree query has activated maintenance.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Start maintaining the index.  The owner must immediately rebuild it
    /// from the current content (e.g. [`DegreeIndex::observe_dcsr`] per
    /// settled level — the cell oracle deduplicates across levels);
    /// afterwards every settle flows through the observers.  Idempotent.
    pub fn activate(&mut self) {
        self.active = true;
    }

    /// Remove everything and deactivate (the matrix was cleared; the next
    /// degree query rebuilds from scratch).
    pub fn clear(&mut self) {
        self.cells.clear();
        self.cells.shrink_to_fit();
        self.active = false;
        let core = Arc::make_mut(&mut self.view.core);
        core.rows.clear();
        core.nnz = 0;
        core.version += 1;
    }

    /// A cheap, immutable view sharing the row stats (the snapshot
    /// companion).  The caches are cloned warm.
    pub fn view(&self) -> DegreeIndexView<V> {
        self.view.clone()
    }

    /// Bytes held by the index structures (hash tables + caches), for the
    /// memory accounting of the owning matrix.
    pub fn memory_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<u128>()
            + self.view.core.rows.capacity()
                * (std::mem::size_of::<Index>() + std::mem::size_of::<RowStat<V>>())
            + self.view.cache.topk.capacity() * std::mem::size_of::<(Index, usize)>()
    }

    /// Observe the settle dedup-unpack: `rows/cols/vals` are one sorted,
    /// row-major, in-batch-deduplicated pending batch about to merge into a
    /// settled level.  Values must already be combined under `+` (they
    /// are — the hierarchy settles with the `Plus` monoid).
    ///
    /// Cost: one cell probe per batch entry plus one row-stat update per
    /// *distinct row in the batch* (the row-major order lets the per-row
    /// deltas accumulate in registers before touching the map).
    pub fn observe_settle(&mut self, rows: &[Index], cols: &[Index], vals: &[V]) {
        if !self.active || rows.is_empty() {
            return;
        }
        let core = Arc::make_mut(&mut self.view.core);
        let mut i = 0;
        while i < rows.len() {
            let row = rows[i];
            let mut new_cells = 0u64;
            let mut weight = V::default();
            while i < rows.len() && rows[i] == row {
                if self.cells.insert(cell_key(row, cols[i])) {
                    new_cells += 1;
                }
                weight = weight.add(vals[i]);
                i += 1;
            }
            let stat = core.rows.entry(row).or_insert(RowStat {
                degree: 0,
                weight: V::default(),
            });
            stat.degree += new_cells;
            stat.weight = stat.weight.add(weight);
            core.nnz += new_cells as usize;
        }
        core.version += 1;
    }

    /// Observe a settled structure wholesale (the `update_matrix` bulk
    /// path): every entry runs through the cell oracle.
    pub fn observe_dcsr(&mut self, d: &Dcsr<V>) {
        let (ids, ptr, cols, vals) = d.raw_parts();
        if !self.active || ids.is_empty() {
            return;
        }
        let core = Arc::make_mut(&mut self.view.core);
        for (slot, &row) in ids.iter().enumerate() {
            let mut new_cells = 0u64;
            let mut weight = V::default();
            for j in ptr[slot]..ptr[slot + 1] {
                if self.cells.insert(cell_key(row, cols[j])) {
                    new_cells += 1;
                }
                weight = weight.add(vals[j]);
            }
            let stat = core.rows.entry(row).or_insert(RowStat {
                degree: 0,
                weight: V::default(),
            });
            stat.degree += new_cells;
            stat.weight = stat.weight.add(weight);
            core.nnz += new_cells as usize;
        }
        core.version += 1;
    }

    /// Observe a settled structure **transposed**: every `(row, col)` entry
    /// feeds the oracle and stats as `(col, row)`.  This is how a *column*
    /// degree index rebuilds from row-major level structures — the settle
    /// observer is coordinate-agnostic (grouping by the first coordinate is
    /// only a fast path), so the same [`DegreeIndex`] type indexes either
    /// axis; only this bulk rebuild needs to know the storage is row-major.
    pub fn observe_dcsr_transposed(&mut self, d: &Dcsr<V>) {
        let (ids, ptr, cols, vals) = d.raw_parts();
        if !self.active || ids.is_empty() {
            return;
        }
        let core = Arc::make_mut(&mut self.view.core);
        for (slot, &row) in ids.iter().enumerate() {
            for j in ptr[slot]..ptr[slot + 1] {
                let col = cols[j];
                let new_cell = self.cells.insert(cell_key(col, row));
                let stat = core.rows.entry(col).or_insert(RowStat {
                    degree: 0,
                    weight: V::default(),
                });
                if new_cell {
                    stat.degree += 1;
                    core.nnz += 1;
                }
                stat.weight = stat.weight.add(vals[j]);
            }
        }
        core.version += 1;
    }

    /// Record one row's worth of entries that are *known distinct and new*
    /// (no cell probes) — the rebuild path of readers that reconstruct an
    /// index from an already-deduplicated union sweep, where the oracle
    /// would be pure overhead.  The cell oracle is left untouched, so a
    /// rebuilt index must not be maintained incrementally afterwards
    /// (rebuild again instead).
    pub fn add_unique_row(&mut self, row: Index, degree: u64, weight: V) {
        let core = Arc::make_mut(&mut self.view.core);
        let stat = core.rows.entry(row).or_insert(RowStat {
            degree: 0,
            weight: V::default(),
        });
        stat.degree += degree;
        stat.weight = stat.weight.add(weight);
        core.nnz += degree as usize;
        core.version += 1;
    }

    /// Distinct `(row, col)` cells — O(1).
    pub fn nnz(&self) -> usize {
        self.view.nnz()
    }

    /// Number of non-empty rows — O(1).
    pub fn nrows_nonempty(&self) -> usize {
        self.view.nrows_nonempty()
    }

    /// Distinct columns stored in `row` — O(1).
    pub fn row_degree(&self, row: Index) -> usize {
        self.view.row_degree(row)
    }

    /// `+`-reduction of `row`'s accumulated values — O(1).
    pub fn row_weight(&self, row: Index) -> Option<V> {
        self.view.row_weight(row)
    }

    /// The `k` highest-degree rows (degree desc, row asc) — O(k) warm.
    pub fn top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        self.view.top_k(k)
    }

    /// Every non-empty row's `(row, degree)` sorted by row — O(rows).
    pub fn row_degrees(&self) -> Vec<(Index, u64)> {
        self.view.row_degrees()
    }

    /// The degree histogram — O(distinct degrees) warm.
    pub fn degree_histogram(&mut self) -> BTreeMap<u64, u64> {
        self.view.degree_histogram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn settle(ix: &mut DegreeIndex<u64>, batch: &[(u64, u64, u64)]) {
        // Batches must arrive sorted row-major and deduplicated, like the
        // real settle produces.
        ix.activate();
        let rows: Vec<u64> = batch.iter().map(|e| e.0).collect();
        let cols: Vec<u64> = batch.iter().map(|e| e.1).collect();
        let vals: Vec<u64> = batch.iter().map(|e| e.2).collect();
        ix.observe_settle(&rows, &cols, &vals);
    }

    #[test]
    fn inactive_index_ignores_observers() {
        let mut ix = DegreeIndex::<u64>::new();
        assert!(!ix.is_active());
        ix.observe_settle(&[1, 2], &[1, 2], &[1, 1]);
        let d = Dcsr::from_tuples(10, 10, &[3], &[3], &[3u64], Plus).unwrap();
        ix.observe_dcsr(&d);
        // Nothing recorded: pure-ingest streams pay no maintenance.
        assert_eq!(ix.nnz(), 0);
        assert!(ix.top_k(5).is_empty());
        // Activation starts maintenance; clear() deactivates again.
        ix.activate();
        assert!(ix.is_active());
        ix.observe_dcsr(&d);
        assert_eq!(ix.nnz(), 1);
        ix.clear();
        assert!(!ix.is_active());
    }

    #[test]
    fn incremental_counters_match_reality() {
        let mut ix = DegreeIndex::<u64>::new();
        assert_eq!(ix.nnz(), 0);
        assert_eq!(ix.row_degree(5), 0);
        assert_eq!(ix.row_weight(5), None);
        assert!(ix.top_k(3).is_empty());

        settle(&mut ix, &[(5, 1, 10), (5, 2, 20), (9, 9, 1)]);
        assert_eq!(ix.nnz(), 3);
        assert_eq!(ix.row_degree(5), 2);
        assert_eq!(ix.row_weight(5), Some(30));
        assert_eq!(ix.row_weight(9), Some(1));

        // A later settle revisits one cell (weight grows, degree does not)
        // and adds one new cell.
        settle(&mut ix, &[(5, 2, 5), (5, 3, 7)]);
        assert_eq!(ix.nnz(), 4);
        assert_eq!(ix.row_degree(5), 3);
        assert_eq!(ix.row_weight(5), Some(42));
        assert_eq!(ix.top_k(2), vec![(5, 3), (9, 1)]);
        assert_eq!(ix.top_k(100), vec![(5, 3), (9, 1)]);

        let hist = ix.degree_histogram();
        assert_eq!(hist.get(&3), Some(&1));
        assert_eq!(hist.get(&1), Some(&1));

        ix.clear();
        assert_eq!(ix.nnz(), 0);
        assert!(ix.top_k(5).is_empty());
        assert!(ix.degree_histogram().is_empty());
    }

    #[test]
    fn top_k_deterministic_ordering_and_cache_reuse() {
        let mut ix = DegreeIndex::<u64>::new();
        // Rows 1..=40 with degree i % 4 + 1: plenty of ties.
        for r in 1u64..=40 {
            let deg = r % 4 + 1;
            let batch: Vec<(u64, u64, u64)> = (0..deg).map(|c| (r, c, 1)).collect();
            settle(&mut ix, &batch);
        }
        let top = ix.top_k(10);
        // Ties break by ascending row id.
        let mut expect: Vec<(u64, usize)> =
            (1u64..=40).map(|r| (r, (r % 4 + 1) as usize)).collect();
        expect.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        expect.truncate(10);
        assert_eq!(top, expect);
        // Warm-cache answers for smaller and equal k agree with prefixes.
        assert_eq!(ix.top_k(3), expect[..3].to_vec());
        assert_eq!(ix.top_k(10), expect);
        // A mutation invalidates the cache.
        settle(
            &mut ix,
            &[(7, 100, 1), (7, 101, 1), (7, 102, 1), (7, 103, 1)],
        );
        // Row 7 had degree 7 % 4 + 1 = 4; four new cells make 8.
        assert_eq!(ix.top_k(1), vec![(7, 8)]);
    }

    #[test]
    fn topk_beyond_cached_cover_rebuilds() {
        let mut ix = DegreeIndex::<u64>::new();
        for r in 0u64..300 {
            settle(&mut ix, &[(r, 0, 1)]);
        }
        // First query caches TOPK_MIN_COVER ranks; a wider ask rebuilds.
        assert_eq!(ix.top_k(2).len(), 2);
        assert_eq!(ix.top_k(250).len(), 250);
        assert_eq!(ix.top_k(1000).len(), 300);
    }

    #[test]
    fn view_is_stable_under_writer_mutation() {
        let mut ix = DegreeIndex::<u64>::new();
        settle(&mut ix, &[(1, 1, 5), (2, 1, 6), (2, 2, 7)]);
        let mut view = ix.view();
        settle(&mut ix, &[(3, 1, 1), (3, 2, 1), (3, 3, 1)]);
        // The view still answers from the captured state...
        assert_eq!(view.nnz(), 3);
        assert_eq!(view.row_degree(3), 0);
        assert_eq!(view.top_k(1), vec![(2, 2)]);
        // ...while the writer reflects the mutation.
        assert_eq!(ix.nnz(), 6);
        assert_eq!(ix.top_k(1), vec![(3, 3)]);
        assert_eq!(view.degree_histogram().get(&1), Some(&1));
    }

    #[test]
    fn observe_dcsr_bulk_path() {
        let d =
            Dcsr::from_tuples(100, 100, &[4, 4, 9], &[1, 2, 3], &[10u64, 20, 30], Plus).unwrap();
        let mut ix = DegreeIndex::<u64>::new();
        ix.activate();
        ix.observe_dcsr(&d);
        // Overlapping re-observation only accumulates weight where cells
        // repeat.
        ix.observe_dcsr(&d);
        assert_eq!(ix.nnz(), 3);
        assert_eq!(ix.row_degree(4), 2);
        assert_eq!(ix.row_weight(4), Some(60));
    }

    #[test]
    fn transposed_observation_builds_a_column_index() {
        // (4,1) (4,2) (9,2): column degrees are {1: 1, 2: 2}.
        let d =
            Dcsr::from_tuples(100, 100, &[4, 4, 9], &[1, 2, 2], &[10u64, 20, 30], Plus).unwrap();
        let mut ix = DegreeIndex::<u64>::new();
        ix.activate();
        ix.observe_dcsr_transposed(&d);
        assert_eq!(ix.nnz(), 3);
        assert_eq!(ix.row_degree(1), 1);
        assert_eq!(ix.row_degree(2), 2);
        assert_eq!(ix.row_weight(2), Some(50));
        assert_eq!(ix.top_k(1), vec![(2, 2)]);
        // Re-observation only accumulates weight where cells repeat.
        ix.observe_dcsr_transposed(&d);
        assert_eq!(ix.nnz(), 3);
        assert_eq!(ix.row_degree(2), 2);
        // The settle observer with swapped coordinate slices maintains the
        // same column stats incrementally (grouping by the first slice is a
        // fast path, not a correctness requirement).
        ix.observe_settle(&[7, 2], &[1, 8], &[5, 5]);
        assert_eq!(ix.row_degree(7), 1);
        assert_eq!(ix.row_degree(2), 3);
        assert_eq!(ix.nnz(), 5);
    }

    #[test]
    fn add_unique_row_rebuild_path() {
        let mut ix = DegreeIndex::<u64>::new();
        ix.add_unique_row(8, 3, 15);
        ix.add_unique_row(2, 1, 4);
        assert_eq!(ix.nnz(), 4);
        assert_eq!(ix.row_degree(8), 3);
        assert_eq!(ix.top_k(2), vec![(8, 3), (2, 1)]);
    }

    #[test]
    fn fx_hasher_covers_byte_writes() {
        use std::hash::Hash;
        let mut a = FxHasher::default();
        "hello-degree-index".hash(&mut a);
        let mut b = FxHasher::default();
        "hello-degree-index".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        "hello-degree-indey".hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }
}
