//! DOK — dictionary-of-keys (hash map) storage.
//!
//! A hash map from `(row, col)` to value supports `O(1)` accumulating point
//! updates, which makes it the obvious straw-man for streaming inserts.  Its
//! weakness — and the reason the paper's hierarchy wins — is that once the
//! map outgrows the cache every update is a random access to slow memory,
//! and iteration/merging is unordered and allocation-heavy.  The
//! hierarchical benchmarks use DOK as one of the flat-update baselines.

use crate::error::GrbResult;
use crate::formats::coo::Coo;
use crate::formats::dcsr::Dcsr;
use crate::formats::{Entry, MemoryFootprint};
use crate::index::{validate_dims, validate_index, Index};
use crate::ops::BinaryOp;
use crate::types::ScalarType;
use std::collections::HashMap;

/// Dictionary-of-keys sparse matrix.
#[derive(Debug, Clone)]
pub struct Dok<T> {
    nrows: Index,
    ncols: Index,
    map: HashMap<(Index, Index), T>,
}

impl<T: ScalarType> Dok<T> {
    /// An empty DOK matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::try_new(nrows, ncols).expect("invalid matrix dimensions")
    }

    /// Fallible constructor.
    pub fn try_new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            map: HashMap::new(),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Overwrite the value at `(row, col)`.
    pub fn set(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        self.map.insert((row, col), val);
        Ok(())
    }

    /// Accumulate `val` into `(row, col)` with the operator `op`
    /// (`A(i,j) = op(A(i,j), v)`, or plain insert when absent).
    pub fn accum<Op: BinaryOp<T>>(
        &mut self,
        row: Index,
        col: Index,
        val: T,
        op: Op,
    ) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        self.map
            .entry((row, col))
            .and_modify(|v| *v = op.apply(*v, val))
            .or_insert(val);
        Ok(())
    }

    /// Value stored at `(row, col)`, or `None`.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        self.map.get(&(row, col)).copied()
    }

    /// Remove the entry at `(row, col)`, returning it if present.
    pub fn remove(&mut self, row: Index, col: Index) -> Option<T> {
        self.map.remove(&(row, col))
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate over stored entries in arbitrary (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = Entry<T>> + '_ {
        self.map.iter().map(|(&(r, c), &v)| (r, c, v))
    }

    /// Convert to a COO (unsorted).
    pub fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }

    /// Convert to hypersparse DCSR (sorts the entries).
    pub fn to_dcsr(&self) -> Dcsr<T> {
        Dcsr::from_coo(self.to_coo(), crate::ops::binary::Second)
            .expect("DOK entries are within bounds")
    }

    /// Approximate bytes of memory used by the hash map.
    ///
    /// The std `HashMap` does not expose its allocation size; this uses the
    /// standard estimate of `capacity * (key + value + 1 control byte)`
    /// which is what the memory-pressure experiments need (an upper-bound
    /// shape, not byte-exact accounting).
    pub fn memory(&self) -> MemoryFootprint {
        let per_slot = std::mem::size_of::<(Index, Index)>() + std::mem::size_of::<T>() + 1;
        MemoryFootprint {
            index_bytes: self.map.capacity() * std::mem::size_of::<(Index, Index)>()
                + self.map.capacity(),
            value_bytes: self.map.capacity() * std::mem::size_of::<T>(),
        }
        .max_with_len(self.map.len() * per_slot)
    }
}

impl MemoryFootprint {
    fn max_with_len(self, min_total: usize) -> Self {
        if self.total() >= min_total {
            self
        } else {
            MemoryFootprint {
                index_bytes: min_total,
                value_bytes: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Max, Plus};

    #[test]
    fn set_get_remove() {
        let mut m = Dok::<f64>::new(1 << 32, 1 << 32);
        m.set(1_000_000_000, 2_000_000_000, 1.5).unwrap();
        assert_eq!(m.get(1_000_000_000, 2_000_000_000), Some(1.5));
        assert_eq!(m.nvals(), 1);
        assert_eq!(m.remove(1_000_000_000, 2_000_000_000), Some(1.5));
        assert!(m.is_empty());
        assert_eq!(m.remove(0, 0), None);
    }

    #[test]
    fn accum_applies_operator() {
        let mut m = Dok::<u64>::new(10, 10);
        m.accum(3, 4, 10, Plus).unwrap();
        m.accum(3, 4, 5, Plus).unwrap();
        assert_eq!(m.get(3, 4), Some(15));
        m.accum(3, 4, 100, Max).unwrap();
        assert_eq!(m.get(3, 4), Some(100));
    }

    #[test]
    fn bounds_checked() {
        let mut m = Dok::<u8>::new(4, 4);
        assert!(m.set(4, 0, 1).is_err());
        assert!(m.accum(0, 4, 1, Plus).is_err());
    }

    #[test]
    fn conversion_to_dcsr_sorts() {
        let mut m = Dok::<u32>::new(100, 100);
        for i in (0..50u64).rev() {
            m.accum(i, i * 2 % 100, 1, Plus).unwrap();
        }
        let d = m.to_dcsr();
        d.check_invariants().unwrap();
        assert_eq!(d.nvals(), m.nvals());
        for (r, c, v) in m.iter() {
            assert_eq!(d.get(r, c), Some(v));
        }
    }

    #[test]
    fn set_overwrites() {
        let mut m = Dok::<i32>::new(4, 4);
        m.set(0, 0, 1).unwrap();
        m.set(0, 0, 2).unwrap();
        assert_eq!(m.get(0, 0), Some(2));
        assert_eq!(m.nvals(), 1);
    }

    #[test]
    fn memory_nonzero_once_populated() {
        let mut m = Dok::<u64>::new(100, 100);
        assert_eq!(m.nvals(), 0);
        for i in 0..64 {
            m.set(i, i, i).unwrap();
        }
        assert!(m.memory().total() > 64 * 8);
    }

    #[test]
    fn clear_empties() {
        let mut m = Dok::<u64>::new(100, 100);
        m.set(1, 1, 1).unwrap();
        m.clear();
        assert!(m.is_empty());
    }
}
