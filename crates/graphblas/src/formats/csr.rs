//! CSR — conventional compressed sparse row storage.
//!
//! CSR keeps a row-pointer array of length `nrows + 1`, so its memory cost is
//! `O(nnz + nrows)`.  For ordinary sparse matrices (web graphs, meshes) that
//! is the right trade-off; for hypersparse traffic matrices with `2^32` rows
//! it is four billion pointers of pure overhead.  The format exists here as
//! the non-hypersparse comparison point and for small dense-ish index spaces
//! (e.g. per-subnet matrices).

use crate::error::{GrbError, GrbResult};
use crate::formats::coo::Coo;
use crate::formats::dcsr::Dcsr;
use crate::formats::{Entry, MemoryFootprint};
use crate::index::{validate_dims, Index};
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// Maximum number of rows for which a CSR may be allocated (guards against
/// accidentally materialising a 2^32-row pointer array).
pub const CSR_MAX_ROWS: Index = 1 << 28;

/// Conventional compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    vals: Vec<T>,
}

impl<T: ScalarType> Csr<T> {
    /// An empty CSR matrix.  Fails if `nrows` exceeds [`CSR_MAX_ROWS`].
    pub fn try_new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        if nrows > CSR_MAX_ROWS {
            return Err(GrbError::InvalidValue(format!(
                "CSR row dimension {nrows} exceeds the {CSR_MAX_ROWS} cap; use Dcsr for hypersparse index spaces"
            )));
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows as usize + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        })
    }

    /// Panicking constructor (see [`Csr::try_new`]).
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::try_new(nrows, ncols).expect("invalid CSR dimensions")
    }

    /// Build from a COO, sorting and combining duplicates with `dup`.
    pub fn from_coo<Op: BinaryOp<T>>(mut coo: Coo<T>, dup: Op) -> GrbResult<Self> {
        coo.sort_dedup(dup);
        let mut m = Self::try_new(coo.nrows(), coo.ncols())?;
        let (rows, cols, vals) = coo.parts();
        m.col_idx = cols.to_vec();
        m.vals = vals.to_vec();
        // Counting sort of row pointers (rows are already sorted).
        for &r in rows {
            m.row_ptr[r as usize + 1] += 1;
        }
        for i in 1..m.row_ptr.len() {
            m.row_ptr[i] += m.row_ptr[i - 1];
        }
        Ok(m)
    }

    /// Build from a DCSR (loses nothing; gains the dense row-pointer array).
    pub fn from_dcsr(d: &Dcsr<T>) -> GrbResult<Self> {
        Self::from_coo(d.to_coo(), crate::ops::binary::Second)
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> usize {
        self.col_idx.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.col_idx.is_empty()
    }

    /// The columns and values of row `row` (possibly empty slices).
    pub fn row(&self, row: Index) -> (&[Index], &[T]) {
        let lo = self.row_ptr[row as usize];
        let hi = self.row_ptr[row as usize + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Value stored at `(row, col)`, or `None`.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        if row >= self.nrows {
            return None;
        }
        let (cols, vals) = self.row(row);
        let j = cols.binary_search(&col).ok()?;
        Some(vals[j])
    }

    /// Iterate over stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Entry<T>> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Convert to hypersparse DCSR.
    pub fn to_dcsr(&self) -> Dcsr<T> {
        let mut coo = Coo::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        Dcsr::from_sorted_coo(&coo).expect("CSR iteration is sorted")
    }

    /// Bytes of memory used, including the dense row-pointer array.
    pub fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            index_bytes: self.row_ptr.capacity() * std::mem::size_of::<usize>()
                + self.col_idx.capacity() * std::mem::size_of::<Index>(),
            value_bytes: self.vals.capacity() * std::mem::size_of::<T>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn sample() -> Csr<i64> {
        let mut coo = Coo::new(6, 6);
        for &(r, c, v) in &[(0, 1, 1i64), (0, 3, 2), (2, 2, 3), (5, 0, 4), (0, 1, 10)] {
            coo.push(r, c, v);
        }
        Csr::from_coo(coo, Plus).unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let m = sample();
        assert_eq!(m.nvals(), 4);
        assert_eq!(m.get(0, 1), Some(11));
        assert_eq!(m.get(0, 3), Some(2));
        assert_eq!(m.get(2, 2), Some(3));
        assert_eq!(m.get(5, 0), Some(4));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.get(99, 0), None);
    }

    #[test]
    fn empty_rows_have_empty_slices() {
        let m = sample();
        let (cols, vals) = m.row(1);
        assert!(cols.is_empty());
        assert!(vals.is_empty());
        let (cols, _) = m.row(0);
        assert_eq!(cols, &[1, 3]);
    }

    #[test]
    fn hypersparse_rows_rejected() {
        assert!(Csr::<f64>::try_new(1 << 32, 16).is_err());
        assert!(Csr::<f64>::try_new(CSR_MAX_ROWS, 16).is_ok());
    }

    #[test]
    fn round_trip_through_dcsr() {
        let m = sample();
        let d = m.to_dcsr();
        assert_eq!(d.nvals(), m.nvals());
        let back = Csr::from_dcsr(&d).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn iter_matches_gets() {
        let m = sample();
        for (r, c, v) in m.iter() {
            assert_eq!(m.get(r, c), Some(v));
        }
        assert_eq!(m.iter().count(), m.nvals());
    }

    #[test]
    fn csr_memory_scales_with_nrows_unlike_dcsr() {
        let csr_small = Csr::<u64>::new(16, 16);
        let csr_big = Csr::<u64>::new(1 << 20, 16);
        assert!(csr_big.memory().total() > csr_small.memory().total() * 1000);

        let dcsr_small = Dcsr::<u64>::new(16, 16);
        let dcsr_big = Dcsr::<u64>::new(1 << 50, 16);
        assert_eq!(dcsr_big.memory().total(), dcsr_small.memory().total());
    }
}
