//! Coordinate-list (COO / triplet) format.
//!
//! COO is the natural format for *building* matrices from streams of edges:
//! appending is `O(1)` and touches only the tail of three vectors, which is
//! exactly the cache-friendly behaviour the hierarchical matrix exploits at
//! its lowest level.  Before a COO can be used algebraically it is sorted and
//! duplicate coordinates are combined with a binary operator
//! ([`Coo::sort_dedup`]), mirroring `GrB_Matrix_build`.

use crate::error::{GrbError, GrbResult};
use crate::formats::dcsr::MergeScratch;
use crate::formats::{Entry, MemoryFootprint};
use crate::index::{validate_dims, validate_index, Index};
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// An append-only list of `(row, col, value)` tuples with matrix dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    nrows: Index,
    ncols: Index,
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<T>,
    /// True when the tuples are known to be sorted row-major and duplicate free.
    sorted_dedup: bool,
}

impl<T: ScalarType> Coo<T> {
    /// Create an empty COO with the given dimensions.
    ///
    /// # Panics
    /// Panics if the dimensions are invalid (zero or above the cap); use
    /// [`Coo::try_new`] for a fallible constructor.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::try_new(nrows, ncols).expect("invalid matrix dimensions")
    }

    /// Fallible constructor.
    pub fn try_new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            sorted_dedup: true, // empty is trivially sorted
        })
    }

    /// Create with pre-reserved capacity for `cap` tuples.
    pub fn with_capacity(nrows: Index, ncols: Index, cap: usize) -> Self {
        let mut c = Self::new(nrows, ncols);
        c.rows.reserve(cap);
        c.cols.reserve(cap);
        c.vals.reserve(cap);
        c
    }

    /// Number of rows of the logical matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns of the logical matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored tuples (may include duplicates until
    /// [`Coo::sort_dedup`] is called).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when the tuples are known to be row-major sorted and duplicate
    /// free.
    pub fn is_sorted_dedup(&self) -> bool {
        self.sorted_dedup
    }

    /// Append a tuple without bounds checking beyond a debug assertion.
    /// Bounds are validated by the public [`Matrix`](crate::matrix::Matrix)
    /// API before reaching this point.
    pub fn push(&mut self, row: Index, col: Index, val: T) {
        debug_assert!(row < self.nrows && col < self.ncols);
        // Appending may break sortedness; cheaply detect the common in-order case.
        if self.sorted_dedup {
            if let (Some(&lr), Some(&lc)) = (self.rows.last(), self.cols.last()) {
                if (row, col) <= (lr, lc) {
                    self.sorted_dedup = false;
                }
            }
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append a tuple with bounds checking.
    pub fn try_push(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        self.push(row, col, val);
        Ok(())
    }

    /// Append many tuples from parallel slices.
    ///
    /// The whole batch is validated in one pass *before* anything is
    /// appended (the batch applies atomically), then the three vectors are
    /// extended with bulk copies — one bounds/sortedness scan and three
    /// `memcpy`-style extends instead of a `try_push` per tuple.  This is
    /// the bulk insert path of [`Matrix::accum_tuples`]
    /// (`Matrix`: crate::matrix::Matrix).
    pub fn extend_from_slices(
        &mut self,
        rows: &[Index],
        cols: &[Index],
        vals: &[T],
    ) -> GrbResult<()> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "tuple slice lengths differ: {} rows, {} cols, {} vals",
                    rows.len(),
                    cols.len(),
                    vals.len()
                ),
            });
        }
        // One validation pass; track whether appending keeps us sorted.
        let mut sorted = self.sorted_dedup;
        let mut last = match (self.rows.last(), self.cols.last()) {
            (Some(&r), Some(&c)) => Some((r, c)),
            _ => None,
        };
        for i in 0..rows.len() {
            validate_index(rows[i], self.nrows)?;
            validate_index(cols[i], self.ncols)?;
            if sorted {
                let cur = (rows[i], cols[i]);
                if let Some(prev) = last {
                    if cur <= prev {
                        sorted = false;
                    }
                }
                last = Some(cur);
            }
        }
        self.rows.extend_from_slice(rows);
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
        self.sorted_dedup = sorted;
        Ok(())
    }

    /// Remove all tuples, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
        self.sorted_dedup = true;
    }

    /// Iterate over stored tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Entry<T>> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sort tuples row-major and combine duplicates with `dup`.
    ///
    /// After this call the tuples are strictly increasing in `(row, col)` and
    /// [`Coo::is_sorted_dedup`] returns true.  This is the expensive step of
    /// `GrB_Matrix_build`; its cost is `O(nnz log nnz)`.
    pub fn sort_dedup<Op: BinaryOp<T>>(&mut self, dup: Op) {
        let mut scratch = MergeScratch::default();
        self.sort_dedup_with(dup, &mut scratch);
    }

    /// Like [`Coo::sort_dedup`], but sorting through caller-provided scratch
    /// buffers so repeated settles (the streaming hot path) allocate nothing
    /// once the buffers have grown to the working-set size.  The sorted
    /// tuples are swapped with the staging vectors in `scratch`; the COO's
    /// previous vectors become the next sort's staging space.
    pub fn sort_dedup_with<Op: BinaryOp<T>>(&mut self, dup: Op, scratch: &mut MergeScratch<T>) {
        if self.sorted_dedup {
            return;
        }
        let n = self.rows.len();
        scratch.perm.clear();
        scratch.perm.extend(0..n);
        scratch
            .perm
            .sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));

        scratch.sort_rows.clear();
        scratch.sort_cols.clear();
        scratch.sort_vals.clear();
        scratch.sort_rows.reserve(n);
        scratch.sort_cols.reserve(n);
        scratch.sort_vals.reserve(n);
        // Dedup scan.  The unstable sort may shuffle duplicates of the same
        // (row, col), so when a run of equal keys is detected its
        // permutation slice is re-sorted by index before `dup` is applied —
        // order-sensitive operators (`First`/`Second`, "last write wins")
        // need duplicates combined in insertion order.  Runs longer than 1
        // exist only at duplicate coordinates, so distinct-heavy streams
        // never pay for it.  (Keying the main sort by (row, col, i) instead
        // costs ~40% more: the wider key slows every comparison of the
        // sort, not just the duplicates'.)
        let mut start = 0;
        while start < n {
            let i0 = scratch.perm[start];
            let (r, c) = (self.rows[i0], self.cols[i0]);
            let mut end = start + 1;
            while end < n {
                let ie = scratch.perm[end];
                if self.rows[ie] != r || self.cols[ie] != c {
                    break;
                }
                end += 1;
            }
            let acc = if end - start > 1 {
                scratch.perm[start..end].sort_unstable();
                let mut acc = self.vals[scratch.perm[start]];
                for &j in &scratch.perm[start + 1..end] {
                    acc = dup.apply(acc, self.vals[j]);
                }
                acc
            } else {
                self.vals[i0]
            };
            scratch.sort_rows.push(r);
            scratch.sort_cols.push(c);
            scratch.sort_vals.push(acc);
            start = end;
        }
        std::mem::swap(&mut self.rows, &mut scratch.sort_rows);
        std::mem::swap(&mut self.cols, &mut scratch.sort_cols);
        std::mem::swap(&mut self.vals, &mut scratch.sort_vals);
        self.sorted_dedup = true;
    }

    /// Consume the COO and return its tuple vectors `(rows, cols, vals)`.
    pub fn into_parts(self) -> (Vec<Index>, Vec<Index>, Vec<T>) {
        (self.rows, self.cols, self.vals)
    }

    /// Borrow the tuple slices `(rows, cols, vals)`.
    pub fn parts(&self) -> (&[Index], &[Index], &[T]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Bytes of memory used by the tuple arrays.
    pub fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            index_bytes: (self.rows.capacity() + self.cols.capacity())
                * std::mem::size_of::<Index>(),
            value_bytes: self.vals.capacity() * std::mem::size_of::<T>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Plus, Second};

    #[test]
    fn new_and_push() {
        let mut c = Coo::<u64>::new(1 << 32, 1 << 32);
        assert!(c.is_empty());
        c.push(5, 6, 1);
        c.push(5, 7, 2);
        assert_eq!(c.len(), 2);
        assert!(c.is_sorted_dedup());
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(5, 6, 1), (5, 7, 2)]);
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(Coo::<f64>::try_new(0, 5).is_err());
        assert!(Coo::<f64>::try_new(5, 0).is_err());
    }

    #[test]
    fn out_of_order_push_clears_sorted_flag() {
        let mut c = Coo::<u64>::new(100, 100);
        c.push(9, 9, 1);
        c.push(3, 3, 1);
        assert!(!c.is_sorted_dedup());
        c.sort_dedup(Plus);
        assert!(c.is_sorted_dedup());
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(3, 3, 1), (9, 9, 1)]);
    }

    #[test]
    fn sort_dedup_accumulates_duplicates() {
        let mut c = Coo::<u64>::new(10, 10);
        c.push(1, 2, 10);
        c.push(0, 0, 1);
        c.push(1, 2, 5);
        c.push(1, 2, 1);
        c.sort_dedup(Plus);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1), (1, 2, 16)]);
    }

    #[test]
    fn sort_dedup_second_keeps_last_sorted_occurrence() {
        let mut c = Coo::<u32>::new(10, 10);
        c.push(1, 1, 100);
        c.push(0, 5, 7);
        c.push(1, 1, 200);
        c.sort_dedup(Second);
        let entries: Vec<_> = c.iter().collect();
        // Stable permutation sort keeps insertion order among equal keys, so
        // Second keeps the latest inserted value.
        assert_eq!(entries, vec![(0, 5, 7), (1, 1, 200)]);
    }

    #[test]
    fn sort_dedup_second_is_deterministic_under_heavy_duplication() {
        // Large enough that the unstable sort would shuffle equal keys if
        // runs were not re-ordered by insertion index before dedup.
        let mut c = Coo::<u64>::new(100, 100);
        for i in 0..10_000u64 {
            c.push(i % 7, (i * 3) % 5, i); // many duplicates per (row, col)
        }
        c.sort_dedup(Second);
        for (r, col, v) in c.iter() {
            // `Second` must keep the value of the LAST pushed tuple of the
            // cell: the largest i with i % 7 == r && (i * 3) % 5 == col.
            let expect = (0..10_000u64)
                .rfind(|i| i % 7 == r && (i * 3) % 5 == col)
                .unwrap();
            assert_eq!(v, expect, "cell ({r},{col})");
        }
    }

    #[test]
    fn try_push_bounds() {
        let mut c = Coo::<u8>::new(4, 4);
        assert!(c.try_push(3, 3, 1).is_ok());
        assert!(c.try_push(4, 0, 1).is_err());
        assert!(c.try_push(0, 4, 1).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn extend_from_slices_checks_lengths() {
        let mut c = Coo::<u8>::new(4, 4);
        assert!(c.extend_from_slices(&[0, 1], &[1, 2], &[1, 2]).is_ok());
        assert_eq!(c.len(), 2);
        assert!(c.extend_from_slices(&[0], &[1, 2], &[1, 2]).is_err());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = Coo::<u64>::with_capacity(10, 10, 64);
        for i in 0..10 {
            c.push(i, i, i);
        }
        let before = c.memory().total();
        c.clear();
        assert!(c.is_empty());
        assert!(c.is_sorted_dedup());
        assert_eq!(c.memory().total(), before);
    }

    #[test]
    fn memory_counts_indices_and_values() {
        let mut c = Coo::<u64>::new(10, 10);
        c.push(0, 0, 1);
        let m = c.memory();
        assert!(m.index_bytes >= 16);
        assert!(m.value_bytes >= 8);
    }
}
