//! Coordinate-list (COO / triplet) format.
//!
//! COO is the natural format for *building* matrices from streams of edges:
//! appending is `O(1)` and touches only the tail of three vectors, which is
//! exactly the cache-friendly behaviour the hierarchical matrix exploits at
//! its lowest level.  Before a COO can be used algebraically it is sorted and
//! duplicate coordinates are combined with a binary operator
//! ([`Coo::sort_dedup`]), mirroring `GrB_Matrix_build`.

use crate::error::{GrbError, GrbResult};
use crate::formats::dcsr::MergeScratch;
use crate::formats::{Entry, MemoryFootprint};
use crate::index::{validate_dims, validate_index, Index};
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// Largest dimension whose indices pack into 32 bits — the paper's IPv4
/// traffic matrices are exactly `2^32 x 2^32`.  At or below this dimension
/// the settle sort runs the packed-key radix kernel; above it the
/// comparison sort is the guarded fallback.
pub const RADIX_DIM_MAX: Index = 1 << 32;

/// Batch length at which the radix settle kernel switches from 8-bit to
/// 13-bit digits.  13 bits won a measured sweep (8/11/12/13/14/16, the
/// `merge_rate` bench's `digit_sweep` section) on settle-sized batches:
/// wide enough that a full 64-bit key needs only 5 passes, narrow enough
/// that the 8,192 scatter bucket tails (512 KB) stay cache-resident
/// instead of thrashing like 65,536 streams do.
const RADIX_WIDE_MIN: usize = 1 << 14;

/// Batch length at which the kernel widens again to 14-bit digits.  The
/// re-measured sweep on the split-plane layout shows 14 bits consistently
/// ahead of 13 by ~6–9% from ~10⁵ tuples (the extra bucket tails amortise
/// across the longer scatter; at 10⁶ every width from 12–16 measures
/// within noise, so the mid-size winner decides).
const RADIX_XWIDE_MIN: usize = 1 << 17;

/// An append-only list of `(row, col, value)` tuples with matrix dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    nrows: Index,
    ncols: Index,
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<T>,
    /// True when the tuples are known to be sorted row-major and duplicate free.
    sorted_dedup: bool,
}

impl<T: ScalarType> Coo<T> {
    /// Create an empty COO with the given dimensions.
    ///
    /// # Panics
    /// Panics if the dimensions are invalid (zero or above the cap); use
    /// [`Coo::try_new`] for a fallible constructor.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::try_new(nrows, ncols).expect("invalid matrix dimensions")
    }

    /// Fallible constructor.
    pub fn try_new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            sorted_dedup: true, // empty is trivially sorted
        })
    }

    /// Create with pre-reserved capacity for `cap` tuples.
    pub fn with_capacity(nrows: Index, ncols: Index, cap: usize) -> Self {
        let mut c = Self::new(nrows, ncols);
        c.rows.reserve(cap);
        c.cols.reserve(cap);
        c.vals.reserve(cap);
        c
    }

    /// Number of rows of the logical matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns of the logical matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored tuples (may include duplicates until
    /// [`Coo::sort_dedup`] is called).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when the tuples are known to be row-major sorted and duplicate
    /// free.
    pub fn is_sorted_dedup(&self) -> bool {
        self.sorted_dedup
    }

    /// Append a tuple without bounds checking beyond a debug assertion.
    /// Bounds are validated by the public [`Matrix`](crate::matrix::Matrix)
    /// API before reaching this point.
    pub fn push(&mut self, row: Index, col: Index, val: T) {
        debug_assert!(row < self.nrows && col < self.ncols);
        // Appending may break sortedness; cheaply detect the common in-order case.
        if self.sorted_dedup {
            if let (Some(&lr), Some(&lc)) = (self.rows.last(), self.cols.last()) {
                if (row, col) <= (lr, lc) {
                    self.sorted_dedup = false;
                }
            }
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append a tuple with bounds checking.
    pub fn try_push(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        self.push(row, col, val);
        Ok(())
    }

    /// Append many tuples from parallel slices.
    ///
    /// The whole batch is validated in one pass *before* anything is
    /// appended (the batch applies atomically), then the three vectors are
    /// extended with bulk copies — one bounds/sortedness scan and three
    /// `memcpy`-style extends instead of a `try_push` per tuple.  This is
    /// the bulk insert path of [`Matrix::accum_tuples`]
    /// (`Matrix`: crate::matrix::Matrix).
    pub fn extend_from_slices(
        &mut self,
        rows: &[Index],
        cols: &[Index],
        vals: &[T],
    ) -> GrbResult<()> {
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "tuple slice lengths differ: {} rows, {} cols, {} vals",
                    rows.len(),
                    cols.len(),
                    vals.len()
                ),
            });
        }
        // One pass that tracks the slice maxima and whether appending keeps
        // us sorted; bounds are compared once per slice instead of twice per
        // element (two data-dependent branches off the bulk path).  The
        // batch is still atomic on error: nothing is appended until the
        // maxima of the whole slice have been checked.
        let mut sorted = self.sorted_dedup;
        let (mut max_row, mut max_col) = (0, 0);
        if sorted {
            let mut last = match (self.rows.last(), self.cols.last()) {
                (Some(&r), Some(&c)) => Some((r, c)),
                _ => None,
            };
            for i in 0..rows.len() {
                max_row = max_row.max(rows[i]);
                max_col = max_col.max(cols[i]);
                let cur = (rows[i], cols[i]);
                if let Some(prev) = last {
                    if cur <= prev {
                        sorted = false;
                    }
                }
                last = Some(cur);
            }
        } else {
            // Already-unsorted fast path: two branch-free maximum scans
            // that the compiler vectorises (the common case in steady-state
            // streaming, where the pending buffer is rarely in order).
            for &r in rows {
                max_row = max_row.max(r);
            }
            for &c in cols {
                max_col = max_col.max(c);
            }
        }
        if !rows.is_empty() {
            validate_index(max_row, self.nrows)?;
            validate_index(max_col, self.ncols)?;
        }
        self.rows.extend_from_slice(rows);
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
        self.sorted_dedup = sorted;
        Ok(())
    }

    /// Remove all tuples, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
        self.sorted_dedup = true;
    }

    /// Iterate over stored tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Entry<T>> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sort tuples row-major and combine duplicates with `dup`.
    ///
    /// After this call the tuples are strictly increasing in `(row, col)` and
    /// [`Coo::is_sorted_dedup`] returns true.  This is the expensive step of
    /// `GrB_Matrix_build`; its cost is `O(nnz log nnz)`.
    pub fn sort_dedup<Op: BinaryOp<T>>(&mut self, dup: Op) {
        let mut scratch = MergeScratch::default();
        self.sort_dedup_with(dup, &mut scratch);
    }

    /// Like [`Coo::sort_dedup`], but sorting through caller-provided scratch
    /// buffers so repeated settles (the streaming hot path) allocate nothing
    /// once the buffers have grown to the working-set size.  The sorted
    /// tuples are swapped with the staging vectors in `scratch`; the COO's
    /// previous vectors become the next sort's staging space.
    ///
    /// Dispatches to the packed-key LSD radix kernel when both dimensions
    /// fit the 32-bit index space (the paper's `2^32 x 2^32` regime) and to
    /// the comparison sort ([`Coo::sort_dedup_comparison_with`]) otherwise.
    pub fn sort_dedup_with<Op: BinaryOp<T>>(&mut self, dup: Op, scratch: &mut MergeScratch<T>) {
        if self.sorted_dedup {
            return;
        }
        if self.nrows <= RADIX_DIM_MAX && self.ncols <= RADIX_DIM_MAX {
            self.sort_dedup_radix(dup, scratch);
        } else {
            self.sort_dedup_comparison_with(dup, scratch);
        }
    }

    /// The radix settle kernel: pack each `(row, col)` into a `u64` key
    /// (`row << 32 | col` — valid because both dimensions are at most
    /// `2^32`), LSD radix-sort parallel key/value planes digit by digit
    /// through the reusable scratch buffers, and combine duplicates with
    /// `dup` while unpacking into the output vectors.
    ///
    /// What makes this the streaming hot path's kernel:
    ///
    /// * **`O(p·n)` instead of `O(n log n)` comparisons** with `p` ≤ 8
    ///   scatter passes over contiguous arrays, versus a comparison sort
    ///   through a permutation index whose every comparison is two
    ///   random-access gathers;
    /// * **one fused histogram pass** reads the source arrays once and
    ///   counts every digit plane simultaneously; the first scatter then
    ///   packs keys on the fly, so the pairs buffer is never written before
    ///   its first real use (a full round trip of memory traffic saved);
    /// * **constant digits are skipped** — a plane whose histogram puts all
    ///   `n` tuples in one bucket needs no pass, and a hypersparse update
    ///   batch rarely spans the full 64-bit key space;
    /// * **digit width adapts**: large batches use 13- then 14-bit digits
    ///   (5 passes worst case, cache-resident bucket tails — see
    ///   [`RADIX_WIDE_MIN`] / [`RADIX_XWIDE_MIN`]), small ones 8-bit
    ///   digits whose histograms stay in L1;
    /// * **the scatter is stable**, so duplicates of a cell stay in
    ///   insertion order and order-sensitive duplicate operators
    ///   (`First`/`Second`, "last write wins") need no re-sorting — the
    ///   comparison path pays an extra per-run index sort for this.
    fn sort_dedup_radix<Op: BinaryOp<T>>(&mut self, dup: Op, scratch: &mut MergeScratch<T>) {
        let n = self.rows.len();
        let digit_bits: usize = if n >= RADIX_XWIDE_MIN {
            14
        } else if n >= RADIX_WIDE_MIN {
            13
        } else {
            8
        };
        self.sort_dedup_radix_with_bits(dup, scratch, digit_bits);
    }

    /// [`Coo::sort_dedup_radix`] with the digit width forced — the
    /// `merge_rate` digit-width sweep re-measures the 8/11/12/13/14/16
    /// table on the current plane layout through this.  Requires both
    /// dimensions within the packed-key space (`<= 2^32`) and
    /// `8 <= digit_bits <= 16`.  Not part of the supported API.
    #[doc(hidden)]
    pub fn sort_dedup_radix_forced<Op: BinaryOp<T>>(
        &mut self,
        dup: Op,
        scratch: &mut MergeScratch<T>,
        digit_bits: usize,
    ) {
        assert!(
            self.nrows <= RADIX_DIM_MAX && self.ncols <= RADIX_DIM_MAX,
            "radix settle requires packed-key dimensions"
        );
        if self.sorted_dedup {
            return;
        }
        self.sort_dedup_radix_with_bits(dup, scratch, digit_bits);
    }

    fn sort_dedup_radix_with_bits<Op: BinaryOp<T>>(
        &mut self,
        dup: Op,
        scratch: &mut MergeScratch<T>,
        digit_bits: usize,
    ) {
        // The fixed-size `active` table below caps the plane count at 8, so
        // digits narrower than 8 bits (9 planes for a 64-bit key) are out.
        assert!((8..=16).contains(&digit_bits), "unsupported digit width");
        let n = self.rows.len();
        if n == 0 {
            self.sorted_dedup = true;
            return;
        }
        let MergeScratch {
            radix_keys,
            radix_vals,
            radix_keys_alt,
            radix_vals_alt,
            radix_hist,
            sort_rows,
            sort_cols,
            sort_vals,
            ..
        } = scratch;

        // Digit width: scatter passes are the expensive part (random
        // 16-byte writes), so larger batches use 13-bit digits — fewer
        // passes whose 8,192 bucket tails still fit in cache (see
        // RADIX_WIDE_MIN for the measured sweep; the caller picked the
        // width).
        let nplanes = 64usize.div_ceil(digit_bits);
        let nbuckets = 1usize << digit_bits;
        let digit_mask = (nbuckets - 1) as u64;

        // One fused pass over the source arrays counts every digit plane at
        // once (the per-plane tables live in the persistent scratch, so no
        // steady-state allocation).
        radix_hist.clear();
        radix_hist.resize(nplanes * nbuckets, 0);
        for i in 0..n {
            let k = (self.rows[i] << 32) | self.cols[i];
            for p in 0..nplanes {
                radix_hist[p * nbuckets + ((k >> (p * digit_bits)) & digit_mask) as usize] += 1;
            }
        }

        // A plane whose histogram holds all n tuples in a single bucket is
        // constant across the batch and needs no scatter pass.
        let mut active = [0usize; 8];
        let mut nactive = 0;
        for p in 0..nplanes {
            let plane = &radix_hist[p * nbuckets..(p + 1) * nbuckets];
            if !plane.contains(&n) {
                active[nactive] = p;
                nactive += 1;
            }
        }

        sort_rows.clear();
        sort_cols.clear();
        sort_vals.clear();
        sort_rows.reserve(n);
        sort_cols.reserve(n);
        sort_vals.reserve(n);

        if nactive == 0 {
            // Every tuple hits the same cell: fold the values in insertion
            // order and emit the single entry.
            let k = (self.rows[0] << 32) | self.cols[0];
            let mut acc = self.vals[0];
            for &v in &self.vals[1..] {
                acc = dup.apply(acc, v);
            }
            sort_rows.push(k >> 32);
            sort_cols.push(k & 0xFFFF_FFFF);
            sort_vals.push(acc);
            std::mem::swap(&mut self.rows, &mut scratch.sort_rows);
            std::mem::swap(&mut self.cols, &mut scratch.sort_cols);
            std::mem::swap(&mut self.vals, &mut scratch.sort_vals);
            self.sorted_dedup = true;
            return;
        }

        // Turn a plane's histogram into exclusive start offsets.
        let prefix_sum = |plane: &mut [usize]| {
            let mut sum = 0usize;
            for slot in plane.iter_mut() {
                let count = *slot;
                *slot = sum;
                sum += count;
            }
        };

        // First scatter pass packs keys on the fly from the source arrays —
        // the key/value planes receive their first write already in
        // scattered order.  Remaining passes ping-pong between the two
        // plane sets, which persist in the scratch at working-set size; the
        // resize only adjusts the length delta (every slot is overwritten
        // by the offset-driven scatter, so stale contents never surface),
        // making the steady-state re-fill cost zero.  Keys and values are
        // separate planes so the key stream stays contiguous `u64`s — the
        // digit extract vectorises and each scatter store is 8 bytes tight
        // instead of a padded 16-byte pair.
        radix_keys.resize(n, 0);
        radix_vals.resize(n, T::default());
        {
            let p = active[0];
            let shift = p * digit_bits;
            let plane = &mut radix_hist[p * nbuckets..(p + 1) * nbuckets];
            prefix_sum(plane);
            for i in 0..n {
                let k = (self.rows[i] << 32) | self.cols[i];
                let slot = &mut plane[((k >> shift) & digit_mask) as usize];
                radix_keys[*slot] = k;
                radix_vals[*slot] = self.vals[i];
                *slot += 1;
            }
        }
        if nactive > 1 {
            radix_keys_alt.resize(n, 0);
            radix_vals_alt.resize(n, T::default());
        }
        let mut flipped = false; // data currently in radix_keys/radix_vals
        for &p in &active[1..nactive] {
            let (src_k, src_v, dst_k, dst_v) = if flipped {
                (
                    &*radix_keys_alt,
                    &*radix_vals_alt,
                    &mut *radix_keys,
                    &mut *radix_vals,
                )
            } else {
                (
                    &*radix_keys,
                    &*radix_vals,
                    &mut *radix_keys_alt,
                    &mut *radix_vals_alt,
                )
            };
            let shift = p * digit_bits;
            let plane = &mut radix_hist[p * nbuckets..(p + 1) * nbuckets];
            prefix_sum(plane);
            for (&k, &v) in src_k.iter().zip(src_v.iter()) {
                let slot = &mut plane[((k >> shift) & digit_mask) as usize];
                dst_k[*slot] = k;
                dst_v[*slot] = v;
                *slot += 1;
            }
            flipped = !flipped;
        }
        let (keys, vals) = if flipped {
            (&*radix_keys_alt, &*radix_vals_alt)
        } else {
            (&*radix_keys, &*radix_vals)
        };

        // Dedup while unpacking: runs of equal keys are contiguous and in
        // insertion order (stable scatter), so `dup` folds left-to-right.
        let mut i = 0;
        while i < n {
            let k = keys[i];
            let mut acc = vals[i];
            let mut j = i + 1;
            while j < n && keys[j] == k {
                acc = dup.apply(acc, vals[j]);
                j += 1;
            }
            sort_rows.push(k >> 32);
            sort_cols.push(k & 0xFFFF_FFFF);
            sort_vals.push(acc);
            i = j;
        }
        std::mem::swap(&mut self.rows, &mut scratch.sort_rows);
        std::mem::swap(&mut self.cols, &mut scratch.sort_cols);
        std::mem::swap(&mut self.vals, &mut scratch.sort_vals);
        self.sorted_dedup = true;
    }

    /// The comparison settle path: permutation sort + per-run insertion
    /// re-ordering.  This is the guarded fallback for dimensions beyond the
    /// packed-key space (`> 2^32`); it is public so the radix/comparison
    /// equivalence property tests and the `sort_dedup` micro-benchmark can
    /// pin this path at any dimension.
    pub fn sort_dedup_comparison_with<Op: BinaryOp<T>>(
        &mut self,
        dup: Op,
        scratch: &mut MergeScratch<T>,
    ) {
        if self.sorted_dedup {
            return;
        }
        let n = self.rows.len();
        scratch.perm.clear();
        scratch.perm.extend(0..n);
        scratch
            .perm
            .sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));

        scratch.sort_rows.clear();
        scratch.sort_cols.clear();
        scratch.sort_vals.clear();
        scratch.sort_rows.reserve(n);
        scratch.sort_cols.reserve(n);
        scratch.sort_vals.reserve(n);
        // Dedup scan.  The unstable sort may shuffle duplicates of the same
        // (row, col), so when a run of equal keys is detected its
        // permutation slice is re-sorted by index before `dup` is applied —
        // order-sensitive operators (`First`/`Second`, "last write wins")
        // need duplicates combined in insertion order.  Runs longer than 1
        // exist only at duplicate coordinates, so distinct-heavy streams
        // never pay for it.  (Keying the main sort by (row, col, i) instead
        // costs ~40% more: the wider key slows every comparison of the
        // sort, not just the duplicates'.)
        let mut start = 0;
        while start < n {
            let i0 = scratch.perm[start];
            let (r, c) = (self.rows[i0], self.cols[i0]);
            let mut end = start + 1;
            while end < n {
                let ie = scratch.perm[end];
                if self.rows[ie] != r || self.cols[ie] != c {
                    break;
                }
                end += 1;
            }
            let acc = if end - start > 1 {
                scratch.perm[start..end].sort_unstable();
                let mut acc = self.vals[scratch.perm[start]];
                for &j in &scratch.perm[start + 1..end] {
                    acc = dup.apply(acc, self.vals[j]);
                }
                acc
            } else {
                self.vals[i0]
            };
            scratch.sort_rows.push(r);
            scratch.sort_cols.push(c);
            scratch.sort_vals.push(acc);
            start = end;
        }
        std::mem::swap(&mut self.rows, &mut scratch.sort_rows);
        std::mem::swap(&mut self.cols, &mut scratch.sort_cols);
        std::mem::swap(&mut self.vals, &mut scratch.sort_vals);
        self.sorted_dedup = true;
    }

    /// Consume the COO and return its tuple vectors `(rows, cols, vals)`.
    pub fn into_parts(self) -> (Vec<Index>, Vec<Index>, Vec<T>) {
        (self.rows, self.cols, self.vals)
    }

    /// Borrow the tuple slices `(rows, cols, vals)`.
    pub fn parts(&self) -> (&[Index], &[Index], &[T]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Bytes of memory used by the tuple arrays.
    pub fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            index_bytes: (self.rows.capacity() + self.cols.capacity())
                * std::mem::size_of::<Index>(),
            value_bytes: self.vals.capacity() * std::mem::size_of::<T>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Plus, Second};

    #[test]
    fn new_and_push() {
        let mut c = Coo::<u64>::new(1 << 32, 1 << 32);
        assert!(c.is_empty());
        c.push(5, 6, 1);
        c.push(5, 7, 2);
        assert_eq!(c.len(), 2);
        assert!(c.is_sorted_dedup());
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(5, 6, 1), (5, 7, 2)]);
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(Coo::<f64>::try_new(0, 5).is_err());
        assert!(Coo::<f64>::try_new(5, 0).is_err());
    }

    #[test]
    fn out_of_order_push_clears_sorted_flag() {
        let mut c = Coo::<u64>::new(100, 100);
        c.push(9, 9, 1);
        c.push(3, 3, 1);
        assert!(!c.is_sorted_dedup());
        c.sort_dedup(Plus);
        assert!(c.is_sorted_dedup());
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(3, 3, 1), (9, 9, 1)]);
    }

    #[test]
    fn sort_dedup_accumulates_duplicates() {
        let mut c = Coo::<u64>::new(10, 10);
        c.push(1, 2, 10);
        c.push(0, 0, 1);
        c.push(1, 2, 5);
        c.push(1, 2, 1);
        c.sort_dedup(Plus);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1), (1, 2, 16)]);
    }

    #[test]
    fn sort_dedup_second_keeps_last_sorted_occurrence() {
        let mut c = Coo::<u32>::new(10, 10);
        c.push(1, 1, 100);
        c.push(0, 5, 7);
        c.push(1, 1, 200);
        c.sort_dedup(Second);
        let entries: Vec<_> = c.iter().collect();
        // Stable permutation sort keeps insertion order among equal keys, so
        // Second keeps the latest inserted value.
        assert_eq!(entries, vec![(0, 5, 7), (1, 1, 200)]);
    }

    #[test]
    fn sort_dedup_second_is_deterministic_under_heavy_duplication() {
        // Large enough that the unstable sort would shuffle equal keys if
        // runs were not re-ordered by insertion index before dedup.
        let mut c = Coo::<u64>::new(100, 100);
        for i in 0..10_000u64 {
            c.push(i % 7, (i * 3) % 5, i); // many duplicates per (row, col)
        }
        c.sort_dedup(Second);
        for (r, col, v) in c.iter() {
            // `Second` must keep the value of the LAST pushed tuple of the
            // cell: the largest i with i % 7 == r && (i * 3) % 5 == col.
            let expect = (0..10_000u64)
                .rfind(|i| i % 7 == r && (i * 3) % 5 == col)
                .unwrap();
            assert_eq!(v, expect, "cell ({r},{col})");
        }
    }

    #[test]
    fn radix_handles_boundary_indices() {
        // Dim exactly 2^32: indices 0 and 2^32 - 1 must pack/unpack cleanly.
        let top = (1u64 << 32) - 1;
        let mut c = Coo::<u64>::new(1 << 32, 1 << 32);
        c.push(top, 0, 1);
        c.push(0, top, 2);
        c.push(0, 0, 3);
        c.push(top, top, 4);
        c.push(top, 0, 10);
        c.sort_dedup(Plus);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 3), (0, top, 2), (top, 0, 11), (top, top, 4)]
        );
    }

    #[test]
    fn radix_and_comparison_agree_including_order_sensitive_ops() {
        let dim = 1u64 << 32;
        let mut base = Coo::<u64>::new(dim, dim);
        for i in 0..5000u64 {
            base.push((i * 7919) % 97, (i * 104_729) % 89, i);
        }
        let mut scratch = MergeScratch::default();
        // Second: last-write-wins is the order-sensitive case the stable
        // radix scatter must preserve.
        let mut radix = base.clone();
        radix.sort_dedup_with(Second, &mut scratch);
        let mut cmp = base.clone();
        cmp.sort_dedup_comparison_with(Second, &mut scratch);
        assert_eq!(radix.parts(), cmp.parts());

        let mut radix = base.clone();
        radix.sort_dedup_with(Plus, &mut scratch);
        let mut cmp = base;
        cmp.sort_dedup_comparison_with(Plus, &mut scratch);
        assert_eq!(radix.parts(), cmp.parts());
    }

    #[test]
    fn large_dims_take_comparison_fallback() {
        // Above 2^32 the packed key would overflow; the dispatcher must
        // fall back and stay correct.
        let mut c = Coo::<u64>::new(1 << 40, 1 << 40);
        c.push(1 << 39, 5, 1);
        c.push(3, 1 << 38, 2);
        c.push(1 << 39, 5, 4);
        c.sort_dedup(Plus);
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(3, 1 << 38, 2), (1 << 39, 5, 5)]);
    }

    #[test]
    fn extend_from_slices_rejects_out_of_bounds_atomically() {
        let mut c = Coo::<u8>::new(4, 4);
        assert!(c.extend_from_slices(&[0, 9], &[1, 1], &[1, 1]).is_err());
        assert!(c.extend_from_slices(&[0, 1], &[1, 9], &[1, 1]).is_err());
        assert!(c.is_empty());
        assert!(c.extend_from_slices(&[], &[], &[]).is_ok());
    }

    #[test]
    fn try_push_bounds() {
        let mut c = Coo::<u8>::new(4, 4);
        assert!(c.try_push(3, 3, 1).is_ok());
        assert!(c.try_push(4, 0, 1).is_err());
        assert!(c.try_push(0, 4, 1).is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn extend_from_slices_checks_lengths() {
        let mut c = Coo::<u8>::new(4, 4);
        assert!(c.extend_from_slices(&[0, 1], &[1, 2], &[1, 2]).is_ok());
        assert_eq!(c.len(), 2);
        assert!(c.extend_from_slices(&[0], &[1, 2], &[1, 2]).is_err());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = Coo::<u64>::with_capacity(10, 10, 64);
        for i in 0..10 {
            c.push(i, i, i);
        }
        let before = c.memory().total();
        c.clear();
        assert!(c.is_empty());
        assert!(c.is_sorted_dedup());
        assert_eq!(c.memory().total(), before);
    }

    #[test]
    fn memory_counts_indices_and_values() {
        let mut c = Coo::<u64>::new(10, 10);
        c.push(0, 0, 1);
        let m = c.memory();
        assert!(m.index_bytes >= 16);
        assert!(m.value_bytes >= 8);
    }
}
