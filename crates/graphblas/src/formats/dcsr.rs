//! DCSR — doubly compressed sparse row (hypersparse) storage.
//!
//! Standard CSR stores a row-pointer array of length `nrows + 1`, which is
//! unusable when `nrows = 2^32` (IPv4) or `2^64` (IPv6) and only a few
//! thousand rows are occupied.  DCSR additionally compresses the row axis:
//! only non-empty rows appear, each identified by its 64-bit row id.  Memory
//! is `O(nnz + #non-empty rows)` — the "hypersparse" property the paper's
//! traffic matrices depend on.
//!
//! A `Dcsr` is immutable once built; streaming mutation happens in COO form
//! (pending tuples or the lowest hierarchy level) and is *merged* into a
//! DCSR with [`Dcsr::merge`], which is exactly the `A_{i+1} = A_{i+1} ⊕ A_i`
//! cascade step.

use crate::error::{GrbError, GrbResult};
use crate::formats::coo::Coo;
use crate::formats::merge::{
    gallop_while, merge_row_adaptive, merge_row_linear, MergeTally, PlaneSink,
};
use crate::formats::{Entry, MemoryFootprint};
use crate::index::{validate_dims, Index};
use crate::ops::BinaryOp;
use crate::types::ScalarType;

/// Doubly compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dcsr<T> {
    nrows: Index,
    ncols: Index,
    /// Sorted ids of non-empty rows.
    row_ids: Vec<Index>,
    /// `row_ptr[k]..row_ptr[k+1]` is the slice of `col_idx`/`vals` for row `row_ids[k]`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<Index>,
    /// Stored values, parallel to `col_idx`.
    vals: Vec<T>,
}

/// Reusable scratch buffers for [`Dcsr::merge_into`],
/// [`Dcsr::merge_sorted_coo_into`] and the pending-tuple sort
/// ([`Coo::sort_dedup_with`]).
///
/// An in-place merge writes into these staging vectors and then swaps them
/// with the destination's, so the destination's previous buffers become the
/// next merge's staging space.  After warm-up the streaming hot path —
/// settle pending tuples, cascade a level — performs no heap allocation at
/// all, which is what the hierarchical matrix needs to sustain its insert
/// rate (every cascade used to rebuild the destination level from scratch).
#[derive(Debug, Clone)]
pub struct MergeScratch<T> {
    /// Staging row ids for the merged structure.
    pub(crate) row_ids: Vec<Index>,
    /// Staging row pointers for the merged structure.
    pub(crate) row_ptr: Vec<usize>,
    /// Staging column indices for the merged structure.
    pub(crate) col_idx: Vec<Index>,
    /// Staging values for the merged structure.
    pub(crate) vals: Vec<T>,
    /// Permutation buffer for sorting pending tuples (comparison fallback).
    pub(crate) perm: Vec<usize>,
    /// Staging rows for the pending-tuple sort.
    pub(crate) sort_rows: Vec<Index>,
    /// Staging cols for the pending-tuple sort.
    pub(crate) sort_cols: Vec<Index>,
    /// Staging vals for the pending-tuple sort.
    pub(crate) sort_vals: Vec<T>,
    /// Packed `(row << 32) | col` keys for the radix settle kernel.  Keys
    /// and values live in *separate* planes (not interleaved pairs): the
    /// digit-extract loop then reads a contiguous `u64` stream the compiler
    /// can vectorise, and each scatter writes two tight 8-byte stores
    /// instead of one padded 16-byte pair.
    pub(crate) radix_keys: Vec<u64>,
    /// Values plane parallel to `radix_keys`.
    pub(crate) radix_vals: Vec<T>,
    /// Scatter destination keys (ping-pongs with `radix_keys` per pass).
    pub(crate) radix_keys_alt: Vec<u64>,
    /// Scatter destination values (ping-pongs with `radix_vals` per pass).
    pub(crate) radix_vals_alt: Vec<T>,
    /// Digit histogram / offset table for the radix passes.
    pub(crate) radix_hist: Vec<usize>,
}

/// Manual impl: empty vectors need no bound on `T` (the derive would
/// spuriously require `T: Default`).
impl<T> Default for MergeScratch<T> {
    fn default() -> Self {
        Self {
            row_ids: Vec::new(),
            row_ptr: Vec::new(),
            col_idx: Vec::new(),
            vals: Vec::new(),
            perm: Vec::new(),
            sort_rows: Vec::new(),
            sort_cols: Vec::new(),
            sort_vals: Vec::new(),
            radix_keys: Vec::new(),
            radix_vals: Vec::new(),
            radix_keys_alt: Vec::new(),
            radix_vals_alt: Vec::new(),
            radix_hist: Vec::new(),
        }
    }
}

impl<T: ScalarType> MergeScratch<T> {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by the scratch buffers, split like every other
    /// structure's footprint.  After a merge the buffers hold the
    /// destination's previous structure (the ping-pong), so this is a real,
    /// resident cost that [`Matrix::memory`](crate::matrix::Matrix::memory)
    /// includes.
    pub fn footprint(&self) -> crate::formats::MemoryFootprint {
        crate::formats::MemoryFootprint {
            index_bytes: (self.row_ids.capacity()
                + self.col_idx.capacity()
                + self.sort_rows.capacity()
                + self.sort_cols.capacity())
                * std::mem::size_of::<Index>()
                + (self.row_ptr.capacity() + self.perm.capacity() + self.radix_hist.capacity())
                    * std::mem::size_of::<usize>()
                + (self.radix_keys.capacity() + self.radix_keys_alt.capacity())
                    * std::mem::size_of::<u64>(),
            value_bytes: (self.vals.capacity() + self.sort_vals.capacity())
                * std::mem::size_of::<T>()
                + (self.radix_vals.capacity() + self.radix_vals_alt.capacity())
                    * std::mem::size_of::<T>(),
        }
    }

    /// Bytes currently held by the scratch buffers.
    pub fn memory_bytes(&self) -> usize {
        self.footprint().total()
    }

    /// Clear the DCSR staging buffers and reserve for a merge of `nnz`
    /// entries over at most `nrows` non-empty rows.
    fn begin_merge(&mut self, nrows_hint: usize, nnz_hint: usize) {
        self.row_ids.clear();
        self.row_ptr.clear();
        self.col_idx.clear();
        self.vals.clear();
        self.row_ids.reserve(nrows_hint);
        self.row_ptr.reserve(nrows_hint + 1);
        self.col_idx.reserve(nnz_hint);
        self.vals.reserve(nnz_hint);
        self.row_ptr.push(0);
    }

    /// Bulk-append the row slots `lo..hi` of `d`: three slice copies plus
    /// an arithmetic rebase of the row pointers, instead of a push per
    /// row.  Runs of rows unique to one merge operand take this path,
    /// which is most of a hypersparse merge (row collisions are rare).
    fn push_rows_bulk(&mut self, d: &Dcsr<T>, lo: usize, hi: usize, tally: &mut MergeTally) {
        if lo >= hi {
            return;
        }
        let base = self.col_idx.len();
        let (plo, phi) = (d.row_ptr[lo], d.row_ptr[hi]);
        self.row_ids.extend_from_slice(&d.row_ids[lo..hi]);
        self.col_idx.extend_from_slice(&d.col_idx[plo..phi]);
        self.vals.extend_from_slice(&d.vals[plo..phi]);
        self.row_ptr
            .extend(d.row_ptr[lo + 1..=hi].iter().map(|&p| base + p - plo));
        tally.bulk_row += (phi - plo) as u64;
    }

    /// Bulk-append a run of sorted COO tuples spanning one or more whole
    /// rows: the column/value slices copy in bulk and only the row
    /// boundaries are scanned.
    fn push_coo_rows_bulk(
        &mut self,
        rows: &[Index],
        cols: &[Index],
        vs: &[T],
        tally: &mut MergeTally,
    ) {
        if rows.is_empty() {
            return;
        }
        let base = self.col_idx.len();
        self.col_idx.extend_from_slice(cols);
        self.vals.extend_from_slice(vs);
        let mut start = 0;
        while start < rows.len() {
            let r = rows[start];
            let end = gallop_while(rows, start + 1, |x| x == r);
            self.row_ids.push(r);
            self.row_ptr.push(base + end);
            start = end;
        }
        tally.bulk_row += cols.len() as u64;
    }

    /// Column merge of one colliding row into the staging buffers:
    /// skew-aware ([`merge_row_adaptive`]) or the retained element-at-a-time
    /// fallback ([`merge_row_linear`]), selected by the public entry point.
    #[allow(clippy::too_many_arguments)]
    fn push_merged_row<Op: BinaryOp<T>>(
        &mut self,
        row: Index,
        ca: &[Index],
        va: &[T],
        cb: &[Index],
        vb: &[T],
        op: Op,
        adaptive: bool,
        tally: &mut MergeTally,
    ) {
        self.row_ids.push(row);
        let mut sink = PlaneSink {
            cols: &mut self.col_idx,
            vals: &mut self.vals,
        };
        if adaptive {
            merge_row_adaptive(ca, va, cb, vb, op, &mut sink, tally);
        } else {
            merge_row_linear(ca, va, cb, vb, op, &mut sink, tally);
        }
        self.row_ptr.push(self.col_idx.len());
    }
}

impl<T: ScalarType> Dcsr<T> {
    /// An empty hypersparse matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::try_new(nrows, ncols).expect("invalid matrix dimensions")
    }

    /// Fallible constructor.
    pub fn try_new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            row_ids: Vec::new(),
            row_ptr: vec![0],
            col_idx: Vec::new(),
            vals: Vec::new(),
        })
    }

    /// The four raw compressed arrays `(row_ids, row_ptr, col_idx, vals)` —
    /// read-only access for the cursor kernel's bulk run copies and the
    /// durable level-file writer.
    pub fn raw_parts(&self) -> (&[Index], &[usize], &[Index], &[T]) {
        (&self.row_ids, &self.row_ptr, &self.col_idx, &self.vals)
    }

    /// Reassemble a DCSR from raw compressed arrays, validating every
    /// structural invariant (strictly increasing row ids and in-row
    /// columns, monotone row pointers starting at 0, no empty rows, all
    /// indices in bounds).  This is the loader's entry point for
    /// untrusted on-disk data: any violation is a typed error, never a
    /// panic or an inconsistent matrix.
    pub fn try_from_raw_parts(
        nrows: Index,
        ncols: Index,
        row_ids: Vec<Index>,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        vals: Vec<T>,
    ) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        if row_ptr.first() != Some(&0) {
            return Err(GrbError::InvalidValue("row_ptr must start at 0".into()));
        }
        let d = Self {
            nrows,
            ncols,
            row_ids,
            row_ptr,
            col_idx,
            vals,
        };
        d.check_invariants()?;
        Ok(d)
    }

    /// Build from a COO that has already been sorted and deduplicated.
    ///
    /// Returns an error if the COO is not in sorted/dedup state.
    pub fn from_sorted_coo(coo: &Coo<T>) -> GrbResult<Self> {
        if !coo.is_sorted_dedup() {
            return Err(GrbError::InvalidValue(
                "COO must be sorted and deduplicated before DCSR conversion".into(),
            ));
        }
        let mut m = Self::try_new(coo.nrows(), coo.ncols())?;
        let (rows, cols, vals) = coo.parts();
        m.col_idx.reserve(cols.len());
        m.vals.reserve(vals.len());
        for i in 0..rows.len() {
            let r = rows[i];
            if m.row_ids.last() != Some(&r) {
                m.row_ids.push(r);
                m.row_ptr.push(m.col_idx.len());
            }
            m.col_idx.push(cols[i]);
            m.vals.push(vals[i]);
            *m.row_ptr.last_mut().expect("row_ptr non-empty") = m.col_idx.len();
        }
        Ok(m)
    }

    /// Build by sorting and deduplicating an arbitrary COO with `dup`.
    pub fn from_coo<Op: BinaryOp<T>>(mut coo: Coo<T>, dup: Op) -> GrbResult<Self> {
        coo.sort_dedup(dup);
        Self::from_sorted_coo(&coo)
    }

    /// Build directly from tuple slices (convenience used heavily in tests).
    pub fn from_tuples<Op: BinaryOp<T>>(
        nrows: Index,
        ncols: Index,
        rows: &[Index],
        cols: &[Index],
        vals: &[T],
        dup: Op,
    ) -> GrbResult<Self> {
        let mut coo = Coo::try_new(nrows, ncols)?;
        coo.extend_from_slices(rows, cols, vals)?;
        Self::from_coo(coo, dup)
    }

    /// Number of rows of the logical matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns of the logical matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> usize {
        self.col_idx.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.col_idx.is_empty()
    }

    /// Number of non-empty rows (the "hyper" dimension).
    pub fn nrows_nonempty(&self) -> usize {
        self.row_ids.len()
    }

    /// The sorted ids of the non-empty rows.
    pub fn row_ids(&self) -> &[Index] {
        &self.row_ids
    }

    /// The columns and values of logical row `row`, if that row is non-empty.
    pub fn row(&self, row: Index) -> Option<(&[Index], &[T])> {
        let k = self.row_ids.binary_search(&row).ok()?;
        Some(self.row_slot(k))
    }

    /// The columns and values of the `k`-th non-empty row.
    pub fn row_slot(&self, k: usize) -> (&[Index], &[T]) {
        let lo = self.row_ptr[k];
        let hi = self.row_ptr[k + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Value stored at `(row, col)`, or `None`.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        let (cols, vals) = self.row(row)?;
        let j = cols.binary_search(&col).ok()?;
        Some(vals[j])
    }

    /// Iterate over stored entries in row-major order.
    pub fn iter(&self) -> DcsrIter<'_, T> {
        DcsrIter {
            dcsr: self,
            slot: 0,
            offset: 0,
        }
    }

    /// Extract all tuples into parallel vectors (row-major order).
    pub fn extract_tuples(&self) -> (Vec<Index>, Vec<Index>, Vec<T>) {
        let mut rows = Vec::with_capacity(self.nvals());
        let mut cols = Vec::with_capacity(self.nvals());
        let mut vals = Vec::with_capacity(self.nvals());
        for (r, c, v) in self.iter() {
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        (rows, cols, vals)
    }

    /// Convert back to a (sorted, deduplicated) COO.
    pub fn to_coo(&self) -> Coo<T> {
        let mut coo = Coo::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }

    /// Merge another DCSR into this one under the binary operator `op`
    /// (set-union on the pattern, `op` on collisions).
    ///
    /// This is the cascade primitive `A_{i+1} = A_{i+1} ⊕ A_i` of the
    /// hierarchical hypersparse matrix.  Colliding rows go through the
    /// skew-aware kernels of [`crate::formats::merge`] (disjoint bulk copy
    /// / gallop / branchless two-pointer, picked per row by shape), so the
    /// common cascade case — a small settled batch folded into a large
    /// lower level — costs `O(k log(n/k))` in the colliding rows instead of
    /// the `O(nnz(self) + nnz(other))` walk of [`Dcsr::merge_linear`].
    pub fn merge<Op: BinaryOp<T>>(&self, other: &Dcsr<T>, op: Op) -> GrbResult<Dcsr<T>> {
        self.merge_impl(other, op, true)
    }

    /// [`Dcsr::merge`] forced through the retained element-at-a-time
    /// fallback kernel — the verification baseline the equivalence
    /// proptests and the `merge_rate` benchmark compare against.  Output is
    /// byte-identical to [`Dcsr::merge`].
    pub fn merge_linear<Op: BinaryOp<T>>(&self, other: &Dcsr<T>, op: Op) -> GrbResult<Dcsr<T>> {
        self.merge_impl(other, op, false)
    }

    fn merge_impl<Op: BinaryOp<T>>(
        &self,
        other: &Dcsr<T>,
        op: Op,
        adaptive: bool,
    ) -> GrbResult<Dcsr<T>> {
        self.check_same_dims(other)?;
        let mut scratch = MergeScratch::new();
        scratch.begin_merge(
            self.row_ids.len().max(other.row_ids.len()),
            self.nvals() + other.nvals(),
        );
        let mut tally = MergeTally::default();
        self.merge_core(other, op, &mut scratch, adaptive, &mut tally);
        tally.commit();
        Ok(Dcsr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ids: std::mem::take(&mut scratch.row_ids),
            row_ptr: std::mem::take(&mut scratch.row_ptr),
            col_idx: std::mem::take(&mut scratch.col_idx),
            vals: std::mem::take(&mut scratch.vals),
        })
    }

    /// In-place variant of [`Dcsr::merge`]: `self = self ⊕ other`, building
    /// the merged structure in `scratch` and swapping it in.  After the call
    /// `scratch` holds `self`'s previous buffers, so repeated cascades
    /// ping-pong between two allocations and the hot path is allocation-free
    /// once both have grown to the working-set size.
    pub fn merge_into<Op: BinaryOp<T>>(
        &mut self,
        other: &Dcsr<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
    ) -> GrbResult<()> {
        self.merge_into_impl(other, op, scratch, true)
    }

    /// [`Dcsr::merge_into`] forced through the retained element-at-a-time
    /// fallback kernel (byte-identical output; equivalence-test baseline).
    pub fn merge_into_linear<Op: BinaryOp<T>>(
        &mut self,
        other: &Dcsr<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
    ) -> GrbResult<()> {
        self.merge_into_impl(other, op, scratch, false)
    }

    fn merge_into_impl<Op: BinaryOp<T>>(
        &mut self,
        other: &Dcsr<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
        adaptive: bool,
    ) -> GrbResult<()> {
        self.check_same_dims(other)?;
        if other.is_empty() {
            return Ok(());
        }
        if self.is_empty() {
            // Copy `other` straight into our (possibly pre-grown) buffers.
            self.row_ids.clear();
            self.row_ids.extend_from_slice(&other.row_ids);
            self.row_ptr.clear();
            self.row_ptr.extend_from_slice(&other.row_ptr);
            self.col_idx.clear();
            self.col_idx.extend_from_slice(&other.col_idx);
            self.vals.clear();
            self.vals.extend_from_slice(&other.vals);
            return Ok(());
        }
        scratch.begin_merge(
            self.row_ids.len().max(other.row_ids.len()),
            self.nvals() + other.nvals(),
        );
        let mut tally = MergeTally::default();
        self.merge_core(other, op, scratch, adaptive, &mut tally);
        tally.commit();
        std::mem::swap(&mut self.row_ids, &mut scratch.row_ids);
        std::mem::swap(&mut self.row_ptr, &mut scratch.row_ptr);
        std::mem::swap(&mut self.col_idx, &mut scratch.col_idx);
        std::mem::swap(&mut self.vals, &mut scratch.vals);
        Ok(())
    }

    /// Merge a sorted, deduplicated [`Coo`] into `self` in place — the
    /// settle step `settled = settled ⊕ pending` without materialising the
    /// pending tuples as an intermediate `Dcsr` first.  Uses `scratch` like
    /// [`Dcsr::merge_into`].
    pub fn merge_sorted_coo_into<Op: BinaryOp<T>>(
        &mut self,
        coo: &Coo<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
    ) -> GrbResult<()> {
        self.merge_sorted_coo_into_impl(coo, op, scratch, true)
    }

    /// [`Dcsr::merge_sorted_coo_into`] forced through the retained
    /// element-at-a-time fallback kernel (byte-identical output;
    /// equivalence-test baseline).
    pub fn merge_sorted_coo_into_linear<Op: BinaryOp<T>>(
        &mut self,
        coo: &Coo<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
    ) -> GrbResult<()> {
        self.merge_sorted_coo_into_impl(coo, op, scratch, false)
    }

    fn merge_sorted_coo_into_impl<Op: BinaryOp<T>>(
        &mut self,
        coo: &Coo<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
        adaptive: bool,
    ) -> GrbResult<()> {
        if self.nrows != coo.nrows() || self.ncols != coo.ncols() {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "{}x{} vs {}x{}",
                    self.nrows,
                    self.ncols,
                    coo.nrows(),
                    coo.ncols()
                ),
            });
        }
        if !coo.is_sorted_dedup() {
            return Err(GrbError::InvalidValue(
                "COO must be sorted and deduplicated before merging".into(),
            ));
        }
        if coo.is_empty() {
            return Ok(());
        }
        let (b_rows, b_cols, b_vals) = coo.parts();
        scratch.begin_merge(
            self.row_ids.len() + b_rows.len(),
            self.nvals() + b_rows.len(),
        );
        let mut tally = MergeTally::default();
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < self.row_ids.len() || ib < b_rows.len() {
            // The COO side groups naturally into runs of equal row id; rows
            // unique to either side are detected as runs (galloped — a
            // settle's batch usually touches few distinct rows, so the run
            // boundaries are far apart) and copied in bulk.
            let rb = b_rows.get(ib).copied();
            let ra = self.row_ids.get(ia).copied();
            match (ra, rb) {
                (Some(r), Some(rr)) if r == rr => {
                    let end = gallop_while(b_rows, ib + 1, |x| x == rr);
                    let (ca, va) = self.row_slot(ia);
                    scratch.push_merged_row(
                        r,
                        ca,
                        va,
                        &b_cols[ib..end],
                        &b_vals[ib..end],
                        op,
                        adaptive,
                        &mut tally,
                    );
                    ia += 1;
                    ib = end;
                }
                (Some(r), Some(rr)) if r < rr => {
                    let end = gallop_while(&self.row_ids, ia + 1, |x| x < rr);
                    scratch.push_rows_bulk(self, ia, end, &mut tally);
                    ia = end;
                }
                (Some(_), None) => {
                    scratch.push_rows_bulk(self, ia, self.row_ids.len(), &mut tally);
                    ia = self.row_ids.len();
                }
                (_, Some(_)) => {
                    let limit = ra.map_or(b_rows.len(), |r| gallop_while(b_rows, ib, |x| x < r));
                    scratch.push_coo_rows_bulk(
                        &b_rows[ib..limit],
                        &b_cols[ib..limit],
                        &b_vals[ib..limit],
                        &mut tally,
                    );
                    ib = limit;
                }
                (None, None) => break,
            }
        }
        tally.commit();
        std::mem::swap(&mut self.row_ids, &mut scratch.row_ids);
        std::mem::swap(&mut self.row_ptr, &mut scratch.row_ptr);
        std::mem::swap(&mut self.col_idx, &mut scratch.col_idx);
        std::mem::swap(&mut self.vals, &mut scratch.vals);
        Ok(())
    }

    /// Remove every entry, keeping the buffer capacity for reuse (the
    /// cascade clears its source level this way so steady-state streaming
    /// does not churn the allocator).
    pub fn clear_retaining(&mut self) {
        self.row_ids.clear();
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.col_idx.clear();
        self.vals.clear();
    }

    fn check_same_dims(&self, other: &Dcsr<T>) -> GrbResult<()> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "{}x{} vs {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        Ok(())
    }

    /// Row-wise merge of `self` and `other` into the staging buffers of
    /// `scratch` (which must have been prepared with
    /// [`MergeScratch::begin_merge`]).  Runs of rows unique to one operand
    /// are found by galloping along the row-id arrays and copied in bulk;
    /// colliding rows dispatch to the adaptive or linear column kernel.
    fn merge_core<Op: BinaryOp<T>>(
        &self,
        other: &Dcsr<T>,
        op: Op,
        scratch: &mut MergeScratch<T>,
        adaptive: bool,
        tally: &mut MergeTally,
    ) {
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < self.row_ids.len() || ib < other.row_ids.len() {
            let ra = self.row_ids.get(ia).copied();
            let rb = other.row_ids.get(ib).copied();
            match (ra, rb) {
                (Some(r), Some(rr)) if r == rr => {
                    let (ca, va) = self.row_slot(ia);
                    let (cb, vb) = other.row_slot(ib);
                    scratch.push_merged_row(r, ca, va, cb, vb, op, adaptive, tally);
                    ia += 1;
                    ib += 1;
                }
                (Some(r), Some(rr)) if r < rr => {
                    // Run of rows unique to `self`: bulk copy.
                    let end = gallop_while(&self.row_ids, ia + 1, |x| x < rr);
                    scratch.push_rows_bulk(self, ia, end, tally);
                    ia = end;
                }
                (Some(_), None) => {
                    scratch.push_rows_bulk(self, ia, self.row_ids.len(), tally);
                    ia = self.row_ids.len();
                }
                (_, Some(_)) => {
                    // Run of rows unique to `other` (rb < ra, or `self`
                    // exhausted): bulk copy.
                    let end = match ra {
                        Some(r) => gallop_while(&other.row_ids, ib + 1, |x| x < r),
                        None => other.row_ids.len(),
                    };
                    scratch.push_rows_bulk(other, ib, end, tally);
                    ib = end;
                }
                (None, None) => break,
            }
        }
    }

    /// Bytes of memory used by the compressed arrays.
    pub fn memory(&self) -> MemoryFootprint {
        MemoryFootprint {
            index_bytes: self.row_ids.capacity() * std::mem::size_of::<Index>()
                + self.row_ptr.capacity() * std::mem::size_of::<usize>()
                + self.col_idx.capacity() * std::mem::size_of::<Index>(),
            value_bytes: self.vals.capacity() * std::mem::size_of::<T>(),
        }
    }

    /// Internal consistency check used by tests and debug assertions:
    /// row ids strictly increasing, row_ptr monotone, columns strictly
    /// increasing within each row, and array lengths consistent.
    pub fn check_invariants(&self) -> GrbResult<()> {
        if self.row_ptr.len() != self.row_ids.len() + 1 {
            return Err(GrbError::InvalidValue("row_ptr length mismatch".into()));
        }
        if self.col_idx.len() != self.vals.len() {
            return Err(GrbError::InvalidValue("col/val length mismatch".into()));
        }
        if *self.row_ptr.last().expect("non-empty row_ptr") != self.col_idx.len() {
            return Err(GrbError::InvalidValue("row_ptr tail mismatch".into()));
        }
        for w in self.row_ids.windows(2) {
            if w[0] >= w[1] {
                return Err(GrbError::InvalidValue(
                    "row ids not strictly increasing".into(),
                ));
            }
        }
        for k in 0..self.row_ids.len() {
            if self.row_ids[k] >= self.nrows {
                return Err(GrbError::IndexOutOfBounds {
                    index: self.row_ids[k],
                    dim: self.nrows,
                });
            }
            if self.row_ptr[k] > self.row_ptr[k + 1] {
                return Err(GrbError::InvalidValue("row_ptr not monotone".into()));
            }
            if self.row_ptr[k] == self.row_ptr[k + 1] {
                return Err(GrbError::InvalidValue("empty row stored".into()));
            }
            let (cols, _) = self.row_slot(k);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(GrbError::InvalidValue(
                        "columns not strictly increasing within row".into(),
                    ));
                }
            }
            if let Some(&c) = cols.last() {
                if c >= self.ncols {
                    return Err(GrbError::IndexOutOfBounds {
                        index: c,
                        dim: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Row-major iterator over the stored entries of a [`Dcsr`].
pub struct DcsrIter<'a, T> {
    dcsr: &'a Dcsr<T>,
    slot: usize,
    offset: usize,
}

impl<'a, T: ScalarType> Iterator for DcsrIter<'a, T> {
    type Item = Entry<T>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.slot < self.dcsr.row_ids.len() {
            let lo = self.dcsr.row_ptr[self.slot];
            let hi = self.dcsr.row_ptr[self.slot + 1];
            let i = lo + self.offset;
            if i < hi {
                self.offset += 1;
                return Some((
                    self.dcsr.row_ids[self.slot],
                    self.dcsr.col_idx[i],
                    self.dcsr.vals[i],
                ));
            }
            self.slot += 1;
            self.offset = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.dcsr.nvals()
            - self
                .dcsr
                .row_ptr
                .get(self.slot)
                .copied()
                .unwrap_or(self.dcsr.nvals())
            - self.offset;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn sample() -> Dcsr<u64> {
        Dcsr::from_tuples(
            1 << 40,
            1 << 40,
            &[5, 5, 900_000_000_000, 7, 5],
            &[10, 2, 3, 10, 10],
            &[1, 2, 3, 4, 5],
            Plus,
        )
        .unwrap()
    }

    #[test]
    fn build_from_tuples_hypersparse() {
        let m = sample();
        m.check_invariants().unwrap();
        assert_eq!(m.nvals(), 4); // (5,10) deduplicated: 1+5
        assert_eq!(m.nrows_nonempty(), 3);
        assert_eq!(m.get(5, 10), Some(6));
        assert_eq!(m.get(5, 2), Some(2));
        assert_eq!(m.get(900_000_000_000, 3), Some(3));
        assert_eq!(m.get(7, 10), Some(4));
        assert_eq!(m.get(7, 11), None);
        assert_eq!(m.get(6, 10), None);
    }

    #[test]
    fn iter_is_row_major_sorted() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(5, 2, 2), (5, 10, 6), (7, 10, 4), (900_000_000_000, 3, 3)]
        );
        let mut sorted = entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        assert_eq!(entries, sorted);
    }

    #[test]
    fn empty_matrix() {
        let m = Dcsr::<f64>::new(10, 10);
        assert!(m.is_empty());
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.nrows_nonempty(), 0);
        assert_eq!(m.iter().count(), 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn from_unsorted_coo_rejected() {
        let mut coo = Coo::<u64>::new(10, 10);
        coo.push(5, 5, 1);
        coo.push(1, 1, 1);
        assert!(Dcsr::from_sorted_coo(&coo).is_err());
    }

    #[test]
    fn merge_disjoint_and_overlapping() {
        let a = Dcsr::from_tuples(100, 100, &[1, 2], &[1, 2], &[10u64, 20], Plus).unwrap();
        let b = Dcsr::from_tuples(100, 100, &[2, 3], &[2, 3], &[5u64, 7], Plus).unwrap();
        let c = a.merge(&b, Plus).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.nvals(), 3);
        assert_eq!(c.get(1, 1), Some(10));
        assert_eq!(c.get(2, 2), Some(25));
        assert_eq!(c.get(3, 3), Some(7));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = sample();
        let empty = Dcsr::<u64>::new(a.nrows(), a.ncols());
        let c = a.merge(&empty, Plus).unwrap();
        assert_eq!(c, a);
        let c2 = empty.merge(&a, Plus).unwrap();
        assert_eq!(c2, a);
    }

    #[test]
    fn merge_dimension_mismatch() {
        let a = Dcsr::<u64>::new(10, 10);
        let b = Dcsr::<u64>::new(10, 11);
        assert!(a.merge(&b, Plus).is_err());
    }

    #[test]
    fn merge_same_row_interleaved_columns() {
        let a = Dcsr::from_tuples(10, 10, &[4, 4, 4], &[1, 5, 9], &[1u32, 5, 9], Plus).unwrap();
        let b = Dcsr::from_tuples(10, 10, &[4, 4], &[0, 5], &[100u32, 50], Plus).unwrap();
        let c = a.merge(&b, Plus).unwrap();
        let entries: Vec<_> = c.iter().collect();
        assert_eq!(entries, vec![(4, 0, 100), (4, 1, 1), (4, 5, 55), (4, 9, 9)]);
    }

    #[test]
    fn extract_tuples_round_trip() {
        let m = sample();
        let (r, c, v) = m.extract_tuples();
        let rebuilt = Dcsr::from_tuples(m.nrows(), m.ncols(), &r, &c, &v, Plus).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn to_coo_is_sorted() {
        let m = sample();
        let coo = m.to_coo();
        assert!(coo.is_sorted_dedup());
        assert_eq!(coo.len(), m.nvals());
    }

    #[test]
    fn memory_grows_with_entries() {
        let small = Dcsr::from_tuples(100, 100, &[1], &[1], &[1u64], Plus).unwrap();
        let big = Dcsr::from_tuples(
            100,
            100,
            &(0..100u64).collect::<Vec<_>>(),
            &(0..100u64).collect::<Vec<_>>(),
            &vec![1u64; 100],
            Plus,
        )
        .unwrap();
        assert!(big.memory().total() > small.memory().total());
    }

    #[test]
    fn merge_into_matches_merge() {
        let mut scratch = MergeScratch::new();
        let a0 =
            Dcsr::from_tuples(100, 100, &[1, 2, 4], &[1, 2, 4], &[10u64, 20, 40], Plus).unwrap();
        let b = Dcsr::from_tuples(100, 100, &[2, 3, 4], &[2, 3, 9], &[5u64, 7, 9], Plus).unwrap();
        let expect = a0.merge(&b, Plus).unwrap();
        let mut a = a0.clone();
        a.merge_into(&b, Plus, &mut scratch).unwrap();
        a.check_invariants().unwrap();
        assert_eq!(a, expect);
        // Merging again reuses the scratch (capacity ping-pong) and stays
        // correct.
        let expect2 = a.merge(&b, Plus).unwrap();
        a.merge_into(&b, Plus, &mut scratch).unwrap();
        assert_eq!(a, expect2);
        assert!(scratch.memory_bytes() > 0);
    }

    #[test]
    fn merge_into_empty_cases() {
        let mut scratch = MergeScratch::new();
        let sample = sample();
        let mut empty = Dcsr::<u64>::new(sample.nrows(), sample.ncols());
        empty.merge_into(&sample, Plus, &mut scratch).unwrap();
        assert_eq!(empty, sample);
        let mut a = sample.clone();
        let none = Dcsr::<u64>::new(sample.nrows(), sample.ncols());
        a.merge_into(&none, Plus, &mut scratch).unwrap();
        assert_eq!(a, sample);
        let mut wrong = Dcsr::<u64>::new(10, 10);
        assert!(wrong.merge_into(&sample, Plus, &mut scratch).is_err());
    }

    #[test]
    fn merge_sorted_coo_into_matches_two_step() {
        let mut scratch = MergeScratch::new();
        let mut a =
            Dcsr::from_tuples(100, 100, &[4, 4, 7], &[1, 5, 3], &[1u64, 5, 3], Plus).unwrap();
        let mut coo = Coo::<u64>::new(100, 100);
        coo.push(2, 9, 2);
        coo.push(4, 5, 50);
        coo.push(4, 6, 6);
        coo.push(9, 0, 9);
        assert!(coo.is_sorted_dedup());
        let delta = Dcsr::from_sorted_coo(&coo).unwrap();
        let expect = a.merge(&delta, Plus).unwrap();
        a.merge_sorted_coo_into(&coo, Plus, &mut scratch).unwrap();
        a.check_invariants().unwrap();
        assert_eq!(a, expect);

        // Unsorted COO rejected; empty COO is a no-op.
        let mut unsorted = Coo::<u64>::new(100, 100);
        unsorted.push(5, 5, 1);
        unsorted.push(1, 1, 1);
        assert!(a
            .merge_sorted_coo_into(&unsorted, Plus, &mut scratch)
            .is_err());
        let before = a.clone();
        a.merge_sorted_coo_into(&Coo::new(100, 100), Plus, &mut scratch)
            .unwrap();
        assert_eq!(a, before);
    }

    #[test]
    fn merge_sorted_coo_into_empty_dest() {
        let mut scratch = MergeScratch::new();
        let mut a = Dcsr::<u64>::new(50, 50);
        let mut coo = Coo::<u64>::new(50, 50);
        coo.push(3, 3, 7);
        coo.push(3, 4, 8);
        a.merge_sorted_coo_into(&coo, Plus, &mut scratch).unwrap();
        a.check_invariants().unwrap();
        assert_eq!(a.nvals(), 2);
        assert_eq!(a.get(3, 4), Some(8));
    }

    #[test]
    fn clear_retaining_keeps_capacity() {
        let mut a = sample();
        let cap_before = a.memory().total();
        a.clear_retaining();
        assert!(a.is_empty());
        a.check_invariants().unwrap();
        assert_eq!(a.memory().total(), cap_before);
    }

    #[test]
    fn memory_independent_of_dimensions() {
        let small_dims = Dcsr::from_tuples(100, 100, &[1], &[1], &[1u64], Plus).unwrap();
        let huge_dims = Dcsr::from_tuples(1 << 50, 1 << 50, &[1], &[1], &[1u64], Plus).unwrap();
        assert_eq!(small_dims.memory().total(), huge_dims.memory().total());
    }

    #[test]
    fn try_from_raw_parts_round_trips() {
        let a = sample();
        let (row_ids, row_ptr, col_idx, vals) = a.raw_parts();
        let b = Dcsr::try_from_raw_parts(
            a.nrows(),
            a.ncols(),
            row_ids.to_vec(),
            row_ptr.to_vec(),
            col_idx.to_vec(),
            vals.to_vec(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn try_from_raw_parts_rejects_malformed_input() {
        // row_ptr not starting at zero.
        assert!(
            Dcsr::<u64>::try_from_raw_parts(10, 10, vec![1], vec![1, 2], vec![3], vec![7]).is_err()
        );
        // Empty row_ptr.
        assert!(Dcsr::<u64>::try_from_raw_parts(10, 10, vec![], vec![], vec![], vec![]).is_err());
        // row_ptr length inconsistent with row_ids.
        assert!(
            Dcsr::<u64>::try_from_raw_parts(10, 10, vec![1, 2], vec![0, 1], vec![3], vec![7])
                .is_err()
        );
        // Column out of bounds.
        assert!(
            Dcsr::<u64>::try_from_raw_parts(10, 10, vec![1], vec![0, 1], vec![10], vec![7])
                .is_err()
        );
        // Row ids not strictly increasing.
        assert!(Dcsr::<u64>::try_from_raw_parts(
            10,
            10,
            vec![2, 2],
            vec![0, 1, 2],
            vec![3, 4],
            vec![7, 8]
        )
        .is_err());
        // Empty stored row.
        assert!(Dcsr::<u64>::try_from_raw_parts(
            10,
            10,
            vec![1, 2],
            vec![0, 1, 1],
            vec![3],
            vec![7]
        )
        .is_err());
        // The valid shape still parses.
        assert!(
            Dcsr::<u64>::try_from_raw_parts(10, 10, vec![1], vec![0, 1], vec![3], vec![7]).is_ok()
        );
    }
}
